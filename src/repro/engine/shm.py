"""Shared-memory trace store: map trace columns into workers, don't pickle.

Ground-truth sweeps and model fan-outs are embarrassingly parallel, but the
naive ``ProcessPoolExecutor`` recipe serializes the full trace arrays into
every worker — for a 500k-request trace that is ~8 MB pickled per worker,
paid again for every pool.  :class:`SharedTraceStore` instead places the
three trace columns (keys, sizes, ops) in one
:class:`multiprocessing.shared_memory.SharedMemory` block; workers receive
only a tiny picklable :class:`TraceSpec` handle and map the block into
their address space with :class:`AttachedTrace` (zero-copy, read-only by
convention).

Layout of the block for an ``n``-request trace::

    [ keys  : n x int64 ][ sizes : n x int64 ][ ops : n x int8 ]

A store created with a :class:`~repro.engine.plan.TracePlan` additionally
publishes the plan's precomputed preparation columns — dense key ids,
previous-occurrence indices and the seed-0 ``splitmix64`` hash column —
so every worker attaches one finished preparation pass instead of redoing
it per task.  The plan layout keeps the 8-byte columns aligned by moving
the ``int8`` ops column to the end::

    [ keys ][ sizes ][ key_ids : n x int64 ][ prev : n x int64 ]
    [ hashes : n x uint64 ][ ops : n x int8 ]

Lifetime contract: the *creator* owns the segment and must call
:meth:`SharedTraceStore.close` (or use it as a context manager) after the
pool has been joined.  Workers are pool children forked/spawned from the
creator, so they share its ``resource_tracker`` process and their attach-
side registration is an idempotent no-op — the segment is unlinked exactly
once, by the creator.

As a backstop for the creator dying mid-sweep, every live store is held in
a process-wide registry drained by an ``atexit`` hook and a chained
``SIGTERM`` handler: a parent killed by its supervisor (or exiting down an
exception path that skips ``close()``) still unlinks its segments instead
of leaking them in ``/dev/shm`` until reboot.  SIGKILL cannot be caught —
for that the OS-level ``resource_tracker`` remains the last line of
defense.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Callable, List, Optional, Tuple

import numpy as np

from ..workloads.trace import Trace
from .plan import TracePlan

__all__ = [
    "AttachedTrace",
    "SharedTraceStore",
    "TraceSpec",
    "on_sigterm",
    "remove_sigterm_callback",
]


# ----------------------------------------------------------------------
# Chained SIGTERM callback registry + guaranteed shm cleanup.
#
# Exactly one master SIGTERM handler is ever installed; it runs every
# registered callback (newest first, so higher layers — e.g. the service
# daemon's graceful shutdown — run before the shm cleanup they depend
# on), then defers to whatever handler was installed before us, or
# re-raises SIGTERM with the default disposition so kill-by-SIGTERM exit
# semantics survive for supervisors.  The shm cleanup below is just the
# first registered callback.
# ----------------------------------------------------------------------
_LIVE_STORES: "weakref.WeakSet[SharedTraceStore]" = weakref.WeakSet()
_CLEANUP_LOCK = threading.Lock()
_CLEANUP_INSTALLED = False
_HANDLER_INSTALLED = False
_SIGTERM_CALLBACKS: List[Callable[[], None]] = []
_PREV_SIGTERM = None


def _cleanup_live_stores() -> None:
    """Close (and thus unlink) every still-open store; never raises."""
    for store in list(_LIVE_STORES):
        try:
            store.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass


def _sigterm_handler(signum: int, frame: object) -> None:  # pragma: no cover - signal path
    for callback in reversed(list(_SIGTERM_CALLBACKS)):
        try:
            callback()
        except Exception:
            pass  # teardown must keep going
    previous = _PREV_SIGTERM
    if callable(previous):
        previous(signum, frame)
    elif previous is signal.SIG_IGN:
        return
    else:
        # Preserve kill-by-SIGTERM exit semantics for supervisors.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        os.kill(os.getpid(), signal.SIGTERM)


def on_sigterm(callback: Callable[[], None]) -> Callable[[], None]:
    """Register ``callback`` on the process-wide chained SIGTERM handler.

    Callbacks run newest-first when SIGTERM arrives, after which the
    previously installed handler (or the default kill disposition) takes
    over.  The first registration installs the master handler, capturing
    any pre-existing handler so it still runs.  Forked children inherit
    the handler and the callback list — callbacks that must only act in
    their creating process have to guard on ``os.getpid()`` themselves
    (the shm cleanup does, via each store's owner PID).

    Returns ``callback`` unchanged, so it can be used as a decorator.
    """
    global _HANDLER_INSTALLED, _PREV_SIGTERM
    with _CLEANUP_LOCK:
        if not _HANDLER_INSTALLED:
            try:
                _PREV_SIGTERM = signal.signal(signal.SIGTERM, _sigterm_handler)
            except ValueError:  # pragma: no cover - not the main thread
                _PREV_SIGTERM = None
            _HANDLER_INSTALLED = True
        _SIGTERM_CALLBACKS.append(callback)
    return callback


def remove_sigterm_callback(callback: Callable[[], None]) -> bool:
    """Deregister a callback added by :func:`on_sigterm` (True if found)."""
    with _CLEANUP_LOCK:
        try:
            _SIGTERM_CALLBACKS.remove(callback)
        except ValueError:
            return False
        return True


def _install_cleanup_handlers() -> None:
    global _CLEANUP_INSTALLED
    with _CLEANUP_LOCK:
        if _CLEANUP_INSTALLED:
            return
        atexit.register(_cleanup_live_stores)
        _CLEANUP_INSTALLED = True
    on_sigterm(_cleanup_live_stores)


@dataclass(frozen=True)
class TraceSpec:
    """Picklable handle for a shared-memory resident trace.

    This is all that crosses the process boundary: the OS-level segment
    name, the request count (the layout is a pure function of it and the
    ``with_plan`` flag), the trace's display name, and — when preparation
    columns are published — the trace fingerprint they belong to.
    """

    shm_name: str
    n_requests: int
    trace_name: str = "trace"
    with_plan: bool = False
    fingerprint: int = 0

    @property
    def nbytes(self) -> int:
        """Total block size for this spec's layout."""
        per_request = 41 if self.with_plan else 17
        return max(1, self.n_requests * per_request)


def _column_views(
    buf: memoryview, n: int, with_plan: bool = False
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(keys, sizes, ops) ndarray views over a shared buffer."""
    keys = np.ndarray((n,), dtype=np.int64, buffer=buf, offset=0)
    sizes = np.ndarray((n,), dtype=np.int64, buffer=buf, offset=8 * n)
    ops_offset = 40 * n if with_plan else 16 * n
    ops = np.ndarray((n,), dtype=np.int8, buffer=buf, offset=ops_offset)
    return keys, sizes, ops


def _plan_views(
    buf: memoryview, n: int
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(key_ids, prev_occurrence, hashes) views over a plan-layout buffer."""
    key_ids = np.ndarray((n,), dtype=np.int64, buffer=buf, offset=16 * n)
    prev = np.ndarray((n,), dtype=np.int64, buffer=buf, offset=24 * n)
    hashes = np.ndarray((n,), dtype=np.uint64, buffer=buf, offset=32 * n)
    return key_ids, prev, hashes


class SharedTraceStore:
    """Creator-side owner of a trace's shared-memory block.

    >>> store = SharedTraceStore(trace)        # copies columns in, once
    >>> store.spec                             # ships to workers (tiny)
    >>> store.view()                           # zero-copy Trace in-process
    >>> store.close()                          # release + unlink

    Usable as a context manager; ``close()`` is idempotent.
    """

    def __init__(self, trace: Trace, plan: Optional["TracePlan"] = None) -> None:
        n = len(trace)
        with_plan = plan is not None
        # Placeholder spec until the segment exists and has a name.
        self.spec = TraceSpec("", n, trace.name, with_plan=with_plan)
        self._shm = shared_memory.SharedMemory(
            create=True, size=self.spec.nbytes
        )
        self.spec = TraceSpec(
            self._shm.name,
            n,
            trace.name,
            with_plan=with_plan,
            fingerprint=plan.fingerprint if plan is not None else 0,
        )
        keys, sizes, ops = _column_views(self._shm.buf, n, with_plan)
        keys[:] = trace.keys
        sizes[:] = trace.sizes
        ops[:] = trace.ops
        if plan is not None:
            if plan.n_requests != n:
                raise ValueError("plan does not belong to this trace")
            plan.materialize()
            key_ids, prev, hashes = _plan_views(self._shm.buf, n)
            key_ids[:] = plan.key_ids
            prev[:] = plan.prev_occurrence
            hashes[:] = plan.hashes(0)
        self._views: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = (
            keys,
            sizes,
            ops,
        )
        self._closed = False
        # Forked pool workers inherit this object (and the SIGTERM cleanup
        # handler); only the creating process may unlink the segment.
        self._owner_pid = os.getpid()
        _install_cleanup_handlers()
        _LIVE_STORES.add(self)

    @property
    def n_requests(self) -> int:
        return self.spec.n_requests

    def view(self) -> Trace:
        """Zero-copy :class:`Trace` over the shared block (creator side)."""
        if self._closed or self._views is None:
            raise ValueError("store is closed")
        keys, sizes, ops = self._views
        return Trace(keys, sizes, ops, name=self.spec.trace_name)

    def close(self) -> None:
        """Release the mapping and unlink the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        _LIVE_STORES.discard(self)
        self._views = None
        self._shm.close()
        if os.getpid() != self._owner_pid:
            return  # inherited copy in a forked child: never unlink
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass

    def __enter__(self) -> "SharedTraceStore":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass


class AttachedTrace:
    """Worker-side zero-copy view of a :class:`SharedTraceStore`.

    Attach once per worker (pool initializer); the columns are ndarray
    views into the shared block, so no trace bytes are pickled or copied.
    ``columns_as_lists()`` additionally caches the one-time ``tolist()``
    conversion for simulators whose hot loops want Python ints (iterating
    an ndarray boxes a NumPy scalar per element, ~10x slower).
    """

    def __init__(self, spec: TraceSpec) -> None:
        self.spec = spec
        self._shm = shared_memory.SharedMemory(name=spec.shm_name)
        self._views: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]] = (
            _column_views(self._shm.buf, spec.n_requests, spec.with_plan)
        )
        self._lists: Optional[Tuple[List[int], List[int]]] = None
        self._plan: Optional[TracePlan] = None
        self._closed = False

    def _columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._views is None:
            raise ValueError("attached trace is closed")
        return self._views

    @property
    def keys(self) -> np.ndarray:
        return self._columns()[0]

    @property
    def sizes(self) -> np.ndarray:
        return self._columns()[1]

    @property
    def ops(self) -> np.ndarray:
        return self._columns()[2]

    def as_trace(self) -> Trace:
        """Zero-copy :class:`Trace` over the attached columns."""
        keys, sizes, ops = self._columns()
        return Trace(keys, sizes, ops, name=self.spec.trace_name)

    def columns_as_lists(self) -> Tuple[List[int], List[int]]:
        """(keys, sizes) as Python lists, converted once and cached."""
        if self._lists is None:
            keys, sizes, _ = self._columns()
            self._lists = (keys.tolist(), sizes.tolist())
        return self._lists

    def plan(self) -> TracePlan:
        """Zero-copy :class:`TracePlan` over the shared preparation columns.

        Only available when the creating store published a plan
        (``spec.with_plan``); the plan's eager columns are views into the
        shared block, so attaching it costs nothing per worker.
        """
        if not self.spec.with_plan:
            raise ValueError("store was created without a TracePlan")
        if self._plan is None:
            keys, _, _ = self._columns()
            key_ids, prev, hashes = _plan_views(
                self._shm.buf, self.spec.n_requests
            )
            self._plan = TracePlan.from_columns(
                keys,
                self.spec.fingerprint,
                key_ids=key_ids,
                prev=prev,
                hashes=hashes,
            )
        return self._plan

    def close(self) -> None:
        """Release this process's mapping (does not unlink)."""
        if self._closed:
            return
        self._closed = True
        self._views = None
        self._lists = None
        self._plan = None
        self._shm.close()

    def __enter__(self) -> "AttachedTrace":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
