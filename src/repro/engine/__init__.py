"""repro.engine — shared-memory parallel modeling engine.

Two pieces:

* :mod:`repro.engine.shm` — :class:`SharedTraceStore` /
  :class:`AttachedTrace`: trace columns mapped into worker processes via
  ``multiprocessing.shared_memory`` instead of being pickled per worker.
* :mod:`repro.engine.sweep` — :class:`ModelSweep`: evaluate a grid of
  (K, strategy, sampling-rate) KRR configurations across a process pool
  in one call, with per-configuration seeds derived up front so results
  are bit-identical regardless of worker count.

The ground-truth simulation sweep (:func:`repro.simulator.parallel_klru_mrc`)
runs on the same shared-memory store.
"""

from .shm import AttachedTrace, SharedTraceStore, TraceSpec
from .sweep import ModelSweep, SweepConfig, SweepResult, model_sweep

__all__ = [
    "AttachedTrace",
    "ModelSweep",
    "SharedTraceStore",
    "SweepConfig",
    "SweepResult",
    "TraceSpec",
    "model_sweep",
]
