"""repro.engine — shared-memory parallel modeling engine.

Five pieces:

* :mod:`repro.engine.plan` — :class:`TracePlan`: every trace-global
  preparation pass (batched hashes, sampling masks per rate, dense key
  factorization, occurrence indices) computed once, cached by trace
  fingerprint, and publishable as zero-copy shared-memory columns.

* :mod:`repro.engine.shm` — :class:`SharedTraceStore` /
  :class:`AttachedTrace`: trace columns mapped into worker processes via
  ``multiprocessing.shared_memory`` instead of being pickled per worker,
  with an atexit/SIGTERM registry that unlinks segments even when the
  parent dies mid-sweep.
* :mod:`repro.engine.runner` — :class:`ResilientRunner`: per-task
  timeouts, bounded retries with backoff, automatic pool rebuild on
  worker death, graceful degradation to serial execution, and a
  structured :class:`RunReport` for every run.
* :mod:`repro.engine.sweep` — :class:`ModelSweep`: evaluate a grid of
  (K, strategy, sampling-rate) KRR configurations across a process pool
  in one call, with per-configuration seeds derived up front so results
  are bit-identical regardless of worker count *or* recovery path, plus
  JSONL checkpoint/resume via :class:`SweepCheckpoint`.
* :mod:`repro.engine.fleet` — :class:`FleetSweep`: the transpose of
  :class:`ModelSweep` at scale — many traces × one config grid, each
  trace streamed out-of-core inside its worker, with hierarchical
  (fleet-manifest + per-trace JSONL) checkpoints resumable at both the
  trace and grid-cell level.
* :mod:`repro.engine.faults` — deterministic fault injection
  (``REPRO_FAULTS``) used by the tests to prove every recovery path.

The ground-truth simulation sweep (:func:`repro.simulator.parallel_klru_mrc`)
runs on the same shared-memory store and resilient runner.
"""

from .checkpoint import CheckpointMismatch, SweepCheckpoint
from .faults import FaultPlan, maybe_inject
from .fleet import FleetSweep, FleetTraceResult, fleet_sweep
from .plan import StreamingTracePlan, TracePlan, clear_plan_cache, trace_fingerprint
from .runner import (
    ResilientRunner,
    RunReport,
    TaskFailedError,
    TaskReport,
    TransientTaskError,
)
from .shm import (
    AttachedTrace,
    SharedTraceStore,
    TraceSpec,
    on_sigterm,
    remove_sigterm_callback,
)
from .sweep import ModelSweep, SweepConfig, SweepResult, model_sweep

__all__ = [
    "AttachedTrace",
    "CheckpointMismatch",
    "FaultPlan",
    "FleetSweep",
    "FleetTraceResult",
    "ModelSweep",
    "ResilientRunner",
    "RunReport",
    "SharedTraceStore",
    "SweepCheckpoint",
    "StreamingTracePlan",
    "SweepConfig",
    "SweepResult",
    "TaskFailedError",
    "TaskReport",
    "TracePlan",
    "TraceSpec",
    "TransientTaskError",
    "clear_plan_cache",
    "fleet_sweep",
    "maybe_inject",
    "model_sweep",
    "on_sigterm",
    "remove_sigterm_callback",
    "trace_fingerprint",
]
