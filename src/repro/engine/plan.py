"""TracePlan: all trace-global preparation, computed once and shared.

Every consumer of a trace repeats the same preparation: spatial sampling
hashes the key column, the batch kernels factorize keys and build
previous-occurrence indices, and a :class:`~repro.engine.sweep.ModelSweep`
does all of it once *per grid cell*.  :class:`TracePlan` hoists that work
to a single vectorized pass per trace:

* **hash columns** — batched ``splitmix64`` over the keys, one column per
  hash seed, from which every spatial-sampling mask is a single compare;
* **sampling masks/indices** — cached per ``(seed, modulus, threshold)``
  so a sweep with repeated rates filters each rate exactly once;
* **dense key factorization** — ``key_ids`` in ``[0, U)`` plus the unique
  key table;
* **occurrence indices** — previous/next-occurrence columns feeding the
  Olken batch kernel, and per-chunk first/last-occurrence masks for
  chunked passes.

Plans are cached by the trace's CRC32 fingerprint — the same fingerprint
:class:`~repro.engine.checkpoint.SweepCheckpoint` uses — so repeated
models over one trace (a sweep, a benchmark loop) hit the cache.  The
columns are plain ``int64``/``uint64`` arrays, which is what lets
:class:`~repro.engine.shm.SharedTraceStore` publish them zero-copy next
to the trace columns: every pool worker then *attaches* the finished
preparation instead of redoing it.

All fields are lazy: a plan built only for sampling never pays for the
factorization argsort, and vice versa.
"""

from __future__ import annotations

import zlib
from collections import OrderedDict
from typing import Dict, Optional, Tuple

import numpy as np

from ..kernels.prep import (
    chunk_occurrence_masks,
    factorize_keys,
    next_occurrence,
    prev_occurrence,
)
from ..sampling.hashing import splitmix64
from ..workloads.trace import Trace

__all__ = [
    "StreamingTracePlan",
    "TracePlan",
    "clear_plan_cache",
    "trace_fingerprint",
]


def trace_fingerprint(trace: Trace) -> int:
    """CRC32 over the trace columns — the engine-wide trace identity.

    The same value fingerprints sweep checkpoints
    (:meth:`~repro.engine.sweep.ModelSweep._signature`) and keys the plan
    cache, so "same fingerprint" means "same preparation applies".
    """
    crc = zlib.crc32(trace.keys.tobytes())
    crc = zlib.crc32(trace.sizes.tobytes(), crc)
    return zlib.crc32(trace.ops.tobytes(), crc)


class TracePlan:
    """Lazily-computed, shareable preparation for one trace's key column."""

    def __init__(self, keys: np.ndarray, fingerprint: int) -> None:
        self._keys = np.ascontiguousarray(keys, dtype=np.int64)
        self.fingerprint = int(fingerprint)
        self._hashes: Dict[int, np.ndarray] = {}
        self._sample_indices: Dict[Tuple[int, int, int], np.ndarray] = {}
        self._unique_keys: Optional[np.ndarray] = None
        self._key_ids: Optional[np.ndarray] = None
        self._prev: Optional[np.ndarray] = None
        self._next: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def for_trace(cls, trace: Trace) -> "TracePlan":
        """The cached plan for ``trace`` (built on first request)."""
        key = (trace_fingerprint(trace), len(trace))
        plan = _PLAN_CACHE.get(key)
        if plan is None:
            plan = cls(trace.keys, key[0])
            _PLAN_CACHE[key] = plan
            while len(_PLAN_CACHE) > _PLAN_CACHE_MAX:
                _PLAN_CACHE.popitem(last=False)
        else:
            _PLAN_CACHE.move_to_end(key)
        return plan

    @classmethod
    def from_columns(
        cls,
        keys: np.ndarray,
        fingerprint: int,
        *,
        key_ids: np.ndarray,
        prev: np.ndarray,
        hashes: np.ndarray,
        hash_seed: int = 0,
    ) -> "TracePlan":
        """Rehydrate a plan from precomputed (e.g. shared-memory) columns.

        The unique-key table is not shipped across processes; consumers
        that need it (none of the hot paths do) trigger a local rebuild.
        """
        plan = cls(keys, fingerprint)
        plan._key_ids = np.ascontiguousarray(key_ids, dtype=np.int64)
        plan._prev = np.ascontiguousarray(prev, dtype=np.int64)
        plan._hashes[int(hash_seed)] = np.ascontiguousarray(
            hashes, dtype=np.uint64
        )
        return plan

    # ------------------------------------------------------------------
    # lazy columns
    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        return int(self._keys.shape[0])

    @property
    def keys(self) -> np.ndarray:
        return self._keys

    def hashes(self, seed: int = 0) -> np.ndarray:
        """Batched ``splitmix64`` of the key column under ``seed``."""
        column = self._hashes.get(int(seed))
        if column is None:
            hashed = splitmix64(self._keys, int(seed))
            assert isinstance(hashed, np.ndarray)
            column = np.ascontiguousarray(hashed, dtype=np.uint64)
            self._hashes[int(seed)] = column
        return column

    @property
    def key_ids(self) -> np.ndarray:
        """Dense key ids in ``[0, n_unique_keys)``."""
        if self._key_ids is None:
            self._unique_keys, self._key_ids = factorize_keys(self._keys)
        return self._key_ids

    @property
    def unique_keys(self) -> np.ndarray:
        """Sorted distinct keys (``unique_keys[key_ids] == keys``)."""
        if self._unique_keys is None:
            self._unique_keys, self._key_ids = factorize_keys(self._keys)
        return self._unique_keys

    @property
    def n_unique_keys(self) -> int:
        if self._key_ids is not None and self._unique_keys is None:
            # Rehydrated from shared columns: the id range is the count.
            return int(self._key_ids.max()) + 1 if self.n_requests else 0
        return int(self.unique_keys.shape[0])

    @property
    def prev_occurrence(self) -> np.ndarray:
        """Previous same-key access index per request (-1 = cold)."""
        if self._prev is None:
            self._prev = prev_occurrence(self._keys)
        return self._prev

    @property
    def next_occurrence(self) -> np.ndarray:
        """Next same-key access index per request (``n_requests`` = last)."""
        if self._next is None:
            self._next = next_occurrence(self._keys)
        return self._next

    def chunk_masks(self, chunk_size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Per-chunk ``(first_in_chunk, last_in_chunk)`` occurrence masks."""
        return chunk_occurrence_masks(
            self.prev_occurrence, self.next_occurrence, chunk_size
        )

    # ------------------------------------------------------------------
    # spatial sampling
    # ------------------------------------------------------------------
    def sample_mask(
        self, threshold: int, modulus: int, seed: int = 0
    ) -> np.ndarray:
        """Boolean keep-mask for ``hash(key) mod modulus < threshold``.

        Identical to :meth:`repro.sampling.spatial.SpatialSampler.mask`
        for a sampler with the same parameters, but reuses the cached hash
        column instead of re-hashing the trace.
        """
        hashed = self.hashes(seed)
        mask = (hashed % np.uint64(modulus)) < np.uint64(threshold)
        assert isinstance(mask, np.ndarray)
        return mask

    def sample_indices(
        self, threshold: int, modulus: int, seed: int = 0
    ) -> np.ndarray:
        """Indices of sampled requests, cached per filter parameters."""
        cache_key = (int(seed), int(modulus), int(threshold))
        idx = self._sample_indices.get(cache_key)
        if idx is None:
            idx = np.flatnonzero(self.sample_mask(threshold, modulus, seed))
            self._sample_indices[cache_key] = idx
        return idx

    # ------------------------------------------------------------------
    def materialize(self) -> None:
        """Force the shareable columns (ids, prev, seed-0 hashes)."""
        _ = self.key_ids
        _ = self.prev_occurrence
        _ = self.hashes(0)


class StreamingTracePlan:
    """The out-of-core sibling of :class:`TracePlan`: per-chunk columns.

    A :class:`TracePlan` hoists whole-trace preparation; with a bounded-
    memory :class:`~repro.workloads.stream.TraceStream` the whole columns
    never exist, so the same preparation is computed *incrementally*:

    * :meth:`intern` — dense key ids assigned in first-seen order by a
      persistent dict, one vectorized unique-pass per chunk.  Id *values*
      differ from :attr:`TracePlan.key_ids` (sorted-table order) but the
      key<->id bijection is equivalent, which is all the SoA stacks need
      (distances depend on stack positions, not id values — see
      :meth:`~repro.stack.soa.SoAKRRStack.access_many_interned`).
    * :meth:`chunk_hashes` — per-chunk ``splitmix64`` columns, memoized
      per hash seed *for the current chunk only* so a grid with many
      cells sharing one sampler seed hashes each chunk once.  The hash is
      stateless per key, so chunked masks select exactly the rows a
      whole-column mask would.
    * :meth:`observe` — running request count and a chained CRC32
      fingerprint over the chunks (chunk-layout dependent; stable for
      replays of the same stream).
    """

    def __init__(self) -> None:
        self._ids: Dict[int, int] = {}
        self.n_requests = 0
        self.n_chunks = 0
        self.fingerprint = 0
        self._hash_chunk_id = -1
        self._hash_cache: Dict[int, np.ndarray] = {}

    @property
    def n_unique_keys(self) -> int:
        return len(self._ids)

    def observe(self, chunk: Trace) -> None:
        """Fold one chunk into the running counters and fingerprint."""
        crc = zlib.crc32(chunk.keys.tobytes(), self.fingerprint)
        crc = zlib.crc32(chunk.sizes.tobytes(), crc)
        self.fingerprint = zlib.crc32(chunk.ops.tobytes(), crc)
        self.n_requests += len(chunk)
        self.n_chunks += 1

    def intern(self, keys: np.ndarray) -> np.ndarray:
        """Dense first-seen ids for one chunk's key column (stateful)."""
        uniq, inverse = np.unique(keys, return_inverse=True)
        lut = np.empty(uniq.shape[0], dtype=np.int64)
        ids = self._ids
        for j, key in enumerate(uniq.tolist()):
            kid = ids.get(key)
            if kid is None:
                kid = len(ids)
                ids[key] = kid
            lut[j] = kid
        return np.ascontiguousarray(lut[inverse], dtype=np.int64)

    def chunk_hashes(self, keys: np.ndarray, seed: int = 0) -> np.ndarray:
        """``splitmix64`` of one chunk's keys, memoized for the current chunk.

        The memo is keyed by ``(chunk identity, seed)`` where chunk
        identity is the per-plan chunk counter — call :meth:`observe`
        *before* hashing a new chunk so the memo rolls over.
        """
        if self._hash_chunk_id != self.n_chunks:
            self._hash_cache.clear()
            self._hash_chunk_id = self.n_chunks
        column = self._hash_cache.get(int(seed))
        if column is None:
            hashed = splitmix64(keys, int(seed))
            assert isinstance(hashed, np.ndarray)
            column = np.ascontiguousarray(hashed, dtype=np.uint64)
            self._hash_cache[int(seed)] = column
        return column

    def chunk_sample_mask(
        self, keys: np.ndarray, threshold: int, modulus: int, seed: int = 0
    ) -> np.ndarray:
        """Per-chunk keep-mask, identical to the whole-column mask's rows."""
        hashed = self.chunk_hashes(keys, seed)
        mask = (hashed % np.uint64(modulus)) < np.uint64(threshold)
        assert isinstance(mask, np.ndarray)
        return mask


_PLAN_CACHE_MAX = 8
_PLAN_CACHE: "OrderedDict[Tuple[int, int], TracePlan]" = OrderedDict()


def clear_plan_cache() -> None:
    """Drop every cached plan (tests and memory-pressure hooks)."""
    _PLAN_CACHE.clear()
