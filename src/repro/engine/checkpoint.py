"""JSON-lines sweep checkpoints: stream finished rows, resume by skipping.

A multi-hour sweep that dies at config 47/48 should not redo the first
46.  :class:`SweepCheckpoint` appends each completed configuration as one
JSON line (flushed and fsynced, so a SIGKILL loses at most the row being
written) under a header that fingerprints the sweep — seed, config grid,
``max_size`` and a CRC of the trace columns.  On resume the header is
validated: a checkpoint from a *different* sweep raises
:class:`CheckpointMismatch` instead of silently splicing foreign rows
into the grid.

Bit-exactness: Python's ``json`` serializes floats via ``repr``, which
round-trips IEEE-754 doubles exactly, so resumed miss-ratio arrays are
bit-identical to freshly computed ones (the acceptance bar for resume).
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Dict, Tuple

import numpy as np

__all__ = [
    "CheckpointMismatch",
    "SweepCheckpoint",
]


#: A finished row in transit: ``(index, sizes, miss_ratios, unit, stats)``.
Row = Tuple[int, np.ndarray, np.ndarray, str, dict]


class CheckpointMismatch(ValueError):
    """The checkpoint on disk was written by a different sweep."""


def _fsync_dir(path: Path) -> None:
    """Persist a directory entry change (new checkpoint file) to disk."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class SweepCheckpoint:
    """Append-only JSONL checkpoint for one sweep signature.

    >>> ckpt = SweepCheckpoint(path, signature)
    >>> done = ckpt.load()          # {} for a fresh file; validates header
    >>> ckpt.append(row)            # called as each config completes
    """

    KIND = "repro-sweep-checkpoint"
    VERSION = 1

    def __init__(self, path: "str | os.PathLike[str]", signature: dict) -> None:
        self.path = Path(path)
        self.signature = signature
        self._header_written = False

    # ------------------------------------------------------------------
    def load(self) -> Dict[int, Row]:
        """Completed rows by grid index; ``{}`` when starting fresh.

        A torn *final* line (the previous run died mid-``append``) is
        expected crash debris: it is truncated off the file with a
        :class:`RuntimeWarning`, so subsequent appends continue from a
        clean record boundary.  A malformed line anywhere *else* means
        the file was corrupted after it was fsynced — that raises
        :class:`CheckpointMismatch` (as does a header that does not match
        this sweep's signature) instead of silently dropping rows.
        """
        if not self.path.exists() or self.path.stat().st_size == 0:
            return {}
        with self.path.open("rb") as fh:
            raw = fh.read()
        lines = raw.split(b"\n")
        # Byte offset where each line starts, for torn-tail truncation.
        offsets = [0]
        for line in lines[:-1]:
            offsets.append(offsets[-1] + len(line) + 1)
        try:
            header = json.loads(lines[0])
        except (json.JSONDecodeError, IndexError):
            raise CheckpointMismatch(
                f"{self.path}: not a sweep checkpoint (unreadable header)"
            )
        if (
            header.get("kind") != self.KIND
            or header.get("version") != self.VERSION
        ):
            raise CheckpointMismatch(
                f"{self.path}: not a v{self.VERSION} sweep checkpoint"
            )
        if header.get("signature") != self.signature:
            raise CheckpointMismatch(
                f"{self.path}: checkpoint was written by a different sweep "
                "(seed, config grid, max_size or trace changed) — delete it "
                "or point --checkpoint elsewhere"
            )
        self._header_written = True
        rows: Dict[int, Row] = {}
        last_data = max(
            (i for i in range(1, len(lines)) if lines[i].strip()), default=0
        )
        for i in range(1, len(lines)):
            line = lines[i].strip()
            if not line:
                continue
            try:
                d = json.loads(line)
            except json.JSONDecodeError:
                if i == last_data:
                    # Crash mid-append: drop the torn tail so the file ends
                    # on a record boundary again.
                    warnings.warn(
                        f"{self.path}: dropping torn final checkpoint line "
                        f"({len(raw) - offsets[i]} bytes) left by a crash "
                        "mid-append; resuming from the last complete row",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    with self.path.open("r+b") as fh:
                        fh.truncate(offsets[i])
                    break
                raise CheckpointMismatch(
                    f"{self.path}: corrupt checkpoint row {i} (not at the "
                    "tail, so this is not crash debris) — delete the file "
                    "or point --checkpoint elsewhere"
                )
            rows[int(d["index"])] = self._decode(d)
        return rows

    def append(self, row: Row) -> None:
        """Durably append one finished row (flush + fsync per line)."""
        index, sizes, miss_ratios, unit, stats = row
        record = {
            "index": int(index),
            "sizes": np.asarray(sizes).tolist(),
            "sizes_dtype": str(np.asarray(sizes).dtype),
            "miss_ratios": np.asarray(miss_ratios, dtype=np.float64).tolist(),
            "unit": unit,
            "stats": stats,
        }
        created = not self.path.exists()
        with self.path.open("a") as fh:
            if not self._header_written:
                if fh.tell() == 0:
                    header = {
                        "kind": self.KIND,
                        "version": self.VERSION,
                        "signature": self.signature,
                    }
                    fh.write(json.dumps(header) + "\n")
                self._header_written = True
            elif self._needs_newline():
                fh.write("\n")
            fh.write(json.dumps(record) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        if created:
            # The file's bytes are fsynced above, but its directory entry
            # is not: without a directory fsync a host crash can drop the
            # whole checkpoint file even though every row in it was synced.
            _fsync_dir(self.path.parent)

    # ------------------------------------------------------------------
    def _needs_newline(self) -> bool:
        """True when the file ends mid-line (previous run died writing)."""
        size = self.path.stat().st_size
        if size == 0:
            return False
        with self.path.open("rb") as fh:
            fh.seek(-1, os.SEEK_END)
            return fh.read(1) != b"\n"

    @staticmethod
    def _decode(d: dict) -> Row:
        sizes = np.asarray(d["sizes"], dtype=d.get("sizes_dtype", "float64"))
        ratios = np.asarray(d["miss_ratios"], dtype=np.float64)
        return (int(d["index"]), sizes, ratios, d["unit"], d["stats"])
