"""ModelSweep: evaluate a grid of KRR configurations in one parallel call.

Capacity planning rarely wants a single model: "what does the MRC look
like for K in {1, 2, 5, 10}, with and without spatial sampling?" is the
natural question, and each (K, strategy, rate) configuration is an
independent one-pass model over the same trace.  :class:`ModelSweep` fans
that grid out over a process pool with the trace mapped — not pickled —
into every worker via :class:`~repro.engine.shm.SharedTraceStore`.

Determinism: every configuration's model seed is derived *up front* from
the sweep seed via :class:`numpy.random.SeedSequence` spawning, indexed by
the configuration's position in the grid.  Worker count, scheduling order
and chunking therefore cannot change any result: ``max_workers=1`` and
``max_workers=8`` produce bit-identical miss-ratio grids — and so do the
fault-recovery paths (retry, pool rebuild, degradation to serial) taken by
the :class:`~repro.engine.runner.ResilientRunner` underneath
:meth:`ModelSweep.run`.

Fault tolerance: :meth:`ModelSweep.run_with_report` drives the grid
through the resilient runner (per-task timeout, bounded retries, pool
rebuild on worker death, serial fallback), streams each finished row to
an optional JSONL checkpoint for resume, and returns a structured
:class:`~repro.engine.runner.RunReport` next to the results.
"""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass
from itertools import product
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.model import KRRModel
from ..core.vkrr import spawn_seeds
from ..mrc.builder import from_points
from ..mrc.curve import MissRatioCurve
from ..workloads.trace import Trace
from .checkpoint import SweepCheckpoint
from .faults import maybe_inject
from .plan import TracePlan, trace_fingerprint
from .runner import ResilientRunner, RunReport, resolve_workers
from .shm import AttachedTrace, SharedTraceStore, TraceSpec

__all__ = [
    "ModelSweep",
    "SweepConfig",
    "SweepResult",
    "model_sweep",
]



@dataclass(frozen=True)
class SweepConfig:
    """One point of the sweep grid: a full KRR model configuration."""

    k: int = 5
    strategy: str = "backward"
    sampling_rate: Optional[float] = None
    correction: bool = True
    track_sizes: bool = False

    def label(self) -> str:
        rate = "full" if self.sampling_rate is None else f"R={self.sampling_rate:g}"
        return f"K={self.k}/{self.strategy}/{rate}"


@dataclass
class SweepResult:
    """One configuration's finished model: its curve points plus counters."""

    config: SweepConfig
    seed: int
    sizes: np.ndarray
    miss_ratios: np.ndarray
    unit: str = "objects"
    requests_seen: int = 0
    requests_sampled: int = 0
    cold_misses: int = 0
    stack_updates: int = 0
    swap_positions: int = 0

    def mrc(self) -> MissRatioCurve:
        return from_points(
            self.sizes, self.miss_ratios, unit=self.unit, label=self.config.label()
        )


# ----------------------------------------------------------------------
# Worker plumbing.  The trace reaches workers one of two ways: attached
# from shared memory (pool initializer) or installed directly (serial
# in-process path).  Either way `_model_one` reads the module global.
# ----------------------------------------------------------------------
_WORKER_TRACE: Optional[Trace] = None
_WORKER_ATTACHED: Optional[AttachedTrace] = None
_WORKER_PLAN: Optional[TracePlan] = None


def _init_sweep_worker(spec: TraceSpec) -> None:
    global _WORKER_TRACE, _WORKER_ATTACHED, _WORKER_PLAN
    _WORKER_ATTACHED = AttachedTrace(spec)
    _WORKER_TRACE = _WORKER_ATTACHED.as_trace()
    _WORKER_PLAN = _WORKER_ATTACHED.plan() if spec.with_plan else None


def _install_trace(
    trace: Optional[Trace], plan: Optional[TracePlan] = None
) -> None:
    global _WORKER_TRACE, _WORKER_ATTACHED, _WORKER_PLAN
    _WORKER_TRACE = trace
    _WORKER_ATTACHED = None
    _WORKER_PLAN = plan


def _model_one(
    args: Tuple[int, SweepConfig, int, Optional[int], str]
) -> Tuple[int, np.ndarray, np.ndarray, str, dict]:
    """Run one configuration against the worker's trace; return raw arrays."""
    index, config, seed, max_size, engine = args
    maybe_inject(index)
    trace = _WORKER_TRACE
    if trace is None:  # pragma: no cover - initializer contract violation
        raise RuntimeError("sweep worker has no trace installed")
    model = KRRModel(
        k=config.k,
        strategy=config.strategy,
        sampling_rate=config.sampling_rate,
        correction=config.correction,
        track_sizes=config.track_sizes,
        seed=seed,
    )
    result = model.process(trace, plan=_WORKER_PLAN, engine=engine)
    if config.track_sizes:
        curve = result.byte_mrc()
        unit = "bytes"
    else:
        curve = result.mrc(max_size=max_size)
        unit = "objects"
    s = model.stats
    stats = {
        "requests_seen": s.requests_seen,
        "requests_sampled": s.requests_sampled,
        "cold_misses": s.cold_misses,
        "stack_updates": s.stack_updates,
        "swap_positions": s.swap_positions,
    }
    return index, curve.sizes, curve.miss_ratios, unit, stats


def _model_batch(
    payloads: Tuple[Tuple[int, SweepConfig, int, Optional[int], str], ...]
) -> List[Tuple[int, np.ndarray, np.ndarray, str, dict]]:
    """Run several grid cells in one worker round-trip (task batching).

    Each cell still goes through :func:`_model_one` with its own
    position-derived seed, so batching changes scheduling only — never
    results.  Fewer, larger tasks amortize the submit/result IPC that
    dominates small sweeps.
    """
    return [_model_one(payload) for payload in payloads]


class ModelSweep:
    """A grid of KRR configurations evaluated over one trace.

    Parameters
    ----------
    configs:
        The grid points; build cross-products with :meth:`grid`.
    seed:
        Sweep-level seed.  Per-configuration model seeds are spawned from
        it by grid position, so results are independent of worker count.

    Example
    -------
    >>> sweep = ModelSweep.grid(ks=[1, 5], sampling_rates=[None, 0.01])
    >>> results = sweep.run(trace, max_workers=4)
    >>> results[0].config, float(results[0].miss_ratios[-1])  # doctest: +SKIP
    """

    def __init__(self, configs: Sequence[SweepConfig], seed: int = 0) -> None:
        self.configs: List[SweepConfig] = list(configs)
        if not self.configs:
            raise ValueError("need at least one SweepConfig")
        self.seed = int(seed)

    @classmethod
    def grid(
        cls,
        ks: Iterable[int],
        strategies: Iterable[str] = ("backward",),
        sampling_rates: Iterable[Optional[float]] = (None,),
        correction: bool = True,
        track_sizes: bool = False,
        seed: int = 0,
    ) -> "ModelSweep":
        """Cross-product grid over K values, strategies and sampling rates."""
        configs = [
            SweepConfig(
                k=int(k),
                strategy=s,
                sampling_rate=r,
                correction=correction,
                track_sizes=track_sizes,
            )
            for k, s, r in product(ks, strategies, sampling_rates)
        ]
        return cls(configs, seed=seed)

    def __len__(self) -> int:
        return len(self.configs)

    def config_seeds(self) -> List[int]:
        """Per-configuration model seeds, fixed by grid position.

        Delegates to :func:`repro.core.vkrr.spawn_seeds` — the shared
        derivation — so a :class:`~repro.core.vkrr.MultiKRR` grid over the
        same configuration list draws identical per-cell streams.
        """
        return spawn_seeds(len(self.configs), self.seed)

    def run(
        self,
        trace: Trace,
        max_workers: Optional[int] = None,
        max_size: Optional[int] = None,
        **runner_kwargs: object,
    ) -> List[SweepResult]:
        """Evaluate every configuration; results ordered like ``configs``.

        ``max_workers=None`` uses ``min(len(configs), cpu_count)``;
        ``max_workers=1`` runs serially in-process (no pool, no shared
        memory).  Either way the miss-ratio grids are bit-identical.
        Keyword arguments (``task_timeout``, ``retries``, ``checkpoint``,
        ``engine``, ...) are forwarded to :meth:`run_with_report`.
        """
        results, _ = self.run_with_report(
            trace, max_workers=max_workers, max_size=max_size, **runner_kwargs
        )
        return results

    def run_with_report(
        self,
        trace: Trace,
        max_workers: Optional[int] = None,
        max_size: Optional[int] = None,
        *,
        task_timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.5,
        max_pool_rebuilds: int = 3,
        checkpoint: Union[str, Path, None] = None,
        chunk_size: Union[None, int, str] = None,
        engine: str = "auto",
    ) -> Tuple[List[SweepResult], RunReport]:
        """Fault-tolerant evaluation: ``(results, RunReport)``.

        The grid runs through a :class:`ResilientRunner`: each task gets
        its own ``submit()`` with an optional ``task_timeout`` deadline,
        transient failures retry up to ``retries`` times with exponential
        ``backoff``, a dead pool is rebuilt up to ``max_pool_rebuilds``
        times and then the remaining configs run serially in-process
        (with a :class:`RuntimeWarning`).  None of it can change results:
        per-config seeds are fixed by grid position.

        ``chunk_size`` batches several grid cells into one pool task
        (``"auto"`` spreads the remaining cells evenly over the workers).
        Small sweeps of cheap configs are dominated by per-task IPC — the
        measured source of the parallel-slower-than-serial regression on
        low-core machines — and batching amortizes it.  Results are
        bit-identical for every ``chunk_size``/worker combination because
        each cell's seed is fixed by grid position; ``chunk_size`` does
        not enter the checkpoint signature, so a resume may freely change
        it.  ``None``/``1`` keeps the one-task-per-config schedule (finest
        timeout/retry granularity).

        When any configuration uses spatial sampling, the trace's
        :class:`TracePlan` (batched hash column, per-rate sampled-index
        cache) is built once and shared with every worker through the
        shared-memory store, so no grid cell re-hashes the trace.

        ``checkpoint`` names a JSON-lines file: finished rows stream to it
        as they complete, and a rerun with the same sweep/trace skips the
        grid positions already on disk (resume).

        ``engine`` selects each cell's streaming implementation
        (``"scalar"``, ``"soa"``, or ``"auto"``; see
        :meth:`KRRModel.process`).  Like ``chunk_size`` it cannot change
        results — both engines are draw-for-draw identical — so it is
        absent from the checkpoint signature and a resume may switch it.
        """
        if engine not in ("auto", "scalar", "soa"):
            raise ValueError(f"unknown engine {engine!r}")
        seeds = self.config_seeds()
        tasks: List[Tuple[int, SweepConfig, int, Optional[int], str]] = [
            (i, cfg, seeds[i], max_size, engine)
            for i, cfg in enumerate(self.configs)
        ]

        ckpt: Optional[SweepCheckpoint] = None
        completed: dict = {}
        if checkpoint is not None:
            ckpt = SweepCheckpoint(
                checkpoint, self._signature(trace, max_size)
            )
            completed = ckpt.load()

        # One preparation pass for the whole grid: any sampling config
        # makes the shared hash column worth building.
        plan: Optional[TracePlan] = None
        if any(cfg.sampling_rate is not None for cfg in self.configs):
            plan = TracePlan.for_trace(trace)

        remaining = len(tasks) - len(completed)
        workers = resolve_workers(max_workers, remaining)
        chunk = self._resolve_chunk_size(chunk_size, remaining, workers)
        runner = ResilientRunner(
            _model_one if chunk <= 1 else _model_batch,
            max_workers=workers,
            initializer=_init_sweep_worker,
            serial_setup=lambda: _install_trace(trace, plan),
            serial_teardown=lambda: _install_trace(None),
            task_timeout=task_timeout,
            retries=retries,
            backoff=backoff,
            max_pool_rebuilds=max_pool_rebuilds,
        )
        if chunk <= 1:
            on_result = (lambda i, row: ckpt.append(row)) if ckpt else None
            pool_tasks: Sequence[object] = tasks
            pool_completed = completed
        else:
            on_result = (
                (lambda i, rows: [ckpt.append(r) for r in rows])
                if ckpt
                else None
            )
            todo = [t for t in tasks if t[0] not in completed]
            pool_tasks = [
                tuple(todo[j : j + chunk]) for j in range(0, len(todo), chunk)
            ]
            pool_completed = {}
        n_pool_tasks = len(pool_tasks) - len(pool_completed)
        if workers > 1 and n_pool_tasks > 1:
            with SharedTraceStore(trace, plan=plan) as store:
                runner.initargs = (store.spec,)
                rows, report = runner.run(
                    pool_tasks, completed=pool_completed, on_result=on_result
                )
        else:
            rows, report = runner.run(
                pool_tasks, completed=pool_completed, on_result=on_result
            )
        if chunk > 1:
            # Flatten chunk results and splice the resumed rows back in;
            # the report's task entries describe chunk tasks, so surface
            # the resumed-config count explicitly.
            by_index = dict(completed)
            for batch in rows:
                for row in batch:
                    by_index[row[0]] = row
            rows = [by_index[i] for i in range(len(tasks))]
            report.from_checkpoint = len(completed)
        results = [
            SweepResult(
                config=self.configs[i],
                seed=seeds[i],
                sizes=np.asarray(sizes),
                miss_ratios=np.asarray(ratios),
                unit=unit,
                **stats,
            )
            for i, sizes, ratios, unit, stats in rows
        ]
        return results, report

    @staticmethod
    def _resolve_chunk_size(
        chunk_size: Union[None, int, str], remaining: int, workers: int
    ) -> int:
        """Effective cells-per-task: ``None``/1 -> 1, ``"auto"`` -> even split.

        ``"auto"`` divides the remaining cells over the *usable* workers —
        the requested count capped at the CPU count, because processes
        beyond the core count add context-switching without parallelism
        (the measured source of the small-sweep regression).  On a
        one-core machine the whole grid therefore collapses into a single
        in-process batch, which is the throughput-optimal schedule there.
        """
        if chunk_size is None:
            return 1
        if chunk_size == "auto":
            usable = min(workers, os.cpu_count() or 1)
            if usable <= 1 or remaining <= usable:
                return max(1, remaining)
            return -(-remaining // usable)  # ceil division
        size = int(chunk_size)
        if size < 1:
            raise ValueError("chunk_size must be >= 1 (or 'auto')")
        return size

    def _signature(self, trace: Trace, max_size: Optional[int]) -> dict:
        """Checkpoint fingerprint: the sweep, its inputs, and the trace.

        ``chunk_size`` and worker count are deliberately absent — they
        cannot change results, so a resume may change them freely.
        """
        crc = trace_fingerprint(trace)
        return {
            "sweep_seed": self.seed,
            "max_size": max_size,
            "configs": [asdict(c) for c in self.configs],
            "trace": {
                "n": len(trace),
                "name": trace.name,
                "crc32": crc,
            },
        }


def model_sweep(
    trace: Trace,
    ks: Iterable[int],
    strategies: Iterable[str] = ("backward",),
    sampling_rates: Iterable[Optional[float]] = (None,),
    seed: int = 0,
    max_workers: Optional[int] = None,
    max_size: Optional[int] = None,
    **grid_kwargs: object,
) -> List[SweepResult]:
    """Convenience: build a grid sweep and run it in one call."""
    sweep = ModelSweep.grid(
        ks,
        strategies=strategies,
        sampling_rates=sampling_rates,
        seed=seed,
        **grid_kwargs,
    )
    return sweep.run(trace, max_workers=max_workers, max_size=max_size)
