"""Resilient task execution: retries, timeouts, pool rebuild, serial fallback.

``ProcessPoolExecutor.map`` is all-or-nothing: one OOM-killed or
segfaulting worker raises :class:`BrokenProcessPool` and discards every
finished task, and a hung worker wedges the whole sweep.  At multi-hour
grid sizes that is unacceptable.  :class:`ResilientRunner` replaces the
bare ``map`` with per-task ``submit()`` plus:

* **per-task timeout** — a task that exceeds ``task_timeout`` seconds is
  declared hung; the pool's workers are terminated (a running task cannot
  be cancelled any other way), the pool is rebuilt, and the task retried;
* **bounded retry with exponential backoff** — exceptions in
  ``retryable`` (by default :class:`TransientTaskError`, :class:`OSError`,
  :class:`MemoryError`) are retried up to ``retries`` times per task;
  anything else fails fast with :class:`TaskFailedError`;
* **automatic pool rebuild** — on :class:`BrokenProcessPool` all in-flight
  tasks are requeued (no retry charge: the crash culprit is unknowable)
  and a fresh pool is built, bounded by ``max_pool_rebuilds``;
* **graceful degradation to serial** — when the pool keeps dying, the
  remaining tasks run in-process with a :class:`RuntimeWarning`, never a
  silent wrong answer (callers guarantee per-task determinism, so the
  execution path cannot change results).

Results stream through an ``on_result`` callback as they complete (the
checkpoint hook), already-completed tasks can be skipped via
``completed`` (the resume hook), and every run returns a structured
:class:`RunReport` (attempts, retries, timeouts, rebuilds, per-task wall
time) alongside the ordered results.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "ResilientRunner",
    "RunReport",
    "TaskFailedError",
    "TaskReport",
    "TransientTaskError",
    "resolve_workers",
]



class TransientTaskError(RuntimeError):
    """A worker failure worth retrying (I/O hiccup, injected fault, ...)."""


class TaskFailedError(RuntimeError):
    """A task exhausted its retry budget (or raised a non-retryable error).

    Carries the task ``index``, the ``attempts`` spent, the underlying
    ``cause`` and the partial :class:`RunReport` so callers (and the CLI)
    can show exactly what happened before the failure.
    """

    def __init__(
        self,
        index: int,
        attempts: int,
        cause: BaseException,
        report: Optional["RunReport"] = None,
    ) -> None:
        super().__init__(
            f"task {index} failed after {attempts} attempt(s): {cause!r}"
        )
        self.index = index
        self.attempts = attempts
        self.cause = cause
        self.report = report


@dataclass
class TaskReport:
    """Per-task accounting: how many tries it took and how long it ran."""

    index: int
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    wall_time: float = 0.0
    outcome: str = "pending"  # pending | ok | failed | from-checkpoint


@dataclass
class RunReport:
    """Structured outcome of one :meth:`ResilientRunner.run` call."""

    total_tasks: int
    mode: str = "pool"  # "pool" | "serial"
    completed: int = 0
    from_checkpoint: int = 0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    pool_rebuilds: int = 0
    degraded_to_serial: bool = False
    wall_time: float = 0.0
    tasks: List[TaskReport] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)


def resolve_workers(max_workers: Optional[int], n_tasks: int) -> int:
    """Effective worker count: ``None`` means ``min(n_tasks, cpu_count)``."""
    w = max_workers if max_workers is not None else (os.cpu_count() or 1)
    return max(1, min(int(w), max(1, n_tasks)))


_DEFAULT_RETRYABLE = (TransientTaskError, OSError, MemoryError)


class ResilientRunner:
    """Run picklable tasks through a process pool that survives its workers.

    Parameters
    ----------
    fn:
        Module-level worker function ``fn(payload) -> result``.
    max_workers:
        Pool size; ``<= 1`` runs everything serially in-process (using
        ``serial_setup``/``serial_teardown`` instead of the pool
        ``initializer``).
    initializer, initargs:
        Forwarded to every (re)built :class:`ProcessPoolExecutor`.
    serial_setup, serial_teardown:
        In-process equivalents of the pool initializer, used on the serial
        path and after degradation.
    task_timeout:
        Seconds a single task may run before its worker is killed and the
        task retried.  ``None`` disables the deadline (a hung worker then
        hangs the run — only safe for trusted workloads).
    retries:
        Extra attempts per task for retryable failures and timeouts.
    backoff, backoff_cap:
        Exponential backoff between retries: ``backoff * 2**(attempt-1)``
        seconds, capped at ``backoff_cap``.
    max_pool_rebuilds:
        Pool deaths tolerated before degrading to serial execution.
    retryable:
        Exception types retried instead of failing the run.
    """

    def __init__(
        self,
        fn: Callable[[Any], Any],
        *,
        max_workers: Optional[int] = None,
        initializer: Optional[Callable[..., None]] = None,
        initargs: Tuple[Any, ...] = (),
        serial_setup: Optional[Callable[[], None]] = None,
        serial_teardown: Optional[Callable[[], None]] = None,
        task_timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.5,
        backoff_cap: float = 30.0,
        max_pool_rebuilds: int = 3,
        retryable: Tuple["type[BaseException]", ...] = _DEFAULT_RETRYABLE,
    ) -> None:
        self.fn = fn
        self.max_workers = max_workers
        self.initializer = initializer
        self.initargs = initargs
        self.serial_setup = serial_setup
        self.serial_teardown = serial_teardown
        self.task_timeout = task_timeout
        self.retries = max(0, int(retries))
        self.backoff = float(backoff)
        self.backoff_cap = float(backoff_cap)
        self.max_pool_rebuilds = max(0, int(max_pool_rebuilds))
        self.retryable = retryable

    # ------------------------------------------------------------------
    def run(
        self,
        payloads: Sequence[Any],
        *,
        completed: Optional[Mapping[int, Any]] = None,
        on_result: Optional[Callable[[int, Any], None]] = None,
    ) -> Tuple[List[Any], RunReport]:
        """Execute every payload; returns ``(ordered results, report)``.

        ``completed`` maps payload indices to already-known results
        (checkpoint resume): those tasks are never executed, their results
        slot straight into the output.  ``on_result(index, result)`` fires
        in the parent process as each task finishes (checkpoint streaming).
        """
        n = len(payloads)
        report = RunReport(
            total_tasks=n, tasks=[TaskReport(i) for i in range(n)]
        )
        results: Dict[int, Any] = {}
        for i, value in (completed or {}).items():
            i = int(i)
            if not 0 <= i < n:
                raise IndexError(f"completed index {i} out of range 0..{n - 1}")
            results[i] = value
            report.tasks[i].outcome = "from-checkpoint"
        report.from_checkpoint = len(results)
        todo = [i for i in range(n) if i not in results]
        workers = resolve_workers(self.max_workers, len(todo))
        start = time.monotonic()
        try:
            if workers <= 1 or len(todo) <= 1:
                report.mode = "serial"
                self._run_serial(todo, payloads, results, report, on_result)
            else:
                report.mode = "pool"
                self._run_pool(
                    todo, payloads, results, report, on_result, workers
                )
        finally:
            report.wall_time = time.monotonic() - start
            report.completed = sum(
                1 for t in report.tasks if t.outcome == "ok"
            )
        return [results[i] for i in range(n)], report

    # ------------------------------------------------------------------
    # serial path (also the degradation target)
    # ------------------------------------------------------------------
    def _run_serial(
        self,
        todo: Sequence[int],
        payloads: Sequence[Any],
        results: Dict[int, Any],
        report: RunReport,
        on_result: Optional[Callable[[int, Any], None]],
    ) -> None:
        if not todo:
            return
        if self.serial_setup is not None:
            self.serial_setup()
        try:
            for i in todo:
                results[i] = self._serial_one(i, payloads[i], report)
                if on_result is not None:
                    on_result(i, results[i])
        finally:
            if self.serial_teardown is not None:
                self.serial_teardown()

    def _serial_one(self, i: int, payload: Any, report: RunReport) -> Any:
        tr = report.tasks[i]
        while True:
            tr.attempts += 1
            report.attempts += 1
            t0 = time.monotonic()
            try:
                result = self.fn(payload)
            except self.retryable as exc:
                if tr.attempts > self.retries:
                    tr.outcome = "failed"
                    raise TaskFailedError(i, tr.attempts, exc, report) from exc
                tr.retries += 1
                report.retries += 1
                self._sleep_backoff(tr.attempts)
                continue
            tr.wall_time = time.monotonic() - t0
            tr.outcome = "ok"
            return result

    # ------------------------------------------------------------------
    # pool path
    # ------------------------------------------------------------------
    def _run_pool(
        self,
        todo: Sequence[int],
        payloads: Sequence[Any],
        results: Dict[int, Any],
        report: RunReport,
        on_result: Optional[Callable[[int, Any], None]],
        workers: int,
    ) -> None:
        pending: Deque[int] = deque(todo)
        inflight: Dict[Future, Tuple[int, float]] = {}
        pool: Optional[ProcessPoolExecutor] = self._new_pool(workers)
        try:
            while pending or inflight:
                # Keep at most `workers` tasks in flight so a submit-time
                # deadline is a real start-time deadline.
                submit_broken = False
                while pending and len(inflight) < workers:
                    i = pending.popleft()
                    try:
                        fut = pool.submit(self.fn, payloads[i])
                    except (BrokenExecutor, RuntimeError):
                        pending.appendleft(i)
                        submit_broken = True
                        break
                    inflight[fut] = (i, time.monotonic())
                if submit_broken:
                    pool = self._rebuild_or_degrade(
                        pool, inflight, pending, report, workers
                    )
                    if pool is None:
                        self._run_serial(
                            list(pending), payloads, results, report, on_result
                        )
                        return
                    continue
                done, _ = wait(
                    set(inflight),
                    timeout=self._wait_timeout(inflight),
                    return_when=FIRST_COMPLETED,
                )
                pool_broken = False
                for fut in done:
                    i, t0 = inflight.pop(fut)
                    tr = report.tasks[i]
                    try:
                        result = fut.result()
                    except BrokenExecutor:
                        # The crash culprit is unknowable; requeue without a
                        # retry charge — max_pool_rebuilds bounds this loop.
                        pending.append(i)
                        pool_broken = True
                    except self.retryable as exc:
                        tr.attempts += 1
                        report.attempts += 1
                        if tr.attempts > self.retries:
                            tr.outcome = "failed"
                            raise TaskFailedError(
                                i, tr.attempts, exc, report
                            ) from exc
                        tr.retries += 1
                        report.retries += 1
                        self._sleep_backoff(tr.attempts)
                        pending.append(i)
                    except Exception as exc:
                        tr.attempts += 1
                        report.attempts += 1
                        tr.outcome = "failed"
                        raise TaskFailedError(
                            i, tr.attempts, exc, report
                        ) from exc
                    else:
                        tr.attempts += 1
                        report.attempts += 1
                        tr.wall_time = time.monotonic() - t0
                        tr.outcome = "ok"
                        results[i] = result
                        if on_result is not None:
                            on_result(i, result)
                expired = self._expired(inflight)
                if pool_broken or expired:
                    for fut in expired:
                        i, _ = inflight[fut]
                        tr = report.tasks[i]
                        tr.timeouts += 1
                        report.timeouts += 1
                        tr.attempts += 1
                        report.attempts += 1
                        if tr.attempts > self.retries:
                            tr.outcome = "failed"
                            raise TaskFailedError(
                                i,
                                tr.attempts,
                                TimeoutError(
                                    f"task {i} exceeded "
                                    f"{self.task_timeout}s deadline"
                                ),
                                report,
                            )
                        tr.retries += 1
                        report.retries += 1
                    pool = self._rebuild_or_degrade(
                        pool, inflight, pending, report, workers
                    )
                    if pool is None:
                        self._run_serial(
                            list(pending), payloads, results, report, on_result
                        )
                        return
        finally:
            if pool is not None:
                self._kill_pool(pool)

    def _expired(
        self, inflight: Dict[Future, Tuple[int, float]]
    ) -> List[Future]:
        if self.task_timeout is None:
            return []
        now = time.monotonic()
        return [
            fut
            for fut, (_, t0) in inflight.items()
            if not fut.done() and now - t0 >= self.task_timeout
        ]

    def _wait_timeout(
        self, inflight: Dict[Future, Tuple[int, float]]
    ) -> Optional[float]:
        if self.task_timeout is None:
            return None
        now = time.monotonic()
        nearest = min(
            t0 + self.task_timeout - now for _, t0 in inflight.values()
        )
        return max(0.05, nearest)

    def _rebuild_or_degrade(
        self,
        pool: Optional[ProcessPoolExecutor],
        inflight: Dict[Future, Tuple[int, float]],
        pending: "Deque[int]",
        report: RunReport,
        workers: int,
    ) -> Optional[ProcessPoolExecutor]:
        """Requeue in-flight work, kill the pool, and rebuild (or give up)."""
        for i, _ in inflight.values():
            pending.append(i)
        inflight.clear()
        self._kill_pool(pool)
        report.pool_rebuilds += 1
        if report.pool_rebuilds > self.max_pool_rebuilds:
            report.degraded_to_serial = True
            warnings.warn(
                f"process pool died {report.pool_rebuilds} times; degrading "
                "to serial in-process execution (results are unaffected: "
                "per-task seeds make every execution path bit-identical)",
                RuntimeWarning,
                stacklevel=4,
            )
            return None
        return self._new_pool(workers)

    def _new_pool(self, workers: int) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=self.initializer,
            initargs=self.initargs,
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Tear a pool down even when its workers are hung or dead.

        ``shutdown()`` alone never returns while a worker is stuck in a
        task, so the worker processes are terminated first (private
        ``_processes`` is the only handle the executor exposes).
        """
        procs_attr = getattr(pool, "_processes", None)
        procs = list(procs_attr.values()) if procs_attr else []
        for p in procs:
            try:
                p.terminate()
            except Exception:  # pragma: no cover - already dead
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - broken executor internals
            pass
        for p in procs:
            try:
                p.join(timeout=5)
            except Exception:  # pragma: no cover
                pass

    def _sleep_backoff(self, attempt: int) -> None:
        if self.backoff <= 0:
            return
        time.sleep(min(self.backoff * (2 ** (attempt - 1)), self.backoff_cap))
