"""FleetSweep: (trace × config-grid) scheduling at fleet scale.

:class:`~repro.engine.sweep.ModelSweep` parallelizes one trace across a
config grid; a capacity-planning fleet asks the transpose at scale:
*hundreds of traces*, each against the same grid, with any trace too big
to materialize.  :class:`FleetSweep` schedules one resilient task per
trace — each worker opens its trace as a bounded-memory
:class:`~repro.workloads.stream.TraceStream` and evaluates the whole
grid in at most two streaming passes:

* SoA-capable cells (``backward``/``linear``, object granularity) run as
  one streamed :class:`~repro.core.vkrr.MultiKRR` pass — every cell
  consumes each chunk while it is hot, sharing the incremental interner
  and per-chunk hash columns;
* the remaining scalar cells (``topdown``, ``track_sizes``) share a
  second pass, every model fed chunk by chunk.

**Hierarchical checkpoints.**  Under ``checkpoint_dir`` the fleet writes
a ``fleet.json`` manifest (validated on resume: seed, grid, trace list)
plus one per-trace :class:`~repro.engine.checkpoint.SweepCheckpoint`
JSONL file.  Resume works at both levels: traces whose checkpoint holds
every grid row are skipped in the parent without spawning a worker, and
a partially-finished trace re-runs only its missing cells — with
position-correct seeds via ``MultiKRR(seeds=...)``, so the resumed grid
is bit-identical to an uninterrupted run.

**Determinism.**  Per-trace grid seeds spawn from the fleet seed by
trace position, and per-cell seeds spawn from the trace's grid seed by
cell position — the same :func:`~repro.core.vkrr.spawn_seeds` derivation
the rest of the engine uses.  Worker count, scheduling order, chunk size
and crash/resume cannot change any result.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from itertools import product
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.model import KRRModel
from ..core.vkrr import MultiKRR, spawn_seeds
from ..stack.soa import SOA_STRATEGIES
from ..workloads.stream import DEFAULT_CHUNK, open_trace_stream
from ..workloads.trace import Trace
from .checkpoint import CheckpointMismatch, Row, SweepCheckpoint, _fsync_dir
from .faults import maybe_inject
from .runner import ResilientRunner, RunReport, resolve_workers
from .sweep import SweepConfig, SweepResult

__all__ = [
    "FleetSweep",
    "FleetTraceResult",
    "fleet_sweep",
]


MANIFEST_NAME = "fleet.json"
_MANIFEST_KIND = "repro-fleet-manifest"
_MANIFEST_VERSION = 1

#: One fleet worker payload: everything a trace task needs, picklable.
_Payload = Tuple[
    int,  # trace index
    object,  # source (path string or Trace)
    Tuple[SweepConfig, ...],
    int,  # per-trace grid seed
    Optional[int],  # max_size
    int,  # chunk_size
    Optional[str],  # per-trace checkpoint path
    Optional[dict],  # per-trace checkpoint signature
    str,  # CSV errors mode
]


@dataclass
class FleetTraceResult:
    """One trace's finished grid: ordered like the fleet's ``configs``."""

    index: int
    source: str
    results: List[SweepResult] = field(default_factory=list)
    resumed_cells: int = 0
    computed_cells: int = 0


def _source_label(source: object) -> str:
    """Stable string identity for a trace source (checkpoint signatures)."""
    if isinstance(source, Trace):
        return f"<trace:{source.name}:{len(source)}>"
    return str(source)


def _soa_capable(config: SweepConfig) -> bool:
    return config.strategy in SOA_STRATEGIES and not config.track_sizes


def _fleet_one(payload: _Payload) -> Tuple[int, List[Row], Dict[str, int]]:
    """Evaluate one trace's full grid inside a fleet worker.

    Loads the per-trace checkpoint first and computes only the missing
    cells, streaming the trace from disk; every fresh row is appended
    durably as soon as its pass completes, so a crash mid-trace loses at
    most the unfinished pass.
    """
    (
        index,
        source,
        configs,
        grid_seed,
        max_size,
        chunk_size,
        ckpt_path,
        signature,
        errors,
    ) = payload
    maybe_inject(index)
    ckpt: Optional[SweepCheckpoint] = None
    rows: Dict[int, Row] = {}
    if ckpt_path is not None:
        assert signature is not None
        ckpt = SweepCheckpoint(ckpt_path, signature)
        rows = ckpt.load()
    resumed = len(rows)
    seeds = spawn_seeds(len(configs), grid_seed)
    missing = [i for i in range(len(configs)) if i not in rows]
    if missing:
        stream = open_trace_stream(source, chunk_size, errors)
        soa_cells = [i for i in missing if _soa_capable(configs[i])]
        scalar_cells = [i for i in missing if not _soa_capable(configs[i])]
        if soa_cells:
            # One streamed pass evaluates every SoA cell; explicit seeds
            # keep each cell on its original grid position's stream even
            # when only a subset of the grid is missing (resume).
            grid = MultiKRR(
                [configs[i] for i in soa_cells],
                seeds=[seeds[i] for i in soa_cells],
            )
            for i, res in zip(soa_cells, grid.run(stream=stream, max_size=max_size)):
                row: Row = (
                    i,
                    res.sizes,
                    res.miss_ratios,
                    res.unit,
                    {
                        "requests_seen": res.requests_seen,
                        "requests_sampled": res.requests_sampled,
                        "cold_misses": res.cold_misses,
                        "stack_updates": res.stack_updates,
                        "swap_positions": res.swap_positions,
                    },
                )
                rows[i] = row
                if ckpt is not None:
                    ckpt.append(row)
        if scalar_cells:
            # The scalar cells share one more streamed pass: every model
            # consumes each chunk while it is hot.
            models = {
                i: KRRModel(
                    k=configs[i].k,
                    strategy=configs[i].strategy,
                    sampling_rate=configs[i].sampling_rate,
                    correction=configs[i].correction,
                    track_sizes=configs[i].track_sizes,
                    seed=seeds[i],
                )
                for i in scalar_cells
            }
            for chunk in stream:
                sizes = chunk.sizes.tolist()
                for model in models.values():
                    model.access_many(chunk.keys, sizes, engine="scalar")
            for i, model in models.items():
                if configs[i].track_sizes:
                    curve = model.byte_mrc()
                    unit = "bytes"
                else:
                    curve = model.mrc(max_size=max_size)
                    unit = "objects"
                s = model.stats
                row = (
                    i,
                    curve.sizes,
                    curve.miss_ratios,
                    unit,
                    {
                        "requests_seen": s.requests_seen,
                        "requests_sampled": s.requests_sampled,
                        "cold_misses": s.cold_misses,
                        "stack_updates": s.stack_updates,
                        "swap_positions": s.swap_positions,
                    },
                )
                rows[i] = row
                if ckpt is not None:
                    ckpt.append(row)
    ordered = [rows[i] for i in range(len(configs))]
    return index, ordered, {"resumed": resumed, "computed": len(missing)}


class FleetSweep:
    """A config grid evaluated against a fleet of traces.

    Parameters
    ----------
    configs:
        The grid applied to *every* trace; build cross-products with
        :meth:`grid`.
    seed:
        Fleet-level seed.  Per-trace grid seeds spawn from it by trace
        position, and per-cell seeds from those by cell position, so
        results are independent of worker count, scheduling, chunking
        and resume.
    """

    def __init__(self, configs: Sequence[SweepConfig], seed: int = 0) -> None:
        self.configs: List[SweepConfig] = list(configs)
        if not self.configs:
            raise ValueError("need at least one SweepConfig")
        self.seed = int(seed)

    @classmethod
    def grid(
        cls,
        ks: Iterable[int],
        strategies: Iterable[str] = ("backward",),
        sampling_rates: Iterable[Optional[float]] = (None,),
        correction: bool = True,
        track_sizes: bool = False,
        seed: int = 0,
    ) -> "FleetSweep":
        """Cross-product grid, same cell order as ``ModelSweep.grid``."""
        configs = [
            SweepConfig(
                k=int(k),
                strategy=s,
                sampling_rate=r,
                correction=correction,
                track_sizes=track_sizes,
            )
            for k, s, r in product(ks, strategies, sampling_rates)
        ]
        return cls(configs, seed=seed)

    def __len__(self) -> int:
        return len(self.configs)

    def trace_seeds(self, n_traces: int) -> List[int]:
        """Per-trace grid seeds, fixed by trace position in the fleet."""
        return spawn_seeds(n_traces, self.seed)

    # ------------------------------------------------------------------
    def run(
        self,
        sources: Sequence[Union[str, Path, Trace]],
        *,
        checkpoint_dir: Union[str, Path, None] = None,
        max_workers: Optional[int] = None,
        max_size: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK,
        task_timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.5,
        max_pool_rebuilds: int = 3,
        errors: str = "strict",
    ) -> Tuple[List[FleetTraceResult], RunReport]:
        """Evaluate the grid against every source; ordered like ``sources``.

        ``sources`` are trace *references* — file paths (``.csv``,
        ``.csv.gz``, ``.npz``, or a ``save_chunked`` directory) or
        in-memory :class:`Trace` objects.  Paths are opened inside each
        worker as bounded-memory streams, so the parent never holds a
        trace and a worker holds at most one chunk's columns (plus model
        state) at a time.

        ``checkpoint_dir`` enables hierarchical resume: a ``fleet.json``
        manifest validated against this fleet's signature, plus one
        JSONL checkpoint per trace.  Fully-checkpointed traces are
        skipped in the parent; partially-finished traces recompute only
        their missing cells.  ``chunk_size``, ``max_workers`` and
        timeout/retry knobs are absent from every signature — they
        cannot change results, so a resume may change them freely.
        """
        sources = list(sources)
        if not sources:
            raise ValueError("need at least one trace source")
        labels = [_source_label(s) for s in sources]
        if len(set(labels)) != len(labels):
            raise ValueError("duplicate trace sources in fleet")
        grid_seeds = self.trace_seeds(len(sources))

        ckpt_dir: Optional[Path] = None
        if checkpoint_dir is not None:
            ckpt_dir = Path(checkpoint_dir)
            ckpt_dir.mkdir(parents=True, exist_ok=True)
            self._ensure_manifest(ckpt_dir, labels, max_size)

        payloads: List[_Payload] = []
        for i, source in enumerate(sources):
            ckpt_path: Optional[str] = None
            signature: Optional[dict] = None
            if ckpt_dir is not None:
                ckpt_path = str(ckpt_dir / f"trace-{i:04d}.jsonl")
                signature = self._trace_signature(i, labels[i], max_size)
            payloads.append(
                (
                    i,
                    str(source) if isinstance(source, Path) else source,
                    tuple(self.configs),
                    grid_seeds[i],
                    max_size,
                    int(chunk_size),
                    ckpt_path,
                    signature,
                    errors,
                )
            )

        # Fleet-level resume: traces whose checkpoint already holds every
        # grid row never reach a worker (so crash-injection latches and
        # retry budgets are not re-spent on finished work).
        completed: Dict[int, Tuple[int, List[Row], Dict[str, int]]] = {}
        if ckpt_dir is not None:
            for i, payload in enumerate(payloads):
                assert payload[7] is not None
                ckpt = SweepCheckpoint(Path(payload[6] or ""), payload[7])
                rows = ckpt.load()
                if len(rows) == len(self.configs):
                    ordered = [rows[j] for j in range(len(self.configs))]
                    completed[i] = (
                        i,
                        ordered,
                        {"resumed": len(rows), "computed": 0},
                    )

        runner = ResilientRunner(
            _fleet_one,
            max_workers=resolve_workers(max_workers, len(payloads) - len(completed)),
            task_timeout=task_timeout,
            retries=retries,
            backoff=backoff,
            max_pool_rebuilds=max_pool_rebuilds,
        )
        raw, report = runner.run(payloads, completed=completed)

        results: List[FleetTraceResult] = []
        for i, (index, rows, counters) in enumerate(raw):
            seeds = spawn_seeds(len(self.configs), grid_seeds[i])
            trace_results = [
                SweepResult(
                    config=self.configs[j],
                    seed=seeds[j],
                    sizes=np.asarray(sizes),
                    miss_ratios=np.asarray(ratios),
                    unit=unit,
                    **stats,
                )
                for j, sizes, ratios, unit, stats in rows
            ]
            results.append(
                FleetTraceResult(
                    index=index,
                    source=labels[i],
                    results=trace_results,
                    resumed_cells=int(counters.get("resumed", 0)),
                    computed_cells=int(counters.get("computed", 0)),
                )
            )
        return results, report

    # ------------------------------------------------------------------
    def fleet_report(
        self, results: Sequence[FleetTraceResult], report: RunReport
    ) -> Dict[str, Any]:
        """Consolidated JSON-safe fleet report (the ``--report`` artifact)."""
        return {
            "kind": "repro-fleet-report",
            "version": 1,
            "fleet_seed": self.seed,
            "n_traces": len(results),
            "n_configs": len(self.configs),
            "configs": [asdict(c) for c in self.configs],
            "run": report.to_dict(),
            "traces": [
                {
                    "index": r.index,
                    "source": r.source,
                    "resumed_cells": r.resumed_cells,
                    "computed_cells": r.computed_cells,
                    "requests_seen": (
                        r.results[0].requests_seen if r.results else 0
                    ),
                    "final_miss_ratios": [
                        float(c.miss_ratios[-1]) if c.miss_ratios.size else None
                        for c in r.results
                    ],
                }
                for r in results
            ],
        }

    # ------------------------------------------------------------------
    def _signature(self, labels: Sequence[str], max_size: Optional[int]) -> dict:
        return {
            "fleet_seed": self.seed,
            "max_size": max_size,
            "configs": [asdict(c) for c in self.configs],
            "traces": list(labels),
        }

    def _trace_signature(
        self, index: int, label: str, max_size: Optional[int]
    ) -> dict:
        return {
            "fleet_seed": self.seed,
            "max_size": max_size,
            "configs": [asdict(c) for c in self.configs],
            "trace": {"index": index, "source": label},
        }

    def _ensure_manifest(
        self, ckpt_dir: Path, labels: Sequence[str], max_size: Optional[int]
    ) -> None:
        """Create the fleet manifest, or validate an existing one.

        A manifest written by a *different* fleet (other seed, grid,
        trace list or max_size) raises :class:`CheckpointMismatch`
        instead of silently splicing foreign per-trace checkpoints into
        this run's results.
        """
        manifest_path = ckpt_dir / MANIFEST_NAME
        expected = {
            "kind": _MANIFEST_KIND,
            "version": _MANIFEST_VERSION,
            "signature": self._signature(labels, max_size),
        }
        if manifest_path.exists():
            try:
                found = json.loads(manifest_path.read_text())
            except json.JSONDecodeError:
                raise CheckpointMismatch(
                    f"{manifest_path}: unreadable fleet manifest — delete the "
                    "checkpoint directory or point --checkpoint-dir elsewhere"
                )
            if found != expected:
                raise CheckpointMismatch(
                    f"{manifest_path}: checkpoint directory belongs to a "
                    "different fleet (seed, grid, trace list or max_size "
                    "changed) — delete it or point --checkpoint-dir elsewhere"
                )
            return
        tmp = manifest_path.with_suffix(".json.tmp")
        with tmp.open("w") as fh:
            fh.write(json.dumps(expected, indent=2) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(manifest_path)
        _fsync_dir(ckpt_dir)


def fleet_sweep(
    sources: Sequence[Union[str, Path, Trace]],
    ks: Iterable[int],
    strategies: Iterable[str] = ("backward",),
    sampling_rates: Iterable[Optional[float]] = (None,),
    seed: int = 0,
    **run_kwargs: Any,
) -> List[FleetTraceResult]:
    """Convenience: build a fleet grid and run it in one call."""
    fleet = FleetSweep.grid(
        ks, strategies=strategies, sampling_rates=sampling_rates, seed=seed
    )
    results, _ = fleet.run(sources, **run_kwargs)
    return results
