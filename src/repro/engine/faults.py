"""Deterministic fault injection for proving the runner's recovery paths.

Worker death, hangs and transient errors are impossible to unit-test
without a way to cause them on demand.  This module injects faults into
sweep/simulation workers, driven by the ``REPRO_FAULTS`` environment
variable (inherited by pool workers), so tests — and operators debugging
a flaky fleet — can script failures per grid position:

    REPRO_FAULTS="crash-once@2;state=/tmp/faults"     # task 2's worker dies once
    REPRO_FAULTS="hang-once@0:60;state=/tmp/faults"   # task 0 hangs 60s, once
    REPRO_FAULTS="flaky@1:2;state=/tmp/faults"        # task 1 raises twice
    REPRO_FAULTS="delay@ingest:50"                    # 50 ms ingest latency
    REPRO_FAULTS="crash-once@snapshot;state=/tmp/f"   # die mid-snapshot, once

Grammar: ``;``-separated clauses of ``mode@point[:arg]`` plus an optional
``state=<dir>`` naming the latch directory for one-shot semantics.  A
*fault point* is either a numeric task index (sweep/simulation workers
fire their grid position) or a name (the service daemon fires named
points such as ``ingest``, ``snapshot`` and ``query`` — see
``docs/SERVICE.md``); matching is by string equality, so ``crash@2``
only ever hits task 2 and ``crash@ingest`` only the ingest path.

Modes
-----
``crash@p`` / ``crash-once@p``
    ``os._exit(70)`` whenever / the first time point ``p`` fires.  Fires
    only in worker processes (``multiprocessing.parent_process()`` is
    set): these modes simulate *worker* death, so they are no-ops on the
    serial and degraded-to-serial paths — which is exactly what lets a
    crash-always fault demonstrate graceful degradation end to end.
``hang@p[:secs]`` / ``hang-once@p[:secs]``
    Sleep ``secs`` (default 300) in the worker, tripping the per-task
    timeout.  Worker-only, like ``crash``.
``flaky@p[:n]``
    Raise :class:`~repro.engine.runner.TransientTaskError` the first
    ``n`` times (default 1) point ``p`` fires, in any process.
``delay@p[:ms]`` / ``delay-once@p[:ms]``
    Sleep ``ms`` milliseconds (default 100) at point ``p``, in any
    process — latency injection for hang-*adjacent* paths (slow tenants,
    queue backpressure, watchdog grace) without parking a worker for
    minutes.  ``delay-once`` uses the same one-shot latch as the other
    ``-once`` modes.

One-shot bookkeeping must survive process death, so "has this fired?"
lives in latch files claimed with ``O_CREAT | O_EXCL`` (atomic across
processes) under the ``state=`` directory.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple

from .runner import TransientTaskError

__all__ = [
    "ENV_VAR",
    "FaultPlan",
    "maybe_inject",
]


ENV_VAR = "REPRO_FAULTS"

_MODES = (
    "crash",
    "crash-once",
    "hang",
    "hang-once",
    "flaky",
    "delay",
    "delay-once",
)


@dataclass(frozen=True)
class _Clause:
    mode: str
    #: Fault point: a task index ("2") or a named service point ("ingest").
    index: str
    arg: Optional[float]


@dataclass(frozen=True)
class FaultPlan:
    """A parsed ``REPRO_FAULTS`` spec; :meth:`fire` injects at a task index."""

    clauses: Tuple[_Clause, ...]
    state_dir: Optional[str] = None

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        clauses = []
        state_dir = None
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            if part.startswith("state="):
                state_dir = part[len("state="):]
                continue
            mode, sep, rest = part.partition("@")
            if not sep or mode not in _MODES:
                raise ValueError(
                    f"bad fault clause {part!r}: want mode@index[:arg] "
                    f"with mode in {_MODES}"
                )
            idx_s, _, arg_s = rest.partition(":")
            if not idx_s:
                raise ValueError(
                    f"bad fault clause {part!r}: missing fault point"
                )
            clauses.append(
                _Clause(mode, idx_s, float(arg_s) if arg_s else None)
            )
        return cls(tuple(clauses), state_dir)

    # ------------------------------------------------------------------
    def fire(self, index: "int | str") -> None:
        """Inject at fault point ``index`` (task number or service name)."""
        key = str(index)
        for clause in self.clauses:
            if clause.index == key:
                self._fire(clause)

    def _fire(self, c: _Clause) -> None:
        if c.mode == "flaky":
            limit = int(c.arg) if c.arg else 1
            if self._claim(f"flaky-{c.index}", limit):
                raise TransientTaskError(
                    f"injected transient failure (task {c.index})"
                )
            return
        # Latency injection fires in any process: slow paths exist on both
        # sides of the queue (ingest handler, worker drain, snapshot write).
        if c.mode == "delay":
            time.sleep((c.arg if c.arg is not None else 100.0) / 1000.0)
            return
        if c.mode == "delay-once":
            if self._claim(f"delay-{c.index}", 1):
                time.sleep((c.arg if c.arg is not None else 100.0) / 1000.0)
            return
        # crash/hang simulate *worker* death; never take down the parent.
        if multiprocessing.parent_process() is None:
            return
        if c.mode == "crash":
            os._exit(70)
        elif c.mode == "crash-once":
            if self._claim(f"crash-{c.index}", 1):
                os._exit(70)
        elif c.mode == "hang":
            time.sleep(c.arg if c.arg is not None else 300.0)
        elif c.mode == "hang-once":
            if self._claim(f"hang-{c.index}", 1):
                time.sleep(c.arg if c.arg is not None else 300.0)

    def _claim(self, tag: str, limit: int) -> bool:
        """Atomically claim one of ``limit`` tickets for ``tag``.

        Ticket files are created with ``O_CREAT | O_EXCL`` so exactly
        ``limit`` claims succeed across any number of processes.
        """
        state = Path(self.state_dir) if self.state_dir else _default_state_dir()
        state.mkdir(parents=True, exist_ok=True)
        for i in range(max(1, limit)):
            try:
                fd = os.open(
                    state / f"{tag}.{i}", os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                continue
            os.close(fd)
            return True
        return False


def _default_state_dir() -> Path:
    """Latch directory shared by the parent and its pool workers."""
    parent = multiprocessing.parent_process()
    root_pid = parent.pid if parent is not None else os.getpid()
    return Path(tempfile.gettempdir()) / f"repro-faults-{root_pid}"


_plan_cache: dict = {}


def maybe_inject(task_index: "int | str") -> None:
    """Inject any fault configured for ``task_index`` (no-op when unset).

    Workers call this at task start (grid position) and the service
    daemon at its named fault points; ``REPRO_FAULTS`` is read at call
    time so pool children (which inherit the environment) and the serial
    path see the same plan.
    """
    spec = os.environ.get(ENV_VAR)
    if not spec:
        return
    plan = _plan_cache.get(spec)
    if plan is None:
        plan = FaultPlan.parse(spec)
        _plan_cache[spec] = plan
    plan.fire(task_index)
