"""Histogram → MissRatioCurve constructors."""

from __future__ import annotations

import numpy as np

from ..stack.histogram import ByteDistanceHistogram, DistanceHistogram
from .curve import MissRatioCurve

__all__ = [
    "from_byte_histogram",
    "from_distance_histogram",
    "from_points",
]



def from_distance_histogram(
    hist: DistanceHistogram,
    max_size: int | None = None,
    label: str = "",
) -> MissRatioCurve:
    """Object-granularity MRC from a stack-distance histogram.

    Cache size 0 (always missing) is dropped from the grid so downstream
    interpolation starts at size 1.
    """
    sizes, ratios = hist.miss_ratio_curve(max_size=max_size)
    return MissRatioCurve(sizes[1:], ratios[1:], unit="objects", label=label)


def from_byte_histogram(
    hist: ByteDistanceHistogram,
    label: str = "",
) -> MissRatioCurve:
    """Byte-granularity MRC from a byte-distance histogram."""
    sizes, ratios = hist.miss_ratio_curve()
    # Size 0 means an empty cache: keep it out of the interpolation grid.
    if sizes[0] == 0 and sizes.shape[0] > 1:
        sizes, ratios = sizes[1:], ratios[1:]
    return MissRatioCurve(sizes, ratios, unit="bytes", label=label)


def from_points(
    sizes,
    miss_ratios,
    unit: str = "objects",
    label: str = "",
) -> MissRatioCurve:
    """MRC from explicit (size, ratio) points (e.g. simulation sweeps)."""
    return MissRatioCurve(
        np.asarray(sizes, dtype=np.float64),
        np.asarray(miss_ratios, dtype=np.float64),
        unit=unit,
        label=label,
    )
