"""Miss-ratio-curve toolkit: curves, builders, error metrics."""

from .builder import from_byte_histogram, from_distance_histogram, from_points
from .curve import MissRatioCurve, evaluation_grid
from .metrics import curve_gap, max_absolute_error, mean_absolute_error

__all__ = [
    "MissRatioCurve",
    "curve_gap",
    "evaluation_grid",
    "from_byte_histogram",
    "from_distance_histogram",
    "from_points",
    "max_absolute_error",
    "mean_absolute_error",
]
