"""Miss ratio curves: the library's central result object (§2.1).

A :class:`MissRatioCurve` maps cache sizes (objects or bytes) to miss
ratios.  Curves from different techniques live on different size grids, so
the class supports interpolated evaluation at arbitrary sizes, resampling
onto common grids, and monotone cleanup (an inclusion-property policy's true
MRC never increases with cache size; simulation noise can wiggle).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = [
    "MissRatioCurve",
    "evaluation_grid",
]



@dataclass(frozen=True)
class MissRatioCurve:
    """An MRC: parallel arrays of cache sizes and miss ratios.

    ``sizes`` must be non-negative and strictly increasing; ``miss_ratios``
    in [0, 1].  ``unit`` is ``"objects"`` or ``"bytes"`` (informational but
    compared in :func:`repro.mrc.metrics.mean_absolute_error` to prevent
    accidental cross-unit comparisons).  ``label`` names the producing
    technique in reports.
    """

    sizes: np.ndarray
    miss_ratios: np.ndarray
    unit: str = "objects"
    label: str = ""

    def __post_init__(self) -> None:
        sizes = np.asarray(self.sizes, dtype=np.float64)
        ratios = np.asarray(self.miss_ratios, dtype=np.float64)
        if sizes.ndim != 1 or sizes.shape != ratios.shape:
            raise ValueError("sizes and miss_ratios must be 1-D and parallel")
        if sizes.size == 0:
            raise ValueError("an MRC needs at least one point")
        if np.any(np.diff(sizes) <= 0):
            raise ValueError("sizes must be strictly increasing")
        if sizes[0] < 0:
            raise ValueError("sizes must be non-negative")
        if ratios.min() < -1e-9 or ratios.max() > 1 + 1e-9:
            raise ValueError("miss ratios must lie in [0, 1]")
        object.__setattr__(self, "sizes", sizes)
        object.__setattr__(self, "miss_ratios", np.clip(ratios, 0.0, 1.0))

    def __len__(self) -> int:
        return int(self.sizes.shape[0])

    def __call__(self, size) -> np.ndarray | float:
        """Miss ratio at cache size(s) ``size`` (linear interpolation).

        Sizes below the grid return the first ratio; above it, the last
        (MRCs flatten once the cache holds the working set).
        """
        return np.interp(size, self.sizes, self.miss_ratios)

    def resample(self, sizes: Sequence[float]) -> "MissRatioCurve":
        """This curve evaluated on a new size grid."""
        grid = np.asarray(sizes, dtype=np.float64)
        return MissRatioCurve(grid, self(grid), unit=self.unit, label=self.label)

    def enforce_monotone(self) -> "MissRatioCurve":
        """Non-increasing envelope (running minimum left to right)."""
        return MissRatioCurve(
            self.sizes,
            np.minimum.accumulate(self.miss_ratios),
            unit=self.unit,
            label=self.label,
        )

    def is_monotone(self, tol: float = 1e-12) -> bool:
        """True if miss ratio never increases with cache size."""
        return bool(np.all(np.diff(self.miss_ratios) <= tol))

    def max_size(self) -> float:
        return float(self.sizes[-1])

    def with_label(self, label: str) -> "MissRatioCurve":
        return MissRatioCurve(self.sizes, self.miss_ratios, self.unit, label)

    def to_rows(self) -> list[tuple[float, float]]:
        """(size, miss_ratio) rows — handy for printing experiment series."""
        return [(float(s), float(m)) for s, m in zip(self.sizes, self.miss_ratios)]


def evaluation_grid(max_size: float, n_points: int = 40, start: float | None = None) -> np.ndarray:
    """The paper's evaluation grid: ``n_points`` sizes evenly spread over
    the working set (§5.3 uses 40 sizes for accuracy, §5.5 uses 25)."""
    if max_size <= 0:
        raise ValueError("max_size must be positive")
    if n_points < 1:
        raise ValueError("n_points must be >= 1")
    lo = max_size / n_points if start is None else start
    return np.linspace(lo, max_size, n_points)
