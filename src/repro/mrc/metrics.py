"""MRC error metrics — the paper's MAE plus a few diagnostics."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .curve import MissRatioCurve

__all__ = [
    "curve_gap",
    "max_absolute_error",
    "mean_absolute_error",
]



def mean_absolute_error(
    actual: MissRatioCurve,
    predicted: MissRatioCurve,
    sizes: Sequence[float] | None = None,
) -> float:
    """The paper's MAE (§5.3): mean |actual - predicted| over cache sizes.

    By default the comparison grid is the *actual* curve's own sizes (the
    simulated cache sizes), matching "the mean of miss ratio differences
    across all simulated cache sizes".
    """
    if actual.unit != predicted.unit:
        raise ValueError(
            f"cannot compare MRCs with units {actual.unit!r} and {predicted.unit!r}"
        )
    grid = np.asarray(sizes, dtype=np.float64) if sizes is not None else actual.sizes
    return float(np.mean(np.abs(actual(grid) - predicted(grid))))


def max_absolute_error(
    actual: MissRatioCurve,
    predicted: MissRatioCurve,
    sizes: Sequence[float] | None = None,
) -> float:
    """Worst-case miss ratio gap over the comparison grid."""
    if actual.unit != predicted.unit:
        raise ValueError("unit mismatch")
    grid = np.asarray(sizes, dtype=np.float64) if sizes is not None else actual.sizes
    return float(np.max(np.abs(actual(grid) - predicted(grid))))


def curve_gap(a: MissRatioCurve, b: MissRatioCurve, n_points: int = 64) -> float:
    """Average gap between two curves over their shared size range.

    Used by the Type-A/Type-B classifier: the gap between the K=1 and
    exact-LRU MRCs is what separates the paper's two trace families.
    """
    if a.unit != b.unit:
        raise ValueError("unit mismatch")
    hi = min(a.max_size(), b.max_size())
    lo = hi / n_points
    grid = np.linspace(lo, hi, n_points)
    return float(np.mean(np.abs(a(grid) - b(grid))))
