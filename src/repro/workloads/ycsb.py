"""YCSB core-workload generators (Workloads C and E).

Reimplements the two Yahoo! Cloud Serving Benchmark workloads the paper
evaluates (§5.2):

* **Workload C** — 100% reads, keys drawn from a (scrambled) Zipfian
  distribution with configurable ``alpha``.
* **Workload E** — scan-dominant: each logical operation picks a *start key*
  from a Zipfian distribution and then scans a uniform-random number of
  consecutive keys.  Per the paper, the maximum scan length is configured to
  the number of distinct objects in the workload.

Both emit flat request :class:`~repro.workloads.trace.Trace` objects (a scan
of length L becomes L consecutive get requests).
"""

from __future__ import annotations

import numpy as np

from .._util import RngLike, check_positive, ensure_rng
from .trace import OP_GET, Trace
from .zipf import ScrambledZipfGenerator, ZipfGenerator


def workload_c(
    n_objects: int,
    n_requests: int,
    alpha: float = 0.99,
    object_size: int = 200,
    scrambled: bool = True,
    rng: RngLike = None,
    name: str | None = None,
) -> Trace:
    """YCSB Workload C: read-only Zipfian point lookups.

    Parameters mirror the paper's setup: ``alpha`` in {0.5, 0.99, 1.5} and a
    uniform 200-byte object size for the fixed-size experiments.
    """
    check_positive("n_objects", n_objects)
    check_positive("n_requests", n_requests)
    rng = ensure_rng(rng)
    gen = (
        ScrambledZipfGenerator(n_objects, alpha, rng)
        if scrambled
        else ZipfGenerator(n_objects, alpha, rng)
    )
    keys = gen.sample(n_requests)
    sizes = np.full(n_requests, int(object_size), dtype=np.int64)
    return Trace(keys, sizes, name=name or f"ycsb_C_a{alpha}")


def workload_e(
    n_objects: int,
    n_scans: int,
    alpha: float = 0.99,
    max_scan_length: int | None = None,
    object_size: int = 200,
    rng: RngLike = None,
    name: str | None = None,
) -> Trace:
    """YCSB Workload E: Zipfian start key + uniform-length forward scan.

    ``max_scan_length`` defaults to ``n_objects`` as in the paper's
    configuration ("the max scan length to be the same as the number of
    distinct objects").  Scans wrap around the key space so every scan has
    its full requested length.
    """
    check_positive("n_objects", n_objects)
    check_positive("n_scans", n_scans)
    rng = ensure_rng(rng)
    if max_scan_length is None:
        max_scan_length = n_objects
    if max_scan_length < 1:
        raise ValueError("max_scan_length must be >= 1")

    start_gen = ZipfGenerator(n_objects, alpha, rng)
    starts = start_gen.sample(n_scans)
    lengths = rng.integers(1, max_scan_length + 1, size=n_scans)

    total = int(lengths.sum())
    keys = np.empty(total, dtype=np.int64)
    pos = 0
    for s, length in zip(starts, lengths):
        li = int(length)
        run = np.arange(s, s + li, dtype=np.int64)
        np.mod(run, n_objects, out=run)
        keys[pos : pos + li] = run
        pos += li
    sizes = np.full(total, int(object_size), dtype=np.int64)
    return Trace(keys, sizes, name=name or f"ycsb_E_a{alpha}")


def paper_ycsb_suite(
    n_objects: int = 20_000,
    n_requests: int = 200_000,
    object_size: int = 200,
    seed: int = 7,
) -> list[Trace]:
    """The six YCSB traces used in §5.3: C and E, each at alpha 0.5/0.99/1.5.

    Sizes are scaled down from the paper's multi-million-object runs so that
    ground-truth simulation sweeps stay laptop-friendly; the MRC *structure*
    (skew, scan dominance) is parameter-identical.
    """
    traces: list[Trace] = []
    for i, alpha in enumerate((0.5, 0.99, 1.5)):
        traces.append(
            workload_c(
                n_objects, n_requests, alpha, object_size, rng=seed + i,
                name=f"ycsb_C_a{alpha}",
            )
        )
    for i, alpha in enumerate((0.5, 0.99, 1.5)):
        # A scan averages max_scan/2 requests; choose scan count to land near
        # n_requests total.  Cap max scan length for tractability.
        max_scan = min(n_objects, 2_000)
        n_scans = max(1, int(n_requests / (max_scan / 2)))
        traces.append(
            workload_e(
                n_objects, n_scans, alpha, max_scan, object_size,
                rng=seed + 10 + i, name=f"ycsb_E_a{alpha}",
            )
        )
    return traces
