"""MSR-Cambridge-like synthetic block I/O traces.

The paper evaluates on the 13-server MSR Cambridge suite plus a merged
"master" trace.  Those traces are not redistributable here, so this module
synthesizes block-I/O streams with the structural features that make the
MSR suite interesting for K-LRU modeling (documented in DESIGN.md):

* enterprise servers mix *skewed hotspots* (metadata, hot files) with
  *large sequential scans* (backup jobs, table scans) and *loops* (periodic
  re-reads) — exactly the patterns that open a gap between exact LRU and
  random-sampling LRU (the paper's "Type A" traces);
* other servers are dominated by smooth skewed reuse, where all K-LRU
  variants coincide ("Type B").

Each named preset is a deterministic recipe over the primitives in
:mod:`repro.workloads.patterns`.  Presets whose real counterparts the paper
plots as Type A (``src1``, ``src2``, ``web``, ``proj``) get scan/loop-heavy
recipes; ``usr`` and friends get smooth recipes (Type B).

Variable-size mode assigns each *object* a fixed block size drawn from a
mixture of common I/O sizes (4 KiB pages through 64 KiB multi-block reads),
matching the paper's rule of using "the block size from the first request to
each object as the object's size".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np

from .._util import RngLike, ensure_rng
from . import patterns
from .trace import Trace

#: Block sizes (bytes) and mixture weights for variable-size MSR objects.
_BLOCK_SIZES = np.array([4096, 8192, 16384, 32768, 65536], dtype=np.int64)
_BLOCK_WEIGHTS = np.array([0.45, 0.25, 0.15, 0.10, 0.05])


@dataclass(frozen=True)
class ServerRecipe:
    """A named synthetic server: key-stream builder + scale parameters."""

    name: str
    n_objects: int
    build: Callable[[int, int, np.random.Generator], np.ndarray]
    type_hint: str  # "A" or "B" — which family the paper's figure shows


def _recipe_scan_heavy(n_objects: int, n_requests: int, rng: np.random.Generator) -> np.ndarray:
    """Hotspot base + repeated large scans: strong LRU/K=1 gap (Type A)."""
    scan_len = n_objects // 2
    base = patterns.zipf_phase(n_objects // 2, n_requests // 2, 0.8, rng=rng)
    scans = patterns.sequential_scan(
        n_objects // 2, scan_len, repeat=max(1, (n_requests // 2) // scan_len)
    )[: n_requests - len(base)]
    return patterns.interleave_streams([base, scans], [0.55, 0.45], rng=rng)


def _recipe_loop_heavy(n_objects: int, n_requests: int, rng: np.random.Generator) -> np.ndarray:
    """Cyclic loop over a mid-size set + light noise (Type A, plateau MRC)."""
    loop_keys = np.arange(n_objects // 3, dtype=np.int64)
    lp = patterns.loop(loop_keys, (2 * n_requests) // 3)
    noise = patterns.uniform_random(
        n_objects - len(loop_keys), n_requests - len(lp),
        key_offset=len(loop_keys), rng=rng,
    )
    return patterns.interleave_streams([lp, noise], [0.7, 0.3], rng=rng)


def _recipe_phased(n_objects: int, n_requests: int, rng: np.random.Generator) -> np.ndarray:
    """Multi-scale loops + hotspot: a staircase MRC with sustained K-gap.

    Loops at several working-set scales put LRU-pathological plateaus across
    the whole size range (re-reference order equals recency order), which is
    exactly where random-sampling LRU with small K beats exact LRU — the
    Figure 1.1 fan of the real `web` trace.
    """
    loop_sets = [
        np.arange(int(n_objects * frac), dtype=np.int64)
        for frac in (0.25, 0.55, 0.9)
    ]
    passes = (4, 2, 1)
    segments: list[np.ndarray] = []
    produced = 0
    while produced < n_requests:
        for keys_set, n_pass in zip(loop_sets, passes):
            seg = patterns.loop(keys_set, n_pass * keys_set.shape[0])
            segments.append(seg)
            produced += seg.shape[0]
            # Short hot burst between phases (metadata traffic).
            burst = patterns.hotspot(n_objects, n_objects // 10, 0.02, 0.9, rng=rng)
            segments.append(burst)
            produced += burst.shape[0]
            if produced >= n_requests:
                break
    return patterns.mix_phases(segments)[:n_requests]


def _recipe_smooth(alpha: float):
    """Smooth scrambled-Zipf reuse: K-LRU ≈ LRU for every K (Type B)."""

    def build(n_objects: int, n_requests: int, rng: np.random.Generator) -> np.ndarray:
        return patterns.zipf_phase(n_objects, n_requests, alpha, rng=rng)

    return build


def _recipe_scan_plus_smooth(n_objects: int, n_requests: int, rng: np.random.Generator) -> np.ndarray:
    """Mostly smooth with a minority scan component (mild Type A)."""
    base = patterns.zipf_phase(n_objects, (3 * n_requests) // 4, 1.0, rng=rng)
    scan_len = n_objects // 4
    scans = patterns.sequential_scan(0, scan_len, repeat=max(1, (n_requests // 4) // scan_len))
    return patterns.interleave_streams([base, scans], [0.8, 0.2], rng=rng)


#: The 13 MSR server presets (names follow the real suite).
SERVERS: Dict[str, ServerRecipe] = {
    "src1": ServerRecipe("src1", 60_000, _recipe_scan_heavy, "A"),
    "src2": ServerRecipe("src2", 30_000, _recipe_loop_heavy, "A"),
    "web": ServerRecipe("web", 50_000, _recipe_phased, "A"),
    "proj": ServerRecipe("proj", 80_000, _recipe_scan_heavy, "A"),
    "hm": ServerRecipe("hm", 25_000, _recipe_scan_plus_smooth, "A"),
    "rsrch": ServerRecipe("rsrch", 15_000, _recipe_loop_heavy, "A"),
    "usr": ServerRecipe("usr", 70_000, _recipe_smooth(0.9), "B"),
    "prn": ServerRecipe("prn", 40_000, _recipe_smooth(0.7), "B"),
    "stg": ServerRecipe("stg", 35_000, _recipe_scan_plus_smooth, "A"),
    "ts": ServerRecipe("ts", 20_000, _recipe_smooth(1.1), "B"),
    "wdev": ServerRecipe("wdev", 18_000, _recipe_loop_heavy, "A"),
    "mds": ServerRecipe("mds", 28_000, _recipe_smooth(0.8), "B"),
    "prxy": ServerRecipe("prxy", 45_000, _recipe_phased, "A"),
}


def object_block_sizes(n_objects: int, rng: RngLike = None) -> np.ndarray:
    """Per-object fixed block sizes drawn from the common-I/O-size mixture."""
    rng = ensure_rng(rng)
    return rng.choice(_BLOCK_SIZES, size=n_objects, p=_BLOCK_WEIGHTS)


def make_trace(
    server: str,
    n_requests: int = 200_000,
    seed: int = 11,
    variable_size: bool = False,
    uniform_size: int = 200,
    scale: float = 1.0,
) -> Trace:
    """Build the synthetic trace for one named MSR server.

    Parameters
    ----------
    server:
        One of :data:`SERVERS` (e.g. ``"src1"``) — see module docstring.
    n_requests:
        Trace length.
    variable_size:
        If true, objects carry per-key block sizes (4–64 KiB mixture);
        otherwise every request uses ``uniform_size`` bytes (paper §5.3 uses
        200 B uniform objects).
    scale:
        Multiplier on the preset's object count (shrink for fast tests).
    """
    if server not in SERVERS:
        raise KeyError(f"unknown MSR server {server!r}; choose from {sorted(SERVERS)}")
    recipe = SERVERS[server]
    rng = ensure_rng(seed)
    n_objects = max(64, int(recipe.n_objects * scale))
    keys = recipe.build(n_objects, n_requests, rng)
    if keys.shape[0] < n_requests:
        # Recipes built from integer-ratio mixtures can come up short by a
        # fraction of one component; cycle the stream to the exact length.
        reps = -(-n_requests // keys.shape[0])
        keys = np.tile(keys, reps)
    keys = keys[:n_requests]
    if variable_size:
        per_obj = object_block_sizes(int(keys.max()) + 1, rng)
        sizes = per_obj[keys]
    else:
        sizes = np.full(keys.shape[0], int(uniform_size), dtype=np.int64)
    suffix = "var" if variable_size else f"uni{uniform_size}"
    return Trace(keys, sizes, name=f"msr_{server}_{suffix}")


def make_master_trace(
    n_requests_per_server: int = 40_000,
    seed: int = 13,
    variable_size: bool = False,
    scale: float = 0.35,
) -> Trace:
    """The merged "master" trace: all 13 servers randomly interleaved."""
    rng = ensure_rng(seed)
    traces = [
        make_trace(s, n_requests_per_server, seed + i, variable_size, scale=scale)
        for i, s in enumerate(sorted(SERVERS))
    ]
    return Trace.interleave(traces, rng=rng, name="msr_master")


def paper_msr_suite(
    n_requests: int = 150_000,
    seed: int = 11,
    variable_size: bool = False,
    scale: float = 0.4,
) -> list[Trace]:
    """All 13 MSR server traces at test-friendly scale."""
    return [
        make_trace(s, n_requests, seed + i, variable_size, scale=scale)
        for i, s in enumerate(sorted(SERVERS))
    ]
