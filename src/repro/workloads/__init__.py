"""Workload substrates: trace container, generators, persistence.

The paper evaluates on MSR Cambridge, YCSB and Twitter traces; this package
provides a shared :class:`~repro.workloads.trace.Trace` format plus
synthetic generators reproducing each suite's structure (see DESIGN.md §2
for the substitution rationale).
"""

from .trace import OP_DELETE, OP_GET, OP_SET, Request, Trace, reuse_times
from .stats import TraceProfile, estimate_zipf_alpha, profile_trace
from .stream import (
    ChunkedTraceReader,
    ShardCorruption,
    TraceStream,
    iter_chunks,
    iter_csv,
    iter_npz,
    open_trace_stream,
    save_chunked,
)
from .zipf import ScrambledZipfGenerator, ZipfGenerator, zipf_trace_keys
from . import io, msr, patterns, stats, stream, twitter, ycsb

__all__ = [
    "OP_DELETE",
    "OP_GET",
    "OP_SET",
    "ChunkedTraceReader",
    "Request",
    "ScrambledZipfGenerator",
    "ShardCorruption",
    "Trace",
    "TraceProfile",
    "TraceStream",
    "ZipfGenerator",
    "estimate_zipf_alpha",
    "iter_chunks",
    "iter_csv",
    "iter_npz",
    "open_trace_stream",
    "profile_trace",
    "save_chunked",
    "stats",
    "stream",
    "io",
    "msr",
    "patterns",
    "reuse_times",
    "twitter",
    "ycsb",
    "zipf_trace_keys",
]
