"""Trace container: a NumPy-backed stream of cache requests.

A :class:`Trace` holds three parallel columns — integer object keys, object
sizes in bytes, and operation codes — plus convenience statistics (working
set size, footprint).  All generators in :mod:`repro.workloads` produce
traces in this format and every model/simulator in the library consumes it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from .._util import RngLike, ensure_rng

__all__ = [
    "OP_DELETE",
    "OP_GET",
    "OP_SET",
    "Request",
    "Trace",
    "op_code",
    "op_name",
    "reuse_times",
]


#: Operation codes stored in :attr:`Trace.ops`.
OP_GET = 0
OP_SET = 1
OP_DELETE = 2

_OP_NAMES = {OP_GET: "get", OP_SET: "set", OP_DELETE: "delete"}
_OP_CODES = {v: k for k, v in _OP_NAMES.items()}


def op_name(code: int) -> str:
    """Human-readable name for an operation code."""
    return _OP_NAMES[int(code)]


def op_code(name: str) -> int:
    """Operation code for a human-readable name (``get``/``set``/``delete``)."""
    return _OP_CODES[name]


@dataclass
class Request:
    """A single cache request (row view into a :class:`Trace`)."""

    key: int
    size: int = 1
    op: int = OP_GET

    @property
    def op_name(self) -> str:
        return op_name(self.op)


class Trace:
    """An immutable sequence of cache requests backed by NumPy arrays.

    Parameters
    ----------
    keys:
        Integer object identifiers, one per request.
    sizes:
        Object sizes in bytes.  ``None`` means uniform size 1.
    ops:
        Operation codes (:data:`OP_GET` etc.).  ``None`` means all gets.
    name:
        Optional label used in reports and experiment tables.
    skipped_rows:
        Count of malformed input rows dropped by a lenient loader
        (:func:`repro.workloads.io.load_csv` with ``errors="skip"``).
    """

    __slots__ = ("keys", "sizes", "ops", "name", "skipped_rows", "_unique_cache")

    def __init__(
        self,
        keys: Sequence[int],
        sizes: Optional[Sequence[int]] = None,
        ops: Optional[Sequence[int]] = None,
        name: str = "trace",
        skipped_rows: int = 0,
    ) -> None:
        self.keys = np.ascontiguousarray(keys, dtype=np.int64)
        if self.keys.ndim != 1:
            raise ValueError("keys must be one-dimensional")
        n = self.keys.shape[0]
        if sizes is None:
            self.sizes = np.ones(n, dtype=np.int64)
        else:
            self.sizes = np.ascontiguousarray(sizes, dtype=np.int64)
            if self.sizes.shape != (n,):
                raise ValueError("sizes must match keys length")
            if n and self.sizes.min() < 1:
                raise ValueError("object sizes must be >= 1 byte")
        if ops is None:
            self.ops = np.zeros(n, dtype=np.int8)
        else:
            self.ops = np.ascontiguousarray(ops, dtype=np.int8)
            if self.ops.shape != (n,):
                raise ValueError("ops must match keys length")
        self.name = name
        # Rows a lenient loader dropped while building this trace (see
        # ``load_csv(errors="skip")``); 0 for cleanly constructed traces.
        self.skipped_rows = int(skipped_rows)
        self._unique_cache: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.keys.shape[0])

    def __iter__(self) -> Iterator[Request]:
        for i in range(len(self)):
            yield Request(int(self.keys[i]), int(self.sizes[i]), int(self.ops[i]))

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            return Trace(
                self.keys[idx], self.sizes[idx], self.ops[idx], name=self.name
            )
        i = int(idx)
        return Request(int(self.keys[i]), int(self.sizes[i]), int(self.ops[i]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Trace(name={self.name!r}, n={len(self)}, "
            f"unique={self.unique_objects()}, footprint={self.footprint_bytes()}B)"
        )

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def unique_keys(self) -> np.ndarray:
        """Sorted array of distinct keys referenced by the trace."""
        if self._unique_cache is None:
            self._unique_cache = np.unique(self.keys)
        return self._unique_cache

    def unique_objects(self) -> int:
        """Number of distinct objects (the paper's ``M``)."""
        return int(self.unique_keys().shape[0])

    def working_set_size(self) -> int:
        """Alias for :meth:`unique_objects` (object-granularity working set)."""
        return self.unique_objects()

    def footprint_bytes(self) -> int:
        """Total bytes of distinct objects, using each object's *last* size.

        This matches how a cache that stores the latest value for each key
        would fill up, and is the natural x-axis bound for byte-level MRCs.
        """
        if len(self) == 0:
            return 0
        # Last occurrence wins: iterate the reversed unique-index trick.
        rev_keys = self.keys[::-1]
        _, first_idx = np.unique(rev_keys, return_index=True)
        return int(self.sizes[::-1][first_idx].sum())

    def mean_object_size(self) -> float:
        """Mean size over distinct objects (last size per key)."""
        m = self.unique_objects()
        return self.footprint_bytes() / m if m else 0.0

    def is_uniform_size(self) -> bool:
        """True if all requests carry the same object size."""
        return len(self) == 0 or bool((self.sizes == self.sizes[0]).all())

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def with_uniform_size(self, size: int = 1, name: Optional[str] = None) -> "Trace":
        """Copy of the trace with every object forced to ``size`` bytes.

        The paper's fixed-size experiments (§5.3) convert every request to a
        uniform 200-byte get/set; this is that conversion.
        """
        return Trace(
            self.keys,
            np.full(len(self), int(size), dtype=np.int64),
            self.ops,
            name=name or f"{self.name}-uni{size}",
        )

    def head(self, n: int) -> "Trace":
        """First ``n`` requests (used for the 1M-request timing runs)."""
        return self[:n]

    @staticmethod
    def concat(traces: Sequence["Trace"], name: str = "merged") -> "Trace":
        """Concatenate traces back to back (sequential merge)."""
        if not traces:
            return Trace(np.empty(0, dtype=np.int64), name=name)
        return Trace(
            np.concatenate([t.keys for t in traces]),
            np.concatenate([t.sizes for t in traces]),
            np.concatenate([t.ops for t in traces]),
            name=name,
        )

    @staticmethod
    def interleave(
        traces: Sequence["Trace"],
        rng: RngLike = None,
        name: str = "master",
    ) -> "Trace":
        """Randomly interleave several traces into one "master" trace.

        Mirrors the merged MSR "master" workload used in §5.5/Table 5.4:
        requests from each server trace retain their relative order but the
        servers' streams are shuffled together.  Key spaces are disjointified
        by tagging each trace's keys with its index in the high bits.
        """
        rng = ensure_rng(rng)
        if not traces:
            return Trace(np.empty(0, dtype=np.int64), name=name)
        owner = np.concatenate(
            [np.full(len(t), i, dtype=np.int64) for i, t in enumerate(traces)]
        )
        order = rng.permutation(owner.shape[0])
        owner = owner[order]
        # Stable per-trace position: for each slot, which request of its trace.
        pos = np.zeros_like(owner)
        counters = np.zeros(len(traces), dtype=np.int64)
        for i, o in enumerate(owner):
            pos[i] = counters[o]
            counters[o] += 1
        keys = np.empty(owner.shape[0], dtype=np.int64)
        sizes = np.empty_like(keys)
        ops = np.empty(owner.shape[0], dtype=np.int8)
        for i, t in enumerate(traces):
            mask = owner == i
            keys[mask] = t.keys[pos[mask]] | (np.int64(i + 1) << 48)
            sizes[mask] = t.sizes[pos[mask]]
            ops[mask] = t.ops[pos[mask]]
        return Trace(keys, sizes, ops, name=name)


def reuse_times(trace: Trace) -> np.ndarray:
    """Per-request reuse time: requests since the previous access to the key.

    Cold (first) accesses get ``-1``.  This is the input distribution for the
    reuse-time based baselines (AET, StatStack) in :mod:`repro.baselines`.
    """
    last_seen: dict[int, int] = {}
    out = np.empty(len(trace), dtype=np.int64)
    keys = trace.keys
    for i in range(keys.shape[0]):
        k = int(keys[i])
        prev = last_seen.get(k)
        out[i] = -1 if prev is None else i - prev
        last_seen[k] = i
    return out
