"""Trace persistence: CSV (interchange) and NPZ (fast binary) formats.

CSV columns are ``key,size,op`` with a header row; ``op`` is the textual
name (``get``/``set``/``delete``).  NPZ stores the three arrays verbatim.

Real-world trace files are dirty: short rows, non-numeric keys, unknown
op names.  :func:`load_csv` defaults to ``errors="strict"`` (raise on the
first bad row) but accepts ``errors="skip"`` to drop malformed rows and
report the count on ``trace.skipped_rows`` — so one corrupt line does not
abort a multi-hour sweep over an otherwise good trace.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from .trace import Trace, op_code, op_name

PathLike = Union[str, Path]


def save_csv(trace: Trace, path: PathLike) -> None:
    """Write a trace to CSV (one request per row)."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["key", "size", "op"])
        for i in range(len(trace)):
            writer.writerow(
                [int(trace.keys[i]), int(trace.sizes[i]), op_name(int(trace.ops[i]))]
            )


def load_csv(
    path: PathLike, name: str | None = None, errors: str = "strict"
) -> Trace:
    """Read a trace written by :func:`save_csv` (or any key,size,op CSV).

    ``errors="strict"`` (default) raises on the first malformed row;
    ``errors="skip"`` drops malformed rows (short rows, non-integer
    fields, out-of-range values, unknown op names, sizes < 1) and reports
    the dropped count on the returned trace's ``skipped_rows``.
    """
    if errors not in ("strict", "skip"):
        raise ValueError(f"errors must be 'strict' or 'skip', got {errors!r}")
    path = Path(path)
    keys: list[int] = []
    sizes: list[int] = []
    ops: list[int] = []
    skipped = 0
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None:
            return Trace(np.empty(0, dtype=np.int64), name=name or path.stem)
        cols = {c.strip().lower(): i for i, c in enumerate(header)}
        if "key" not in cols:
            raise ValueError(f"{path}: CSV must have a 'key' column, got {header}")
        ki = cols["key"]
        si = cols.get("size")
        oi = cols.get("op")
        int64_min, int64_max = -(1 << 63), (1 << 63) - 1
        for row in reader:
            if not row:
                continue
            try:
                key = int(row[ki])
                size = int(row[si]) if si is not None else 1
                if not (int64_min <= key <= int64_max) or not (
                    int64_min <= size <= int64_max
                ):
                    raise ValueError(
                        f"{path}: key/size out of int64 range: {row!r}"
                    )
                if size < 1:
                    raise ValueError(
                        f"{path}: object sizes must be >= 1 byte: {row!r}"
                    )
                op = op_code(row[oi].strip().lower()) if oi is not None else 0
            except (ValueError, IndexError, KeyError):
                if errors == "strict":
                    raise
                skipped += 1
                continue
            keys.append(key)
            sizes.append(size)
            ops.append(op)
    return Trace(
        np.asarray(keys, dtype=np.int64),
        np.asarray(sizes, dtype=np.int64),
        np.asarray(ops, dtype=np.int8),
        name=name or path.stem,
        skipped_rows=skipped,
    )


def _npz_path(path: PathLike) -> Path:
    """Normalize to the ``.npz`` suffix numpy appends on save."""
    path = Path(path)
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


def save_npz(trace: Trace, path: PathLike) -> None:
    """Write a trace to compressed NPZ (fast, lossless).

    The ``.npz`` suffix is normalized up front (numpy appends it anyway),
    so ``save_npz(t, "foo")`` and ``load_npz("foo")`` round-trip.
    """
    np.savez_compressed(
        _npz_path(path), keys=trace.keys, sizes=trace.sizes, ops=trace.ops,
        name=np.array(trace.name),
    )


def load_npz(path: PathLike) -> Trace:
    """Read a trace written by :func:`save_npz` (suffix optional)."""
    p = Path(path)
    if not p.exists():
        p = _npz_path(p)
    with np.load(p, allow_pickle=False) as data:
        name = str(data["name"]) if "name" in data else p.stem
        return Trace(data["keys"], data["sizes"], data["ops"], name=name)
