"""Trace persistence: CSV (interchange) and NPZ (fast binary) formats.

CSV columns are ``key,size,op`` with a header row; ``op`` is the textual
name (``get``/``set``/``delete``).  NPZ stores the three arrays verbatim.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

import numpy as np

from .trace import Trace, op_code, op_name

PathLike = Union[str, Path]


def save_csv(trace: Trace, path: PathLike) -> None:
    """Write a trace to CSV (one request per row)."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["key", "size", "op"])
        for i in range(len(trace)):
            writer.writerow(
                [int(trace.keys[i]), int(trace.sizes[i]), op_name(int(trace.ops[i]))]
            )


def load_csv(path: PathLike, name: str | None = None) -> Trace:
    """Read a trace written by :func:`save_csv` (or any key,size,op CSV)."""
    path = Path(path)
    keys: list[int] = []
    sizes: list[int] = []
    ops: list[int] = []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None:
            return Trace(np.empty(0, dtype=np.int64), name=name or path.stem)
        cols = {c.strip().lower(): i for i, c in enumerate(header)}
        if "key" not in cols:
            raise ValueError(f"{path}: CSV must have a 'key' column, got {header}")
        ki = cols["key"]
        si = cols.get("size")
        oi = cols.get("op")
        int64_min, int64_max = -(1 << 63), (1 << 63) - 1
        for row in reader:
            if not row:
                continue
            key = int(row[ki])
            size = int(row[si]) if si is not None else 1
            if not (int64_min <= key <= int64_max) or not (
                int64_min <= size <= int64_max
            ):
                raise ValueError(
                    f"{path}: key/size out of int64 range: {row!r}"
                )
            keys.append(key)
            sizes.append(size)
            ops.append(op_code(row[oi].strip().lower()) if oi is not None else 0)
    return Trace(
        np.asarray(keys, dtype=np.int64),
        np.asarray(sizes, dtype=np.int64),
        np.asarray(ops, dtype=np.int8),
        name=name or path.stem,
    )


def save_npz(trace: Trace, path: PathLike) -> None:
    """Write a trace to compressed NPZ (fast, lossless)."""
    np.savez_compressed(
        Path(path), keys=trace.keys, sizes=trace.sizes, ops=trace.ops,
        name=np.array(trace.name),
    )


def load_npz(path: PathLike) -> Trace:
    """Read a trace written by :func:`save_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        name = str(data["name"]) if "name" in data else Path(path).stem
        return Trace(data["keys"], data["sizes"], data["ops"], name=name)
