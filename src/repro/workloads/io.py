"""Trace persistence: CSV (interchange) and NPZ (fast binary) formats.

CSV columns are ``key,size,op`` with a header row; ``op`` is the textual
name (``get``/``set``/``delete``).  NPZ stores the three arrays verbatim.
Both loaders accept gzipped CSV transparently (``.csv.gz``) through the
shared :func:`open_text` helper, which the chunked streaming readers in
:mod:`repro.workloads.stream` use as well.

Real-world trace files are dirty: short rows, non-numeric keys, unknown
op names.  :func:`load_csv` defaults to ``errors="strict"`` (raise on the
first bad row) but accepts ``errors="skip"`` to drop malformed rows and
report the count on ``trace.skipped_rows`` — so one corrupt line does not
abort a multi-hour sweep over an otherwise good trace.
"""

from __future__ import annotations

import csv
import gzip
from pathlib import Path
from typing import IO, Iterator, Optional, Tuple, Union

import numpy as np

from .trace import Trace, op_code, op_name

PathLike = Union[str, Path]

_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1


def open_text(path: PathLike, mode: str = "rt") -> IO[str]:
    """Open a text file, decompressing transparently when it ends in ``.gz``.

    The shared open-helper for every CSV reader/writer in the package:
    :func:`load_csv`/:func:`save_csv` here and the chunked
    :func:`repro.workloads.stream.iter_csv` all call it, so ``.csv`` and
    ``.csv.gz`` paths are interchangeable everywhere a trace file is
    accepted.  ``newline=""`` is applied unconditionally (the csv module
    requires it).
    """
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode if "t" in mode else mode + "t", newline="")
    return open(path, mode, newline="")


def save_csv(trace: Trace, path: PathLike) -> None:
    """Write a trace to CSV (gzipped when ``path`` ends in ``.gz``)."""
    with open_text(path, "wt") as fh:
        writer = csv.writer(fh)
        writer.writerow(["key", "size", "op"])
        for i in range(len(trace)):
            writer.writerow(
                [int(trace.keys[i]), int(trace.sizes[i]), op_name(int(trace.ops[i]))]
            )


class _CsvRowReader:
    """Header binding + row validation shared by all CSV trace readers.

    ``errors="strict"`` raises on the first malformed row;
    ``errors="skip"`` drops malformed rows (short rows, non-integer
    fields, out-of-range values, unknown op names, sizes < 1) and counts
    them on :attr:`skipped`.
    """

    def __init__(self, path: PathLike, errors: str = "strict") -> None:
        if errors not in ("strict", "skip"):
            raise ValueError(f"errors must be 'strict' or 'skip', got {errors!r}")
        self.path = Path(path)
        self.errors = errors
        self.skipped = 0
        self._ki = 0
        self._si: Optional[int] = None
        self._oi: Optional[int] = None

    def bind_header(self, header: list[str]) -> None:
        cols = {c.strip().lower(): i for i, c in enumerate(header)}
        if "key" not in cols:
            raise ValueError(
                f"{self.path}: CSV must have a 'key' column, got {header}"
            )
        self._ki = cols["key"]
        self._si = cols.get("size")
        self._oi = cols.get("op")

    def parse(self, row: list[str]) -> Optional[Tuple[int, int, int]]:
        """One validated ``(key, size, op)`` row; ``None`` = blank/skipped."""
        if not row:
            return None
        try:
            key = int(row[self._ki])
            size = int(row[self._si]) if self._si is not None else 1
            if not (_INT64_MIN <= key <= _INT64_MAX) or not (
                _INT64_MIN <= size <= _INT64_MAX
            ):
                raise ValueError(
                    f"{self.path}: key/size out of int64 range: {row!r}"
                )
            if size < 1:
                raise ValueError(
                    f"{self.path}: object sizes must be >= 1 byte: {row!r}"
                )
            op = op_code(row[self._oi].strip().lower()) if self._oi is not None else 0
        except (ValueError, IndexError, KeyError):
            if self.errors == "strict":
                raise
            self.skipped += 1
            return None
        return key, size, op

    def rows(self, fh: IO[str]) -> Iterator[Tuple[int, int, int]]:
        """Validated rows of an open CSV file (header consumed here)."""
        reader = csv.reader(fh)
        header = next(reader, None)
        if header is None:
            return
        self.bind_header(header)
        for row in reader:
            parsed = self.parse(row)
            if parsed is not None:
                yield parsed


def load_csv(
    path: PathLike, name: str | None = None, errors: str = "strict"
) -> Trace:
    """Read a trace written by :func:`save_csv` (or any key,size,op CSV).

    Accepts gzipped files transparently (``.csv.gz``).
    ``errors="strict"`` (default) raises on the first malformed row;
    ``errors="skip"`` drops malformed rows and reports the dropped count
    on the returned trace's ``skipped_rows``.
    """
    path = Path(path)
    parser = _CsvRowReader(path, errors)
    keys: list[int] = []
    sizes: list[int] = []
    ops: list[int] = []
    stem = path.stem[:-4] if path.stem.endswith(".csv") else path.stem
    with open_text(path, "rt") as fh:
        for key, size, op in parser.rows(fh):
            keys.append(key)
            sizes.append(size)
            ops.append(op)
    if not keys and parser.skipped == 0:
        return Trace(np.empty(0, dtype=np.int64), name=name or stem)
    return Trace(
        np.asarray(keys, dtype=np.int64),
        np.asarray(sizes, dtype=np.int64),
        np.asarray(ops, dtype=np.int8),
        name=name or stem,
        skipped_rows=parser.skipped,
    )


def _npz_path(path: PathLike) -> Path:
    """Normalize to the ``.npz`` suffix numpy appends on save."""
    path = Path(path)
    return path if path.suffix == ".npz" else path.with_name(path.name + ".npz")


def save_npz(trace: Trace, path: PathLike) -> None:
    """Write a trace to compressed NPZ (fast, lossless).

    The ``.npz`` suffix is normalized up front (numpy appends it anyway),
    so ``save_npz(t, "foo")`` and ``load_npz("foo")`` round-trip.  The
    trace's ``skipped_rows`` count is persisted alongside the columns so a
    skip-loaded trace keeps its drop count across the round-trip.
    """
    np.savez_compressed(
        _npz_path(path), keys=trace.keys, sizes=trace.sizes, ops=trace.ops,
        name=np.array(trace.name),
        skipped_rows=np.array(trace.skipped_rows, dtype=np.int64),
    )


def load_npz(path: PathLike) -> Trace:
    """Read a trace written by :func:`save_npz` (suffix optional)."""
    p = Path(path)
    if not p.exists():
        p = _npz_path(p)
    with np.load(p, allow_pickle=False) as data:
        name = str(data["name"]) if "name" in data else p.stem
        skipped = int(data["skipped_rows"]) if "skipped_rows" in data else 0
        return Trace(
            data["keys"], data["sizes"], data["ops"],
            name=name, skipped_rows=skipped,
        )
