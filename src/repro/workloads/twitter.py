"""Twitter-production-like KV cache traces with variable object sizes.

The paper's Twitter experiments use week-long traces from four in-memory
cache clusters (Yang, Yue & Rashmi, OSDI'20).  Their published
characterization — which we synthesize from — reports:

* object popularity close to Zipfian with per-cluster skew;
* heavy-tailed value sizes (most objects tens–hundreds of bytes, a long
  tail into tens of KiB), well modeled by a generalized Pareto body;
* a get-dominated op mix with a cluster-dependent write ratio, and value
  sizes that occasionally *change* on overwrite.

Each named preset (``cluster26.0``, ``cluster34.1``, ``cluster45.0``,
``cluster52.7``) fixes skew, size distribution and write ratio so that the
four traces have distinct MRC shapes like the paper's figures: 34.1 is a
Type-A trace (visible K-gap, via a scan component), 45.0 is Type B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from .._util import RngLike, ensure_rng
from . import patterns
from .trace import OP_GET, OP_SET, Trace
from .zipf import ScrambledZipfGenerator


@dataclass(frozen=True)
class ClusterRecipe:
    """Parameters for one synthetic Twitter cache cluster."""

    name: str
    n_objects: int
    alpha: float
    size_median: float  # bytes, median of the lognormal size body
    size_sigma: float  # lognormal shape (heavier tail for larger sigma)
    write_ratio: float
    scan_fraction: float  # fraction of requests from a scan component (Type A)


CLUSTERS: Dict[str, ClusterRecipe] = {
    "cluster26.0": ClusterRecipe("cluster26.0", 30_000, 1.0, 230.0, 1.2, 0.05, 0.00),
    "cluster34.1": ClusterRecipe("cluster34.1", 40_000, 0.9, 120.0, 1.5, 0.02, 0.50),
    "cluster45.0": ClusterRecipe("cluster45.0", 50_000, 0.8, 340.0, 1.0, 0.10, 0.00),
    "cluster52.7": ClusterRecipe("cluster52.7", 25_000, 1.2, 80.0, 1.8, 0.30, 0.10),
}


def object_value_sizes(
    n_objects: int, median: float, sigma: float, rng: RngLike = None
) -> np.ndarray:
    """Per-object value sizes: lognormal body, clipped to [1 B, 1 MiB].

    A lognormal with sigma in [1, 2] reproduces the OSDI'20 heavy-tail shape
    well enough for MRC purposes (what matters downstream is that byte-level
    and object-level stack distances diverge, which any heavy tail causes).
    """
    rng = ensure_rng(rng)
    sizes = rng.lognormal(mean=np.log(median), sigma=sigma, size=n_objects)
    return np.clip(sizes, 1, 1 << 20).astype(np.int64)


def make_trace(
    cluster: str,
    n_requests: int = 200_000,
    seed: int = 17,
    variable_size: bool = True,
    uniform_size: int = 200,
    scale: float = 1.0,
    size_change_prob: float = 0.02,
) -> Trace:
    """Build the synthetic trace for one named Twitter cluster.

    ``size_change_prob`` is the chance that a *set* rewrites the object with
    a freshly drawn size (the OSDI'20 traces show sizes drifting over time);
    it exercises the var-KRR size-update path.
    """
    if cluster not in CLUSTERS:
        raise KeyError(
            f"unknown Twitter cluster {cluster!r}; choose from {sorted(CLUSTERS)}"
        )
    rec = CLUSTERS[cluster]
    rng = ensure_rng(seed)
    n_objects = max(64, int(rec.n_objects * scale))

    gen = ScrambledZipfGenerator(n_objects, rec.alpha, rng)
    n_zipf = int(round(n_requests * (1.0 - rec.scan_fraction)))
    if rec.scan_fraction > 0:
        # Periodic *coherent* scan passes (cache-warming / range queries)
        # spliced between Zipf bursts: contiguous passes preserve the
        # LRU-pathological reuse structure that makes these clusters Type A.
        scan_len = max(1, n_objects // 2)
        scan_budget = n_requests - n_zipf
        n_passes = max(1, scan_budget // scan_len)
        burst = max(1, n_zipf // (n_passes + 1))
        segments: list[np.ndarray] = []
        zipf_left = n_zipf
        scan_left = scan_budget
        while zipf_left > 0 or scan_left > 0:
            take = min(burst, zipf_left)
            if take > 0:
                segments.append(gen.sample(take))
                zipf_left -= take
            pass_take = min(scan_len, scan_left)
            if pass_take > 0:
                segments.append(patterns.sequential_scan(0, pass_take))
                scan_left -= pass_take
        keys = patterns.mix_phases(segments)
    else:
        keys = gen.sample(n_zipf)
    keys = keys[:n_requests]

    ops = np.where(rng.random(n_requests) < rec.write_ratio, OP_SET, OP_GET).astype(
        np.int8
    )

    if variable_size:
        per_obj = object_value_sizes(n_objects, rec.size_median, rec.size_sigma, rng)
        sizes = per_obj[keys].copy()
        # Occasional size drift on writes: redraw the object's size and let it
        # stick for subsequent requests.
        if size_change_prob > 0:
            change = (ops == OP_SET) & (rng.random(n_requests) < size_change_prob)
            idx = np.flatnonzero(change)
            if idx.size:
                new_sizes = object_value_sizes(
                    idx.size, rec.size_median, rec.size_sigma, rng
                )
                current = per_obj.copy()
                for j, i in enumerate(idx):
                    current[keys[i]] = new_sizes[j]
                # Recompute sizes after each change point, vectorized per segment.
                sizes = per_obj[keys].copy()
                live = per_obj.copy()
                for j, i in enumerate(idx):
                    live[keys[i]] = new_sizes[j]
                    nxt = idx[j + 1] if j + 1 < idx.size else n_requests
                    seg = keys[i:nxt]
                    sizes[i:nxt] = live[seg]
    else:
        sizes = np.full(n_requests, int(uniform_size), dtype=np.int64)

    suffix = "var" if variable_size else f"uni{uniform_size}"
    return Trace(keys, sizes, ops, name=f"tw_{cluster}_{suffix}")


def paper_twitter_suite(
    n_requests: int = 150_000,
    seed: int = 17,
    variable_size: bool = False,
    scale: float = 0.5,
) -> list[Trace]:
    """The four Twitter cluster traces used throughout §5."""
    return [
        make_trace(c, n_requests, seed + i, variable_size, scale=scale)
        for i, c in enumerate(sorted(CLUSTERS))
    ]
