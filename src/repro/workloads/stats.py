"""Trace characterization: skew estimation, reuse summary, scan detection.

Answers the questions a practitioner asks before modeling a workload:
*how skewed is it* (fitted Zipf exponent), *how re-usable is it*
(reuse-time quantiles, cold fraction), and *does it contain the
sequential/loop structure* that makes sampling size K matter (Type A) —
the quick structural screen behind :mod:`repro.analysis.classify`'s more
expensive model-based verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .trace import Trace, reuse_times

__all__ = [
    "TraceProfile",
    "estimate_zipf_alpha",
    "profile_trace",
    "reuse_summary",
    "sequentiality_score",
]



def estimate_zipf_alpha(trace: Trace, top_fraction: float = 0.5) -> float:
    """Fit a Zipf exponent to the trace's popularity distribution.

    Least-squares on log(frequency) vs log(rank) over the most popular
    ``top_fraction`` of objects (the head is where a Zipf body shows; the
    tail is dominated by singletons and quantization).  Returns 0 for
    uniform popularity; values around 1 match typical cache workloads.
    """
    if not 0 < top_fraction <= 1:
        raise ValueError("top_fraction must be in (0, 1]")
    if len(trace) == 0:
        raise ValueError("empty trace")
    counts = np.sort(np.bincount(np.unique(trace.keys, return_inverse=True)[1]))[::-1]
    n_head = max(2, int(counts.shape[0] * top_fraction))
    head = counts[:n_head].astype(np.float64)
    ranks = np.arange(1, n_head + 1, dtype=np.float64)
    slope, _ = np.polyfit(np.log(ranks), np.log(head), 1)
    return max(0.0, float(-slope))


def sequentiality_score(trace: Trace) -> float:
    """Fraction of consecutive request pairs with key delta exactly +1.

    Pure scans score ~1, random/Zipf traffic ~1/M; a score above a few
    percent flags a meaningful sequential component.
    """
    if len(trace) < 2:
        return 0.0
    deltas = np.diff(trace.keys)
    return float(np.mean(deltas == 1))


def reuse_summary(trace: Trace) -> dict[str, float]:
    """Cold fraction plus reuse-time quantiles (p50/p90/p99)."""
    rts = reuse_times(trace)
    finite = rts[rts > 0]
    n = max(1, rts.shape[0])
    out = {"cold_fraction": float((rts < 0).sum() / n)}
    if finite.size:
        p50, p90, p99 = np.percentile(finite, [50, 90, 99])
        out.update(
            reuse_p50=float(p50), reuse_p90=float(p90), reuse_p99=float(p99)
        )
    else:
        out.update(reuse_p50=float("inf"), reuse_p90=float("inf"),
                   reuse_p99=float("inf"))
    return out


@dataclass(frozen=True)
class TraceProfile:
    """One-stop structural profile of a trace."""

    name: str
    requests: int
    unique_objects: int
    footprint_bytes: int
    zipf_alpha: float
    sequentiality: float
    cold_fraction: float
    reuse_p50: float
    reuse_p90: float
    reuse_p99: float
    uniform_sizes: bool

    @property
    def likely_type_a(self) -> bool:
        """Cheap structural screen for K-sensitivity (Type A).

        Sequential/loop structure is the dominant Type-A signal; strong
        skew without it is the classic Type-B shape.  This is a heuristic
        pre-filter — :func:`repro.analysis.classify.classify_trace` gives
        the model-based verdict.
        """
        return self.sequentiality > 0.05

    def as_rows(self) -> list[tuple[str, object]]:
        return [
            ("requests", self.requests),
            ("unique objects", self.unique_objects),
            ("footprint bytes", self.footprint_bytes),
            ("zipf alpha (fit)", round(self.zipf_alpha, 3)),
            ("sequentiality", round(self.sequentiality, 4)),
            ("cold fraction", round(self.cold_fraction, 4)),
            ("reuse p50/p90/p99",
             f"{self.reuse_p50:.0f}/{self.reuse_p90:.0f}/{self.reuse_p99:.0f}"),
            ("uniform sizes", self.uniform_sizes),
            ("likely Type A", self.likely_type_a),
        ]


def profile_trace(trace: Trace) -> TraceProfile:
    """Compute the full :class:`TraceProfile` for a trace."""
    reuse = reuse_summary(trace)
    return TraceProfile(
        name=trace.name,
        requests=len(trace),
        unique_objects=trace.unique_objects(),
        footprint_bytes=trace.footprint_bytes(),
        zipf_alpha=estimate_zipf_alpha(trace) if len(trace) else 0.0,
        sequentiality=sequentiality_score(trace),
        cold_fraction=reuse["cold_fraction"],
        reuse_p50=reuse["reuse_p50"],
        reuse_p90=reuse["reuse_p90"],
        reuse_p99=reuse["reuse_p99"],
        uniform_sizes=trace.is_uniform_size(),
    )
