"""Reusable access-pattern primitives for synthetic trace construction.

These are the building blocks the MSR-like generator composes: sequential
scans, cyclic loops, skewed hotspots, uniform noise, and phase mixtures.
Each primitive returns a key array; callers attach sizes/ops.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._util import RngLike, check_positive, ensure_rng
from .zipf import ZipfGenerator


def sequential_scan(start: int, length: int, repeat: int = 1) -> np.ndarray:
    """Keys ``start .. start+length-1`` repeated ``repeat`` times in order.

    Pure streaming pattern: every access past the first pass has reuse
    distance ``length`` — the canonical Type-A stressor where K-LRU with
    small K beats exact LRU (random eviction breaks the loop pathology).
    """
    check_positive("length", length)
    one = np.arange(start, start + length, dtype=np.int64)
    return np.tile(one, repeat)


def loop(keys: Sequence[int] | np.ndarray, n_requests: int) -> np.ndarray:
    """Cycle through ``keys`` in fixed order for ``n_requests`` accesses.

    The paper singles out loop patterns as KRR's worst case (same recency
    order revisited repeatedly, §4.2); we expose it directly so tests and
    ablations can target it.
    """
    keys = np.asarray(keys, dtype=np.int64)
    check_positive("n_requests", n_requests)
    reps = -(-n_requests // keys.shape[0])
    return np.tile(keys, reps)[:n_requests]


def hotspot(
    n_objects: int,
    n_requests: int,
    hot_fraction: float = 0.1,
    hot_prob: float = 0.9,
    key_offset: int = 0,
    rng: RngLike = None,
) -> np.ndarray:
    """Hot/cold mixture: ``hot_prob`` of requests hit ``hot_fraction`` of keys."""
    check_positive("n_objects", n_objects)
    rng = ensure_rng(rng)
    n_hot = max(1, int(n_objects * hot_fraction))
    is_hot = rng.random(n_requests) < hot_prob
    keys = np.where(
        is_hot,
        rng.integers(0, n_hot, size=n_requests),
        rng.integers(n_hot, max(n_hot + 1, n_objects), size=n_requests),
    )
    return keys.astype(np.int64) + key_offset


def zipf_phase(
    n_objects: int,
    n_requests: int,
    alpha: float,
    key_offset: int = 0,
    rng: RngLike = None,
) -> np.ndarray:
    """A Zipf-popularity burst over a key sub-range (one workload phase)."""
    rng = ensure_rng(rng)
    gen = ZipfGenerator(n_objects, alpha, rng)
    return gen.sample(n_requests) + key_offset


def uniform_random(
    n_objects: int, n_requests: int, key_offset: int = 0, rng: RngLike = None
) -> np.ndarray:
    """Uniformly random keys over a range (cache-hostile background noise)."""
    rng = ensure_rng(rng)
    return rng.integers(0, n_objects, size=n_requests).astype(np.int64) + key_offset


def mix_phases(phases: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate phases back-to-back (workload regime changes over time)."""
    if not phases:
        return np.empty(0, dtype=np.int64)
    return np.concatenate([np.asarray(p, dtype=np.int64) for p in phases])


def interleave_streams(
    streams: Sequence[np.ndarray],
    weights: Sequence[float],
    rng: RngLike = None,
) -> np.ndarray:
    """Probabilistically interleave request streams with given weights.

    Each output slot picks stream ``i`` with probability ``weights[i]`` and
    consumes that stream's next request (cycling if exhausted).  Models
    concurrent clients with different access patterns sharing one cache.
    """
    if len(streams) != len(weights):
        raise ValueError("streams and weights must have equal length")
    rng = ensure_rng(rng)
    w = np.asarray(weights, dtype=np.float64)
    if w.min() < 0 or w.sum() <= 0:
        raise ValueError("weights must be non-negative and not all zero")
    w = w / w.sum()
    total = int(sum(len(s) for s in streams))
    choice = rng.choice(len(streams), size=total, p=w)
    out = np.empty(total, dtype=np.int64)
    cursors = [0] * len(streams)
    for i, c in enumerate(choice):
        s = streams[c]
        out[i] = s[cursors[c] % len(s)]
        cursors[c] += 1
    return out
