"""Out-of-core trace streaming: bounded-memory chunked trace access.

Everything downstream of this module (model engines, simulators, SHARDS,
the fleet sweep) can consume a :class:`TraceStream` — any iterable of
:class:`~repro.workloads.trace.Trace` chunks — instead of one in-RAM
trace.  Because the KRR engines consume randomness in fixed-size draw
blocks and the spatial filter is stateless per key, chunk boundaries are
invisible: a streamed run is bit-identical to a whole-trace run for any
chunk size (gated by tests/test_stream.py).

Three sources are provided:

``iter_csv``
    True single-pass streaming over ``.csv`` / ``.csv.gz`` — peak memory
    is one chunk regardless of file length.

``iter_npz``
    Chunked slices of an NPZ trace.  NPZ members decompress whole, so
    this bounds *downstream* memory (plans, histograms, id columns) but
    not the source columns themselves; convert with :func:`save_chunked`
    for true out-of-core access.

``save_chunked`` / ``ChunkedTraceReader``
    A sharded on-disk format: ``chunk-00000.npz`` … shards of exactly
    ``chunk_size`` requests (last one ragged) plus a ``manifest.json``
    carrying per-shard counts and CRC32s.  The reader re-validates every
    shard against the manifest and raises :class:`ShardCorruption` on
    mismatch, so a truncated or bit-flipped shard fails loudly instead
    of silently skewing an MRC.

:func:`open_trace_stream` dispatches any of the above (or an in-memory
trace) by inspecting the source, and always returns a *re-iterable*
stream so multi-pass consumers (e.g. a sweep running scalar cells after
SoA cells) can replay it.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path
from typing import Callable, Iterable, Iterator, List, Optional, Protocol, Tuple, Union

import numpy as np

from .io import PathLike, _CsvRowReader, load_npz, open_text
from .trace import Trace

__all__ = [
    "DEFAULT_CHUNK",
    "ChunkedTraceReader",
    "ShardCorruption",
    "TraceStream",
    "is_chunked_dir",
    "iter_chunks",
    "iter_csv",
    "iter_npz",
    "open_trace_stream",
    "save_chunked",
    "stream_lengths",
]

DEFAULT_CHUNK = 1 << 20

MANIFEST_NAME = "manifest.json"
_MANIFEST_KIND = "repro-chunked-trace"
_MANIFEST_VERSION = 1


class TraceStream(Protocol):
    """Any iterable of trace chunks; chunks concatenate to the trace."""

    def __iter__(self) -> Iterator[Trace]: ...


class ShardCorruption(ValueError):
    """A chunk shard does not match its manifest entry (count or CRC)."""


def _chunk_crc(keys: np.ndarray, sizes: np.ndarray, ops: np.ndarray) -> int:
    """CRC32 over a chunk's columns, in the same key→size→op order as
    :func:`repro.engine.plan.trace_fingerprint` uses for whole traces."""
    crc = zlib.crc32(np.ascontiguousarray(keys).tobytes())
    crc = zlib.crc32(np.ascontiguousarray(sizes).tobytes(), crc)
    return zlib.crc32(np.ascontiguousarray(ops).tobytes(), crc)


def iter_chunks(trace: Trace, chunk_size: int = DEFAULT_CHUNK) -> Iterator[Trace]:
    """Slice an in-memory trace into bounded chunks (views, no copies)."""
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    for start in range(0, len(trace), chunk_size):
        stop = min(start + chunk_size, len(trace))
        yield Trace(
            trace.keys[start:stop],
            trace.sizes[start:stop],
            trace.ops[start:stop],
            name=trace.name,
        )


def iter_csv(
    path: PathLike,
    chunk_size: int = DEFAULT_CHUNK,
    errors: str = "strict",
) -> Iterator[Trace]:
    """Stream a CSV trace (``.csv`` or ``.csv.gz``) in bounded chunks.

    Single pass, one open file handle, peak memory of one chunk — the
    file never fully materializes.  Row validation and ``errors``
    semantics are shared with :func:`repro.workloads.io.load_csv`; with
    ``errors="skip"`` each chunk's ``skipped_rows`` counts the rows
    dropped while filling *that* chunk (their sum equals the whole-file
    count reported by ``load_csv``).
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    path = Path(path)
    parser = _CsvRowReader(path, errors)
    stem = path.stem[:-4] if path.stem.endswith(".csv") else path.stem
    keys: List[int] = []
    sizes: List[int] = []
    ops: List[int] = []
    skipped_emitted = 0

    def flush() -> Trace:
        nonlocal skipped_emitted
        chunk = Trace(
            np.asarray(keys, dtype=np.int64),
            np.asarray(sizes, dtype=np.int64),
            np.asarray(ops, dtype=np.int8),
            name=stem,
            skipped_rows=parser.skipped - skipped_emitted,
        )
        skipped_emitted = parser.skipped
        keys.clear()
        sizes.clear()
        ops.clear()
        return chunk

    with open_text(path, "rt") as fh:
        for key, size, op in parser.rows(fh):
            keys.append(key)
            sizes.append(size)
            ops.append(op)
            if len(keys) >= chunk_size:
                yield flush()
    if keys or parser.skipped > skipped_emitted:
        yield flush()


def iter_npz(path: PathLike, chunk_size: int = DEFAULT_CHUNK) -> Iterator[Trace]:
    """Stream an NPZ trace in bounded chunks.

    NPZ members decompress as whole arrays, so the source columns do
    materialize once; what stays bounded is everything built *per chunk*
    downstream (hash columns, id columns, histogram updates).  For
    true out-of-core access convert the file once with
    :func:`save_chunked`.
    """
    trace = load_npz(path)
    for i, chunk in enumerate(iter_chunks(trace, chunk_size)):
        if i == 0:
            chunk.skipped_rows = trace.skipped_rows
        yield chunk


def save_chunked(
    source: Union[Trace, Iterable[Trace]],
    directory: PathLike,
    chunk_size: int = DEFAULT_CHUNK,
    name: Optional[str] = None,
    overwrite: bool = False,
) -> Path:
    """Write a trace (or any stream of chunks) as a sharded chunk directory.

    Layout: ``chunk-00000.npz`` … compressed shards of exactly
    ``chunk_size`` requests (the last may be shorter) plus a
    ``manifest.json`` listing each shard's request count and CRC32.
    Input chunk boundaries are re-buffered, so converting a stream read
    with one chunk size to a directory with another is lossless.  The
    manifest is written last: a crashed conversion leaves no manifest
    and :class:`ChunkedTraceReader` refuses the directory.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if manifest_path.exists() and not overwrite:
        raise FileExistsError(
            f"{manifest_path} already exists (pass overwrite=True to replace)"
        )
    directory.mkdir(parents=True, exist_ok=True)

    if isinstance(source, Trace):
        name = name or source.name
        skipped = source.skipped_rows
        chunks: Iterable[Trace] = iter_chunks(source, chunk_size)
    else:
        skipped = 0
        chunks = source

    entries: List[dict] = []
    total = 0
    pend_k: List[np.ndarray] = []
    pend_s: List[np.ndarray] = []
    pend_o: List[np.ndarray] = []
    pending = 0

    def write_shard(keys: np.ndarray, sizes: np.ndarray, ops: np.ndarray) -> None:
        nonlocal total
        fname = f"chunk-{len(entries):05d}.npz"
        np.savez_compressed(directory / fname, keys=keys, sizes=sizes, ops=ops)
        entries.append(
            {"file": fname, "n": int(len(keys)), "crc32": _chunk_crc(keys, sizes, ops)}
        )
        total += int(len(keys))

    def drain(final: bool) -> None:
        nonlocal pending, pend_k, pend_s, pend_o
        if pending == 0:
            return
        keys = np.concatenate(pend_k) if len(pend_k) > 1 else pend_k[0]
        sizes = np.concatenate(pend_s) if len(pend_s) > 1 else pend_s[0]
        ops = np.concatenate(pend_o) if len(pend_o) > 1 else pend_o[0]
        start = 0
        while pending - start >= chunk_size or (final and start < pending):
            stop = min(start + chunk_size, pending)
            write_shard(keys[start:stop], sizes[start:stop], ops[start:stop])
            start = stop
        pend_k = [keys[start:]] if start < pending else []
        pend_s = [sizes[start:]] if start < pending else []
        pend_o = [ops[start:]] if start < pending else []
        pending -= start

    for chunk in chunks:
        if name is None:
            name = chunk.name
        skipped += chunk.skipped_rows if not isinstance(source, Trace) else 0
        if len(chunk) == 0:
            continue
        pend_k.append(chunk.keys)
        pend_s.append(chunk.sizes)
        pend_o.append(chunk.ops)
        pending += len(chunk)
        if pending >= chunk_size:
            drain(final=False)
    drain(final=True)

    manifest = {
        "kind": _MANIFEST_KIND,
        "version": _MANIFEST_VERSION,
        "name": name or directory.name,
        "chunk_size": chunk_size,
        "n_requests": total,
        "skipped_rows": int(skipped),
        "chunks": entries,
    }
    tmp = manifest_path.with_suffix(".json.tmp")
    tmp.write_text(json.dumps(manifest, indent=2) + "\n")
    tmp.replace(manifest_path)
    return directory


class ChunkedTraceReader:
    """Re-iterable bounded-memory reader for a :func:`save_chunked` directory.

    Every shard is re-validated against the manifest on read — a count or
    CRC32 mismatch raises :class:`ShardCorruption` naming the shard.  The
    reader itself holds only the manifest; each iteration loads one shard
    at a time.
    """

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        manifest_path = self.directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise FileNotFoundError(
                f"{self.directory}: not a chunked trace (no {MANIFEST_NAME}; "
                "was save_chunked interrupted?)"
            )
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("kind") != _MANIFEST_KIND:
            raise ValueError(
                f"{manifest_path}: kind {manifest.get('kind')!r} is not "
                f"{_MANIFEST_KIND!r}"
            )
        if int(manifest.get("version", -1)) > _MANIFEST_VERSION:
            raise ValueError(
                f"{manifest_path}: version {manifest['version']} is newer than "
                f"supported {_MANIFEST_VERSION}"
            )
        self.manifest = manifest
        self.name: str = manifest["name"]
        self.chunk_size: int = int(manifest["chunk_size"])
        self.n_requests: int = int(manifest["n_requests"])
        self.skipped_rows: int = int(manifest.get("skipped_rows", 0))
        self.chunks: List[dict] = list(manifest["chunks"])

    @property
    def n_chunks(self) -> int:
        return len(self.chunks)

    @property
    def fingerprint(self) -> int:
        """CRC32 over the manifest's per-shard CRCs — a cheap stable
        identity for checkpoint signatures without re-reading shards."""
        crc = zlib.crc32(str(self.n_requests).encode())
        for entry in self.chunks:
            crc = zlib.crc32(f"{entry['n']}:{entry['crc32']};".encode(), crc)
        return crc

    def _load_shard(self, index: int) -> Trace:
        entry = self.chunks[index]
        path = self.directory / entry["file"]
        try:
            with np.load(path, allow_pickle=False) as data:
                keys = data["keys"]
                sizes = data["sizes"]
                ops = data["ops"]
        except (OSError, ValueError, KeyError, zlib.error) as exc:
            raise ShardCorruption(f"{path}: unreadable shard: {exc}") from exc
        if len(keys) != entry["n"]:
            raise ShardCorruption(
                f"{path}: has {len(keys)} requests, manifest says {entry['n']}"
            )
        crc = _chunk_crc(keys, sizes, ops)
        if crc != entry["crc32"]:
            raise ShardCorruption(
                f"{path}: CRC32 {crc:#010x} != manifest {entry['crc32']:#010x}"
            )
        return Trace(keys, sizes, ops, name=self.name)

    def __iter__(self) -> Iterator[Trace]:
        for i in range(len(self.chunks)):
            chunk = self._load_shard(i)
            if i == 0:
                chunk.skipped_rows = self.skipped_rows
            yield chunk

    def __len__(self) -> int:
        return self.n_requests

    def read_all(self) -> Trace:
        """Materialize the whole trace (for small traces / verification)."""
        parts = [self._load_shard(i) for i in range(len(self.chunks))]
        if not parts:
            return Trace(
                np.empty(0, dtype=np.int64),
                name=self.name,
                skipped_rows=self.skipped_rows,
            )
        trace = Trace.concat(parts, name=self.name)
        trace.skipped_rows = self.skipped_rows
        return trace


class _ReiterableStream:
    """Wrap a generator factory so the stream can be iterated repeatedly
    (each pass re-opens the source file)."""

    def __init__(self, factory: Callable[[], Iterator[Trace]]) -> None:
        self._factory = factory

    def __iter__(self) -> Iterator[Trace]:
        return self._factory()


def is_chunked_dir(path: PathLike) -> bool:
    """True when ``path`` is a :func:`save_chunked` directory."""
    p = Path(path)
    return p.is_dir() and (p / MANIFEST_NAME).exists()


def open_trace_stream(
    source: Union[Trace, PathLike, Iterable[Trace]],
    chunk_size: int = DEFAULT_CHUNK,
    errors: str = "strict",
) -> TraceStream:
    """Open any trace source as a re-iterable bounded-memory stream.

    Dispatch: an in-memory :class:`Trace` is sliced; a chunk directory
    gets a :class:`ChunkedTraceReader` (its own ``chunk_size`` wins); an
    ``.npz`` path streams via :func:`iter_npz`; anything else is treated
    as CSV (``.csv`` / ``.csv.gz``).  Arbitrary iterables pass through
    unchanged (they may be single-shot).
    """
    if isinstance(source, Trace):
        trace = source
        return _ReiterableStream(lambda: iter_chunks(trace, chunk_size))
    if isinstance(source, (str, Path)):
        path = Path(source)
        if is_chunked_dir(path):
            return ChunkedTraceReader(path)
        suffixes = "".join(path.suffixes)
        if suffixes.endswith(".npz"):
            return _ReiterableStream(lambda: iter_npz(path, chunk_size))
        return _ReiterableStream(lambda: iter_csv(path, chunk_size, errors))
    return source


def stream_lengths(stream: TraceStream) -> Tuple[int, int]:
    """(n_requests, n_chunks) of a stream, consuming one pass."""
    n = 0
    chunks = 0
    for chunk in stream:
        n += len(chunk)
        chunks += 1
    return n, chunks
