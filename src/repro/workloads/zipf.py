"""Vectorized Zipfian samplers (the popularity model behind YCSB/Twitter).

Implements the classic bounded Zipf distribution over ``{0, .., n-1}`` with
skew ``alpha`` via inverse-CDF table lookup (exact, fast, vectorized), plus
YCSB's *scrambled* variant which decorrelates rank from key identity.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._util import RngLike, check_positive, ensure_rng

__all__ = [
    "ScrambledZipfGenerator",
    "ZipfGenerator",
    "zipf_trace_keys",
]



class ZipfGenerator:
    """Exact bounded-Zipf sampler over ``n`` items with parameter ``alpha``.

    Probability of rank ``r`` (0-based) is ``(r+1)^-alpha / H(n, alpha)``.
    Sampling uses a precomputed CDF and ``searchsorted`` — O(n) setup,
    O(log n) per draw, fully vectorized for batch draws.

    ``alpha == 0`` degenerates to the uniform distribution.
    """

    def __init__(self, n: int, alpha: float, rng: RngLike = None) -> None:
        check_positive("n", n)
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.n = int(n)
        self.alpha = float(alpha)
        self._rng = ensure_rng(rng)
        weights = np.arange(1, self.n + 1, dtype=np.float64) ** -self.alpha
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]

    def sample(self, size: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``size`` ranks (0-based, rank 0 most popular)."""
        r = (rng or self._rng).random(size)
        return np.searchsorted(self._cdf, r, side="right").astype(np.int64)

    def pmf(self) -> np.ndarray:
        """Probability mass over ranks 0..n-1."""
        p = np.empty(self.n)
        p[0] = self._cdf[0]
        p[1:] = np.diff(self._cdf)
        return p


class ScrambledZipfGenerator:
    """YCSB-style scrambled Zipfian: Zipf ranks hashed onto the key space.

    Real systems' hot keys are not numerically adjacent; YCSB scrambles the
    Zipf rank through a permutation so popularity is spread across the key
    range while the popularity *distribution* is unchanged.
    """

    def __init__(self, n: int, alpha: float, rng: RngLike = None) -> None:
        self._rng = ensure_rng(rng)
        self._zipf = ZipfGenerator(n, alpha, self._rng)
        self._perm = self._rng.permutation(n).astype(np.int64)

    @property
    def n(self) -> int:
        return self._zipf.n

    def sample(self, size: int, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Draw ``size`` keys in ``{0..n-1}`` with scrambled-Zipf popularity."""
        return self._perm[self._zipf.sample(size, rng)]


def zipf_trace_keys(
    n_objects: int, n_requests: int, alpha: float, rng: RngLike = None, scrambled: bool = True
) -> np.ndarray:
    """Convenience: one batch of Zipfian keys for a whole trace."""
    gen: ZipfGenerator | ScrambledZipfGenerator
    if scrambled:
        gen = ScrambledZipfGenerator(n_objects, alpha, rng)
    else:
        gen = ZipfGenerator(n_objects, alpha, rng)
    return gen.sample(n_requests)
