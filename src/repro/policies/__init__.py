"""Sampled-eviction policy family (the paper's stated future work).

K-LRU generalizes: sample K residents, evict the lowest-*priority* one.
This package provides the generic cache (:class:`SampledPolicyCache`),
priority functions for LFU / hyperbolic / hit-density / FIFO (with TTL
support), and MRC construction for all of them via exact sweeps or
miniature simulation.
"""

from .base import ByteSampledPolicyCache, ObjectRecord, SampledPolicyCache
from .mrc import compare_policies, miniature_policy_mrc, sampled_policy_mrc
from .priorities import (
    PRIORITIES,
    fifo_priority,
    hit_density_priority,
    hyperbolic_priority,
    hyperbolic_size_priority,
    lfu_priority,
    lru_priority,
)

__all__ = [
    "ByteSampledPolicyCache",
    "ObjectRecord",
    "PRIORITIES",
    "SampledPolicyCache",
    "compare_policies",
    "fifo_priority",
    "hit_density_priority",
    "hyperbolic_priority",
    "hyperbolic_size_priority",
    "lfu_priority",
    "lru_priority",
    "miniature_policy_mrc",
    "sampled_policy_mrc",
]
