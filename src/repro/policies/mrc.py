"""MRC construction for arbitrary sampled-eviction policies.

Sampled LFU / hyperbolic / hit-density caches are *not* stack algorithms
(their priorities depend on age and frequency, and sampling breaks the
inclusion property outright), so no single-pass stack model applies.  The
paper's related-work chapter (§6.2) points at the generic answer: Waldspurger
et al.'s miniature cache simulation — emulate each cache size with a
scaled-down cache over a spatially hashed sample.  This module provides
both the exact sweep and the miniature version for any
:class:`~repro.policies.base.SampledPolicyCache` configuration.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._util import RngLike, ensure_rng
from ..mrc.builder import from_points
from ..mrc.curve import MissRatioCurve
from ..sampling.spatial import SpatialSampler
from ..simulator.sweep import object_size_grid
from ..workloads.trace import Trace
from .base import PriorityFn, SampledPolicyCache
from .priorities import PRIORITIES

__all__ = [
    "compare_policies",
    "miniature_policy_mrc",
    "sampled_policy_mrc",
]



def _resolve(priority: str | PriorityFn) -> tuple[PriorityFn, str]:
    if callable(priority):
        return priority, getattr(priority, "__name__", "custom")
    if priority not in PRIORITIES:
        raise ValueError(
            f"unknown policy {priority!r}; choose from {sorted(PRIORITIES)}"
        )
    return PRIORITIES[priority], priority


def sampled_policy_mrc(
    trace: Trace,
    priority: str | PriorityFn,
    k: int = 5,
    sizes: Sequence[int] | None = None,
    n_points: int = 20,
    ttl: Optional[int] = None,
    ttl_mode: str = "absolute",
    rng: RngLike = None,
    label: str | None = None,
) -> MissRatioCurve:
    """Exact MRC by sweeping one full simulation per cache size."""
    fn, name = _resolve(priority)
    rng = ensure_rng(rng)
    if sizes is None:
        sizes = object_size_grid(trace, n_points)
    sizes_arr = np.asarray(sorted(int(s) for s in sizes), dtype=np.int64)
    ratios = np.empty(sizes_arr.shape[0])
    for i, size in enumerate(sizes_arr):
        cache = SampledPolicyCache(
            int(size), k, fn, ttl=ttl, ttl_mode=ttl_mode,
            rng=int(rng.integers(0, 2**63))
        )
        for j in range(len(trace)):
            cache.access(int(trace.keys[j]), int(trace.sizes[j]))
        ratios[i] = cache.stats.miss_ratio
    return from_points(
        sizes_arr, ratios, unit="objects", label=label or f"sampled-{name}(K={k})"
    )


def miniature_policy_mrc(
    trace: Trace,
    priority: str | PriorityFn,
    k: int = 5,
    rate: float = 0.05,
    sizes: Sequence[int] | None = None,
    n_points: int = 20,
    ttl: Optional[int] = None,
    ttl_mode: str = "absolute",
    rng: RngLike = None,
    seed: int = 0,
    label: str | None = None,
) -> MissRatioCurve:
    """MRC via miniature simulation over a spatial sample (rate ``R``).

    Each target size ``C`` is emulated by a ``round(R*C)``-object cache fed
    only the sampled requests — the standard generic technique for
    non-stack policies.  TTLs are *not* scaled (they are measured in
    requests of the original stream; the sampled stream preserves per-key
    request spacing only in expectation, so TTL runs use scaled ttl*R).
    """
    fn, name = _resolve(priority)
    rng = ensure_rng(rng)
    if sizes is None:
        sizes = object_size_grid(trace, n_points)
    sampler = SpatialSampler(rate, seed=seed)
    idx = sampler.filter_indices(trace.keys)
    keys = trace.keys[idx]
    obj_sizes = trace.sizes[idx]
    mini_ttl = None if ttl is None else max(1, int(round(ttl * sampler.rate)))

    sizes_arr = np.asarray(sorted(int(s) for s in sizes), dtype=np.int64)
    ratios = np.empty(sizes_arr.shape[0])
    for i, size in enumerate(sizes_arr):
        mini_capacity = max(1, int(round(sampler.rate * int(size))))
        cache = SampledPolicyCache(
            mini_capacity, k, fn, ttl=mini_ttl, ttl_mode=ttl_mode,
            rng=int(rng.integers(0, 2**63))
        )
        for j in range(keys.shape[0]):
            cache.access(int(keys[j]), int(obj_sizes[j]))
        ratios[i] = cache.stats.miss_ratio
    return from_points(
        sizes_arr,
        ratios,
        unit="objects",
        label=label or f"mini-sampled-{name}(K={k}, R={sampler.rate:g})",
    )


def compare_policies(
    trace: Trace,
    policies: Sequence[str],
    k: int = 5,
    sizes: Sequence[int] | None = None,
    n_points: int = 12,
    rng: RngLike = None,
) -> dict[str, MissRatioCurve]:
    """Exact-sweep MRCs for several policies on one trace (for reports)."""
    rng = ensure_rng(rng)
    if sizes is None:
        sizes = object_size_grid(trace, n_points)
    return {
        name: sampled_policy_mrc(trace, name, k=k, sizes=sizes, rng=rng)
        for name in policies
    }
