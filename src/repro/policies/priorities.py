"""Priority functions for sampled-eviction policies.

Each returns a float where **lower means evict first**.  These instantiate
the families named in the paper's conclusion (frequency, expiration) plus
the two sampled function-based policies it cites from the literature
(Hyperbolic caching, Blankstein et al. ATC'17; LHD-flavoured hit density).
"""

from __future__ import annotations

from .base import ObjectRecord, PriorityFn

__all__ = [
    "PRIORITIES",
    "fifo_priority",
    "hit_density_priority",
    "hyperbolic_priority",
    "hyperbolic_size_priority",
    "lfu_priority",
    "lru_priority",
]



def lru_priority(rec: ObjectRecord, now: int) -> float:
    """Sampled LRU (== K-LRU): evict the least recently accessed."""
    return float(rec.last_access)


def lfu_priority(rec: ObjectRecord, now: int) -> float:
    """Sampled LFU (Redis ``allkeys-lfu``-style): evict the least frequent.

    Recency breaks frequency ties (a fresh object with count 1 outranks a
    stale one with count 1), mirroring Redis's LFU counter decay intent
    without modeling the decay clock.
    """
    return rec.frequency + rec.last_access * 1e-12


def hyperbolic_priority(rec: ObjectRecord, now: int) -> float:
    """Hyperbolic caching: priority = frequency / age.

    An object's value decays hyperbolically with its time in cache; unlike
    LFU it does not require an eviction-resistant early history.
    """
    age = max(1, now - rec.insert_time)
    return rec.frequency / age


def hyperbolic_size_priority(rec: ObjectRecord, now: int) -> float:
    """Size-aware hyperbolic: frequency / (age * size) — cost-normalized."""
    age = max(1, now - rec.insert_time)
    return rec.frequency / (age * max(1, rec.size))


def hit_density_priority(rec: ObjectRecord, now: int) -> float:
    """LHD-flavoured hit density: expected hits per byte-request.

    True LHD learns a per-class hit-density distribution online; this
    lightweight proxy scores ``frequency / (age * size)`` with a recency
    boost, capturing the same evict-big-cold-objects behavior the paper
    cites LHD for.
    """
    age = max(1, now - rec.insert_time)
    recency = max(1, now - rec.last_access)
    return rec.frequency / (age * max(1, rec.size)) / recency


def fifo_priority(rec: ObjectRecord, now: int) -> float:
    """Sampled FIFO: evict the oldest insert (no recency update)."""
    return float(rec.insert_time)


#: Registry used by the CLI and the generic MRC helpers.
PRIORITIES: dict[str, PriorityFn] = {
    "lru": lru_priority,
    "lfu": lfu_priority,
    "hyperbolic": hyperbolic_priority,
    "hyperbolic-size": hyperbolic_size_priority,
    "hit-density": hit_density_priority,
    "fifo": fifo_priority,
}
