"""Generic random-sampling replacement: sample K residents, evict by priority.

The paper's conclusion names this as future work: "other random-sampling
policies which use other metrics, such as access frequency and object
expiration time, as priority functions."  This package implements that
family.  :class:`SampledPolicyCache` is the shared machinery — an O(1)
resident set, with-replacement sampling, and a pluggable priority function
— and the sibling modules instantiate it for LFU, hyperbolic caching
(Blankstein et al., ATC'17) and GDSF-style size-aware priorities.

A *priority function* maps an object's bookkeeping record to a float; the
sampled candidate with the **lowest** priority is evicted (matching Redis,
which evicts the lowest LRU clock / LFU counter among the sample).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from .._util import RngLike, check_positive, check_sampling_size, ensure_rng
from ..simulator.base import CacheStats
from ..simulator.klru import _ResidentSet

__all__ = [
    "ByteSampledPolicyCache",
    "ObjectRecord",
    "SampledPolicyCache",
]



@dataclass
class ObjectRecord:
    """Per-resident bookkeeping shared by all sampled policies."""

    key: int
    size: int
    insert_time: int
    last_access: int
    frequency: int
    expire_at: Optional[int] = None  # TTL support (requests, not seconds)


#: Priority function signature: (record, now) -> float; lowest is evicted.
PriorityFn = Callable[[ObjectRecord, int], float]


class SampledPolicyCache:
    """A cache that evicts the lowest-priority object among K samples.

    Parameters
    ----------
    capacity:
        Maximum resident objects (use :class:`ByteSampledPolicyCache` for
        byte budgets).
    k:
        Eviction sampling size.
    priority:
        The policy's priority function; see module docstring.
    ttl:
        Optional time-to-live in *requests*: expired objects are treated as
        misses on access and are preferred eviction victims.
    ttl_mode:
        ``"absolute"`` (default; Redis ``EXPIRE`` semantics — the clock
        starts at insert/refresh and reads do not extend it) or
        ``"sliding"`` (every hit renews the lease).
    """

    def __init__(
        self,
        capacity: int,
        k: int,
        priority: PriorityFn,
        ttl: Optional[int] = None,
        ttl_mode: str = "absolute",
        rng: RngLike = None,
    ) -> None:
        check_positive("capacity", capacity)
        self.capacity = int(capacity)
        self.k = check_sampling_size(k)
        self.priority = priority
        self.ttl = int(ttl) if ttl is not None else None
        if self.ttl is not None and self.ttl < 1:
            raise ValueError("ttl must be >= 1 request")
        if ttl_mode not in ("absolute", "sliding"):
            raise ValueError("ttl_mode must be 'absolute' or 'sliding'")
        self.ttl_mode = ttl_mode
        self._rnd = random.Random(int(ensure_rng(rng).integers(0, 2**63)))
        self._residents = _ResidentSet()
        self._records: dict[int, ObjectRecord] = {}
        self._clock = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._residents)

    def __contains__(self, key: int) -> bool:
        return key in self._residents

    def record_of(self, key: int) -> ObjectRecord:
        return self._records[key]

    def _expired(self, rec: ObjectRecord) -> bool:
        return rec.expire_at is not None and self._clock >= rec.expire_at

    # ------------------------------------------------------------------
    def access(self, key: int, size: int = 1) -> bool:
        self._clock += 1
        rec = self._records.get(key)
        if rec is not None and key in self._residents:
            if self._expired(rec):
                # Lazy expiration (Redis-style): the access misses and the
                # object is refreshed in place.
                self.stats.misses += 1
                self._refresh(rec, size)
                return False
            rec.last_access = self._clock
            rec.frequency += 1
            rec.size = size
            if self.ttl is not None and self.ttl_mode == "sliding":
                rec.expire_at = self._clock + self.ttl
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(self._residents) >= self.capacity:
            self._evict_one()
        self._residents.add(key)
        self._records[key] = ObjectRecord(
            key=key,
            size=size,
            insert_time=self._clock,
            last_access=self._clock,
            frequency=1,
            expire_at=(self._clock + self.ttl) if self.ttl else None,
        )
        return False

    def _refresh(self, rec: ObjectRecord, size: int) -> None:
        rec.size = size
        rec.insert_time = self._clock
        rec.last_access = self._clock
        rec.frequency = 1
        rec.expire_at = (self._clock + self.ttl) if self.ttl else None

    def _evict_one(self) -> None:
        residents = self._residents.keys
        n = len(residents)
        rnd = self._rnd
        victim = None
        best = None
        for _ in range(self.k):
            cand = residents[rnd.randrange(n)]
            rec = self._records[cand]
            # Expired objects are free wins for the evictor.
            p = float("-inf") if self._expired(rec) else self.priority(rec, self._clock)
            if best is None or p < best:
                victim, best = cand, p
        self._residents.remove(victim)
        del self._records[victim]
        self.stats.evictions += 1


class ByteSampledPolicyCache(SampledPolicyCache):
    """Byte-budget variant: evicts sampled victims until the insert fits."""

    def __init__(
        self,
        capacity_bytes: int,
        k: int,
        priority: PriorityFn,
        ttl: Optional[int] = None,
        ttl_mode: str = "absolute",
        rng: RngLike = None,
    ) -> None:
        super().__init__(1, k, priority, ttl, ttl_mode, rng)  # capacity unused
        check_positive("capacity_bytes", capacity_bytes)
        self.capacity_bytes = int(capacity_bytes)
        self._used = 0

    @property
    def used_bytes(self) -> int:
        return self._used

    def access(self, key: int, size: int = 1) -> bool:
        self._clock += 1
        rec = self._records.get(key)
        if rec is not None and key in self._residents:
            if self._expired(rec):
                self.stats.misses += 1
                self._used += size - rec.size
                self._refresh(rec, size)
                self._shrink(protect=key)
                return False
            rec.last_access = self._clock
            rec.frequency += 1
            if self.ttl is not None and self.ttl_mode == "sliding":
                rec.expire_at = self._clock + self.ttl
            if rec.size != size:
                self._used += size - rec.size
                rec.size = size
                self._shrink(protect=key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if size > self.capacity_bytes:
            return False
        self._residents.add(key)
        self._records[key] = ObjectRecord(
            key=key,
            size=size,
            insert_time=self._clock,
            last_access=self._clock,
            frequency=1,
            expire_at=(self._clock + self.ttl) if self.ttl else None,
        )
        self._used += size
        self._shrink(protect=key)
        return False

    def _shrink(self, protect: int | None = None) -> None:
        while self._used > self.capacity_bytes and len(self._residents) > 1:
            self._evict_one_bytes(protect)

    def _evict_one_bytes(self, protect: int | None) -> None:
        residents = self._residents.keys
        n = len(residents)
        rnd = self._rnd
        victim = None
        best = None
        for _ in range(self.k):
            cand = residents[rnd.randrange(n)]
            if cand == protect and n > 1:
                continue
            rec = self._records[cand]
            p = float("-inf") if self._expired(rec) else self.priority(rec, self._clock)
            if best is None or p < best:
                victim, best = cand, p
        if victim is None:
            for cand in residents:
                if cand != protect:
                    victim = cand
                    break
        if victim is None:  # pragma: no cover
            return
        self._residents.remove(victim)
        self._used -= self._records.pop(victim).size
        self.stats.evictions += 1
