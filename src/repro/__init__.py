"""repro — KRR: efficient modeling of random sampling-based LRU caches.

A full reproduction of Yang, Wang & Wang, *Efficient Modeling of Random
Sampling-Based LRU* (ICPP 2021).  The headline API:

>>> from repro import KRRModel, model_trace
>>> from repro.workloads import ycsb
>>> trace = ycsb.workload_c(2_000, 20_000, alpha=0.99, rng=0)
>>> result = model_trace(trace, k=5, seed=0)
>>> curve = result.mrc()          # predicted K-LRU miss ratio curve

Sub-packages:

- :mod:`repro.core` — the KRR stack, fast updates, size tracking, model
- :mod:`repro.engine` — shared-memory parallel modeling engine (ModelSweep)
- :mod:`repro.stack` — Mattson framework and exact LRU oracles
- :mod:`repro.sampling` — SHARDS-style spatial sampling
- :mod:`repro.simulator` — ground-truth K-LRU / LRU / Redis-like caches
- :mod:`repro.baselines` — SHARDS, AET, StatStack, Counter Stacks
- :mod:`repro.workloads` — MSR / YCSB / Twitter-like trace generators
- :mod:`repro.mrc` — miss-ratio-curve objects and error metrics
- :mod:`repro.analysis` — Type A/B classification, table rendering
"""

from . import (
    adaptive,
    analysis,
    baselines,
    core,
    engine,
    mrc,
    partition,
    policies,
    sampling,
    simulator,
    stack,
    workloads,
)
from .core.krr import KRRStack
from .core.model import KRRModel, KRRResult, model_trace
from .engine import ModelSweep, RunReport, SweepConfig
from .mrc.curve import MissRatioCurve
from .workloads.trace import Trace

__version__ = "1.0.0"

__all__ = [
    "KRRModel",
    "KRRResult",
    "KRRStack",
    "MissRatioCurve",
    "ModelSweep",
    "RunReport",
    "SweepConfig",
    "Trace",
    "adaptive",
    "partition",
    "policies",
    "analysis",
    "baselines",
    "core",
    "engine",
    "model_trace",
    "mrc",
    "sampling",
    "simulator",
    "stack",
    "workloads",
]
