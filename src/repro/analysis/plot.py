"""Terminal (ASCII) plotting for miss ratio curves.

The library runs in trace-processing environments without display servers
or plotting stacks; a braille/block-character terminal plot is enough to
eyeball curve shapes, crossovers and model-vs-truth agreement.  Used by
``repro model --plot`` and handy in examples and notebooks.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..mrc.curve import MissRatioCurve

__all__ = [
    "ascii_plot",
    "sparkline",
]


#: Glyphs used for successive curves in one chart.
_MARKERS = "*o+x#@%&"


def ascii_plot(
    curves: Sequence[MissRatioCurve],
    width: int = 72,
    height: int = 18,
    x_label: str | None = None,
) -> str:
    """Render one or more MRCs into a fixed-size character grid.

    All curves share the x-range [min size, max size over curves] and the
    y-range [0, 1].  Later curves overdraw earlier ones where they collide.
    """
    if not curves:
        raise ValueError("need at least one curve")
    if width < 16 or height < 4:
        raise ValueError("plot area too small")
    lo = min(float(c.sizes[0]) for c in curves)
    hi = max(c.max_size() for c in curves)
    if hi <= lo:
        hi = lo + 1
    xs = np.linspace(lo, hi, width)

    grid = [[" "] * width for _ in range(height)]
    for ci, curve in enumerate(curves):
        marker = _MARKERS[ci % len(_MARKERS)]
        ys = np.clip(curve(xs), 0.0, 1.0)
        rows = np.round((1.0 - ys) * (height - 1)).astype(int)
        for col, row in enumerate(rows):
            grid[row][col] = marker

    lines = []
    for r, row in enumerate(grid):
        y_val = 1.0 - r / (height - 1)
        label = f"{y_val:4.2f} |" if r % max(1, height // 6) == 0 or r == height - 1 else "     |"
        lines.append(label + "".join(row))
    lines.append("     +" + "-" * width)
    left = f"{lo:.3g}"
    right = f"{hi:.3g}"
    pad = " " * max(1, width - len(left) - len(right))
    lines.append("      " + left + pad + right)
    if x_label:
        lines.append(f"      ({x_label})")
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {c.label or f'curve {i}'}"
        for i, c in enumerate(curves)
    )
    lines.append("      " + legend)
    return "\n".join(lines)


def sparkline(values: Sequence[float], lo: float = 0.0, hi: float = 1.0) -> str:
    """One-line block sparkline of a value series (e.g. miss ratios)."""
    blocks = "▁▂▃▄▅▆▇█"
    vals = np.asarray(values, dtype=np.float64)
    if vals.size == 0:
        return ""
    span = hi - lo if hi > lo else 1.0
    idx = np.clip(((vals - lo) / span) * (len(blocks) - 1), 0, len(blocks) - 1)
    return "".join(blocks[int(i)] for i in np.round(idx))
