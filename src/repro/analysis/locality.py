"""Locality metrics: average footprint and the HOTL miss-ratio model.

Implements the higher-order theory of locality (Xiang et al., §6.1): the
*average footprint* ``fp(w)`` — the mean number of distinct objects touched
in a window of ``w`` requests — computed exactly in ``O(N + M)`` with
Xiang's formula, and the HOTL conversion ``mr(c) = fp'(w)`` evaluated at
the window where ``fp(w) = c``.  A fourth exact-LRU baseline alongside
SHARDS / AET / StatStack, and a useful workload statistic on its own.
"""

from __future__ import annotations

import numpy as np

from ..mrc.builder import from_points
from ..mrc.curve import MissRatioCurve
from ..workloads.trace import Trace, reuse_times

__all__ = [
    "average_footprint",
    "hotl_mrc",
    "working_set_curve",
]



def average_footprint(trace: Trace) -> np.ndarray:
    """Exact average footprint ``fp(w)`` for ``w = 0..N``.

    Xiang's formula: over all ``N - w + 1`` windows of length ``w``, an
    object is *absent* from a window iff no access to it falls inside; the
    total absence count can be assembled from (a) reuse intervals longer
    than ``w`` and (b) the head/tail gaps before each object's first and
    after its last access.  We compute the absence-weight array in one pass
    and convert to fp via two cumulative sums.
    """
    n = len(trace)
    if n == 0:
        return np.zeros(1)
    keys = trace.keys
    m = trace.unique_objects()

    # For window length w, windows(w) = n - w + 1.
    # absent(w) = sum over objects of windows of length w they miss.
    # An interval of g consecutive requests not touching object o
    # contributes max(0, g - w + 1) windows.  Gaps: reuse gaps (rt - 1 for
    # reuse time rt), head gap (first access index), tail gap
    # (n - 1 - last access index).
    gap_count = np.zeros(n + 2, dtype=np.float64)  # gap_count[g] = #gaps of len g
    rts = reuse_times(trace)
    first: dict[int, int] = {}
    last: dict[int, int] = {}
    for i in range(n):
        k = int(keys[i])
        if k not in first:
            first[k] = i
        last[k] = i
        rt = rts[i]
        if rt > 1:
            gap_count[rt - 1] += 1
    for k in first:
        head = first[k]
        if head > 0:
            gap_count[head] += 1
        tail = n - 1 - last[k]
        if tail > 0:
            gap_count[tail] += 1

    # absent(w) = sum_g gap_count[g] * max(0, g - w + 1)
    #           = sum_{g >= w} gap_count[g] * (g - w + 1).
    # Build via reversed cumulative sums of gap_count and g*gap_count.
    g = np.arange(n + 2, dtype=np.float64)
    c1 = np.cumsum((gap_count * g)[::-1])[::-1]  # sum_{j>=w} j*count[j]
    c0 = np.cumsum(gap_count[::-1])[::-1]  # sum_{j>=w} count[j]

    w = np.arange(0, n + 1, dtype=np.float64)
    absent = np.zeros(n + 1)
    valid = slice(1, n + 1)
    absent[valid] = c1[1 : n + 1] - (w[valid] - 1) * c0[1 : n + 1]
    windows = n - w + 1
    fp = np.zeros(n + 1)
    fp[valid] = m - absent[valid] / windows[valid]
    return fp


def hotl_mrc(trace: Trace, n_points: int = 200) -> MissRatioCurve:
    """HOTL: LRU miss ratio as the finite difference of average footprint.

    ``mr(c) = fp(w+1) - fp(w)`` at the window ``w`` where ``fp(w) = c``.
    """
    fp = average_footprint(trace)
    n = fp.shape[0] - 1
    if n < 2:
        raise ValueError("trace too short for HOTL")
    deriv = np.diff(fp)  # mr at cache size fp[w], window w
    sizes = fp[1:]
    ratios = np.clip(deriv, 0.0, 1.0)
    # fp is concave increasing so sizes are increasing; dedupe for safety.
    sizes, idx = np.unique(sizes, return_index=True)
    ratios = ratios[idx]
    keep = sizes > 0
    sizes, ratios = sizes[keep], ratios[keep]
    if sizes.shape[0] > n_points:
        sel = np.linspace(0, sizes.shape[0] - 1, n_points).astype(int)
        sizes, ratios = sizes[sel], ratios[sel]
    # Enforce the non-increasing envelope (finite differences jitter).
    ratios = np.minimum.accumulate(ratios)
    return from_points(sizes, ratios, unit="objects", label="HOTL")


def working_set_curve(trace: Trace, n_points: int = 50) -> tuple[np.ndarray, np.ndarray]:
    """(window sizes, average footprint) — Denning's working set curve."""
    fp = average_footprint(trace)
    n = fp.shape[0] - 1
    idx = np.unique(np.linspace(1, n, min(n_points, n)).astype(int))
    return idx, fp[idx]
