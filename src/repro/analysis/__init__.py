"""Analysis helpers: trace classification, table rendering."""

from .classify import Classification, classify_curves, classify_trace
from .locality import average_footprint, hotl_mrc, working_set_curve
from .plot import ascii_plot, sparkline
from .tables import render_series, render_table

__all__ = [
    "Classification",
    "ascii_plot",
    "average_footprint",
    "sparkline",
    "classify_curves",
    "classify_trace",
    "hotl_mrc",
    "render_series",
    "render_table",
    "working_set_curve",
]
