"""Type A / Type B trace classification (§5.3).

The paper splits workloads into two families by how much the eviction
sampling size matters: *Type A* traces show a notable gap between the
random-replacement (K=1) and exact-LRU MRCs, so K-LRU MRCs fan out between
them; *Type B* traces yield nearly identical MRCs for every K.  The
classifier measures that K=1 ↔ LRU gap directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._util import RngLike
from ..mrc.curve import MissRatioCurve
from ..mrc.metrics import curve_gap
from ..core.model import KRRModel
from ..stack.lru_stack import lru_histograms
from ..mrc.builder import from_distance_histogram
from ..workloads.trace import Trace

__all__ = [
    "Classification",
    "DEFAULT_THRESHOLD",
    "classify_curves",
    "classify_trace",
]


#: Average-gap threshold separating the families.  The paper does not give a
#: number; 0.045 (4.5 miss-ratio points averaged over the size range) cleanly
#: separates scan/loop-dominated traces (gaps >= 0.06 in our suites) from
#: smooth skewed-reuse traces (gaps <= 0.035, including Zipfian IRM, whose
#: LRU-vs-random gap is real but modest).
DEFAULT_THRESHOLD = 0.045


@dataclass(frozen=True)
class Classification:
    """Result of :func:`classify_trace`."""

    trace_name: str
    gap: float
    threshold: float

    @property
    def family(self) -> str:
        return "A" if self.gap >= self.threshold else "B"

    @property
    def k_sensitive(self) -> bool:
        """True when sampling size materially changes the miss ratio."""
        return self.family == "A"


def classify_curves(
    k1_curve: MissRatioCurve,
    lru_curve: MissRatioCurve,
    threshold: float = DEFAULT_THRESHOLD,
    name: str = "",
) -> Classification:
    """Classify from precomputed K=1 and LRU curves."""
    return Classification(name, curve_gap(k1_curve, lru_curve), threshold)


def classify_trace(
    trace: Trace,
    threshold: float = DEFAULT_THRESHOLD,
    seed: RngLike = 0,
) -> Classification:
    """Classify a trace using one KRR(K=1) pass and one exact-LRU pass.

    Both models are one-pass and exact enough for the purpose; no
    simulation sweep is needed, so classification is cheap (O(N logM)).
    """
    k1 = KRRModel(k=1, correction=False, seed=seed).process(trace).mrc()
    obj_hist, _ = lru_histograms(trace)
    lru = from_distance_histogram(obj_hist, label="LRU")
    return classify_curves(k1, lru, threshold, name=trace.name)
