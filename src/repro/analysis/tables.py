"""Plain-text table rendering for the experiment harness.

The benchmark scripts print the same rows the paper's tables report; this
module keeps the formatting in one place (fixed-width columns, scientific
or fixed notation per cell type).
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "format_cell",
    "render_series",
    "render_table",
]



def format_cell(value, width: int = 10) -> str:
    if isinstance(value, float):
        if value == 0:
            text = "0"
        elif abs(value) < 1e-3 or abs(value) >= 1e5:
            text = f"{value:.2e}"
        else:
            text = f"{value:.4g}"
    else:
        text = str(value)
    return text.rjust(width)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
    width: int = 12,
) -> str:
    """Render a fixed-width table with an optional title."""
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.rjust(width) for h in headers)
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in rows:
        lines.append(" | ".join(format_cell(c, width) for c in row))
    return "\n".join(lines)


def render_series(
    name: str,
    xs: Sequence[float],
    ys: Sequence[float],
    x_label: str = "size",
    y_label: str = "miss_ratio",
    max_points: int = 12,
) -> str:
    """Render an MRC-style series, thinned to ``max_points`` rows."""
    n = len(xs)
    if n == 0:
        return f"{name}: (empty)"
    step = max(1, n // max_points)
    rows = [(xs[i], ys[i]) for i in range(0, n, step)]
    if (n - 1) % step:
        rows.append((xs[-1], ys[-1]))
    body = render_table([x_label, y_label], rows, title=name)
    return body
