"""Exact LRU cache simulators (object- and byte-capacity)."""

from __future__ import annotations

from collections import OrderedDict

from .._util import check_positive
from .base import CacheStats

__all__ = [
    "ByteLRUCache",
    "LRUCache",
]



class LRUCache:
    """Exact LRU over a fixed number of objects.

    ``OrderedDict`` gives O(1) move-to-end and popitem — the classic
    doubly-linked-list + hash LRU.
    """

    def __init__(self, capacity: int) -> None:
        check_positive("capacity", capacity)
        self.capacity = int(capacity)
        self._data: OrderedDict[int, int] = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    def access(self, key: int, size: int = 1) -> bool:
        data = self._data
        if key in data:
            data.move_to_end(key, last=True)  # most recent at the right end
            data[key] = size
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        data[key] = size
        if len(data) > self.capacity:
            data.popitem(last=False)
            self.stats.evictions += 1
        return False


class ByteLRUCache:
    """Exact LRU over a byte budget (variable object sizes)."""

    def __init__(self, capacity_bytes: int) -> None:
        check_positive("capacity_bytes", capacity_bytes)
        self.capacity_bytes = int(capacity_bytes)
        self._data: OrderedDict[int, int] = OrderedDict()
        self._used = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: int) -> bool:
        return key in self._data

    @property
    def used_bytes(self) -> int:
        return self._used

    def access(self, key: int, size: int = 1) -> bool:
        data = self._data
        old = data.get(key)
        if old is not None:
            data.move_to_end(key, last=True)
            if old != size:
                self._used += size - old
                data[key] = size
                self._evict_to_fit()
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if size > self.capacity_bytes:
            # Object cannot fit at all: count the miss, do not cache.
            return False
        data[key] = size
        self._used += size
        self._evict_to_fit()
        return False

    def _evict_to_fit(self) -> None:
        data = self._data
        while self._used > self.capacity_bytes and data:
            _, sz = data.popitem(last=False)
            self._used -= sz
            self.stats.evictions += 1
