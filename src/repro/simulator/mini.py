"""Miniature cache simulation (Waldspurger et al., ATC'17; §6.2).

For non-stack policies there is no one-pass MRC algorithm; the generic
alternative emulates each cache size with a *scaled-down miniature cache*
over a spatially hashed sample: to model a cache of size ``C`` at sampling
rate ``R``, simulate a cache of size ``R * C`` on the sampled requests.
Implemented here for K-LRU so it can cross-validate KRR (both should agree
with full-trace simulation).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._util import RngLike, ensure_rng
from ..mrc.builder import from_points
from ..mrc.curve import MissRatioCurve
from ..sampling.spatial import SpatialSampler
from ..workloads.trace import Trace
from .klru import KLRUCache
from .lru import LRUCache
from .sweep import object_size_grid

__all__ = [
    "miniature_klru_mrc",
    "miniature_lru_mrc",
]



def miniature_klru_mrc(
    trace: Trace,
    k: int,
    rate: float = 0.01,
    sizes: Sequence[int] | None = None,
    n_points: int = 40,
    with_replacement: bool = True,
    rng: RngLike = None,
    seed: int = 0,
    label: str | None = None,
) -> MissRatioCurve:
    """K-LRU MRC from miniature simulations at sampling rate ``rate``.

    Each full-scale size ``C`` is emulated by a miniature K-LRU cache of
    ``max(1, round(R*C))`` objects fed only the spatially sampled requests.
    """
    rng = ensure_rng(rng)
    if sizes is None:
        sizes = object_size_grid(trace, n_points)
    sampler = SpatialSampler(rate, seed=seed)
    idx = sampler.filter_indices(trace.keys)
    # One tolist() up front: iterating the ndarray inside the per-size loop
    # would box a NumPy scalar per access, ~10x slower per simulation.
    mini_keys = trace.keys[idx].tolist()

    sizes_arr = np.asarray(sorted(int(s) for s in sizes), dtype=np.int64)
    ratios = np.empty(sizes_arr.shape[0])
    for i, size in enumerate(sizes_arr):
        mini_capacity = max(1, int(round(sampler.rate * int(size))))
        cache = KLRUCache(
            mini_capacity, k, with_replacement, rng=int(rng.integers(0, 2**63))
        )
        for key in mini_keys:
            cache.access(key)
        ratios[i] = cache.stats.miss_ratio
    return from_points(
        sizes_arr, ratios, unit="objects",
        label=label or f"mini-K-LRU(K={k}, R={sampler.rate:g})",
    )


def miniature_lru_mrc(
    trace: Trace,
    rate: float = 0.01,
    sizes: Sequence[int] | None = None,
    n_points: int = 40,
    seed: int = 0,
    label: str | None = None,
) -> MissRatioCurve:
    """Exact-LRU MRC from miniature simulations (sanity baseline)."""
    if sizes is None:
        sizes = object_size_grid(trace, n_points)
    sampler = SpatialSampler(rate, seed=seed)
    idx = sampler.filter_indices(trace.keys)
    mini_keys = trace.keys[idx].tolist()

    sizes_arr = np.asarray(sorted(int(s) for s in sizes), dtype=np.int64)
    ratios = np.empty(sizes_arr.shape[0])
    for i, size in enumerate(sizes_arr):
        cache = LRUCache(max(1, int(round(sampler.rate * int(size)))))
        for key in mini_keys:
            cache.access(key)
        ratios[i] = cache.stats.miss_ratio
    return from_points(
        sizes_arr, ratios, unit="objects", label=label or f"mini-LRU(R={sampler.rate:g})"
    )
