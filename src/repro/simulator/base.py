"""Cache-simulator protocol and shared statistics.

Simulators reveal ground truth: unlike the one-pass stack models, a
simulator runs one concrete cache size per pass (§5.1).  All simulators in
this package implement :class:`CacheSimulator` — ``access(key, size)``
returning hit/miss — and carry a :class:`CacheStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol, Union, runtime_checkable

from ..workloads.trace import Trace

__all__ = [
    "CacheSimulator",
    "CacheStats",
    "run_trace",
]



@dataclass
class CacheStats:
    """Hit/miss counters for one simulated cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_ratio(self) -> float:
        n = self.accesses
        return self.misses / n if n else 0.0

    @property
    def hit_ratio(self) -> float:
        n = self.accesses
        return self.hits / n if n else 0.0


@runtime_checkable
class CacheSimulator(Protocol):
    """Anything that simulates a fixed-size cache over a request stream."""

    stats: CacheStats

    def access(self, key: int, size: int = 1) -> bool:
        """Process one request; returns True on hit."""
        ...


def run_trace(
    sim: CacheSimulator, trace: Union[Trace, Iterable[Trace]]
) -> CacheStats:
    """Run a trace (or a stream of trace chunks) through a simulator.

    Simulators that expose a batched ``access_many(keys, sizes)`` (e.g.
    :class:`~repro.simulator.klru.KLRUCache`) get each chunk's columns in
    one call — the batch path is required to consume its RNG draw-for-draw
    like per-access streaming, so stats and final residency are identical
    either way.  Everything else falls back to the per-access loop.

    ``trace`` also accepts any bounded-memory
    :class:`~repro.workloads.stream.TraceStream`: simulator state (cache
    contents, RNG draws) persists across chunks, so a streamed run is
    identical to the concatenated in-memory run for any chunk size.
    """
    chunks: Iterable[Trace] = (trace,) if isinstance(trace, Trace) else trace
    access_many = getattr(sim, "access_many", None)
    for chunk in chunks:
        keys = chunk.keys
        sizes = chunk.sizes
        if access_many is not None:
            access_many(keys, sizes)
            continue
        access = sim.access
        for i in range(keys.shape[0]):
            access(int(keys[i]), int(sizes[i]))
    return sim.stats
