"""Simulation sweeps: ground-truth MRCs from per-size cache runs (§5.1).

"A simulator can only generate one miss ratio for a given cache size with
one pass of the input trace" — so the ground-truth MRC is produced by
running the simulator at a grid of cache sizes and interpolating.  These
helpers build that grid (evenly spread over the working set, as in §5.3's
40-size and §5.5's 25-size setups) and run the sweeps.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .._util import RngLike, ensure_rng
from ..mrc.builder import from_points
from ..mrc.curve import MissRatioCurve, evaluation_grid
from ..workloads.trace import Trace
from .base import CacheSimulator, run_trace
from .klru import ByteKLRUCache, KLRUCache
from .lru import ByteLRUCache, LRUCache
from .redis_like import RedisLikeCache

__all__ = [
    "byte_klru_mrc",
    "byte_lru_mrc",
    "byte_size_grid",
    "klru_mrc",
    "lru_mrc",
    "object_size_grid",
    "redis_mrc",
    "sweep_mrc",
]


SimulatorFactory = Callable[[int], CacheSimulator]


def sweep_mrc(
    trace: Trace,
    factory: SimulatorFactory,
    sizes: Sequence[int],
    unit: str = "objects",
    label: str = "",
) -> MissRatioCurve:
    """Run ``factory(size)`` over the trace for each size; build an MRC."""
    sizes_arr = np.asarray(sorted(int(s) for s in sizes), dtype=np.int64)
    if sizes_arr.size == 0:
        raise ValueError("need at least one cache size")
    ratios = np.empty(sizes_arr.shape[0], dtype=np.float64)
    for i, size in enumerate(sizes_arr):
        sim = factory(int(size))
        stats = run_trace(sim, trace)
        ratios[i] = stats.miss_ratio
    return from_points(sizes_arr, ratios, unit=unit, label=label)


def object_size_grid(trace: Trace, n_points: int = 40) -> np.ndarray:
    """Cache sizes (objects) evenly spread over the trace's working set."""
    grid = evaluation_grid(trace.working_set_size(), n_points)
    return np.unique(np.maximum(1, np.round(grid))).astype(np.int64)


def byte_size_grid(trace: Trace, n_points: int = 40) -> np.ndarray:
    """Cache sizes (bytes) evenly spread over the trace's byte footprint."""
    grid = evaluation_grid(trace.footprint_bytes(), n_points)
    return np.unique(np.maximum(1, np.round(grid))).astype(np.int64)


def klru_mrc(
    trace: Trace,
    k: int,
    sizes: Sequence[int] | None = None,
    n_points: int = 40,
    with_replacement: bool = True,
    rng: RngLike = None,
    label: str | None = None,
) -> MissRatioCurve:
    """Ground-truth K-LRU MRC via simulation sweep (object capacity)."""
    rng = ensure_rng(rng)
    if sizes is None:
        sizes = object_size_grid(trace, n_points)
    seeds = rng.integers(0, 2**63, size=len(list(sizes)))
    size_list = list(sizes)

    def factory(size: int) -> CacheSimulator:
        i = size_list.index(size)
        return KLRUCache(size, k, with_replacement, rng=int(seeds[i]))

    return sweep_mrc(trace, factory, size_list, "objects", label or f"K-LRU(K={k})")


def byte_klru_mrc(
    trace: Trace,
    k: int,
    sizes: Sequence[int] | None = None,
    n_points: int = 40,
    with_replacement: bool = True,
    rng: RngLike = None,
    label: str | None = None,
) -> MissRatioCurve:
    """Ground-truth K-LRU MRC via simulation sweep (byte capacity)."""
    rng = ensure_rng(rng)
    if sizes is None:
        sizes = byte_size_grid(trace, n_points)
    size_list = list(sizes)
    seeds = rng.integers(0, 2**63, size=len(size_list))

    def factory(size: int) -> CacheSimulator:
        i = size_list.index(size)
        return ByteKLRUCache(size, k, with_replacement, rng=int(seeds[i]))

    return sweep_mrc(trace, factory, size_list, "bytes", label or f"K-LRU(K={k})")


def lru_mrc(
    trace: Trace,
    sizes: Sequence[int] | None = None,
    n_points: int = 40,
    label: str = "LRU",
) -> MissRatioCurve:
    """Exact-LRU MRC via simulation sweep (object capacity).

    Note: for exact LRU the one-pass stack algorithm
    (:func:`repro.stack.lru_histograms`) is cheaper and exact at *every*
    size; this sweep exists for apples-to-apples comparisons with the
    K-LRU sweeps.
    """
    if sizes is None:
        sizes = object_size_grid(trace, n_points)
    return sweep_mrc(trace, lambda s: LRUCache(s), list(sizes), "objects", label)


def byte_lru_mrc(
    trace: Trace,
    sizes: Sequence[int] | None = None,
    n_points: int = 40,
    label: str = "LRU",
) -> MissRatioCurve:
    """Exact-LRU MRC via simulation sweep (byte capacity)."""
    if sizes is None:
        sizes = byte_size_grid(trace, n_points)
    return sweep_mrc(trace, lambda s: ByteLRUCache(s), list(sizes), "bytes", label)


def redis_mrc(
    trace: Trace,
    sizes: Sequence[int] | None = None,
    n_points: int = 50,
    maxmemory_samples: int = 5,
    clock_resolution: int = 1,
    unbiased_sampling: bool = False,
    rng: RngLike = None,
    label: str = "Redis",
) -> MissRatioCurve:
    """Redis-like MRC (the paper's §5.7 runs 50 memory sizes)."""
    rng = ensure_rng(rng)
    if sizes is None:
        sizes = object_size_grid(trace, n_points)
    size_list = list(sizes)
    seeds = rng.integers(0, 2**63, size=len(size_list))

    def factory(size: int) -> CacheSimulator:
        i = size_list.index(size)
        return RedisLikeCache(
            size,
            maxmemory_samples=maxmemory_samples,
            clock_resolution=clock_resolution,
            unbiased_sampling=unbiased_sampling,
            rng=int(seeds[i]),
        )

    return sweep_mrc(trace, factory, size_list, "objects", label)
