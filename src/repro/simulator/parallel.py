"""Process-parallel simulation sweeps over a shared-memory trace.

Ground-truth MRCs need one independent full-trace simulation per cache
size — embarrassingly parallel work that pure-Python simulators leave on
the table.  This module fans the per-size simulations out over a process
pool with the trace columns *mapped* into every worker through
:class:`repro.engine.shm.SharedTraceStore` (zero-copy; only a tiny
:class:`~repro.engine.shm.TraceSpec` handle is pickled), and each task
simulates one (size, seed) pair.

Execution goes through :class:`repro.engine.runner.ResilientRunner`: a
worker OOM-killed mid-grid triggers a pool rebuild instead of discarding
every finished size, a hung worker trips the optional per-task timeout,
and a pool that keeps dying degrades to serial in-process simulation with
a warning.  None of it can change results: every size's simulator seed is
derived from the size index up front, so the miss ratios are deterministic
for a given ``rng`` seed regardless of worker count or recovery path.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._util import RngLike, ensure_rng
from ..engine.faults import maybe_inject
from ..engine.runner import ResilientRunner, RunReport, resolve_workers
from ..engine.shm import AttachedTrace, SharedTraceStore, TraceSpec
from ..mrc.builder import from_points
from ..mrc.curve import MissRatioCurve
from ..workloads.trace import Trace
from .klru import ByteKLRUCache, KLRUCache
from .sweep import byte_size_grid, object_size_grid

__all__ = [
    "parallel_klru_mrc",
    "parallel_klru_mrc_with_report",
]


# Worker-side trace state: either an AttachedTrace (pool path) or the
# columns installed directly as lists (serial in-process path).
_WORKER_ATTACHED: Optional[AttachedTrace] = None
_WORKER_COLUMNS: Optional[Tuple[List[int], List[int]]] = None


def _init_worker(spec: TraceSpec) -> None:
    """Pool initializer: attach the shared trace block (zero-copy)."""
    global _WORKER_ATTACHED, _WORKER_COLUMNS
    _WORKER_ATTACHED = AttachedTrace(spec)
    _WORKER_COLUMNS = None


def _install_columns(keys: np.ndarray, sizes: np.ndarray) -> None:
    """Serial path: install trace columns without shared memory."""
    global _WORKER_ATTACHED, _WORKER_COLUMNS
    _WORKER_ATTACHED = None
    _WORKER_COLUMNS = (keys.tolist(), sizes.tolist())


def _clear_worker_state() -> None:
    global _WORKER_ATTACHED, _WORKER_COLUMNS
    _WORKER_ATTACHED = None
    _WORKER_COLUMNS = None


def _worker_columns() -> Tuple[List[int], List[int]]:
    """(keys, sizes) as Python lists, converted once per worker.

    Iterating NumPy arrays element-wise boxes a NumPy scalar per element
    (~10x slower arithmetic than plain ints — same idiom as
    ``_BufferedUniform``); one ``tolist()`` per worker amortizes the
    conversion over every task the worker runs.
    """
    global _WORKER_COLUMNS
    if _WORKER_COLUMNS is None:
        if _WORKER_ATTACHED is None:  # pragma: no cover - init contract
            raise RuntimeError("simulation worker has no trace installed")
        _WORKER_COLUMNS = _WORKER_ATTACHED.columns_as_lists()
    return _WORKER_COLUMNS


def _simulate_one(args: tuple[int, int, int, bool, bool, int]) -> float:
    """Simulate one cache size in a worker; returns its miss ratio."""
    index, capacity, k, with_replacement, byte_capacity, seed = args
    maybe_inject(index)
    keys, sizes = _worker_columns()
    if byte_capacity:
        cache = ByteKLRUCache(capacity, k, with_replacement, rng=seed)
    else:
        cache = KLRUCache(capacity, k, with_replacement, rng=seed)
    access = cache.access
    for key, size in zip(keys, sizes):
        access(key, size)
    return cache.stats.miss_ratio


def parallel_klru_mrc(
    trace: Trace,
    k: int,
    sizes: Sequence[int] | None = None,
    n_points: int = 40,
    with_replacement: bool = True,
    byte_capacity: bool = False,
    rng: RngLike = None,
    max_workers: Optional[int] = None,
    label: str | None = None,
    task_timeout: Optional[float] = None,
    retries: int = 2,
) -> MissRatioCurve:
    """Ground-truth K-LRU MRC with per-size simulations run in parallel.

    Functionally equivalent to :func:`repro.simulator.sweep.klru_mrc` /
    :func:`~repro.simulator.sweep.byte_klru_mrc`; wall-clock scales with
    ``min(len(sizes), max_workers)`` workers.  Set ``max_workers=1`` (or
    when only one size is requested) to run inline without a pool.  See
    :func:`parallel_klru_mrc_with_report` for the fault-tolerance knobs
    and the per-run :class:`~repro.engine.runner.RunReport`.
    """
    curve, _ = parallel_klru_mrc_with_report(
        trace,
        k,
        sizes=sizes,
        n_points=n_points,
        with_replacement=with_replacement,
        byte_capacity=byte_capacity,
        rng=rng,
        max_workers=max_workers,
        label=label,
        task_timeout=task_timeout,
        retries=retries,
    )
    return curve


def parallel_klru_mrc_with_report(
    trace: Trace,
    k: int,
    sizes: Sequence[int] | None = None,
    n_points: int = 40,
    with_replacement: bool = True,
    byte_capacity: bool = False,
    rng: RngLike = None,
    max_workers: Optional[int] = None,
    label: str | None = None,
    task_timeout: Optional[float] = None,
    retries: int = 2,
    backoff: float = 0.5,
    max_pool_rebuilds: int = 3,
) -> Tuple[MissRatioCurve, RunReport]:
    """Like :func:`parallel_klru_mrc`, returning ``(curve, RunReport)``.

    ``task_timeout`` bounds each per-size simulation (a hung worker is
    killed and the size retried); transient worker failures retry up to
    ``retries`` times with exponential ``backoff``; a pool that dies more
    than ``max_pool_rebuilds`` times degrades to serial in-process
    simulation with a :class:`RuntimeWarning`.
    """
    rng = ensure_rng(rng)
    if sizes is None:
        grid = byte_size_grid(trace, n_points) if byte_capacity else object_size_grid(
            trace, n_points
        )
    else:
        grid = np.asarray(sorted(int(s) for s in sizes), dtype=np.int64)
    seeds = [int(s) for s in rng.integers(0, 2**63, size=grid.shape[0])]
    tasks = [
        (i, int(grid[i]), int(k), with_replacement, byte_capacity, seeds[i])
        for i in range(grid.shape[0])
    ]

    workers = resolve_workers(max_workers, len(tasks))
    runner = ResilientRunner(
        _simulate_one,
        max_workers=workers,
        initializer=_init_worker,
        serial_setup=lambda: _install_columns(trace.keys, trace.sizes),
        serial_teardown=_clear_worker_state,
        task_timeout=task_timeout,
        retries=retries,
        backoff=backoff,
        max_pool_rebuilds=max_pool_rebuilds,
    )
    if workers > 1 and len(tasks) > 1:
        with SharedTraceStore(trace) as store:
            runner.initargs = (store.spec,)
            ratios, report = runner.run(tasks)
    else:
        ratios, report = runner.run(tasks)
    unit = "bytes" if byte_capacity else "objects"
    curve = from_points(
        grid, ratios, unit=unit, label=label or f"K-LRU(K={k})"
    )
    return curve, report
