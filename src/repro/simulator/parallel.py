"""Process-parallel simulation sweeps.

Ground-truth MRCs need one independent full-trace simulation per cache
size — embarrassingly parallel work that pure-Python simulators leave on
the table.  This module fans the per-size simulations out over a
``ProcessPoolExecutor``: the trace arrays are shipped once per worker (via
the pool initializer), and each task simulates one (size, seed) pair.

Workers are plain module-level functions (picklable); results are
deterministic for a given ``rng`` seed regardless of worker count, because
every size's simulator seed is derived from the size index up front.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Optional, Sequence

import numpy as np

from .._util import RngLike, ensure_rng
from ..mrc.builder import from_points
from ..mrc.curve import MissRatioCurve
from ..workloads.trace import Trace
from .klru import ByteKLRUCache, KLRUCache
from .sweep import byte_size_grid, object_size_grid

# Per-worker trace columns, installed by the pool initializer.
_WORKER_KEYS: Optional[np.ndarray] = None
_WORKER_SIZES: Optional[np.ndarray] = None


def _init_worker(keys: np.ndarray, sizes: np.ndarray) -> None:
    global _WORKER_KEYS, _WORKER_SIZES
    _WORKER_KEYS = keys
    _WORKER_SIZES = sizes


def _simulate_one(args: tuple[int, int, bool, bool, int]) -> float:
    """Simulate one cache size in a worker; returns its miss ratio."""
    capacity, k, with_replacement, byte_capacity, seed = args
    keys = _WORKER_KEYS
    sizes = _WORKER_SIZES
    if byte_capacity:
        cache = ByteKLRUCache(capacity, k, with_replacement, rng=seed)
    else:
        cache = KLRUCache(capacity, k, with_replacement, rng=seed)
    access = cache.access
    for i in range(keys.shape[0]):
        access(int(keys[i]), int(sizes[i]))
    return cache.stats.miss_ratio


def parallel_klru_mrc(
    trace: Trace,
    k: int,
    sizes: Sequence[int] | None = None,
    n_points: int = 40,
    with_replacement: bool = True,
    byte_capacity: bool = False,
    rng: RngLike = None,
    max_workers: Optional[int] = None,
    label: str | None = None,
) -> MissRatioCurve:
    """Ground-truth K-LRU MRC with per-size simulations run in parallel.

    Functionally equivalent to :func:`repro.simulator.sweep.klru_mrc` /
    :func:`~repro.simulator.sweep.byte_klru_mrc`; wall-clock scales with
    ``min(len(sizes), max_workers)`` workers.  Set ``max_workers=1`` (or
    when only one size is requested) to run inline without a pool.
    """
    rng = ensure_rng(rng)
    if sizes is None:
        grid = byte_size_grid(trace, n_points) if byte_capacity else object_size_grid(
            trace, n_points
        )
    else:
        grid = np.asarray(sorted(int(s) for s in sizes), dtype=np.int64)
    seeds = [int(s) for s in rng.integers(0, 2**63, size=grid.shape[0])]
    tasks = [
        (int(grid[i]), int(k), with_replacement, byte_capacity, seeds[i])
        for i in range(grid.shape[0])
    ]

    if max_workers is None:
        max_workers = min(len(tasks), os.cpu_count() or 1)
    if max_workers <= 1 or len(tasks) == 1:
        _init_worker(trace.keys, trace.sizes)
        ratios = [_simulate_one(t) for t in tasks]
    else:
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_init_worker,
            initargs=(trace.keys, trace.sizes),
        ) as pool:
            ratios = list(pool.map(_simulate_one, tasks))
    unit = "bytes" if byte_capacity else "objects"
    return from_points(grid, ratios, unit=unit, label=label or f"K-LRU(K={k})")
