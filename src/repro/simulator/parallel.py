"""Process-parallel simulation sweeps over a shared-memory trace.

Ground-truth MRCs need one independent full-trace simulation per cache
size — embarrassingly parallel work that pure-Python simulators leave on
the table.  This module fans the per-size simulations out over a
``ProcessPoolExecutor`` with the trace columns *mapped* into every worker
through :class:`repro.engine.shm.SharedTraceStore` (zero-copy; only a tiny
:class:`~repro.engine.shm.TraceSpec` handle is pickled), and each task
simulates one (size, seed) pair.

Workers are plain module-level functions (picklable); results are
deterministic for a given ``rng`` seed regardless of worker count, because
every size's simulator seed is derived from the size index up front.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._util import RngLike, ensure_rng
from ..engine.shm import AttachedTrace, SharedTraceStore, TraceSpec
from ..mrc.builder import from_points
from ..mrc.curve import MissRatioCurve
from ..workloads.trace import Trace
from .klru import ByteKLRUCache, KLRUCache
from .sweep import byte_size_grid, object_size_grid

# Worker-side trace state: either an AttachedTrace (pool path) or the
# columns installed directly as lists (serial in-process path).
_WORKER_ATTACHED: Optional[AttachedTrace] = None
_WORKER_COLUMNS: Optional[Tuple[List[int], List[int]]] = None


def _init_worker(spec: TraceSpec) -> None:
    """Pool initializer: attach the shared trace block (zero-copy)."""
    global _WORKER_ATTACHED, _WORKER_COLUMNS
    _WORKER_ATTACHED = AttachedTrace(spec)
    _WORKER_COLUMNS = None


def _install_columns(keys: np.ndarray, sizes: np.ndarray) -> None:
    """Serial path: install trace columns without shared memory."""
    global _WORKER_ATTACHED, _WORKER_COLUMNS
    _WORKER_ATTACHED = None
    _WORKER_COLUMNS = (keys.tolist(), sizes.tolist())


def _clear_worker_state() -> None:
    global _WORKER_ATTACHED, _WORKER_COLUMNS
    _WORKER_ATTACHED = None
    _WORKER_COLUMNS = None


def _worker_columns() -> Tuple[List[int], List[int]]:
    """(keys, sizes) as Python lists, converted once per worker.

    Iterating NumPy arrays element-wise boxes a NumPy scalar per element
    (~10x slower arithmetic than plain ints — same idiom as
    ``_BufferedUniform``); one ``tolist()`` per worker amortizes the
    conversion over every task the worker runs.
    """
    global _WORKER_COLUMNS
    if _WORKER_COLUMNS is None:
        if _WORKER_ATTACHED is None:  # pragma: no cover - init contract
            raise RuntimeError("simulation worker has no trace installed")
        _WORKER_COLUMNS = _WORKER_ATTACHED.columns_as_lists()
    return _WORKER_COLUMNS


def _simulate_one(args: tuple[int, int, bool, bool, int]) -> float:
    """Simulate one cache size in a worker; returns its miss ratio."""
    capacity, k, with_replacement, byte_capacity, seed = args
    keys, sizes = _worker_columns()
    if byte_capacity:
        cache = ByteKLRUCache(capacity, k, with_replacement, rng=seed)
    else:
        cache = KLRUCache(capacity, k, with_replacement, rng=seed)
    access = cache.access
    for key, size in zip(keys, sizes):
        access(key, size)
    return cache.stats.miss_ratio


def parallel_klru_mrc(
    trace: Trace,
    k: int,
    sizes: Sequence[int] | None = None,
    n_points: int = 40,
    with_replacement: bool = True,
    byte_capacity: bool = False,
    rng: RngLike = None,
    max_workers: Optional[int] = None,
    label: str | None = None,
) -> MissRatioCurve:
    """Ground-truth K-LRU MRC with per-size simulations run in parallel.

    Functionally equivalent to :func:`repro.simulator.sweep.klru_mrc` /
    :func:`~repro.simulator.sweep.byte_klru_mrc`; wall-clock scales with
    ``min(len(sizes), max_workers)`` workers.  Set ``max_workers=1`` (or
    when only one size is requested) to run inline without a pool.
    """
    rng = ensure_rng(rng)
    if sizes is None:
        grid = byte_size_grid(trace, n_points) if byte_capacity else object_size_grid(
            trace, n_points
        )
    else:
        grid = np.asarray(sorted(int(s) for s in sizes), dtype=np.int64)
    seeds = [int(s) for s in rng.integers(0, 2**63, size=grid.shape[0])]
    tasks = [
        (int(grid[i]), int(k), with_replacement, byte_capacity, seeds[i])
        for i in range(grid.shape[0])
    ]

    if max_workers is None:
        max_workers = min(len(tasks), os.cpu_count() or 1)
    if max_workers <= 1 or len(tasks) == 1:
        _install_columns(trace.keys, trace.sizes)
        try:
            ratios = [_simulate_one(t) for t in tasks]
        finally:
            _clear_worker_state()
    else:
        with SharedTraceStore(trace) as store:
            with ProcessPoolExecutor(
                max_workers=max_workers,
                initializer=_init_worker,
                initargs=(store.spec,),
            ) as pool:
                ratios = list(pool.map(_simulate_one, tasks))
    unit = "bytes" if byte_capacity else "objects"
    return from_points(grid, ratios, unit=unit, label=label or f"K-LRU(K={k})")
