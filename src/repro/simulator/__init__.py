"""Ground-truth cache simulators and simulation-sweep MRC builders."""

from .base import CacheSimulator, CacheStats, run_trace
from .klru import ByteKLRUCache, KLRUCache
from .lru import ByteLRUCache, LRUCache
from .mini import miniature_klru_mrc, miniature_lru_mrc
from .parallel import parallel_klru_mrc, parallel_klru_mrc_with_report
from .redis_like import EVPOOL_SIZE, LRU_BITS, RedisLikeCache
from .sweep import (
    byte_klru_mrc,
    byte_lru_mrc,
    byte_size_grid,
    klru_mrc,
    lru_mrc,
    object_size_grid,
    redis_mrc,
    sweep_mrc,
)

__all__ = [
    "ByteKLRUCache",
    "ByteLRUCache",
    "CacheSimulator",
    "CacheStats",
    "EVPOOL_SIZE",
    "KLRUCache",
    "LRUCache",
    "LRU_BITS",
    "RedisLikeCache",
    "byte_klru_mrc",
    "byte_lru_mrc",
    "byte_size_grid",
    "klru_mrc",
    "lru_mrc",
    "miniature_klru_mrc",
    "miniature_lru_mrc",
    "object_size_grid",
    "parallel_klru_mrc",
    "parallel_klru_mrc_with_report",
    "redis_mrc",
    "run_trace",
    "sweep_mrc",
]
