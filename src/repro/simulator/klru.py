"""K-LRU: random sampling-based LRU cache simulators (Chapter 3).

On eviction the cache samples ``K`` residents uniformly (with "placing
back", i.e. with replacement, as Redis does — or without, Proposition 2's
variant) and evicts the least recently used of the sample.  Residents live
in an array with a key→index map so sampling and swap-remove eviction are
``O(1)``; recency is a monotone access counter.

These simulators are the ground truth the KRR model is validated against
(§5.3): run one per cache size and interpolate (see
:mod:`repro.simulator.sweep`).

Victim selection lives in :mod:`repro.cache.eviction` — the production
:class:`~repro.cache.lru.SamplingLRUCache` runs the identical policy
through the same :func:`~repro.cache.eviction.select_victim` core, so
simulated and deployed eviction can never drift apart.  The inlined loop
in :meth:`KLRUCache.access_many` is a hoisted copy of that core and must
keep its PRNG contract (exactly K ``randrange`` draws per
with-replacement eviction, one ``sample`` draw otherwise).
"""

from __future__ import annotations

import random
from typing import Sequence

from .._util import RngLike, check_positive, check_sampling_size, ensure_rng
from ..cache.eviction import NO_PROTECT as _NO_PROTECT
from ..cache.eviction import ResidentSet as _ResidentSet
from ..cache.eviction import select_victim
from .base import CacheStats

__all__ = [
    "ByteKLRUCache",
    "KLRUCache",
]


class KLRUCache:
    """K-LRU over a fixed number of objects.

    Parameters
    ----------
    capacity:
        Maximum resident objects.
    k:
        Eviction sampling size (Redis's ``maxmemory-samples``; default 5).
    with_replacement:
        "Placing back" sampling (Redis semantics, Proposition 1) when True;
        distinct-resident sampling (Proposition 2) when False.
    """

    def __init__(
        self,
        capacity: int,
        k: int = 5,
        with_replacement: bool = True,
        rng: RngLike = None,
    ) -> None:
        check_positive("capacity", capacity)
        self.capacity = int(capacity)
        self.k = check_sampling_size(k)
        self.with_replacement = bool(with_replacement)
        if not with_replacement and self.k > self.capacity:
            raise ValueError("K cannot exceed capacity when sampling without replacement")
        # A fast stdlib PRNG seeded from the (seedable) NumPy generator keeps
        # the hot path cheap while staying reproducible.
        self._rnd = random.Random(int(ensure_rng(rng).integers(0, 2**63)))
        self._residents = _ResidentSet()
        self._last_access: dict[int, int] = {}
        self._clock = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._residents)

    def __contains__(self, key: int) -> bool:
        return key in self._residents

    def access(self, key: int, size: int = 1) -> bool:
        self._clock += 1
        if key in self._residents:
            self._last_access[key] = self._clock
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(self._residents) >= self.capacity:
            self._evict_one()
        self._residents.add(key)
        self._last_access[key] = self._clock
        return False

    def access_many(
        self, keys: Sequence[int], sizes: Sequence[int] | None = None
    ) -> list[bool]:
        """Batched :meth:`access`; returns the per-request hit flags.

        One flat loop with every attribute lookup hoisted and the
        resident-set bookkeeping inlined — the simulator's ground-truth
        sweeps spend their time here.  The PRNG is consumed in exactly
        the per-access order (one ``randrange`` per with-replacement draw,
        one ``sample`` per distinct draw), so stats, evictions and final
        residency are identical to streaming the requests one by one.
        ``sizes`` is accepted for interface symmetry and ignored, as in
        :meth:`access`.
        """
        key_list = keys.tolist() if hasattr(keys, "tolist") else list(keys)
        res_keys = self._residents.keys
        res_index = self._residents.index
        last = self._last_access
        rnd = self._rnd
        randrange = rnd.randrange
        capacity = self.capacity
        k = self.k
        with_replacement = self.with_replacement
        clock = self._clock
        hits = 0
        evictions = 0
        out: list[bool] = []
        record = out.append
        for key in key_list:
            clock += 1
            if key in res_index:
                last[key] = clock
                hits += 1
                record(True)
                continue
            record(False)
            if len(res_keys) >= capacity:
                n = len(res_keys)
                if with_replacement:
                    victim = res_keys[randrange(n)]
                    vt = last[victim]
                    for _ in range(k - 1):
                        cand = res_keys[randrange(n)]
                        ct = last[cand]
                        if ct < vt:
                            victim, vt = cand, ct
                else:
                    victim = None
                    vt = None
                    for i in rnd.sample(range(n), k if k < n else n):
                        cand = res_keys[i]
                        ct = last[cand]
                        if vt is None or ct < vt:
                            victim, vt = cand, ct
                i = res_index.pop(victim)
                moved = res_keys.pop()
                if moved != victim:
                    res_keys[i] = moved
                    res_index[moved] = i
                del last[victim]
                evictions += 1
            res_index[key] = len(res_keys)
            res_keys.append(key)
            last[key] = clock
        self._clock = clock
        self.stats.hits += hits
        self.stats.misses += len(key_list) - hits
        self.stats.evictions += evictions
        return out

    def _evict_one(self) -> None:
        # No ``protect`` needed here (unlike the byte variant): eviction
        # runs *before* the missed key is inserted, so the key that
        # triggered it can never be sampled as its own victim.
        victim = select_victim(
            self._residents.keys,
            self._last_access,
            self._rnd,
            self.k,
            self.with_replacement,
        )
        self._residents.remove(victim)
        del self._last_access[victim]
        self.stats.evictions += 1

    def resident_keys(self) -> list[int]:
        return list(self._residents.keys)


class ByteKLRUCache:
    """K-LRU over a byte budget (variable object sizes).

    A miss (or a size-growing overwrite) evicts sampled-LRU victims until
    the new object fits, mirroring Redis's eviction loop under
    ``maxmemory``.
    """

    def __init__(
        self,
        capacity_bytes: int,
        k: int = 5,
        with_replacement: bool = True,
        rng: RngLike = None,
    ) -> None:
        check_positive("capacity_bytes", capacity_bytes)
        self.capacity_bytes = int(capacity_bytes)
        self.k = check_sampling_size(k)
        self.with_replacement = bool(with_replacement)
        self._rnd = random.Random(int(ensure_rng(rng).integers(0, 2**63)))
        self._residents = _ResidentSet()
        self._last_access: dict[int, int] = {}
        self._sizes: dict[int, int] = {}
        self._used = 0
        self._clock = 0
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._residents)

    def __contains__(self, key: int) -> bool:
        return key in self._residents

    @property
    def used_bytes(self) -> int:
        return self._used

    def access(self, key: int, size: int = 1) -> bool:
        self._clock += 1
        if key in self._residents:
            self._last_access[key] = self._clock
            old = self._sizes[key]
            if old != size:
                self._used += size - old
                self._sizes[key] = size
                # The key just hit: shield it while shrinking, exactly as
                # on insert.  (If it alone outgrew the whole budget it is
                # still dropped — hit counted, residency lost.)
                self._evict_until_fits(protect=key)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if size > self.capacity_bytes:
            return False
        self._residents.add(key)
        self._last_access[key] = self._clock
        self._sizes[key] = size
        self._used += size
        self._evict_until_fits(protect=key)
        return False

    def access_many(
        self, keys: Sequence[int], sizes: Sequence[int]
    ) -> list[bool]:
        """Batched :meth:`access` (draw-for-draw identical to streaming)."""
        key_list = keys.tolist() if hasattr(keys, "tolist") else list(keys)
        size_list = sizes.tolist() if hasattr(sizes, "tolist") else list(sizes)
        access = self.access
        return [access(key, size) for key, size in zip(key_list, size_list)]

    def _evict_until_fits(self, protect: int | None = None) -> None:
        # The loop must be able to empty the cache: guarding on ``> 1``
        # residents let a lone object resized past ``capacity_bytes``
        # keep the cache over budget forever.  ``select_victim`` returns
        # the protected key itself only when it is the last resident.
        while self._used > self.capacity_bytes and len(self._residents) > 0:
            self._evict_one(protect)

    def _evict_one(self, protect: int | None = None) -> None:
        victim = select_victim(
            self._residents.keys,
            self._last_access,
            self._rnd,
            self.k,
            self.with_replacement,
            protect=protect if protect is not None else _NO_PROTECT,
        )
        if victim is None:  # pragma: no cover - empty resident set
            return
        self._residents.remove(victim)
        del self._last_access[victim]
        self._used -= self._sizes.pop(victim)
        self.stats.evictions += 1
