"""A Redis-fidelity approximated-LRU cache simulator (§5.7 substitute).

Real Redis (``maxmemory-policy allkeys-lru``) does not implement ideal
K-LRU; three mechanisms make it deviate slightly, and all three are
reproduced here so the library's Redis-validation experiment exhibits the
same "simulator vs Redis" gap the paper reports:

* **24-bit LRU clock with coarse resolution** — each object stores a 24-bit
  timestamp that only advances every ``clock_resolution`` requests (Redis:
  1000 ms), so recency comparisons are quantized and wrap around.
* **Eviction pool** — each eviction samples ``maxmemory-samples`` keys and
  merges them into a persistent 16-slot pool ordered by idle time; the
  best candidate across *multiple* rounds is evicted, sharpening the
  approximation beyond one-shot sampling.
* **Locality-biased sampling** — ``dictGetSomeKeys`` starts at a random
  bucket and walks consecutive buckets, so one round's samples are
  correlated.  We model this by sampling a consecutive run of the resident
  array.  Setting ``unbiased_sampling=True`` switches to independent
  uniform draws (Redis's slower ``dictGetRandomKey`` mode), which the paper
  notes matches the ideal K-LRU simulator almost exactly.
"""

from __future__ import annotations

import random

from .._util import RngLike, check_positive, check_sampling_size, ensure_rng
from .base import CacheStats
from .klru import _ResidentSet

__all__ = [
    "EVPOOL_SIZE",
    "LRU_BITS",
    "LRU_CLOCK_MAX",
    "RedisLikeCache",
]


#: Redis constants (server.h / evict.c).
LRU_BITS = 24
LRU_CLOCK_MAX = (1 << LRU_BITS) - 1
EVPOOL_SIZE = 16


class RedisLikeCache:
    """Approximated-LRU cache mirroring Redis's evict.c machinery.

    Parameters
    ----------
    capacity:
        Resident-object budget (Redis's maxmemory, expressed in objects for
    the fixed-size experiments; use ``capacity_bytes`` for byte budgets).
    maxmemory_samples:
        Redis's ``maxmemory-samples`` (default 5).
    clock_resolution:
        Requests per LRU-clock tick; 1 reproduces per-request recency,
        larger values emulate Redis's 1-second resolution relative to
        request rate.
    unbiased_sampling:
        Use independent uniform sampling instead of the consecutive-run
        approximation of ``dictGetSomeKeys``.
    policy:
        ``"allkeys-lru"`` (default; the paper's subject) or
        ``"allkeys-random"`` (Redis's uniform-random eviction, which skips
        the pool and idle-time machinery entirely).
    """

    def __init__(
        self,
        capacity: int,
        maxmemory_samples: int = 5,
        clock_resolution: int = 1,
        unbiased_sampling: bool = False,
        policy: str = "allkeys-lru",
        rng: RngLike = None,
    ) -> None:
        check_positive("capacity", capacity)
        self.capacity = int(capacity)
        self.k = check_sampling_size(maxmemory_samples)
        check_positive("clock_resolution", clock_resolution)
        self.clock_resolution = int(clock_resolution)
        self.unbiased_sampling = bool(unbiased_sampling)
        if policy not in ("allkeys-lru", "allkeys-random"):
            raise ValueError("policy must be 'allkeys-lru' or 'allkeys-random'")
        self.policy = policy
        self._rnd = random.Random(int(ensure_rng(rng).integers(0, 2**63)))
        self._residents = _ResidentSet()
        self._lru_clock_of: dict[int, int] = {}
        self._requests = 0
        # Eviction pool: list of (idle, key), kept sorted ascending by idle;
        # the *last* entry is the best eviction candidate.
        self._pool: list[tuple[int, int]] = []
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._residents)

    def __contains__(self, key: int) -> bool:
        return key in self._residents

    def _lru_clock(self) -> int:
        """Current 24-bit LRU clock value (quantized, wrapping)."""
        return (self._requests // self.clock_resolution) & LRU_CLOCK_MAX

    def _idle_time(self, key: int) -> int:
        """estimateObjectIdleTime: clock distance with wraparound."""
        now = self._lru_clock()
        then = self._lru_clock_of[key]
        if now >= then:
            return now - then
        return (LRU_CLOCK_MAX - then) + now

    # ------------------------------------------------------------------
    def access(self, key: int, size: int = 1) -> bool:
        self._requests += 1
        if key in self._residents:
            self._lru_clock_of[key] = self._lru_clock()
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        if len(self._residents) >= self.capacity:
            self._evict_one()
        self._residents.add(key)
        self._lru_clock_of[key] = self._lru_clock()
        return False

    # ------------------------------------------------------------------
    def _sample_keys(self) -> list[int]:
        """One sampling round: ``maxmemory_samples`` resident keys."""
        residents = self._residents.keys
        n = len(residents)
        kk = min(self.k, n)
        if self.unbiased_sampling:
            return [residents[self._rnd.randrange(n)] for _ in range(kk)]
        # dictGetSomeKeys approximation: a consecutive run from a random
        # start (wrapping), giving the correlated samples of bucket walks.
        start = self._rnd.randrange(n)
        return [residents[(start + j) % n] for j in range(kk)]

    def _pool_populate(self) -> None:
        """evictionPoolPopulate: merge fresh samples into the sorted pool."""
        for key in self._sample_keys():
            if key not in self._residents:
                continue
            idle = self._idle_time(key)
            if any(k == key for _, k in self._pool):
                continue
            if len(self._pool) >= EVPOOL_SIZE and idle <= self._pool[0][0]:
                continue  # worse than the worst pooled candidate
            self._pool.append((idle, key))
            self._pool.sort()
            if len(self._pool) > EVPOOL_SIZE:
                self._pool.pop(0)

    def _evict_one(self) -> None:
        if self.policy == "allkeys-random":
            # evict.c's MAXMEMORY_ALLKEYS_RANDOM: one random key, no pool.
            residents = self._residents.keys
            victim = residents[self._rnd.randrange(len(residents))]
            self._residents.remove(victim)
            del self._lru_clock_of[victim]
            self.stats.evictions += 1
            return
        # Redis loops: populate the pool, then try candidates best-first;
        # stale candidates (already evicted/updated) are skipped.
        while True:
            self._pool_populate()
            while self._pool:
                idle, key = self._pool.pop()
                if key in self._residents:
                    # Redis re-checks staleness via the stored idle time; a
                    # key touched since pooling has smaller current idle and
                    # is requeued rather than evicted.
                    if self._idle_time(key) < idle:
                        continue
                    self._residents.remove(key)
                    del self._lru_clock_of[key]
                    self.stats.evictions += 1
                    return
            # Pool drained without a victim: sample again.
