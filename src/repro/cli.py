"""Command-line interface: generate traces, model MRCs, simulate, compare.

Usage (also via ``python -m repro``):

    repro generate --suite msr --preset src1 -n 100000 -o trace.csv
    repro info trace.csv
    repro model trace.csv --k 5 --rate 0.01 -o mrc.csv
    repro sweep trace.csv --ks 1,5,10 --rates none,0.01 --workers 4 -o grid.csv
    repro sweep trace.csv --ks 1,5 --checkpoint sweep.ckpt --task-timeout 600 \
        --retries 3 --report run_report.json -o grid.csv
    repro fleet t0.csv.gz t1.npz t2.chunks --ks 1,5 --rates none,0.01 \
        --checkpoint-dir fleet.ckpt --report fleet.json -o grids.csv
    repro simulate trace.csv --policy lru --k 5 --points 10
    repro compare trace.csv --k 5 --points 8
    repro classify trace.csv
    repro lint src benchmarks examples --severity error --format json
    repro serve --data-dir /var/lib/repro --port 8080
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np


def _load_trace(path: str):
    from .workloads import io, stream

    p = Path(path)
    if stream.is_chunked_dir(p):
        return stream.ChunkedTraceReader(p).read_all()
    if p.suffix == ".npz":
        return io.load_npz(p)
    return io.load_csv(p)


def _write_curve(curve, out: str | None) -> None:
    lines = ["size,miss_ratio"]
    lines += [f"{s:.0f},{m:.6f}" for s, m in curve.to_rows()]
    text = "\n".join(lines)
    if out:
        Path(out).write_text(text + "\n")
        print(f"wrote {len(curve)} points to {out}")
    else:
        print(text)


# ----------------------------------------------------------------------
def cmd_generate(args: argparse.Namespace) -> int:
    from .workloads import io, msr, twitter, ycsb

    if args.suite == "msr":
        trace = msr.make_trace(
            args.preset, args.requests, seed=args.seed,
            variable_size=args.variable_size, scale=args.scale,
        )
    elif args.suite == "twitter":
        trace = twitter.make_trace(
            args.preset, args.requests, seed=args.seed,
            variable_size=args.variable_size, scale=args.scale,
        )
    elif args.suite == "ycsb":
        if args.preset.upper() == "C":
            trace = ycsb.workload_c(
                args.objects, args.requests, args.alpha, rng=args.seed
            )
        elif args.preset.upper() == "E":
            n_scans = max(1, args.requests // 500)
            trace = ycsb.workload_e(
                args.objects, n_scans, args.alpha,
                max_scan_length=min(args.objects, 1000), rng=args.seed,
            )
        else:
            print(f"unknown YCSB workload {args.preset!r} (use C or E)",
                  file=sys.stderr)
            return 2
    else:  # pragma: no cover - argparse restricts choices
        return 2

    out = Path(args.output)
    if out.suffix == ".npz":
        io.save_npz(trace, out)
    else:
        io.save_csv(trace, out)
    print(f"wrote {trace.name}: {len(trace)} requests, "
          f"{trace.unique_objects()} objects -> {out}")
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    from .workloads.stats import profile_trace

    trace = _load_trace(args.trace)
    print(f"name            : {trace.name}")
    print(f"requests        : {len(trace)}")
    print(f"distinct objects: {trace.unique_objects()}")
    print(f"footprint       : {trace.footprint_bytes()} bytes")
    print(f"mean object size: {trace.mean_object_size():.1f} bytes")
    print(f"uniform sizes   : {trace.is_uniform_size()}")
    if args.profile:
        for label, value in profile_trace(trace).as_rows():
            print(f"{label:18s}: {value}")
    return 0


def cmd_model(args: argparse.Namespace) -> int:
    from .core.model import model_trace

    trace = _load_trace(args.trace)
    rate = args.rate if args.rate and args.rate < 1.0 else None
    result = model_trace(
        trace,
        k=args.k,
        strategy=args.strategy,
        sampling_rate=rate,
        correction=not args.no_correction,
        track_sizes=args.bytes or None,
        seed=args.seed,
    )
    curve = result.byte_mrc() if args.bytes else result.mrc()
    stats = result.stats
    print(f"# K={args.k} strategy={args.strategy} rate={rate or 1.0} "
          f"sampled={stats.requests_sampled}/{stats.requests_seen} "
          f"swaps/update={stats.mean_swaps_per_update:.1f}",
          file=sys.stderr)
    if args.plot:
        from .analysis.plot import ascii_plot

        print(ascii_plot([curve], x_label=f"cache size ({curve.unit})"))
        return 0
    _write_curve(curve, args.output)
    return 0


def _parse_rates(spec: str) -> list[float | None]:
    """``"none,0.01,0.1"`` -> ``[None, 0.01, 0.1]`` (1.0 also means none)."""
    rates: list[float | None] = []
    for token in spec.split(","):
        token = token.strip().lower()
        if not token:
            continue
        if token in ("none", "full", "1", "1.0"):
            rates.append(None)
        else:
            rates.append(float(token))
    return rates or [None]


def cmd_sweep(args: argparse.Namespace) -> int:
    from .engine import ModelSweep

    trace = _load_trace(args.trace)
    ks = [int(t) for t in args.ks.split(",") if t.strip()]
    strategies = [t.strip() for t in args.strategies.split(",") if t.strip()]
    sweep = ModelSweep.grid(
        ks,
        strategies=strategies,
        sampling_rates=_parse_rates(args.rates),
        correction=not args.no_correction,
        seed=args.seed,
    )
    chunk_size = args.chunk_size
    if chunk_size is not None and chunk_size != "auto":
        chunk_size = int(chunk_size)
    results, report = sweep.run_with_report(
        trace,
        max_workers=args.workers,
        max_size=args.max_size,
        task_timeout=args.task_timeout,
        retries=args.retries,
        checkpoint=args.checkpoint,
        chunk_size=chunk_size,
        engine=args.engine,
    )
    print(
        f"# {len(results)} configs x {len(trace)} requests "
        f"(workers={args.workers or 'auto'}, seed={args.seed})",
        file=sys.stderr,
    )
    print(
        f"# run: mode={report.mode} attempts={report.attempts} "
        f"retries={report.retries} timeouts={report.timeouts} "
        f"rebuilds={report.pool_rebuilds} "
        f"degraded={report.degraded_to_serial} "
        f"resumed={report.from_checkpoint} wall={report.wall_time:.2f}s",
        file=sys.stderr,
    )
    if args.report:
        Path(args.report).write_text(report.to_json() + "\n")
        print(f"wrote run report to {args.report}", file=sys.stderr)
    for r in results:
        print(
            f"# {r.config.label():28s} sampled={r.requests_sampled}"
            f"/{r.requests_seen} mr@max={r.miss_ratios[-1]:.4f}",
            file=sys.stderr,
        )
    lines = ["k,strategy,rate,size,miss_ratio"]
    for r in results:
        rate = "" if r.config.sampling_rate is None else f"{r.config.sampling_rate:g}"
        lines += [
            f"{r.config.k},{r.config.strategy},{rate},{s:.0f},{m:.6f}"
            for s, m in zip(r.sizes, r.miss_ratios)
        ]
    text = "\n".join(lines)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {len(lines) - 1} rows to {args.output}")
    else:
        print(text)
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from .engine import FleetSweep

    ks = [int(t) for t in args.ks.split(",") if t.strip()]
    strategies = [t.strip() for t in args.strategies.split(",") if t.strip()]
    fleet = FleetSweep.grid(
        ks,
        strategies=strategies,
        sampling_rates=_parse_rates(args.rates),
        correction=not args.no_correction,
        seed=args.seed,
    )
    results, report = fleet.run(
        args.traces,
        checkpoint_dir=args.checkpoint_dir,
        max_workers=args.workers,
        max_size=args.max_size,
        chunk_size=args.chunk_size,
        task_timeout=args.task_timeout,
        retries=args.retries,
        errors=args.errors,
    )
    print(
        f"# {len(args.traces)} traces x {len(fleet)} configs "
        f"(workers={args.workers or 'auto'}, seed={args.seed}, "
        f"chunk={args.chunk_size})",
        file=sys.stderr,
    )
    print(
        f"# run: mode={report.mode} attempts={report.attempts} "
        f"retries={report.retries} timeouts={report.timeouts} "
        f"rebuilds={report.pool_rebuilds} "
        f"degraded={report.degraded_to_serial} "
        f"resumed-traces={report.from_checkpoint} "
        f"wall={report.wall_time:.2f}s",
        file=sys.stderr,
    )
    for r in results:
        print(
            f"# trace {r.index}: {Path(str(args.traces[r.index])).name} "
            f"resumed={r.resumed_cells}/{len(fleet)} cells "
            f"requests={r.results[0].requests_seen if r.results else 0}",
            file=sys.stderr,
        )
    if args.report:
        payload = fleet.fleet_report(results, report)
        Path(args.report).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote fleet report to {args.report}", file=sys.stderr)
    lines = ["trace,k,strategy,rate,size,miss_ratio"]
    for r in results:
        label = Path(str(args.traces[r.index])).name
        for c in r.results:
            rate = (
                ""
                if c.config.sampling_rate is None
                else f"{c.config.sampling_rate:g}"
            )
            lines += [
                f"{label},{c.config.k},{c.config.strategy},{rate},"
                f"{s:.0f},{m:.6f}"
                for s, m in zip(c.sizes, c.miss_ratios)
            ]
    text = "\n".join(lines)
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {len(lines) - 1} rows to {args.output}")
    else:
        print(text)
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from .policies.mrc import sampled_policy_mrc

    trace = _load_trace(args.trace)
    curve = sampled_policy_mrc(
        trace, args.policy, k=args.k, n_points=args.points,
        ttl=args.ttl, rng=args.seed,
    )
    _write_curve(curve, args.output)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from .core.model import model_trace
    from .mrc.metrics import mean_absolute_error
    from .simulator.sweep import klru_mrc

    trace = _load_trace(args.trace)
    truth = klru_mrc(trace, args.k, n_points=args.points, rng=args.seed)
    pred = model_trace(trace, k=args.k, seed=args.seed).mrc()
    mae = mean_absolute_error(truth, pred)
    print(f"{'size':>12} {'simulated':>10} {'KRR':>10}")
    for s, m in truth.to_rows():
        print(f"{s:12.0f} {m:10.4f} {float(pred(s)):10.4f}")
    print(f"MAE = {mae:.5f}")
    return 0 if mae < args.fail_above else 1


def cmd_lint(args: argparse.Namespace) -> int:
    from .devtools import lint as reprolint

    return reprolint.main(args.lint_args)


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import serve

    return serve(
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        port_file=args.port_file,
        grace=args.grace,
        queue_depth=args.queue_depth,
        snapshot_interval=args.snapshot_interval,
        snapshot_every=args.snapshot_every,
        watchdog_timeout=args.watchdog_timeout,
        max_restarts=args.max_restarts,
        shm_threshold=args.shm_threshold,
    )


def cmd_classify(args: argparse.Namespace) -> int:
    from .analysis.classify import classify_trace

    trace = _load_trace(args.trace)
    c = classify_trace(trace, seed=args.seed)
    print(f"{trace.name}: K1<->LRU gap = {c.gap:.4f} -> Type {c.family} "
          f"({'K-sensitive' if c.k_sensitive else 'K-insensitive'})")
    return 0


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="KRR: model random sampling-based LRU caches (ICPP'21).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    g = sub.add_parser("generate", help="generate a synthetic trace")
    g.add_argument("--suite", choices=["msr", "twitter", "ycsb"], required=True)
    g.add_argument("--preset", required=True,
                   help="msr server / twitter cluster / ycsb workload (C|E)")
    g.add_argument("-n", "--requests", type=int, default=100_000)
    g.add_argument("--objects", type=int, default=10_000,
                   help="object count (ycsb only)")
    g.add_argument("--alpha", type=float, default=0.99, help="zipf skew (ycsb)")
    g.add_argument("--scale", type=float, default=0.25,
                   help="object-count scale (msr/twitter)")
    g.add_argument("--variable-size", action="store_true")
    g.add_argument("--seed", type=int, default=1)
    g.add_argument("-o", "--output", required=True, help=".csv or .npz path")
    g.set_defaults(func=cmd_generate)

    i = sub.add_parser("info", help="print trace statistics")
    i.add_argument("trace")
    i.add_argument("--profile", action="store_true",
                   help="add the structural profile (skew, sequentiality, reuse)")
    i.set_defaults(func=cmd_info)

    m = sub.add_parser("model", help="one-pass KRR MRC prediction")
    m.add_argument("trace")
    m.add_argument("--k", type=int, default=5, help="eviction sampling size")
    m.add_argument("--strategy", choices=["backward", "topdown", "linear"],
                   default="backward")
    m.add_argument("--rate", type=float, default=None,
                   help="spatial sampling rate (omit or 1.0 = no sampling)")
    m.add_argument("--bytes", action="store_true",
                   help="byte-granularity curve (var-KRR)")
    m.add_argument("--no-correction", action="store_true",
                   help="disable the K'=K^1.4 correction")
    m.add_argument("--seed", type=int, default=0)
    m.add_argument("-o", "--output", default=None, help="CSV output path")
    m.add_argument("--plot", action="store_true",
                   help="render an ASCII plot instead of CSV")
    m.set_defaults(func=cmd_model)

    sw = sub.add_parser(
        "sweep", help="parallel grid of KRR configs (shared-memory engine)"
    )
    sw.add_argument("trace")
    sw.add_argument("--ks", default="5", help="comma-separated K values")
    sw.add_argument("--strategies", default="backward",
                    help="comma-separated update strategies")
    sw.add_argument("--rates", default="none",
                    help="comma-separated spatial rates ('none' = unsampled)")
    sw.add_argument("--no-correction", action="store_true",
                    help="disable the K'=K^1.4 correction")
    sw.add_argument("--seed", type=int, default=0,
                    help="sweep seed (per-config seeds derive from it)")
    sw.add_argument("--workers", type=int, default=None,
                    help="process count (default: min(configs, cpus))")
    sw.add_argument("--max-size", type=int, default=None,
                    help="cap the MRC size axis")
    sw.add_argument("--checkpoint", default=None, metavar="PATH",
                    help="JSONL checkpoint: stream finished configs here and "
                         "resume an interrupted sweep by skipping them")
    sw.add_argument("--task-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="kill and retry any config running longer than this")
    sw.add_argument("--retries", type=int, default=2,
                    help="retry budget per config for transient worker "
                         "failures and timeouts (default: 2)")
    sw.add_argument("--chunk-size", default=None, metavar="N|auto",
                    help="grid cells per pool task: batching amortizes "
                         "per-task IPC on small sweeps ('auto' spreads the "
                         "grid evenly over the workers; default: 1). "
                         "Results are identical for any value")
    sw.add_argument("--engine", default="auto",
                    choices=("auto", "scalar", "soa"),
                    help="per-config streaming engine: 'soa' is the "
                         "array-native stack (fastest), 'scalar' the boxed "
                         "per-access loop, 'auto' picks 'soa' whenever the "
                         "config supports it. Draw-for-draw identical "
                         "results either way")
    sw.add_argument("--report", default=None, metavar="PATH",
                    help="write the structured RunReport (attempts, retries, "
                         "timeouts, per-config wall time) as JSON")
    sw.add_argument("-o", "--output", default=None,
                    help="long-format CSV (k,strategy,rate,size,miss_ratio)")
    sw.set_defaults(func=cmd_sweep)

    fl = sub.add_parser(
        "fleet",
        help="config grid over many traces, streamed out-of-core "
             "(resumable at trace and cell level)",
    )
    fl.add_argument("traces", nargs="+",
                    help="trace sources: .csv, .csv.gz, .npz or a "
                         "save_chunked directory; each is streamed inside "
                         "its worker, never fully materialized")
    fl.add_argument("--ks", default="5", help="comma-separated K values")
    fl.add_argument("--strategies", default="backward",
                    help="comma-separated update strategies")
    fl.add_argument("--rates", default="none",
                    help="comma-separated spatial rates ('none' = unsampled)")
    fl.add_argument("--no-correction", action="store_true",
                    help="disable the K'=K^1.4 correction")
    fl.add_argument("--seed", type=int, default=0,
                    help="fleet seed (per-trace grid seeds and per-cell "
                         "model seeds derive from it by position)")
    fl.add_argument("--workers", type=int, default=None,
                    help="process count (default: min(traces, cpus))")
    fl.add_argument("--max-size", type=int, default=None,
                    help="cap the MRC size axis")
    fl.add_argument("--chunk-size", type=int, default=1 << 20,
                    metavar="ROWS",
                    help="streaming chunk rows per worker (bounds worker "
                         "memory; results are identical for any value; "
                         "default: 1Mi)")
    fl.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                    help="hierarchical checkpoints: a fleet manifest plus "
                         "one JSONL per trace; rerunning with the same "
                         "directory resumes finished traces and, within a "
                         "partially-finished trace, finished grid cells")
    fl.add_argument("--task-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="kill and retry any trace running longer than this")
    fl.add_argument("--retries", type=int, default=2,
                    help="retry budget per trace for transient worker "
                         "failures and timeouts (default: 2)")
    fl.add_argument("--errors", default="strict",
                    choices=("strict", "skip"),
                    help="malformed-CSV-row handling inside the stream "
                         "readers (default: strict)")
    fl.add_argument("--report", default=None, metavar="PATH",
                    help="write the consolidated fleet report (run stats "
                         "plus per-trace resume counters) as JSON")
    fl.add_argument("-o", "--output", default=None,
                    help="long-format CSV "
                         "(trace,k,strategy,rate,size,miss_ratio)")
    fl.set_defaults(func=cmd_fleet)

    s = sub.add_parser("simulate", help="ground-truth sweep for any policy")
    s.add_argument("trace")
    s.add_argument("--policy", default="lru",
                   help="lru|lfu|hyperbolic|hyperbolic-size|hit-density|fifo")
    s.add_argument("--k", type=int, default=5)
    s.add_argument("--points", type=int, default=10)
    s.add_argument("--ttl", type=int, default=None,
                   help="object TTL in requests")
    s.add_argument("--seed", type=int, default=0)
    s.add_argument("-o", "--output", default=None)
    s.set_defaults(func=cmd_simulate)

    c = sub.add_parser("compare", help="KRR vs simulated K-LRU (MAE)")
    c.add_argument("trace")
    c.add_argument("--k", type=int, default=5)
    c.add_argument("--points", type=int, default=8)
    c.add_argument("--seed", type=int, default=0)
    c.add_argument("--fail-above", type=float, default=1.0,
                   help="exit nonzero if MAE exceeds this")
    c.set_defaults(func=cmd_compare)

    ln = sub.add_parser(
        "lint",
        help="reprolint: determinism & shm-safety static analysis",
        add_help=False,
    )
    # All arguments pass straight through to repro.devtools.lint.main so the
    # standalone `python -m repro.devtools.lint` and `repro lint` stay one tool.
    ln.add_argument("lint_args", nargs=argparse.REMAINDER)
    ln.set_defaults(func=cmd_lint)

    sv = sub.add_parser(
        "serve",
        help="multi-tenant online-modeling daemon (see docs/SERVICE.md)",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=0,
                    help="0 binds an ephemeral port (printed on stdout)")
    sv.add_argument("--data-dir", default="repro-service-data",
                    help="tenant registry, WALs and snapshots live here")
    sv.add_argument("--port-file", default=None, metavar="PATH",
                    help="also write the bound port number to this file")
    sv.add_argument("--grace", type=float, default=10.0,
                    help="seconds to wait for workers on graceful shutdown")
    sv.add_argument("--queue-depth", type=int, default=64,
                    help="bounded ingest queue per tenant (full = 429)")
    sv.add_argument("--snapshot-interval", type=float, default=30.0,
                    help="seconds between worker snapshots")
    sv.add_argument("--snapshot-every", type=int, default=None, metavar="N",
                    help="also snapshot every N applied batches")
    sv.add_argument("--watchdog-timeout", type=float, default=10.0,
                    help="seconds before a hung worker is killed")
    sv.add_argument("--max-restarts", type=int, default=5,
                    help="worker deaths tolerated before a tenant is "
                         "marked failed (snapshot-serving mode)")
    sv.add_argument("--shm-threshold", type=int, default=4096,
                    help="batches >= this many requests cross to the worker "
                         "via shared memory instead of the queue")
    sv.set_defaults(func=cmd_serve)

    cl = sub.add_parser("classify", help="Type A/B (K-sensitivity) classification")
    cl.add_argument("trace")
    cl.add_argument("--seed", type=int, default=0)
    cl.set_defaults(func=cmd_classify)

    return parser


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # argparse.REMAINDER refuses option-like tokens before the first
    # positional ("repro lint --list-rules"), so lint dispatches directly.
    if argv[:1] == ["lint"]:
        from .devtools import lint as reprolint

        return reprolint.main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
