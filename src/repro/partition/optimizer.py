"""Cache partitioning from miss ratio curves (the LAMA use case).

The paper motivates MRCs with cache memory management — LAMA (ATC'15) and
pRedis (SoCC'19) size memcached/Redis pools by optimizing over per-tenant
MRCs.  This module closes that loop for KRR: given each tenant's predicted
MRC and a total budget, split the budget to minimize total (weighted)
misses.

Two optimizers:

* :func:`optimal_partition_dp` — exact dynamic program over budget units,
  ``O(T * B^2)`` for T tenants and B budget units.  Handles arbitrary
  (even non-convex) MRCs.
* :func:`greedy_partition` — marginal-gain greedy, ``O(B log T)``; optimal
  when every miss-rate curve is convex (diminishing returns), which real
  MRCs mostly are; fast enough for online repartitioning.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .._util import check_positive
from ..mrc.curve import MissRatioCurve

__all__ = [
    "PartitionResult",
    "Tenant",
    "equal_partition",
    "greedy_partition",
    "miss_cost_of",
    "optimal_partition_dp",
]



@dataclass(frozen=True)
class Tenant:
    """One workload sharing the cache.

    ``request_rate`` weights the tenant's misses (requests per unit time,
    or any relative traffic weight); ``curve`` maps its cache allocation to
    its miss ratio.
    """

    name: str
    curve: MissRatioCurve
    request_rate: float = 1.0

    def miss_cost(self, allocation: float) -> float:
        """Weighted miss rate at ``allocation`` cache units."""
        if allocation <= 0:
            return self.request_rate * 1.0
        return self.request_rate * float(self.curve(allocation))


@dataclass(frozen=True)
class PartitionResult:
    """The optimizer's output."""

    allocations: dict[str, int]
    total_miss_cost: float
    budget: int

    def allocation_of(self, name: str) -> int:
        return self.allocations[name]


def _unit_costs(tenants: Sequence[Tenant], budget: int, unit: int) -> np.ndarray:
    """cost[t, b] = tenant t's weighted miss rate with b budget units."""
    n_units = budget // unit
    costs = np.empty((len(tenants), n_units + 1))
    for t, tenant in enumerate(tenants):
        for b in range(n_units + 1):
            costs[t, b] = tenant.miss_cost(b * unit)
    return costs


def optimal_partition_dp(
    tenants: Sequence[Tenant],
    budget: int,
    unit: int = 1,
) -> PartitionResult:
    """Exact optimal split of ``budget`` cache units among tenants.

    ``unit`` coarsens the allocation grid (allocations are multiples of
    ``unit``) to keep the DP tractable for large budgets.
    """
    check_positive("budget", budget)
    check_positive("unit", unit)
    if not tenants:
        raise ValueError("need at least one tenant")
    n_units = budget // unit
    costs = _unit_costs(tenants, budget, unit)

    # dp[b] = min total cost using the first t tenants and b units.
    dp = costs[0].copy()
    # Monotone cleanup: giving a tenant more cache never hurts.
    np.minimum.accumulate(dp, out=dp)
    choice = [np.arange(n_units + 1)]  # units given to tenant 0 per state
    for t in range(1, len(tenants)):
        new_dp = np.full(n_units + 1, np.inf)
        new_choice = np.zeros(n_units + 1, dtype=np.int64)
        tc = costs[t]
        for b in range(n_units + 1):
            # Give tenant t exactly g units, previous tenants b - g.
            totals = tc[: b + 1] + dp[b::-1]
            g = int(np.argmin(totals))
            new_dp[b] = totals[g]
            new_choice[b] = g
        dp = new_dp
        choice.append(new_choice)

    # Walk choices back.
    allocations: dict[str, int] = {}
    b = n_units
    for t in range(len(tenants) - 1, 0, -1):
        g = int(choice[t][b])
        allocations[tenants[t].name] = g * unit
        b -= g
    allocations[tenants[0].name] = b * unit
    total = sum(
        tenant.miss_cost(allocations[tenant.name]) for tenant in tenants
    )
    return PartitionResult(allocations, total, budget)


def greedy_partition(
    tenants: Sequence[Tenant],
    budget: int,
    unit: int = 1,
) -> PartitionResult:
    """Marginal-gain greedy: repeatedly give one unit where it saves most.

    Optimal for convex miss curves; near-optimal in practice.  Lookahead of
    one unit; ties broken arbitrarily.
    """
    check_positive("budget", budget)
    check_positive("unit", unit)
    if not tenants:
        raise ValueError("need at least one tenant")
    n_units = budget // unit
    alloc = {t.name: 0 for t in tenants}
    # Max-heap of (gain of next unit) per tenant.
    heap: list[tuple[float, int, int]] = []  # (-gain, tenant idx, current units)
    for i, t in enumerate(tenants):
        gain = t.miss_cost(0) - t.miss_cost(unit)
        heapq.heappush(heap, (-gain, i, 0))
    for _ in range(n_units):
        if not heap:
            break
        neg_gain, i, units = heapq.heappop(heap)
        tenant = tenants[i]
        alloc[tenant.name] += unit
        new_units = units + 1
        gain = tenant.miss_cost(new_units * unit) - tenant.miss_cost(
            (new_units + 1) * unit
        )
        heapq.heappush(heap, (-gain, i, new_units))
    total = sum(t.miss_cost(alloc[t.name]) for t in tenants)
    return PartitionResult(alloc, total, budget)


def equal_partition(tenants: Sequence[Tenant], budget: int) -> PartitionResult:
    """The naive baseline: split the budget evenly."""
    if not tenants:
        raise ValueError("need at least one tenant")
    share = budget // len(tenants)
    alloc = {t.name: share for t in tenants}
    total = sum(t.miss_cost(share) for t in tenants)
    return PartitionResult(alloc, total, budget)


def miss_cost_of(tenants: Sequence[Tenant], allocations: dict[str, int]) -> float:
    """Total weighted miss rate of an arbitrary allocation."""
    return sum(t.miss_cost(allocations.get(t.name, 0)) for t in tenants)
