"""Cache partitioning over KRR-predicted MRCs (the LAMA/pRedis use case)."""

from .optimizer import (
    PartitionResult,
    Tenant,
    equal_partition,
    greedy_partition,
    miss_cost_of,
    optimal_partition_dp,
)

__all__ = [
    "PartitionResult",
    "Tenant",
    "equal_partition",
    "greedy_partition",
    "miss_cost_of",
    "optimal_partition_dp",
]
