"""NumPy-vectorized batch kernels for trace-global hot paths.

The modeling stacks in :mod:`repro.stack` are exact but per-access: every
request costs Python dispatch, and Olken's Fenwick formulation spends
``O(log N)`` interpreted loop iterations per reference.  This package
reformulates the trace-global computations as whole-array NumPy passes:

* :mod:`repro.kernels.prep` — one-time trace preparation (dense key
  factorization, previous/next-occurrence indices, per-chunk
  first/last-occurrence masks), the raw material every batch kernel and
  :class:`repro.engine.plan.TracePlan` builds on.
* :mod:`repro.kernels.olken` — exact LRU stack distances (object and byte
  granularity) for a whole trace in a handful of vectorized passes,
  bit-identical to the per-access oracles in :mod:`repro.stack.lru_stack`.
"""

from __future__ import annotations

from .olken import batch_stack_distances, prefix_leq
from .prep import (
    chunk_occurrence_masks,
    factorize_keys,
    next_occurrence,
    prev_occurrence,
)

__all__ = [
    "batch_stack_distances",
    "chunk_occurrence_masks",
    "factorize_keys",
    "next_occurrence",
    "prefix_leq",
    "prev_occurrence",
]
