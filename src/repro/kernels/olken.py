"""Batched exact LRU stack distances: Olken's oracle as NumPy passes.

The per-access oracles in :mod:`repro.stack.lru_stack` pay interpreted
Python per reference — ``O(log N)`` Fenwick loop iterations each for
:class:`~repro.stack.lru_stack.TreeLRUStack`.  This module computes the
same distances for a *whole trace at once* from a purely offline
reformulation:

With ``P[i]`` the index of request ``i``'s previous access to the same key
(-1 when cold), the object-granularity stack distance is the number of
distinct keys touched in the reuse window, which reduces to a prefix
dominance count (every non-negative value appears in ``P`` at most once,
so counting positions ``j < i`` with ``P[j] <= P[i]`` counts window-first
occurrences plus everything at or below the window start)::

    d(i) = #{j < i : P[j] <= P[i]} - P[i]

The byte-granularity distance subtracts, from the total bytes requested in
the window, the bytes of window-internal *re*-accesses (a request ``j < i``
with ``P[j] > P[i]`` is exactly a re-access whose superseded copy sat at
``P[j]`` inside the window)::

    d_byte(i) = sum(size[P[i]:i]) - sum_{j<i, P[j] > P[i]} size[P[j]]

Both prefix statistics — the count of dominated predecessors and the
weighted sum over them — come from one **chunked merge-doubling pass**:
base chunks of ``base_block`` requests are resolved by direct broadcast
comparison, then block-sorted chunks are merged level by level (a 2D
stable argsort per level merges every pair of adjacent chunks at once),
accumulating cross-chunk contributions from exclusive cumulative sums.
``O(N log**2 N)`` work, but every op is a whole-array NumPy pass — ~30x
faster than the per-access Fenwick loop at 500k requests, bit-identical
output (enforced by property tests against the linked-list oracle).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .prep import prev_occurrence

__all__ = [
    "batch_stack_distances",
    "prefix_leq",
]


_INT64_MAX = np.iinfo(np.int64).max

#: Default base-chunk size for the merge-doubling pass.  Chunks up to this
#: size are resolved by direct broadcast comparison (O(chunk) vectorized
#: rows); larger scales go through argsort merge levels.  64-256 all
#: perform within a few percent of each other; 128 is the sweet spot
#: measured on 500k-request traces.
DEFAULT_BASE_BLOCK = 128


def prefix_leq(
    values: np.ndarray,
    weights: Optional[np.ndarray] = None,
    base_block: int = DEFAULT_BASE_BLOCK,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Per-element dominated-prefix statistics, fully vectorized.

    Returns ``(counts, wsums)`` where ``counts[i] = #{j < i : v[j] <= v[i]}``
    and ``wsums[i] = sum_{j < i, v[j] <= v[i]} w[j]`` (``None`` when no
    weights are given).  Ties resolve to "counted", matching the ``<=``;
    the only repeated value the stack-distance caller produces is -1.
    """
    values = np.ascontiguousarray(values, dtype=np.int64)
    n = int(values.shape[0])
    weighted = weights is not None
    counts = np.zeros(n, dtype=np.int64)
    wsums: Optional[np.ndarray] = np.zeros(n, dtype=np.int64) if weighted else None
    if n <= 1:
        return counts, wsums
    if values.max() >= _INT64_MAX:
        raise ValueError("values must be < int64 max (reserved for padding)")
    base = 1 << max(1, (int(base_block) - 1).bit_length())
    m = base
    while m < n:
        m <<= 1
    # Padded working copies: the tail pads with +inf / weight 0, which can
    # never count toward a real element's prefix statistics.
    v = np.full(m, _INT64_MAX, dtype=np.int64)
    v[:n] = values
    cnt = np.zeros(m, dtype=np.int64)
    v2 = v.reshape(-1, base)
    if weighted:
        w = np.zeros(m, dtype=np.int64)
        w[:n] = weights
        ws = np.zeros(m, dtype=np.int64)
        w2 = w.reshape(-1, base)
    # Base chunks: direct prefix comparison, one vectorized row per offset.
    cnt2 = cnt.reshape(-1, base)
    for i in range(1, base):
        cmp = v2[:, :i] <= v2[:, i : i + 1]
        cnt2[:, i] = cmp.sum(axis=1)
        if weighted:
            ws.reshape(-1, base)[:, i] = np.where(cmp, w2[:, :i], 0).sum(axis=1)
    # Merge-doubling levels over block-sorted index order: each level
    # merges every pair of adjacent sorted chunks with one stable argsort,
    # and right-chunk elements absorb their left-chunk contributions from
    # exclusive cumulative sums over the merged rows.
    order = (
        np.argsort(v2, axis=1, kind="stable")
        + (np.arange(v2.shape[0], dtype=np.int64) * base)[:, None]
    ).reshape(-1)
    b = base
    while b < m:
        nb = 2 * b
        idx = order.reshape(-1, nb)
        perm = np.argsort(v[idx], axis=1, kind="stable")
        midx = np.take_along_axis(idx, perm, axis=1)
        fromleft = perm < b
        lcnt_excl = np.cumsum(fromleft, axis=1) - fromleft
        right = ~fromleft
        gi = midx[right]
        cnt[gi] += lcnt_excl[right]
        if weighted:
            wl = np.where(fromleft, w[midx], 0)
            ws[gi] += (np.cumsum(wl, axis=1) - wl)[right]
        order = midx.reshape(-1)
        b = nb
    counts[:] = cnt[:n]
    if weighted:
        assert wsums is not None
        wsums[:] = ws[:n]
    return counts, wsums


def batch_stack_distances(
    keys: np.ndarray,
    sizes: Optional[np.ndarray] = None,
    *,
    prev: Optional[np.ndarray] = None,
    base_block: int = DEFAULT_BASE_BLOCK,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Exact pre-access LRU stack distances for a whole trace.

    Returns ``(distances, byte_distances)``: 1-based object-granularity
    stack positions with -1 marking cold accesses, elementwise identical
    to streaming the trace through
    :class:`~repro.stack.lru_stack.LinkedListLRUStack` /
    :class:`~repro.stack.lru_stack.TreeLRUStack`.  ``byte_distances`` is
    ``None`` unless ``sizes`` is given, in which case it is the inclusive
    byte-level distance (bytes of all more recent objects at their
    last-access sizes, plus the object's own pre-access size).

    ``prev`` lets a cached previous-occurrence column (a
    :class:`~repro.engine.plan.TracePlan` column) skip the factorization
    argsort.
    """
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    n = int(keys.shape[0])
    if prev is None:
        prev = prev_occurrence(keys)
    elif int(prev.shape[0]) != n:
        raise ValueError("prev column length does not match keys")
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, (np.empty(0, dtype=np.int64) if sizes is not None else None)
    warm = prev >= 0
    if sizes is None:
        counts, _ = prefix_leq(prev, base_block=base_block)
        return np.where(warm, counts - prev, np.int64(-1)), None
    sizes = np.ascontiguousarray(sizes, dtype=np.int64)
    if int(sizes.shape[0]) != n:
        raise ValueError("sizes length does not match keys")
    # Weight of request j: the superseded copy's size (its key's size as
    # of the previous access), 0 for cold requests.
    w = np.zeros(n, dtype=np.int64)
    w[warm] = sizes[prev[warm]]
    counts, wsums = prefix_leq(prev, w, base_block=base_block)
    assert wsums is not None
    size_cumsum = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(sizes)))
    window_bytes = size_cumsum[:-1] - size_cumsum[np.maximum(prev, 0)]
    # sum_{j<i, P[j] > P[i]} w[j] == (all prior weight) - (dominated weight)
    w_cumsum = np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(w)))[:-1]
    stale_bytes = w_cumsum - wsums
    distances = np.where(warm, counts - prev, np.int64(-1))
    byte_distances = np.where(warm, window_bytes - stale_bytes, np.int64(-1))
    return distances, byte_distances
