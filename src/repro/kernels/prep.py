"""Vectorized trace-preparation primitives.

Everything here is a pure function of the key column: computed once per
trace, cached by :class:`repro.engine.plan.TracePlan`, and shared across
workers as zero-copy columns.  All outputs are plain ``int64`` arrays so
they can live in a :class:`~repro.engine.shm.SharedTraceStore` block.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "chunk_occurrence_masks",
    "factorize_keys",
    "next_occurrence",
    "prev_occurrence",
]


def factorize_keys(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Dense factorization: ``(unique_keys, key_ids)``.

    ``key_ids`` maps every request to a compact id in ``[0, U)`` such that
    ``unique_keys[key_ids] == keys``; one sort-based pass over the column.
    """
    unique_keys, inverse = np.unique(
        np.ascontiguousarray(keys, dtype=np.int64), return_inverse=True
    )
    return unique_keys, np.ascontiguousarray(inverse, dtype=np.int64)


def prev_occurrence(keys: np.ndarray) -> np.ndarray:
    """Index of each request's previous access to the same key (-1 = cold).

    Works on raw keys or dense ids alike: one stable argsort groups equal
    keys while preserving request order within each group, so consecutive
    entries of a group are consecutive occurrences.
    """
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    n = int(keys.shape[0])
    prev = np.full(n, -1, dtype=np.int64)
    if n > 1:
        order = np.argsort(keys, kind="stable")
        same = keys[order[1:]] == keys[order[:-1]]
        prev[order[1:][same]] = order[:-1][same]
    return prev


def next_occurrence(keys: np.ndarray) -> np.ndarray:
    """Index of each request's next access to the same key (``n`` = last)."""
    keys = np.ascontiguousarray(keys, dtype=np.int64)
    n = int(keys.shape[0])
    nxt = np.full(n, n, dtype=np.int64)
    if n > 1:
        order = np.argsort(keys, kind="stable")
        same = keys[order[1:]] == keys[order[:-1]]
        nxt[order[:-1][same]] = order[1:][same]
    return nxt


def chunk_occurrence_masks(
    prev: np.ndarray, nxt: np.ndarray, chunk_size: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-chunk first/last-occurrence masks for chunked kernels.

    For a trace split into contiguous chunks of ``chunk_size`` requests,
    returns boolean arrays ``(first_in_chunk, last_in_chunk)``:
    ``first_in_chunk[i]`` is True iff request ``i`` is its key's first
    occurrence within its own chunk (its previous occurrence, if any, lies
    in an earlier chunk), and symmetrically for ``last_in_chunk``.  These
    are exactly the boundary sets a chunk-local pass must reconcile with
    global state.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    n = int(prev.shape[0])
    if nxt.shape[0] != n:
        raise ValueError("prev and nxt must have the same length")
    starts = (np.arange(n, dtype=np.int64) // chunk_size) * chunk_size
    first_in_chunk = prev < starts
    last_in_chunk = nxt >= starts + chunk_size
    return first_in_chunk, last_in_chunk
