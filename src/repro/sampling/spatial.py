"""SHARDS-style uniform spatial sampling (§2.4).

A reference with key ``L`` is kept iff ``hash(L) mod P < T``; the effective
sampling rate is ``R = T / P``.  Because the decision depends only on the
key, *all* references to a sampled object are kept — exactly the property
stack-distance analysis needs (a sampled object's reuse structure survives
intact, just thinned by a factor ``R`` in the distance axis).

Two variants:

* :class:`SpatialSampler` — fixed rate ``R`` (the paper's default, 0.001,
  raised for small working sets to keep >= ``min_objects`` sampled).
* :class:`FixedSizeSpatialSampler` — SHARDS's ``s_max`` mode: the threshold
  self-lowers so at most ``s_max`` distinct objects are tracked; consumers
  must evict objects whose hash rises above the new threshold and rescale.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

import numpy as np

from .._util import check_in_range, check_positive
from .hashing import splitmix64

__all__ = [
    "DEFAULT_MODULUS",
    "FixedSizeSpatialSampler",
    "SpatialSampler",
    "choose_rate",
]


#: Default modulus (2^24, as in the SHARDS paper's ``hash(L) mod P < T``).
DEFAULT_MODULUS = 1 << 24


class SpatialSampler:
    """Fixed-rate spatial filter: keep key iff ``hash(key) mod P < T``."""

    def __init__(
        self,
        rate: float,
        modulus: int = DEFAULT_MODULUS,
        seed: int = 0,
    ) -> None:
        check_in_range("rate", rate, 0.0, 1.0, low_open=True)
        check_positive("modulus", modulus)
        self.modulus = int(modulus)
        self.threshold = max(1, int(round(rate * self.modulus)))
        self.seed = int(seed)

    @property
    def rate(self) -> float:
        """Effective sampling rate ``R = T / P``."""
        return self.threshold / self.modulus

    @property
    def scale(self) -> float:
        """Distance/count rescale factor ``1 / R``."""
        return self.modulus / self.threshold

    def keep(self, key: int) -> bool:
        """Sampling decision for one key."""
        return splitmix64(key, self.seed) % self.modulus < self.threshold

    def mask(self, keys: np.ndarray, hashes: Optional[np.ndarray] = None) -> np.ndarray:
        """Vectorized sampling decisions for an array of keys.

        ``hashes`` supplies a precomputed ``splitmix64(keys, seed)`` column
        (e.g. a :class:`~repro.engine.plan.TracePlan` hash column) so the
        keys are not re-hashed; it must have been built with this
        sampler's seed.
        """
        h = (
            hashes
            if hashes is not None
            else splitmix64(np.asarray(keys, dtype=np.int64), self.seed)
        )
        return (h % np.uint64(self.modulus)) < np.uint64(self.threshold)

    def filter_indices(
        self, keys: np.ndarray, hashes: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Indices of sampled requests within ``keys``."""
        return np.flatnonzero(self.mask(keys, hashes))

    def state_dict(self) -> Dict[str, Any]:
        """Exact filter parameters — ``threshold`` is stored directly so a
        restored sampler keeps/drops the identical key set even when the
        rate was derived (``"auto"``) rather than round."""
        return {
            "threshold": self.threshold,
            "modulus": self.modulus,
            "seed": self.seed,
        }

    @classmethod
    def from_state(cls, state: Dict[str, Any]) -> "SpatialSampler":
        sampler = cls.__new__(cls)
        sampler.modulus = int(state["modulus"])
        sampler.threshold = int(state["threshold"])
        sampler.seed = int(state["seed"])
        return sampler


def choose_rate(
    working_set_size: int,
    default_rate: float = 0.001,
    min_objects: int = 8_000,
) -> float:
    """The paper's rate-selection rule (§5.3).

    Default ``R = 0.001``, but raise it for small working sets so at least
    ``min_objects`` distinct objects are expected in the sample (the paper
    ensures >= 8K sampled objects; workloads under 8M objects get a higher
    rate).
    """
    check_positive("working_set_size", working_set_size)
    if working_set_size * default_rate >= min_objects:
        return default_rate
    return min(1.0, min_objects / working_set_size)


class FixedSizeSpatialSampler:
    """SHARDS ``s_max`` mode: adaptively lower the threshold.

    Track the hash value of every distinct sampled object; when the count
    exceeds ``s_max``, drop the object(s) with the largest hash and lower
    the threshold to exclude them from now on.  ``on_evict(key)`` lets the
    consumer (a stack or histogram) remove state for ejected objects.
    """

    def __init__(
        self,
        s_max: int,
        modulus: int = DEFAULT_MODULUS,
        seed: int = 0,
        on_evict: Optional[Callable[[int], None]] = None,
    ) -> None:
        check_positive("s_max", s_max)
        self.s_max = int(s_max)
        self.modulus = int(modulus)
        self.threshold = self.modulus  # start by keeping everything
        self.seed = int(seed)
        self.on_evict = on_evict
        self._tracked: dict[int, int] = {}  # key -> hash mod P

    @property
    def rate(self) -> float:
        return self.threshold / self.modulus

    @property
    def scale(self) -> float:
        return self.modulus / self.threshold

    def __len__(self) -> int:
        return len(self._tracked)

    def offer(self, key: int) -> bool:
        """Present one reference; returns True if it should be processed."""
        return self.offer_hashed(key, int(splitmix64(key, self.seed)))

    def offer_hashed(self, key: int, hashed: int) -> bool:
        """:meth:`offer` with the key's ``splitmix64`` hash precomputed.

        Lets batch consumers hash a whole key column vectorized (or reuse
        a :class:`~repro.engine.plan.TracePlan` hash column) and stream
        only the adaptive-threshold decision, which is inherently
        sequential.
        """
        h = hashed % self.modulus
        if h >= self.threshold:
            return False
        if key not in self._tracked:
            self._tracked[key] = h
            if len(self._tracked) > self.s_max:
                self._shrink()
                # The key itself may have been ejected by the shrink.
                if key not in self._tracked:
                    return False
        return True

    def state_dict(self) -> Dict[str, Any]:
        return {
            "s_max": self.s_max,
            "modulus": self.modulus,
            "threshold": self.threshold,
            "seed": self.seed,
            "tracked": [[int(k), int(h)] for k, h in self._tracked.items()],
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        if int(state["s_max"]) != self.s_max or int(state["modulus"]) != self.modulus:
            raise ValueError("fixed-size sampler configuration mismatch")
        self.threshold = int(state["threshold"])
        self.seed = int(state["seed"])
        self._tracked = {int(k): int(h) for k, h in state["tracked"]}

    def _shrink(self) -> None:
        """Eject the max-hash object and lower the threshold below it."""
        victim_key = max(self._tracked, key=self._tracked.__getitem__)
        victim_hash = self._tracked.pop(victim_key)
        self.threshold = victim_hash  # strictly exclude the victim's level
        if self.on_evict is not None:
            self.on_evict(victim_key)
        # Eject any other objects at or above the new threshold (ties).
        stale = [k for k, h in self._tracked.items() if h >= self.threshold]
        for k in stale:
            del self._tracked[k]
            if self.on_evict is not None:
                self.on_evict(k)
