"""Deterministic 64-bit integer hashing for spatial sampling.

Spatial sampling needs a hash that (a) is deterministic across runs so the
same keys are always sampled, and (b) spreads arbitrary integer keys
uniformly.  We use splitmix64's finalizer (Steele et al.), which passes the
usual avalanche tests and vectorizes cleanly in NumPy.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "hash_to_unit",
    "splitmix64",
]


_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)
_C1 = np.uint64(0xBF58476D1CE4E5B9)
_C2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)

# Plain-int mirrors of the constants for the scalar fast path.
_IMASK = 0xFFFFFFFFFFFFFFFF
_IC1 = 0xBF58476D1CE4E5B9
_IC2 = 0x94D049BB133111EB
_IGOLDEN = 0x9E3779B97F4A7C15


def splitmix64(keys: np.ndarray | int, seed: int = 0) -> np.ndarray | int:
    """Hash integer key(s) to uniform 64-bit values.

    Accepts a scalar or an array; returns the same shape.  ``seed`` offsets
    the input so independent sampling decisions can be derived from one key.

    The scalar path runs in pure Python integers (masked to 64 bits, which
    is exactly ``uint64`` wraparound) — allocating a 0-d NumPy array per
    streamed request made per-key sampling the dominant cost of streaming
    filters.  Scalar and array paths agree bit-for-bit (regression-tested).
    """
    if isinstance(keys, (int, np.integer)):
        z = (int(keys) + _IGOLDEN * (int(seed) + 1)) & _IMASK
        z = ((z ^ (z >> 30)) * _IC1) & _IMASK
        z = ((z ^ (z >> 27)) * _IC2) & _IMASK
        return z ^ (z >> 31)
    x = np.asarray(keys, dtype=np.uint64)
    with np.errstate(over="ignore"):
        z = (x + _GOLDEN * np.uint64(seed + 1)) & _MASK
        z = (z ^ (z >> np.uint64(30))) * _C1 & _MASK
        z = (z ^ (z >> np.uint64(27))) * _C2 & _MASK
        z = z ^ (z >> np.uint64(31))
    if np.isscalar(keys) or z.ndim == 0:
        return int(z)
    return z


def hash_to_unit(keys: np.ndarray | int, seed: int = 0) -> np.ndarray | float:
    """Hash key(s) to floats uniform on [0, 1) — handy for threshold tests."""
    h = splitmix64(keys, seed)
    if np.isscalar(h):
        return h / 2.0**64
    return np.asarray(h, dtype=np.float64) / 2.0**64
