"""Spatial sampling substrate (SHARDS-style key-hash filters)."""

from .hashing import hash_to_unit, splitmix64
from .spatial import (
    DEFAULT_MODULUS,
    FixedSizeSpatialSampler,
    SpatialSampler,
    choose_rate,
)

__all__ = [
    "DEFAULT_MODULUS",
    "FixedSizeSpatialSampler",
    "SpatialSampler",
    "choose_rate",
    "hash_to_unit",
    "splitmix64",
]
