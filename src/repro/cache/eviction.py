"""The shared K-sampling eviction core (§3, Redis ``maxmemory-samples``).

One policy, two consumers: the ground-truth simulators in
:mod:`repro.simulator.klru` and the production
:class:`~repro.cache.lru.SamplingLRUCache` both pick victims through
:func:`select_victim`, so "the model's cache" and "the cache you deploy"
are the exact same eviction law — draw-for-draw, not just in spirit.

The core is deliberately tiny and dependency-free: a resident set with
O(1) insert / swap-remove / uniform indexing, and a victim selector that
samples ``K`` residents (with replacement — Redis semantics,
Proposition 1 — or without, Proposition 2) and returns the least
recently used of the sample.

PRNG contract
-------------
``select_victim`` consumes exactly ``K`` ``rnd.randrange`` draws in
with-replacement mode and exactly one ``rnd.sample`` draw otherwise,
regardless of ``protect`` — callers that inline the same loop for speed
(``KLRUCache.access_many``) stay bit-identical to callers that delegate.

Protect semantics
-----------------
``protect`` shields one key (the key that triggered the eviction) while
*alternatives exist*: sampled draws that hit it are skipped whenever the
resident set holds more than one key, and if every draw hit the
protected key a linear fallback scan picks any other resident.  When the
protected key is the lone resident it *is* returned — a cache whose only
object outgrew the budget must drop that object rather than stay over
budget forever (the ``ByteKLRUCache`` lone-resident bug this module's
extraction fixed).
"""

from __future__ import annotations

import random
from typing import Dict, Hashable, List, Optional

__all__ = [
    "NO_PROTECT",
    "ResidentSet",
    "select_victim",
]


class _NoProtect:
    """Sentinel: no key is shielded (distinct from a legitimate ``None`` key)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NO_PROTECT"


#: Pass as ``protect`` (the default) when no key should be shielded.
NO_PROTECT: Hashable = _NoProtect()


class ResidentSet:
    """Array + index map: O(1) insert, remove, and uniform sampling.

    ``keys`` is the dense array the victim selector indexes uniformly;
    ``index`` maps key -> position for swap-remove.  Keys may be any
    hashable (the simulators use ints; the production cache uses
    whatever the application does).
    """

    __slots__ = ("keys", "index")

    def __init__(self) -> None:
        self.keys: List[Hashable] = []
        self.index: Dict[Hashable, int] = {}

    def __len__(self) -> int:
        return len(self.keys)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.index

    def add(self, key: Hashable) -> None:
        self.index[key] = len(self.keys)
        self.keys.append(key)

    def remove(self, key: Hashable) -> None:
        i = self.index.pop(key)
        last = self.keys.pop()
        if last != key:
            self.keys[i] = last
            self.index[last] = i


def select_victim(
    keys: List[Hashable],
    last_access: Dict[Hashable, int],
    rnd: random.Random,
    k: int,
    with_replacement: bool,
    protect: Hashable = NO_PROTECT,
) -> Optional[Hashable]:
    """Pick the sampled-LRU victim among ``keys``.

    Parameters
    ----------
    keys:
        Dense resident-key array (a :attr:`ResidentSet.keys`); must be
        non-empty.
    last_access:
        key -> monotone access-clock value; smaller is older.
    rnd:
        The cache's PRNG (``random.Random``); consumed per the module
        contract above.
    k:
        Sampling size ``K``.
    with_replacement:
        Redis "placing back" sampling when True, distinct-resident
        sampling when False.
    protect:
        Key to shield while alternatives exist (see module docstring).

    Returns the victim key, or ``None`` only when ``keys`` is empty.
    """
    n = len(keys)
    if n == 0:
        return None
    victim: Optional[Hashable] = None
    vt: Optional[int] = None
    if with_replacement:
        randrange = rnd.randrange
        for _ in range(k):
            cand = keys[randrange(n)]
            if cand == protect and n > 1:
                continue
            ct = last_access[cand]
            if vt is None or ct < vt:
                victim, vt = cand, ct
    else:
        for i in rnd.sample(range(n), k if k < n else n):
            cand = keys[i]
            if cand == protect and n > 1:
                continue
            ct = last_access[cand]
            if vt is None or ct < vt:
                victim, vt = cand, ct
    if victim is None:
        # Every draw hit the protected key (n > 1): any other resident.
        for cand in keys:
            if cand != protect:
                return cand
    return victim
