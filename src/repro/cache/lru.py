"""A production sampling-LRU cache that models itself online.

:class:`SamplingLRUCache` turns the reproduction inside-out: instead of
*modeling* a K-sampling cache, it *is* one — a thread-safe, byte-limited
``MutableMapping`` whose eviction is the paper's K-sampling (the exact
:func:`~repro.cache.eviction.select_victim` core the ground-truth
simulators run) — and every instance carries its own low-overhead KRR
model, so a deployed cache can answer "what would my miss ratio be at
size S?" and "how big must I be for a 95% hit rate?" about *itself*,
live, from a few percent of its own traffic.

Self-instrumentation
--------------------
References are buffered (two list appends on the hot path) and drained
in batches through a vectorized
:class:`~repro.sampling.spatial.SpatialSampler` prefilter (rate
``model_rate``, default 1%); only kept references reach the embedded
:class:`~repro.core.windowed.WindowedKRRModel` (and, when adaptive re-K
is enabled, the per-candidate :class:`~repro.core.model.KRRModel` bank).
The prefilter and the models' internal samplers share the same
``splitmix64`` threshold (seed 0), so they keep the identical key set —
the prefilter only hoists the common drop out of the model call.  Every
model read flushes the buffer first, so batching is invisible except as
amortized cost.  The uninstrumented hot path (``instrument=False``)
skips all of it.

Lock discipline
---------------
One ``threading.Lock`` guards *all* mutable state (resident set, byte
accounting, recency clock, PRNG, stats, models).  Every public method
acquires it exactly once and never calls another public method while
holding it; ``_locked``-suffixed helpers require it held.  Curve queries
(:meth:`mrc`, :meth:`miss_ratio_at`, …) snapshot model state under the
lock, then interpolate outside it.  ``MutableMapping`` mixin compounds
(``pop``, ``setdefault``, ``update``) are each a sequence of atomic
primitives, not atomic as a whole.

What counts as a modeled reference
----------------------------------
Lookups (:meth:`get`, ``cache[key]``, :meth:`access`) feed the model —
hit or miss.  Stores (:meth:`put`, ``cache[key] = v``) only update the
cache: in the canonical *get-miss then put* fill pattern the get already
recorded the reference, and counting the fill again would double every
miss at distance ~0.  Pure write-heavy workloads can opt stores in with
``model_stores=True``.  ``key in cache`` is a pure probe: no recency
touch, no stats, no model.
"""

from __future__ import annotations

import random
import sys
import threading
from collections.abc import Iterator, MutableMapping
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Optional,
    Sequence,
)

import numpy as np

from .._util import (
    RngLike,
    check_in_range,
    check_positive,
    check_sampling_size,
    ensure_rng,
)
from ..core.model import KRRModel
from ..core.windowed import WindowedKRRModel
from ..mrc.curve import MissRatioCurve
from ..sampling.spatial import SpatialSampler
from ..simulator.base import CacheStats
from .eviction import NO_PROTECT, ResidentSet, select_victim

if TYPE_CHECKING:  # runtime import is deferred to break the cycle
    from ..adaptive.dlru import RetuneEvent

__all__ = [
    "SamplingLRUCache",
    "default_sizeof",
]


class _Missing:
    __slots__ = ()


_MISSING = _Missing()


def default_sizeof(value: Any) -> int:
    """Byte size of a cached value: ``value.nbytes`` if present (arrays,
    the uproot idiom), else ``sys.getsizeof``."""
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    return int(sys.getsizeof(value))


_U64_MASK = 0xFFFFFFFFFFFFFFFF

#: Buffered model references are hashed/filtered in batches of this many
#: (vectorized splitmix64), so the per-request cost of instrumentation is
#: a memo probe plus, for sampled keys, a list append.
_FLUSH_EVERY = 8192

#: Sampling decisions are per-key-deterministic (SHARDS), so they are
#: memoized; the memo is cleared wholesale past this size to bound memory
#: on unbounded key spaces (it re-warms in one flush cycle).
_MEMO_MAX = 1 << 20


class SamplingLRUCache(MutableMapping[Hashable, Any]):
    """Thread-safe byte-limited K-sampling LRU cache with a built-in MRC model.

    Parameters
    ----------
    capacity_bytes:
        Byte budget; eviction keeps ``used_bytes <= capacity_bytes``
        after every operation (invariant, property-tested).
    k:
        Eviction sampling size (Redis ``maxmemory-samples``; default 5).
    with_replacement:
        "Placing back" sampling (Redis semantics) when True.
    sizeof:
        Value -> byte size; default :func:`default_sizeof`.  An explicit
        per-object ``size=`` on :meth:`put` overrides it.
    instrument:
        Enable the self-model (default True).  ``False`` leaves a plain
        thread-safe sampling-LRU cache with zero modeling overhead.
    model_rate:
        Spatial sampling rate of the self-model (default 0.01).
    model_window:
        Rolling-window length in *references*; the reported curve covers
        between half and one window of recent traffic (converted to
        sampled units internally).
    model_k:
        Modeled sampling size; defaults to ``k``.  Note that after an
        adaptive re-K the main model keeps modeling ``model_k`` — the
        candidate bank covers the candidates.
    track_sizes:
        Model byte-granularity distances (var-KRR): curve sizes and
        :meth:`miss_ratio_at` arguments are then bytes instead of
        objects.
    adaptive_candidates:
        Candidate Ks for online re-tuning (e.g. ``(1, 2, 4, 8, 16)``);
        ``None`` disables adaptation.
    retune_interval:
        References between re-tune decisions (with candidates set).
    name:
        Instance name, used by the registry / service introspection.
    seed:
        Seeds eviction draws and model RNGs (reproducible by construction).
    model_stores:
        Feed stores (not just lookups) to the model; see module docstring.
    """

    def __init__(
        self,
        capacity_bytes: int,
        k: int = 5,
        with_replacement: bool = True,
        sizeof: Optional[Callable[[Any], int]] = None,
        instrument: bool = True,
        model_rate: float = 0.01,
        model_window: int = 1_000_000,
        model_k: Optional[int] = None,
        track_sizes: bool = False,
        adaptive_candidates: Optional[Sequence[int]] = None,
        retune_interval: int = 50_000,
        name: str = "cache",
        seed: RngLike = None,
        model_stores: bool = False,
    ) -> None:
        check_positive("capacity_bytes", capacity_bytes)
        check_positive("model_window", model_window)
        check_positive("retune_interval", retune_interval)
        check_in_range("model_rate", model_rate, 0.0, 1.0, low_open=True)
        self._capacity_bytes = int(capacity_bytes)
        self._k = check_sampling_size(k)
        self.with_replacement = bool(with_replacement)
        self.name = str(name)
        self._sizeof = sizeof if sizeof is not None else default_sizeof
        self.model_rate = float(model_rate)
        self.model_window = int(model_window)
        self.retune_interval = int(retune_interval)
        self._model_stores = bool(model_stores)
        self.track_sizes = bool(track_sizes)

        self._lock = threading.Lock()
        self._data: Dict[Hashable, Any] = {}
        self._sizes: Dict[Hashable, int] = {}
        self._residents = ResidentSet()
        self._last_access: Dict[Hashable, int] = {}
        self._clock = 0
        self._used = 0
        self.stats = CacheStats()
        #: Stores rejected because the object alone exceeds the budget.
        self.rejected = 0
        self._references = 0

        rng = ensure_rng(seed)
        self._rnd = random.Random(int(ensure_rng(rng).integers(0, 2**63)))

        self._instrumented = bool(instrument)
        self._sampler: Optional[SpatialSampler] = None
        self._model: Optional[WindowedKRRModel] = None
        self._bank: Dict[int, KRRModel] = {}
        self.retune_events: List["RetuneEvent"] = []
        # Model references are buffered and flushed in vectorized batches;
        # an adaptive cache flushes at least once per retune interval so
        # decisions are at most one interval late.  ``None`` doubles as
        # the uninstrumented flag on the inlined hot paths.
        self._pending_keys: Optional[List[Hashable]] = (
            [] if self._instrumented else None
        )
        self._pending_sizes: List[int] = []
        # Keys a flush has already decided to drop.  Unknown keys are
        # buffered (treated as kept) until a flush hashes them; after
        # that, dropped keys cost one set probe per reference.  Stays
        # empty on adaptive caches — see _drain_buffer_locked.
        self._drop_memo: set[Hashable] = set()
        self._flush_every = (
            min(_FLUSH_EVERY, self.retune_interval)
            if adaptive_candidates
            else _FLUSH_EVERY
        )
        self._last_retune_at = 0
        if self._instrumented:
            self._sampler = SpatialSampler(self.model_rate)
            # The window is measured in raw references; the model only
            # sees the sampled subset, so convert via the exact rate.
            sampled_window = max(2, int(self.model_window * self._sampler.rate))
            self._model = WindowedKRRModel(
                k=int(model_k) if model_k is not None else self._k,
                window=sampled_window,
                sampling_rate=self.model_rate,
                track_sizes=self.track_sizes,
                seed=int(rng.integers(0, 2**63)),
            )
            if adaptive_candidates:
                for kc in sorted(set(int(c) for c in adaptive_candidates)):
                    self._bank[check_sampling_size(kc)] = KRRModel(
                        k=kc,
                        sampling_rate=self.model_rate,
                        track_sizes=self.track_sizes,
                        seed=int(rng.integers(0, 2**63)),
                    )
        elif adaptive_candidates:
            raise ValueError("adaptive_candidates requires instrument=True")

    # ------------------------------------------------------------------
    # introspection properties (reads of a single int/word are atomic)
    @property
    def capacity_bytes(self) -> int:
        return self._capacity_bytes

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def k(self) -> int:
        """The active eviction sampling size (re-tuned when adaptive)."""
        return self._k

    @property
    def instrumented(self) -> bool:
        return self._instrumented

    @property
    def references(self) -> int:
        """Modeled references seen so far (lookups, plus stores if opted in)."""
        return self._references

    def __repr__(self) -> str:
        return (
            f"<SamplingLRUCache {self.name!r} {self._used}/{self._capacity_bytes} "
            f"bytes, {len(self._data)} objects, K={self._k} "
            f"at 0x{id(self):012x}>"
        )

    # ------------------------------------------------------------------
    # mapping protocol
    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        # Pure probe: no recency touch, no stats, no model feed.
        return key in self._data

    def __iter__(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._data))

    def __getitem__(self, key: Hashable) -> Any:
        out = self.get(key, _MISSING)
        if out is _MISSING:
            raise KeyError(key)
        return out

    def __setitem__(self, key: Hashable, value: Any) -> None:
        self.put(key, value)

    def __delitem__(self, key: Hashable) -> None:
        with self._lock:
            if key not in self._residents:
                raise KeyError(key)
            self._remove_locked(key)

    # ------------------------------------------------------------------
    # primary API
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look the key up; a reference, hit or miss, feeds the model.

        The model feed is inlined (`_reference_locked`'s body) — this and
        :meth:`access` are the measured hot paths and a Python call per
        request is most of the instrumentation budget.
        """
        with self._lock:
            self._clock += 1
            self._references += 1
            pending = self._pending_keys
            if key in self._residents:
                self._last_access[key] = self._clock
                self.stats.hits += 1
                if pending is not None:
                    if key not in self._drop_memo:
                        pending.append(key)
                        if self.track_sizes:
                            self._pending_sizes.append(self._sizes[key])
                        if len(pending) >= self._flush_every:
                            self._flush_pending_locked()
                return self._data[key]
            self.stats.misses += 1
            if pending is not None:
                if key not in self._drop_memo:
                    pending.append(key)
                    if self.track_sizes:
                        self._pending_sizes.append(1)
                    if len(pending) >= self._flush_every:
                        self._flush_pending_locked()
            return default

    def access(self, key: Hashable, size: int = 1) -> bool:
        """Simulator-style access: touch-or-insert, returns hit.

        A miss inserts a placeholder value of ``size`` bytes — this is
        the :class:`~repro.simulator.base.CacheSimulator` protocol, used
        to drive the cache with the same traces as the simulators.
        The model feed is inlined, as in :meth:`get`.
        """
        with self._lock:
            self._clock += 1
            self._references += 1
            pending = self._pending_keys
            if key in self._residents:
                self._last_access[key] = self._clock
                self.stats.hits += 1
                if pending is not None:
                    if key not in self._drop_memo:
                        pending.append(key)
                        if self.track_sizes:
                            self._pending_sizes.append(self._sizes[key])
                        if len(pending) >= self._flush_every:
                            self._flush_pending_locked()
                return True
            self.stats.misses += 1
            if pending is not None:
                if key not in self._drop_memo:
                    pending.append(key)
                    if self.track_sizes:
                        self._pending_sizes.append(size)
                    if len(pending) >= self._flush_every:
                        self._flush_pending_locked()
            self._store_locked(key, None, int(size))
            return False

    def put(self, key: Hashable, value: Any, size: Optional[int] = None) -> bool:
        """Store ``key -> value``; returns True iff the key is resident after.

        ``size`` overrides the ``sizeof`` accounting.  An object larger
        than the whole budget is rejected (and any stale resident copy
        dropped); an overwrite that outgrows the budget evicts — the key
        that just hit is shielded while alternatives exist, but if it
        alone no longer fits it is dropped too, keeping the
        ``used_bytes <= capacity_bytes`` invariant unconditional.
        """
        nbytes = int(size) if size is not None else self._sizeof(value)
        if nbytes < 0:
            raise ValueError(f"object size must be >= 0, got {nbytes}")
        with self._lock:
            self._clock += 1
            if self._model_stores:
                self._reference_locked(key, nbytes)
            return self._store_locked(key, value, nbytes)

    def discard(self, key: Hashable) -> bool:
        """Remove the key if resident; returns whether it was."""
        with self._lock:
            if key not in self._residents:
                return False
            self._remove_locked(key)
            return True

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._sizes.clear()
            self._last_access.clear()
            self._residents = ResidentSet()
            self._used = 0

    # ------------------------------------------------------------------
    # locked internals
    def _store_locked(self, key: Hashable, value: Any, nbytes: int) -> bool:
        if nbytes > self._capacity_bytes:
            # Uncacheable: never admit, and drop any stale smaller copy.
            if key in self._residents:
                self._remove_locked(key)
            self.rejected += 1
            return False
        if key in self._residents:
            old = self._sizes[key]
            self._data[key] = value
            self._last_access[key] = self._clock
            if old != nbytes:
                self._used += nbytes - old
                self._sizes[key] = nbytes
                self._evict_until_fits_locked(key)
            return key in self._residents
        self._residents.add(key)
        self._data[key] = value
        self._sizes[key] = nbytes
        self._last_access[key] = self._clock
        self._used += nbytes
        self._evict_until_fits_locked(key)
        return True

    def _remove_locked(self, key: Hashable) -> None:
        self._residents.remove(key)
        del self._data[key]
        del self._last_access[key]
        self._used -= self._sizes.pop(key)

    def _evict_until_fits_locked(self, protect: Hashable) -> None:
        while self._used > self._capacity_bytes and len(self._residents) > 0:
            victim = select_victim(
                self._residents.keys,
                self._last_access,
                self._rnd,
                self._k,
                self.with_replacement,
                protect=protect,
            )
            if victim is None:  # pragma: no cover - n > 0 always selects
                break
            self._remove_locked(victim)
            self.stats.evictions += 1

    def _reference_locked(self, key: Hashable, size: int) -> None:
        # Buffer a modeled reference; `get`/`access` inline this body.
        # Hashing, sampling and model feeds all happen vectorized in the
        # batched flush; sizes are only buffered when the model uses them,
        # and keys the memo already knows are dropped skip the buffer.
        self._references += 1
        pending = self._pending_keys
        if pending is None:
            return
        if key not in self._drop_memo:
            pending.append(key)
            if self.track_sizes:
                self._pending_sizes.append(size)
            if len(pending) >= self._flush_every:
                self._flush_pending_locked()

    def _flush_pending_locked(self) -> None:
        """Drain the reference buffer, then retune if a decision is due."""
        self._drain_buffer_locked()
        if self._bank:
            self._maybe_retune_locked()

    def _drain_buffer_locked(self) -> None:
        """Push buffered references through the vectorized prefilter.

        Keys are reduced to 64-bit ids (ints mod 2**64, other hashables
        via ``hash``), hashed in one ``splitmix64`` sweep, and only the
        sampled survivors — ``model_rate`` of them — reach the models.
        Decisions are memoized so already-known dropped keys never reach
        the buffer again.  Every model read (:meth:`mrc`, :meth:`info`, …)
        flushes first, so buffering is invisible except as amortized cost.
        """
        keys = self._pending_keys
        if keys:
            sizes = self._pending_sizes
            self._pending_keys = []
            self._pending_sizes = []
            try:
                # all-int fast path; the uint64 view wraps negatives to
                # the same 64-bit id the fallback produces
                kids = np.asarray(keys, dtype=np.int64).view(np.uint64)
            except (TypeError, ValueError, OverflowError):
                kids = np.fromiter(
                    (
                        (k if type(k) is int else hash(k)) & _U64_MASK
                        for k in keys
                    ),
                    dtype=np.uint64,
                    count=len(keys),
                )
            assert self._sampler is not None
            mask = self._sampler.mask(kids)
            if not self._bank:
                # Adaptive caches skip the memo: retune decisions are
                # clocked by the buffer filling up, so every reference
                # must keep reaching it.
                memo = self._drop_memo
                if len(memo) >= _MEMO_MAX:
                    memo.clear()
                memo.update(
                    k for k, kept in zip(keys, mask.tolist()) if not kept
                )
            idx = np.nonzero(mask)[0]
            if idx.size:
                kept_kids = kids[idx]
                if self.track_sizes:
                    kept_sizes = [sizes[i] for i in idx.tolist()]
                else:
                    # object-granularity models ignore sizes entirely
                    kept_sizes = None
                # Batched feed: each model consumes the survivors through
                # its fused access_many path (draw-for-draw identical to
                # per-reference access; the models hold independent RNGs,
                # so feeding whole batches per model commutes).  The
                # cache never snapshots its models, so engine="auto" may
                # pick the array-native SoA stack where supported.
                if self._model is not None:
                    self._model.access_many(kept_kids, kept_sizes, engine="auto")
                for candidate in self._bank.values():
                    candidate.access_many(kept_kids, kept_sizes, engine="auto")

    def _maybe_retune_locked(self) -> None:
        if self._references - self._last_retune_at >= self.retune_interval:
            self._last_retune_at = self._references
            self._drain_buffer_locked()  # bring the bank current first
            self._retune_locked()

    def _model_capacity_locked(self) -> float:
        """This cache's capacity in the model's unit (bytes or objects)."""
        if self.track_sizes:
            return float(self._capacity_bytes)
        n = len(self._residents)
        mean = (self._used / n) if n else 1.0
        return self._capacity_bytes / max(1.0, mean)

    def _retune_locked(self) -> None:
        from ..adaptive.dlru import RetuneEvent, choose_best_k

        best, predicted, skipped = choose_best_k(
            self._bank, self._model_capacity_locked()
        )
        if best is None:
            return
        self.retune_events.append(
            RetuneEvent(
                at_request=self._references,
                chosen_k=best,
                predicted=predicted,
                skipped=skipped,
            )
        )
        self._k = best

    # ------------------------------------------------------------------
    # sizing controls
    def resize(self, capacity_bytes: int) -> int:
        """Change the byte budget; shrinking evicts down.  Returns evictions."""
        check_positive("capacity_bytes", capacity_bytes)
        with self._lock:
            before = self.stats.evictions
            self._capacity_bytes = int(capacity_bytes)
            self._evict_until_fits_locked(NO_PROTECT)
            return self.stats.evictions - before

    def set_k(self, k: int) -> None:
        """Pin the eviction sampling size (overrides adaptive choice)."""
        self._k = check_sampling_size(k)

    def autosize(
        self,
        target_hit_rate: float,
        max_bytes: Optional[int] = None,
        min_bytes: int = 1,
    ) -> Optional[int]:
        """Resize toward the model's size for ``target_hit_rate``.

        Returns the new capacity, or ``None`` when the model cannot name
        one yet (cold model, or target unattainable in the observed
        range — the cache is then left untouched).  With
        ``track_sizes=False`` the recommendation is in objects and is
        converted through the current mean resident size.
        """
        recommended = self.size_for_hit_rate(target_hit_rate)
        if recommended is None:
            return None
        with self._lock:
            if not self.track_sizes:
                n = len(self._residents)
                mean = (self._used / n) if n else 1.0
                recommended = recommended * max(1.0, mean)
            new_capacity = int(max(min_bytes, recommended))
            if max_bytes is not None:
                new_capacity = min(new_capacity, int(max_bytes))
            self._capacity_bytes = new_capacity
            self._evict_until_fits_locked(NO_PROTECT)
            return new_capacity

    # ------------------------------------------------------------------
    # the self-model's answers
    def _require_model(self) -> WindowedKRRModel:
        if self._model is None:
            raise RuntimeError(
                "this cache was built with instrument=False and has no model"
            )
        return self._model

    def mrc(self, max_size: Optional[int] = None) -> MissRatioCurve:
        """Self-reported object-granularity MRC over the rolling window."""
        model = self._require_model()
        with self._lock:
            self._flush_pending_locked()
            curve = model.mrc(max_size=max_size)
        return MissRatioCurve(
            curve.sizes, curve.miss_ratios, unit=curve.unit,
            label=f"{self.name} self-model",
        )

    def byte_mrc(self) -> MissRatioCurve:
        """Self-reported byte-granularity MRC (``track_sizes=True`` only)."""
        model = self._require_model()
        with self._lock:
            self._flush_pending_locked()
            curve = model.byte_mrc()
        return MissRatioCurve(
            curve.sizes, curve.miss_ratios, unit=curve.unit,
            label=f"{self.name} self-model",
        )

    def _planning_curve(self) -> MissRatioCurve:
        return self.byte_mrc() if self.track_sizes else self.mrc()

    def miss_ratio_at(self, size: float) -> float:
        """Predicted miss ratio of *this* cache at a hypothetical size
        (bytes with ``track_sizes=True``, objects otherwise)."""
        return float(self._planning_curve()(size))

    def size_for_hit_rate(self, target: float) -> Optional[float]:
        """Smallest size whose predicted hit rate reaches ``target``.

        Units as :meth:`miss_ratio_at`.  ``None`` when the target is not
        attainable within the observed curve range.
        """
        check_in_range("target", target, 0.0, 1.0)
        try:
            curve = self._planning_curve()
        except ValueError:
            # Cold model: no sampled accesses recorded yet.
            return None
        want_miss = 1.0 - target
        for size, ratio in zip(curve.sizes, curve.miss_ratios):
            if ratio <= want_miss + 1e-12:
                return float(size)
        return None

    # ------------------------------------------------------------------
    def info(self) -> Dict[str, Any]:
        """JSON-safe introspection snapshot (the service endpoint payload)."""
        with self._lock:
            if self._instrumented:
                self._flush_pending_locked()
            body: Dict[str, Any] = {
                "name": self.name,
                "capacity_bytes": self._capacity_bytes,
                "used_bytes": self._used,
                "objects": len(self._data),
                "k": self._k,
                "with_replacement": self.with_replacement,
                "instrumented": self._instrumented,
                "track_sizes": self.track_sizes,
                "stats": {
                    "hits": self.stats.hits,
                    "misses": self.stats.misses,
                    "evictions": self.stats.evictions,
                    "miss_ratio": self.stats.miss_ratio,
                    "rejected": self.rejected,
                },
                "references": self._references,
                "retunes": [
                    {
                        "at_request": e.at_request,
                        "chosen_k": e.chosen_k,
                        "predicted": {str(k): v for k, v in e.predicted.items()},
                        "skipped": list(e.skipped),
                    }
                    for e in self.retune_events[-5:]
                ],
            }
            if self._model is not None:
                body["model"] = dict(self._model.counters())
                body["model"]["rate"] = self.model_rate
        return body
