"""``repro.cache``: production sampling-LRU caches with built-in MRC models.

The reproduction turned inside-out — from "a model of a cache" to "a
cache with a built-in model":

* :mod:`~repro.cache.eviction` — the shared K-sampling victim-selection
  core; the ground-truth simulators in :mod:`repro.simulator.klru` and
  the production cache run this *same* policy.
* :mod:`~repro.cache.lru` — :class:`SamplingLRUCache`, a thread-safe,
  byte-limited ``MutableMapping`` whose eviction is the paper's
  K-sampling and which self-instruments (spatial sampler -> windowed KRR
  model) to report its own MRC, ``miss_ratio_at(size)`` and
  ``size_for_hit_rate(target)``, with optional online re-K.
* :mod:`~repro.cache.registry` — process-local fleet registry feeding
  the service's ``/caches`` introspection endpoints and LAMA-style
  partition advice.

``SamplingLRUCache`` and the registry are imported lazily: the simulator
package imports the eviction core from here, and an eager import of
:mod:`~repro.cache.lru` (which reaches back through ``adaptive`` into
the simulators) would complete that cycle.

See ``docs/CACHE.md`` for the API, the locking model and the
self-modeling accuracy caveats.
"""

from typing import Any

from .eviction import NO_PROTECT, ResidentSet, select_victim

__all__ = [
    "CacheRegistry",
    "NO_PROTECT",
    "ResidentSet",
    "SamplingLRUCache",
    "default_registry",
    "default_sizeof",
    "select_victim",
]

_LAZY = {
    "SamplingLRUCache": "repro.cache.lru",
    "default_sizeof": "repro.cache.lru",
    "CacheRegistry": "repro.cache.registry",
    "default_registry": "repro.cache.registry",
}


def __getattr__(name: str) -> Any:
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> "list[str]":
    return sorted(set(globals()) | set(_LAZY))
