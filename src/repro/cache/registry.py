"""Process-local cache registry: fleet introspection and partition advice.

Every :class:`~repro.cache.lru.SamplingLRUCache` can be registered here
(by its ``name``); the registry is what the ``/caches`` endpoints of the
service expose, and — because each registered cache carries its own MRC —
it can run the LAMA-style budget split from
:mod:`repro.partition.optimizer` over the *live fleet*: "given these N
caches' self-models and a total byte budget, how should the budget be
divided to minimize total weighted misses?".

A module-level :data:`default_registry` serves the common one-registry-
per-process case; construct private registries for tests or multi-fleet
processes.  The registry itself is thread-safe (one lock around the name
map); the heavy work (curve queries) happens on cache snapshots outside
that lock.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

from ..partition.optimizer import PartitionResult, Tenant, greedy_partition
from .lru import SamplingLRUCache

__all__ = [
    "CacheRegistry",
    "default_registry",
]


class CacheRegistry:
    """Thread-safe name -> cache map with fleet-level queries."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._caches: Dict[str, SamplingLRUCache] = {}

    def register(self, cache: SamplingLRUCache) -> SamplingLRUCache:
        """Add a cache under its ``name``; duplicate names are an error."""
        with self._lock:
            if cache.name in self._caches:
                raise ValueError(f"a cache named {cache.name!r} is already registered")
            self._caches[cache.name] = cache
        return cache

    def unregister(self, name: str) -> bool:
        with self._lock:
            return self._caches.pop(name, None) is not None

    def get(self, name: str) -> Optional[SamplingLRUCache]:
        with self._lock:
            return self._caches.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._caches)

    def __len__(self) -> int:
        with self._lock:
            return len(self._caches)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._caches

    def clear(self) -> None:
        with self._lock:
            self._caches.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> List[SamplingLRUCache]:
        with self._lock:
            return [self._caches[name] for name in sorted(self._caches)]

    def summaries(self) -> List[Dict[str, Any]]:
        """One-line summary per cache (the ``GET /caches`` payload)."""
        out: List[Dict[str, Any]] = []
        for cache in self.snapshot():
            out.append(
                {
                    "name": cache.name,
                    "capacity_bytes": cache.capacity_bytes,
                    "used_bytes": cache.used_bytes,
                    "objects": len(cache),
                    "k": cache.k,
                    "miss_ratio": cache.stats.miss_ratio,
                    "instrumented": cache.instrumented,
                }
            )
        return out

    def partition_advice(
        self,
        budget: Optional[int] = None,
        unit: Optional[int] = None,
    ) -> PartitionResult:
        """Fleet budget split minimizing total weighted misses.

        Each instrumented cache becomes a
        :class:`~repro.partition.optimizer.Tenant` whose curve is its
        *self-reported* MRC and whose weight is its observed request
        count; :func:`~repro.partition.optimizer.greedy_partition` splits
        ``budget`` (default: the fleet's combined current capacity).
        Units follow each cache's model: bytes with ``track_sizes=True``,
        objects otherwise — a mixed fleet should model consistently.
        """
        caches = [c for c in self.snapshot() if c.instrumented]
        if not caches:
            raise ValueError("no instrumented caches registered")
        tenants: List[Tenant] = []
        for cache in caches:
            curve = cache.byte_mrc() if cache.track_sizes else cache.mrc()
            tenants.append(
                Tenant(
                    name=cache.name,
                    curve=curve,
                    request_rate=float(max(1, cache.stats.accesses)),
                )
            )
        if budget is None:
            budget = sum(c.capacity_bytes for c in caches)
        if unit is None:
            # The greedy optimizer hands out budget one unit at a time:
            # ~256 grants keeps byte-scale budgets instant while staying
            # finer than any realistic fleet imbalance.
            unit = max(1, int(budget) // 256)
        return greedy_partition(tenants, int(budget), unit=unit)


#: The process-wide registry the service endpoints read by default.
default_registry = CacheRegistry()
