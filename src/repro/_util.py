"""Small shared helpers: RNG construction, argument validation.

Every stochastic component in :mod:`repro` takes either an integer seed or a
ready-made :class:`numpy.random.Generator`; :func:`ensure_rng` normalizes the
two so call sites stay reproducible by construction.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``None`` draws fresh OS entropy, an ``int`` seeds PCG64 deterministically,
    and an existing generator is passed through unchanged.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def check_positive(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    *,
    low_open: bool = False,
    high_open: bool = False,
) -> None:
    """Raise ``ValueError`` unless ``low <= value <= high`` (bounds optionally open)."""
    ok_low = value > low if low_open else value >= low
    ok_high = value < high if high_open else value <= high
    if not (ok_low and ok_high):
        lo = "(" if low_open else "["
        hi = ")" if high_open else "]"
        raise ValueError(f"{name} must be in {lo}{low}, {high}{hi}, got {value!r}")


def check_sampling_size(k: int) -> int:
    """Validate an eviction sampling size ``K`` (a positive integer)."""
    if not isinstance(k, (int, np.integer)) or k < 1:
        raise ValueError(f"sampling size K must be an integer >= 1, got {k!r}")
    return int(k)
