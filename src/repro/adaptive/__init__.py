"""Online control built on KRR: the DLRU adaptive sampling-size cache."""

from .dlru import DEFAULT_CANDIDATES, AdaptiveKLRUCache, RetuneEvent

__all__ = ["AdaptiveKLRUCache", "DEFAULT_CANDIDATES", "RetuneEvent"]
