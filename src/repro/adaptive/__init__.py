"""Online control built on KRR: the DLRU adaptive sampling-size cache."""

from .dlru import (
    DEFAULT_CANDIDATES,
    MIN_RETUNE_SAMPLES,
    AdaptiveKLRUCache,
    RetuneEvent,
    choose_best_k,
)

__all__ = [
    "AdaptiveKLRUCache",
    "DEFAULT_CANDIDATES",
    "MIN_RETUNE_SAMPLES",
    "RetuneEvent",
    "choose_best_k",
]
