"""DLRU: dynamically configured sampling-size LRU (Wang et al., MEMSYS'20).

The paper's introduction motivates KRR with this system: because the
eviction sampling size K changes the miss ratio (Figure 1.1), a cache that
*re-tunes K online* can beat any fixed K — but choosing K needs the miss
ratio of every candidate at the current capacity, which is exactly what
KRR delivers in one pass.

:class:`AdaptiveKLRUCache` is that closed loop: a real K-LRU cache whose
every request also feeds a bank of lightweight KRR+spatial models (one per
candidate K); every ``retune_interval`` requests the cache switches to the
candidate with the lowest predicted miss ratio at its own capacity.  A
sliding ``window`` optionally resets the bank so the models track workload
phase changes instead of averaging over history.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .._util import RngLike, check_positive, ensure_rng
from ..core.model import KRRModel
from ..simulator.base import CacheStats
from ..simulator.klru import KLRUCache

__all__ = [
    "AdaptiveKLRUCache",
    "DEFAULT_CANDIDATES",
    "MIN_RETUNE_SAMPLES",
    "RetuneEvent",
    "choose_best_k",
]


DEFAULT_CANDIDATES = (1, 2, 4, 8, 16)

#: A candidate model must have sampled at least this many references
#: before its prediction is trusted in a retune decision.
MIN_RETUNE_SAMPLES = 50


@dataclass
class RetuneEvent:
    """One K-switch decision, kept for post-hoc inspection.

    ``skipped`` lists candidate Ks whose models were still cold
    (fewer than :data:`MIN_RETUNE_SAMPLES` sampled references) and were
    therefore excluded from this decision.
    """

    at_request: int
    chosen_k: int
    predicted: dict[int, float] = field(default_factory=dict)
    skipped: tuple[int, ...] = ()


def choose_best_k(
    models: dict[int, KRRModel],
    capacity: float,
    min_sampled: int = MIN_RETUNE_SAMPLES,
) -> tuple[Optional[int], dict[int, float], tuple[int, ...]]:
    """Pick the candidate K with the lowest predicted miss ratio at ``capacity``.

    Only *warm* candidates — models with at least ``min_sampled`` sampled
    references — take part; cold ones are reported back instead of
    vetoing the decision (one never-warm candidate, e.g. a large K at a
    low spatial rate, must not block retuning forever).

    Returns ``(best, predicted, skipped)``; ``best`` is ``None`` when no
    candidate is warm yet.  Shared by :class:`AdaptiveKLRUCache` and
    :class:`repro.cache.lru.SamplingLRUCache`.
    """
    predicted: dict[int, float] = {}
    skipped: list[int] = []
    for k in sorted(models):
        model = models[k]
        if model.stats.requests_sampled < min_sampled:
            skipped.append(k)
            continue
        predicted[k] = float(model.mrc()(capacity))
    if not predicted:
        return None, predicted, tuple(skipped)
    best = min(predicted, key=predicted.__getitem__)
    return best, predicted, tuple(skipped)


class AdaptiveKLRUCache:
    """A K-LRU cache that re-tunes its sampling size online via KRR.

    Parameters
    ----------
    capacity:
        Cache capacity in objects.
    candidates:
        Candidate sampling sizes to choose among.
    retune_interval:
        Requests between retuning decisions.
    sampling_rate:
        Spatial rate for the embedded KRR models (their cost per request is
        ~rate * O(K logM); 0.05 keeps the bank essentially free).
    window:
        If set, the model bank is rebuilt every ``window`` requests so
        decisions reflect only recent behavior (phase adaptivity).
    """

    def __init__(
        self,
        capacity: int,
        candidates: Sequence[int] = DEFAULT_CANDIDATES,
        retune_interval: int = 20_000,
        sampling_rate: float = 0.05,
        window: Optional[int] = None,
        initial_k: Optional[int] = None,
        rng: RngLike = None,
    ) -> None:
        check_positive("capacity", capacity)
        check_positive("retune_interval", retune_interval)
        if not candidates:
            raise ValueError("need at least one candidate K")
        if window is not None and window < retune_interval:
            raise ValueError("window must be >= retune_interval")
        self.capacity = int(capacity)
        self.candidates = tuple(sorted(set(int(k) for k in candidates)))
        self.retune_interval = int(retune_interval)
        self.sampling_rate = float(sampling_rate)
        self.window = int(window) if window else None
        self._rng = ensure_rng(rng)
        k0 = int(initial_k) if initial_k is not None else self.candidates[0]
        if k0 not in self.candidates:
            raise ValueError("initial_k must be one of the candidates")
        self._cache = KLRUCache(
            self.capacity, k0, rng=int(self._rng.integers(0, 2**63))
        )
        self._models: dict[int, KRRModel] = {}
        self._build_models()
        self._requests = 0
        self.events: list[RetuneEvent] = []

    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """The currently active eviction sampling size."""
        return self._cache.k

    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def __len__(self) -> int:
        return len(self._cache)

    def __contains__(self, key: int) -> bool:
        return key in self._cache

    def _build_models(self) -> None:
        self._models = {
            k: KRRModel(
                k=k,
                sampling_rate=self.sampling_rate,
                seed=int(self._rng.integers(0, 2**63)),
            )
            for k in self.candidates
        }

    # ------------------------------------------------------------------
    def access(self, key: int, size: int = 1) -> bool:
        self._requests += 1
        for model in self._models.values():
            model.access(key, size)
        hit = self._cache.access(key, size)
        if self._requests % self.retune_interval == 0:
            self._retune()
        if self.window and self._requests % self.window == 0:
            self._build_models()
        return hit

    def _retune(self) -> None:
        best, predicted, skipped = choose_best_k(self._models, self.capacity)
        if best is None:
            return  # every candidate still cold; keep the current K
        self.events.append(
            RetuneEvent(
                at_request=self._requests,
                chosen_k=best,
                predicted=predicted,
                skipped=skipped,
            )
        )
        self._cache.k = best

    def predicted_miss_ratios(self) -> dict[int, float]:
        """Current per-candidate predictions at this cache's capacity."""
        return {
            k: float(m.mrc()(self.capacity))
            for k, m in self._models.items()
            if m.stats.requests_sampled > 0
        }
