"""Comparison-based Mattson priority stacks: OPT, LFU, MRU, LRU.

:class:`GenericStack` in :mod:`repro.stack.mattson` models *probabilistic*
policies (its maxPriority is a Bernoulli draw).  This module is the exact,
comparison-based counterpart for deterministic priority policies — the
policy class covered by Mattson's original paper and optimized by Bilardi
et al.'s Min-Tree work (§6.2).  ``maxPriority`` compares real priority
values; the full linear update is performed, so distances are exact for
any policy whose priorities satisfy the framework:

* **OPT** (Belady) — priority = sooner next use wins (needs the future;
  we precompute next-use times from the trace).
* **LFU** — priority = higher access count wins (ties by recency).
* **MRU** — priority = *less* recent wins (stack order inverted).
* **LRU** — priority = more recent wins (the degenerate case; prefer the
  ``O(N logM)`` oracles in :mod:`repro.stack.lru_stack`).

Updates are ``O(M)`` — this is an oracle/baseline module, not a fast path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable

import numpy as np

from ..workloads.trace import Trace
from .histogram import DistanceHistogram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..mrc.curve import MissRatioCurve

__all__ = [
    "PriorityStack",
    "lfu_distances",
    "lfu_mrc",
    "mru_distances",
    "opt_distances",
    "opt_mrc",
]


# NOTE: repro.mrc.builder imports this package's histogram module, so the
# builder/curve imports live inside the mrc-producing functions to keep the
# import graph acyclic.

# A priority getter maps key -> comparable value; HIGHER keeps its slot
# nearer the top (wins maxPriority).
PriorityGetter = Callable[[int], float]


class PriorityStack:
    """Exact Mattson stack for a deterministic priority policy."""

    def __init__(self, priority_of: PriorityGetter) -> None:
        self._priority_of = priority_of
        self._stack: list[int] = []
        self._pos: Dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._stack)

    def keys_in_stack_order(self) -> list[int]:
        return list(self._stack)

    def access(self, key: int) -> int:
        """Return the pre-update stack distance (-1 cold), then update.

        The update follows Equation 2.1 literally: the referenced object
        takes the top; the displaced chain walks down, at each slot keeping
        whichever of (incumbent, displaced) has the higher priority.
        """
        idx = self._pos.get(key)
        if idx is None:
            distance = -1
            self._stack.append(key)
            self._pos[key] = len(self._stack) - 1
            phi = len(self._stack)
        else:
            distance = idx + 1
            phi = distance
        self._update(phi)
        return distance

    def _update(self, phi: int) -> None:
        if phi == 1:
            return
        stack = self._stack
        pos = self._pos
        pr = self._priority_of
        referenced = stack[phi - 1]
        y = stack[0]
        stack[0] = referenced
        pos[referenced] = 0
        for i in range(1, phi - 1):
            incumbent = stack[i]
            if pr(y) > pr(incumbent):
                stack[i] = y
                pos[y] = i
                y = incumbent
        stack[phi - 1] = y
        pos[y] = phi - 1


def opt_distances(trace: Trace) -> np.ndarray:
    """Exact OPT (Belady) stack distances for every request.

    Next-use times are precomputed; at any moment an object's priority is
    ``-next_use`` (sooner reuse = higher priority = stays near the top), so
    a hit at stack distance ``d`` means OPT caches of size >= d hit.
    Never-reused objects get next use = +inf (lowest priority).
    """
    keys = trace.keys
    n = keys.shape[0]
    next_use = np.full(n, np.inf)
    last_seen: dict[int, int] = {}
    for i in range(n - 1, -1, -1):
        k = int(keys[i])
        nxt = last_seen.get(k)
        next_use[i] = nxt if nxt is not None else np.inf
        last_seen[k] = i

    current_next: dict[int, float] = {}
    stack = PriorityStack(lambda key: -current_next.get(key, np.inf))
    out = np.empty(n, dtype=np.int64)
    for i in range(n):
        k = int(keys[i])
        current_next[k] = next_use[i]
        out[i] = stack.access(k)
    return out


def opt_mrc(trace: Trace, max_size: int | None = None) -> "MissRatioCurve":
    """Belady-optimal MRC (the lower bound every policy is judged against)."""
    from ..mrc.builder import from_distance_histogram

    hist = DistanceHistogram()
    for d in opt_distances(trace):
        hist.record(int(d) if d > 0 else 0)
    return from_distance_histogram(hist, max_size=max_size, label="OPT")


def lfu_distances(trace: Trace) -> np.ndarray:
    """Exact LFU stack distances (priority = access count, recency ties)."""
    counts: dict[int, int] = {}
    clock = {"t": 0}
    recency: dict[int, int] = {}

    def priority(key: int) -> float:
        return counts.get(key, 0) + recency.get(key, 0) * 1e-12

    stack = PriorityStack(priority)
    keys = trace.keys
    out = np.empty(keys.shape[0], dtype=np.int64)
    for i in range(keys.shape[0]):
        k = int(keys[i])
        counts[k] = counts.get(k, 0) + 1
        clock["t"] += 1
        recency[k] = clock["t"]
        out[i] = stack.access(k)
    return out


def lfu_mrc(trace: Trace, max_size: int | None = None) -> "MissRatioCurve":
    """Exact-LFU MRC via the priority stack."""
    from ..mrc.builder import from_distance_histogram

    hist = DistanceHistogram()
    for d in lfu_distances(trace):
        hist.record(int(d) if d > 0 else 0)
    return from_distance_histogram(hist, max_size=max_size, label="LFU")


def mru_distances(trace: Trace) -> np.ndarray:
    """Exact MRU stack distances (priority = older access wins)."""
    clock = {"t": 0}
    recency: dict[int, int] = {}

    def priority(key: int) -> float:
        return -recency.get(key, 0)

    stack = PriorityStack(priority)
    keys = trace.keys
    out = np.empty(keys.shape[0], dtype=np.int64)
    for i in range(keys.shape[0]):
        k = int(keys[i])
        clock["t"] += 1
        recency[k] = clock["t"]
        out[i] = stack.access(k)
    return out
