"""Order-statistic treap keyed by access time (an Olken-style LRU stack).

This is the balanced-search-tree formulation Olken used to bring Mattson's
LRU stack to ``O(N logM)``: nodes are ordered by last-access timestamp
(newest first), each node stores its subtree size (and byte weight), and an
object's stack distance is the rank of its node.  It exists alongside the
Fenwick-based oracle as an independent implementation so the two can
cross-check each other in tests.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._util import RngLike, ensure_rng

__all__ = [
    "OrderStatisticTreap",
]



class _Node:
    __slots__ = ("key", "ts", "size", "prio", "left", "right", "count", "bytes")

    def __init__(self, key: int, ts: int, size: int, prio: float) -> None:
        self.key = key
        self.ts = ts
        self.size = size
        self.prio = prio
        self.left: Optional[_Node] = None
        self.right: Optional[_Node] = None
        self.count = 1
        self.bytes = size


def _count(node: Optional[_Node]) -> int:
    return node.count if node else 0


def _bytes(node: Optional[_Node]) -> int:
    return node.bytes if node else 0


def _pull(node: _Node) -> None:
    node.count = 1 + _count(node.left) + _count(node.right)
    node.bytes = node.size + _bytes(node.left) + _bytes(node.right)


class OrderStatisticTreap:
    """Treap over (object, last-access-time) with subtree counts and bytes.

    The in-order traversal lists objects newest-to-oldest, i.e. in LRU-stack
    order.  All operations are expected ``O(logM)``.
    """

    def __init__(self, rng: RngLike = None) -> None:
        self._rng = ensure_rng(rng)
        self._root: Optional[_Node] = None
        self._nodes: dict[int, _Node] = {}
        self._clock = 0

    def __len__(self) -> int:
        return _count(self._root)

    def total_bytes(self) -> int:
        """Total byte weight of all resident objects."""
        return _bytes(self._root)

    def __contains__(self, key: int) -> bool:
        return key in self._nodes

    # -- treap primitives (split by timestamp; larger ts sorts earlier) ----
    def _split(
        self, node: Optional[_Node], ts: int
    ) -> "Tuple[Optional[_Node], Optional[_Node]]":
        """Split into (subtree with ts > given, subtree with ts <= given)."""
        if node is None:
            return None, None
        if node.ts > ts:
            left, right = self._split(node.right, ts)
            node.right = left
            _pull(node)
            return node, right
        left, right = self._split(node.left, ts)
        node.left = right
        _pull(node)
        return left, node

    def _merge(self, a: Optional[_Node], b: Optional[_Node]) -> Optional[_Node]:
        """Merge where every ts in ``a`` is greater than every ts in ``b``."""
        if a is None:
            return b
        if b is None:
            return a
        if a.prio < b.prio:
            a.right = self._merge(a.right, b)
            _pull(a)
            return a
        b.left = self._merge(a, b.left)
        _pull(b)
        return b

    # -- public API --------------------------------------------------------
    def rank_of(self, key: int) -> int:
        """1-based stack position of ``key`` (1 = most recent)."""
        node = self._nodes.get(key)
        if node is None:
            raise KeyError(key)
        target = node.ts
        cur = self._root
        rank = 0
        while cur is not None:
            if target > cur.ts:
                cur = cur.left
            elif target == cur.ts:
                rank += _count(cur.left) + 1
                return rank
            else:
                rank += _count(cur.left) + 1
                cur = cur.right
        raise KeyError(key)  # pragma: no cover - inconsistent index

    def bytes_above(self, key: int) -> int:
        """Total bytes of objects strictly more recent than ``key``."""
        node = self._nodes.get(key)
        if node is None:
            raise KeyError(key)
        target = node.ts
        cur = self._root
        acc = 0
        while cur is not None:
            if target > cur.ts:
                cur = cur.left
            elif target == cur.ts:
                return acc + _bytes(cur.left)
            else:
                acc += _bytes(cur.left) + cur.size
                cur = cur.right
        raise KeyError(key)  # pragma: no cover

    def _remove_ts(self, ts: int) -> None:
        """Delete the (unique) node with timestamp ``ts``."""
        newer, rest = self._split(self._root, ts)
        # ``rest`` root chain contains ts as its maximum timestamp element.
        target, older = self._split(rest, ts - 1)
        # ``target`` is the single node with this exact ts.
        self._root = self._merge(newer, older)

    def access(self, key: int, size: int = 1) -> tuple[int, int]:
        """Touch ``key``: return its pre-access (rank, byte_distance), move to top.

        ``byte_distance`` includes the object's own pre-access size (the
        inclusive convention of Figure 4.3).  Cold accesses return
        ``(-1, -1)`` and insert the object.  ``size`` updates the object's
        byte weight (variable-size workloads).
        """
        self._clock += 1
        node = self._nodes.get(key)
        if node is None:
            rank, above = -1, -1
        else:
            rank = self.rank_of(key)
            above = self.bytes_above(key) + node.size
            self._remove_ts(node.ts)
        new = _Node(key, self._clock, size, float(self._rng.random()))
        self._nodes[key] = new
        # New node has the max timestamp: merge at the front.
        self._root = self._merge(new, self._root)
        return rank, above

    def evict_oldest(self) -> int:
        """Remove and return the least recently used key."""
        if self._root is None:
            raise IndexError("treap is empty")
        cur = self._root
        while cur.right is not None:
            cur = cur.right
        key = cur.key
        self._remove_ts(cur.ts)
        del self._nodes[key]
        return key

    def keys_in_stack_order(self) -> list[int]:
        """All keys, most recent first (for tests; ``O(M)``)."""
        out: list[int] = []

        def walk(node: Optional[_Node]) -> None:
            if node is None:
                return
            walk(node.left)
            out.append(node.key)
            walk(node.right)

        walk(self._root)
        return out
