/* Native chain-walk kernel for the struct-of-arrays KRR stack.
 *
 * This is the streaming hot loop of repro.stack.soa.SoAKRRStack: for each
 * request it looks up the referenced key's slot in the flat position
 * array, records the pre-update stack distance, then walks the backward
 * update's inverse-CDF swap chain (Algorithm 2) over the flat stack
 * array.  The arithmetic is kept EXACTLY as in
 * repro.core.updates.BackwardUpdate.apply_fused — `v = buf[bpos] * j`,
 * truncate, `y = t < v ? t : t - 1` — so for the same draw buffer the
 * kernel is draw-for-draw and slot-for-slot identical to the scalar
 * Python oracle.  The draw buffer itself is produced in Python by
 * repro.core.updates.backward_draw_block (the shared inverse-CDF block
 * transform); when it runs dry mid-chain the kernel checkpoints its full
 * state into `state` and returns 0 so the caller can refill and resume.
 *
 * Compiled on demand by repro.stack._native via the system C compiler;
 * everything is plain int64/double arrays so the only ABI surface is
 * this one function.
 *
 * state layout (int64 x 6):
 *   [0] next_i       next request index to start (or the one mid-chain)
 *   [1] n_stack      current stack depth
 *   [2] bpos         cursor into the draw buffer
 *   [3] cur_j        0 = between accesses; >0 = interrupted chain slot
 *   [4] total_swaps  cumulative swap-set size (Fig 5.4 cost proxy)
 *   [5] cur_ref      referenced key id of the interrupted chain
 *
 * Returns 1 when all n requests are processed, 0 when the draw buffer is
 * exhausted (refill buf, reset state[2] to 0, call again).
 */

#include <stdint.h>

int64_t krr_backward_chunk(
    const int64_t *kids,      /* dense key ids, one per request */
    int64_t n,                /* number of requests in the chunk */
    int64_t *stack,           /* slot -> key id, top of stack at 0 */
    int64_t *pos,             /* key id -> slot, -1 = not resident */
    const double *buf,        /* transformed draws (1-U)^(1/K) */
    int64_t block,            /* draw buffer length */
    int64_t *distances,       /* out: pre-update distance, -1 = cold */
    int64_t *state)           /* persistent cursor state, see above */
{
    int64_t i = state[0];
    int64_t n_stack = state[1];
    int64_t bpos = state[2];
    int64_t j = state[3];
    int64_t swaps = state[4];
    int64_t ref = state[5];

    while (i < n || j > 0) {
        if (j == 0) {
            int64_t kid = kids[i];
            int64_t p = pos[kid];
            int64_t phi;
            if (p < 0) {
                stack[n_stack] = kid;
                pos[kid] = n_stack;
                n_stack++;
                phi = n_stack;
                distances[i] = -1;
            } else {
                phi = p + 1;
                distances[i] = phi;
            }
            i++;
            swaps += 1;           /* position phi always swaps */
            j = phi - 1;
            if (j == 0)
                continue;         /* referenced already on top */
            ref = stack[j];
        }
        while (j > 0) {
            double v;
            int64_t t, y, moved;
            if (bpos >= block) {
                state[0] = i; state[1] = n_stack; state[2] = bpos;
                state[3] = j; state[4] = swaps; state[5] = ref;
                return 0;         /* draws exhausted: refill and resume */
            }
            /* Zero-based inverse-CDF step: y = ceil(u^(1/K) * j) - 1,
             * u in (0, 1] makes the result land in [0, j-1] already. */
            v = buf[bpos++] * (double)j;
            t = (int64_t)v;
            y = ((double)t < v) ? t : t - 1;
            moved = stack[y];
            stack[j] = moved;
            pos[moved] = j;
            swaps += 1;
            j = y;
        }
        stack[0] = ref;
        pos[ref] = 0;
    }
    state[0] = i; state[1] = n_stack; state[2] = bpos;
    state[3] = 0; state[4] = swaps; state[5] = -1;
    return 1;
}
