"""Binary indexed (Fenwick) trees: integer counts and byte weights.

Used by the Olken-style exact LRU stack-distance oracle
(:mod:`repro.stack.lru_stack`): positions are access timestamps, a set bit
marks "this timestamp is some object's most recent access", and a prefix sum
over timestamps newer than an object's last access is exactly its LRU stack
distance.  The weighted variant stores byte sizes instead of 1s for exact
byte-level distances.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "FenwickTree",
    "GrowableFenwick",
]



class FenwickTree:
    """Fenwick tree over ``n`` slots supporting point add / prefix sum.

    Slots are 0-indexed externally; all operations are ``O(log n)``.
    Values are stored as ``int64`` (sufficient for counts and byte sums on
    any trace this library handles).
    """

    __slots__ = ("n", "_tree")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("n must be >= 0")
        self.n = int(n)
        self._tree = np.zeros(self.n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        """Add ``delta`` to slot ``i``."""
        if not 0 <= i < self.n:
            raise IndexError(f"index {i} out of range [0, {self.n})")
        i += 1
        tree = self._tree
        while i <= self.n:
            tree[i] += delta
            i += i & (-i)

    def prefix_sum(self, i: int) -> int:
        """Sum of slots ``0..i`` inclusive.  ``i = -1`` returns 0."""
        if i >= self.n:
            raise IndexError(f"index {i} out of range [0, {self.n})")
        total = 0
        tree = self._tree
        i += 1
        while i > 0:
            total += int(tree[i])
            i -= i & (-i)
        return total

    def range_sum(self, lo: int, hi: int) -> int:
        """Sum of slots ``lo..hi`` inclusive (empty if ``lo > hi``)."""
        if lo > hi:
            return 0
        return self.prefix_sum(hi) - (self.prefix_sum(lo - 1) if lo > 0 else 0)

    def total(self) -> int:
        """Sum over all slots."""
        return self.prefix_sum(self.n - 1) if self.n else 0

    def find_kth(self, k: int) -> int:
        """Smallest index ``i`` with ``prefix_sum(i) >= k`` (1-based ``k``).

        Requires all slot values non-negative.  Raises ``ValueError`` if
        ``k`` exceeds the tree total.  ``O(log n)``.
        """
        if k <= 0:
            raise ValueError("k must be >= 1")
        pos = 0
        remaining = k
        bit = 1 << (self.n.bit_length())
        tree = self._tree
        while bit:
            nxt = pos + bit
            if nxt <= self.n and tree[nxt] < remaining:
                pos = nxt
                remaining -= int(tree[nxt])
            bit >>= 1
        if pos >= self.n:
            raise ValueError(f"k={k} exceeds tree total {self.total()}")
        return pos  # 0-indexed slot


class GrowableFenwick:
    """A Fenwick tree that grows geometrically as slots are appended.

    The LRU distance oracle appends one slot per request; doubling the
    backing array keeps amortized cost ``O(log n)`` without knowing the
    trace length up front.
    """

    __slots__ = ("_ft", "_used")

    def __init__(self, initial_capacity: int = 1024) -> None:
        self._ft = FenwickTree(max(1, initial_capacity))
        self._used = 0

    def __len__(self) -> int:
        return self._used

    def append(self, value: int) -> int:
        """Append a slot holding ``value``; returns its index."""
        if self._used == self._ft.n:
            old = self._ft
            new = FenwickTree(old.n * 2)
            # Rebuild from per-slot values (recoverable via range sums).
            for i in range(old.n):
                v = old.range_sum(i, i)
                if v:
                    new.add(i, v)
            self._ft = new
        idx = self._used
        self._used += 1
        if value:
            self._ft.add(idx, value)
        return idx

    def add(self, i: int, delta: int) -> None:
        if not 0 <= i < self._used:
            raise IndexError(f"index {i} out of range [0, {self._used})")
        self._ft.add(i, delta)

    def suffix_sum(self, i: int) -> int:
        """Sum of slots ``i..end`` (the "newer than timestamp i" query)."""
        if self._used == 0:
            return 0
        return self._ft.range_sum(i, self._used - 1)

    def total(self) -> int:
        return self._ft.total() if self._used else 0
