"""Mattson's generic stack algorithm (Figure 2.1) as an executable oracle.

The general stack update (§2.2) pushes the referenced object to the top and
sweeps the displaced item downward, at each position ``i`` asking a
``maxPriority`` function whether the resident keeps its slot or is displaced
(making ``i`` a *swap position*).  Policies differ only in that decision:

* **LRU** — the resident is always displaced (stack order == recency order);
* **RR** (Mattson's random replacement) — resident survives with ``(i-1)/i``;
* **KRR** (the paper, Eq. 4.1) — resident survives with ``((i-1)/i)^K``.

This module implements the sweep *literally*, in linear time, exactly as in
the thesis pseudocode.  It is deliberately naive: the fast update strategies
in :mod:`repro.core.updates` are validated against it.
"""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from .._util import RngLike, check_sampling_size, ensure_rng

__all__ = [
    "GenericStack",
    "krr_policy",
    "krr_stack",
    "lru_policy",
    "lru_stack",
    "rr_policy",
    "rr_stack",
]


# A policy maps a 1-based stack position to the probability that the
# resident there is *displaced* during a stack update.
DisplaceProbability = Callable[[int], float]


def lru_policy(i: int) -> float:
    """Exact LRU: every position down to the hit point is displaced."""
    return 1.0


def rr_policy(i: int) -> float:
    """Mattson's RR stack: displaced with probability ``1/i``."""
    return 1.0 / i


def krr_policy(k: float) -> DisplaceProbability:
    """KRR (Eq. 4.1): resident at ``i`` survives with ``((i-1)/i)^K``.

    ``k`` may be fractional — the paper's correction uses ``K' = K^1.4``.
    """
    if k <= 0:
        raise ValueError("K must be positive")

    def displace(i: int) -> float:
        return 1.0 - ((i - 1) / i) ** k

    return displace


class GenericStack:
    """Priority-stack simulator with the linear Mattson update.

    Maintains the stack as a Python list (index 0 = stack top = position 1)
    plus a key→position index for ``O(1)`` stack-distance lookup.  Each
    ``access`` returns the pre-update stack distance (``-1`` when cold) and
    then applies the downward sweep governed by the policy.
    """

    def __init__(self, displace_prob: DisplaceProbability, rng: RngLike = None) -> None:
        self._displace = displace_prob
        self._rng = ensure_rng(rng)
        self._stack: list[int] = []
        self._pos: dict[int, int] = {}  # key -> 0-based index

    def __len__(self) -> int:
        return len(self._stack)

    def position_of(self, key: int) -> int:
        """1-based stack position, or ``-1`` if never referenced."""
        idx = self._pos.get(key)
        return -1 if idx is None else idx + 1

    def access(self, key: int) -> int:
        """Reference ``key``: returns its stack distance, then updates.

        Cold misses return ``-1``; per the thesis, the new object is attached
        to the stack end before the update, so its ``phi`` is the (new) stack
        length.
        """
        idx = self._pos.get(key)
        if idx is None:
            distance = -1
            self._stack.append(key)
            self._pos[key] = len(self._stack) - 1
            phi = len(self._stack)
        else:
            distance = idx + 1
            phi = distance
        self._update(phi)
        return distance

    def _update(self, phi: int) -> None:
        """Linear Mattson sweep: move s[phi] to top, cascade displacements."""
        stack = self._stack
        pos = self._pos
        if phi == 1:
            return
        referenced = stack[phi - 1]
        rng = self._rng
        # y starts as the old top (it was displaced by the referenced object).
        y = stack[0]
        stack[0] = referenced
        pos[referenced] = 0
        for i in range(2, phi):  # 1-based positions 2 .. phi-1
            # Displace iff u >= stay probability — the same draw orientation
            # LinearUpdate uses, so identical seeds give identical paths.
            if rng.random() >= 1.0 - self._displace(i):
                resident = stack[i - 1]
                stack[i - 1] = y
                pos[y] = i - 1
                y = resident
        stack[phi - 1] = y
        pos[y] = phi - 1

    def keys_in_stack_order(self) -> list[int]:
        return list(self._stack)

    def swap_positions_for_update(self, phi: int) -> list[int]:
        """Draw one swap-position set for a hit at ``phi`` (no state change).

        Returns the 1-based positions whose resident is displaced, always
        including 1 and ``phi``.  Used by the statistical-equivalence tests
        comparing the linear sweep against the fast update strategies.
        """
        if phi < 1:
            raise ValueError("phi must be >= 1")
        if phi == 1:
            return [1]
        swaps = [1]
        rng = self._rng
        for i in range(2, phi):
            if rng.random() >= 1.0 - self._displace(i):
                swaps.append(i)
        swaps.append(phi)
        return swaps


def lru_stack(rng: RngLike = None) -> GenericStack:
    """Generic stack specialized to LRU (for oracle tests)."""
    return GenericStack(lru_policy, rng)


def rr_stack(rng: RngLike = None) -> GenericStack:
    """Generic stack specialized to Mattson's RR."""
    return GenericStack(rr_policy, rng)


def krr_stack(k: float, rng: RngLike = None) -> GenericStack:
    """Generic stack specialized to KRR with sampling size ``K``."""
    return GenericStack(krr_policy(k), rng)
