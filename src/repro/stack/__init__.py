"""Stack-algorithm substrate: Mattson framework, exact LRU oracles, histograms."""

from ._native import native_kernel_active
from .fenwick import FenwickTree, GrowableFenwick
from .histogram import ByteDistanceHistogram, DistanceHistogram
from .lru_stack import (
    LinkedListLRUStack,
    TreeLRUStack,
    lru_distance_arrays,
    lru_distance_stream,
    lru_histograms,
)
from .mattson import (
    GenericStack,
    krr_policy,
    krr_stack,
    lru_policy,
    lru_stack,
    rr_policy,
    rr_stack,
)
from .order_statistic_tree import OrderStatisticTreap
from .priority_stack import (
    PriorityStack,
    lfu_distances,
    lfu_mrc,
    mru_distances,
    opt_distances,
    opt_mrc,
)
from .soa import SOA_STRATEGIES, SoAKRRStack

__all__ = [
    "ByteDistanceHistogram",
    "DistanceHistogram",
    "FenwickTree",
    "GenericStack",
    "GrowableFenwick",
    "LinkedListLRUStack",
    "OrderStatisticTreap",
    "PriorityStack",
    "SOA_STRATEGIES",
    "SoAKRRStack",
    "TreeLRUStack",
    "lfu_distances",
    "lfu_mrc",
    "mru_distances",
    "opt_distances",
    "opt_mrc",
    "krr_policy",
    "krr_stack",
    "lru_distance_arrays",
    "lru_distance_stream",
    "lru_histograms",
    "lru_policy",
    "lru_stack",
    "native_kernel_active",
    "rr_policy",
    "rr_stack",
]
