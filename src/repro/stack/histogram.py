"""Stack-distance histograms (object- and byte-granularity).

A stack algorithm emits one stack distance per request; the histogram of
those distances plus the cold-miss count is all an MRC needs: the miss
ratio at cache size ``c`` is the probability of a distance greater than
``c`` (§2.1).  :class:`DistanceHistogram` counts object-granularity
distances exactly; :class:`ByteDistanceHistogram` buckets byte-level
distances on a fixed-width grid.  Both support the ``1/R`` rescaling used
with spatial sampling.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Tuple

import numpy as np
import numpy.typing as npt

__all__ = [
    "ByteDistanceHistogram",
    "DistanceHistogram",
]



class DistanceHistogram:
    """Exact counts of integer stack distances plus cold misses.

    Distances are 1-based stack positions (distance ``d`` hits in any cache
    of size ``>= d``).  Cold (first-ever) accesses are infinite-distance.
    """

    __slots__ = ("_counts", "_cold", "_total", "_scale")

    def __init__(self, initial_capacity: int = 1024, scale: float = 1.0) -> None:
        self._counts = np.zeros(max(1, initial_capacity), dtype=np.int64)
        self._cold = 0
        self._total = 0
        self._scale = float(scale)

    @property
    def scale(self) -> float:
        """Distance multiplier applied at MRC time (1/R for spatial sampling)."""
        return self._scale

    @scale.setter
    def scale(self, value: float) -> None:
        if value <= 0:
            raise ValueError("scale must be positive")
        self._scale = float(value)

    @property
    def cold_misses(self) -> int:
        return self._cold

    @property
    def total(self) -> int:
        """Total recorded accesses (finite + cold)."""
        return self._total

    def record(self, distance: int) -> None:
        """Record one access: ``distance >= 1``, or any value < 1 for cold."""
        self._total += 1
        if distance < 1:
            self._cold += 1
            return
        if distance >= self._counts.shape[0]:
            new_cap = max(self._counts.shape[0] * 2, distance + 1)
            grown = np.zeros(new_cap, dtype=np.int64)
            grown[: self._counts.shape[0]] = self._counts
            self._counts = grown
        self._counts[distance] += 1

    def record_cold(self) -> None:
        self.record(0)

    def record_many(self, distances: "npt.ArrayLike") -> None:
        """Bulk :meth:`record`: one ``bincount`` pass over a batch.

        Elementwise equivalent to ``for d in distances: self.record(d)``
        (values < 1 count as cold) but vectorized — this is the histogram
        half of the batched model hot path.
        """
        arr = np.asarray(distances, dtype=np.int64)
        n = int(arr.shape[0])
        if n == 0:
            return
        self._total += n
        finite = arr[arr >= 1]
        self._cold += n - int(finite.shape[0])
        if finite.shape[0] == 0:
            return
        counts = np.bincount(finite)
        if counts.shape[0] > self._counts.shape[0]:
            new_cap = max(self._counts.shape[0] * 2, counts.shape[0])
            grown = np.zeros(new_cap, dtype=np.int64)
            grown[: self._counts.shape[0]] = self._counts
            self._counts = grown
        self._counts[: counts.shape[0]] += counts

    def counts(self) -> np.ndarray:
        """Counts indexed by distance (index 0 unused); trimmed copy."""
        nz = np.flatnonzero(self._counts)
        hi = int(nz[-1]) + 1 if nz.size else 1
        return self._counts[:hi].copy()

    def state_dict(self) -> Dict[str, Any]:
        return {
            "counts": self.counts().tolist(),
            "cold": self._cold,
            "total": self._total,
            "scale": self._scale,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        counts = np.asarray(state["counts"], dtype=np.int64)
        self._counts = np.zeros(max(1, counts.shape[0]), dtype=np.int64)
        self._counts[: counts.shape[0]] = counts
        self._cold = int(state["cold"])
        self._total = int(state["total"])
        self._scale = float(state["scale"])

    def max_distance(self) -> int:
        nz = np.flatnonzero(self._counts)
        return int(nz[-1]) if nz.size else 0

    def miss_ratio_curve(
        self, max_size: int | None = None
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Miss ratios at cache sizes ``0..max_size`` (object granularity).

        With spatial-sampling scale ``s``, a recorded distance ``d`` stands
        for a true distance ``d*s`` and each recorded access for ``s``
        accesses — the access weights cancel in the ratio, so only the
        distance axis is stretched.
        Returns ``(sizes, miss_ratios)`` arrays; see
        :mod:`repro.mrc.builder` for the :class:`MissRatioCurve` wrapper.
        """
        counts = self.counts()
        if self._total == 0:
            raise ValueError("no accesses recorded")
        scaled_d = np.round(np.arange(counts.shape[0]) * self._scale).astype(np.int64)
        top = int(scaled_d[-1]) if counts.shape[0] > 1 else 1
        if max_size is None:
            max_size = top
        hist = np.zeros(max_size + 2, dtype=np.int64)
        clipped = np.minimum(scaled_d, max_size + 1)
        np.add.at(hist, clipped, counts)
        hist[0] = 0  # distance axis is 1-based
        hits_by_size = np.cumsum(hist[: max_size + 1])
        misses = self._total - hits_by_size
        sizes = np.arange(max_size + 1, dtype=np.int64)
        return sizes, misses / self._total


class ByteDistanceHistogram:
    """Byte-granularity stack distances bucketed on a fixed bin width.

    ``bin_bytes`` trades resolution for memory; distances land in bucket
    ``floor(d / bin_bytes)``.  The MRC is reported at bucket-boundary cache
    sizes.
    """

    __slots__ = ("_bin", "_counts", "_cold", "_total", "_scale")

    def __init__(self, bin_bytes: int = 4096, initial_buckets: int = 1024,
                 scale: float = 1.0) -> None:
        if bin_bytes < 1:
            raise ValueError("bin_bytes must be >= 1")
        self._bin = int(bin_bytes)
        self._counts = np.zeros(max(1, initial_buckets), dtype=np.int64)
        self._cold = 0
        self._total = 0
        self._scale = float(scale)

    @property
    def bin_bytes(self) -> int:
        return self._bin

    @property
    def scale(self) -> float:
        return self._scale

    @scale.setter
    def scale(self, value: float) -> None:
        if value <= 0:
            raise ValueError("scale must be positive")
        self._scale = float(value)

    @property
    def cold_misses(self) -> int:
        return self._cold

    @property
    def total(self) -> int:
        return self._total

    def record(self, distance_bytes: float) -> None:
        """Record one access at byte distance ``distance_bytes`` (< 0 = cold)."""
        self._total += 1
        if distance_bytes < 0:
            self._cold += 1
            return
        bucket = int(distance_bytes * self._scale) // self._bin
        if bucket >= self._counts.shape[0]:
            new_cap = max(self._counts.shape[0] * 2, bucket + 1)
            grown = np.zeros(new_cap, dtype=np.int64)
            grown[: self._counts.shape[0]] = self._counts
            self._counts = grown
        self._counts[bucket] += 1

    def record_cold(self) -> None:
        self.record(-1.0)

    def record_many(self, distances_bytes: "npt.ArrayLike") -> None:
        """Bulk :meth:`record`: vectorized bucketing of a distance batch.

        Elementwise equivalent to calling :meth:`record` per value
        (negative values count as cold); ``int()`` truncation and the
        ``astype(int64)`` cast agree for the non-negative distances used
        here.
        """
        arr = np.asarray(distances_bytes, dtype=np.float64)
        n = int(arr.shape[0])
        if n == 0:
            return
        self._total += n
        finite = arr[arr >= 0]
        self._cold += n - int(finite.shape[0])
        if finite.shape[0] == 0:
            return
        buckets = (finite * self._scale).astype(np.int64) // self._bin
        counts = np.bincount(buckets)
        if counts.shape[0] > self._counts.shape[0]:
            new_cap = max(self._counts.shape[0] * 2, counts.shape[0])
            grown = np.zeros(new_cap, dtype=np.int64)
            grown[: self._counts.shape[0]] = self._counts
            self._counts = grown
        self._counts[: counts.shape[0]] += counts

    def state_dict(self) -> Dict[str, Any]:
        nz = np.flatnonzero(self._counts)
        hi = int(nz[-1]) + 1 if nz.size else 1
        return {
            "bin": self._bin,
            "counts": self._counts[:hi].tolist(),
            "cold": self._cold,
            "total": self._total,
            "scale": self._scale,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        if int(state["bin"]) != self._bin:
            raise ValueError("byte-histogram bin width mismatch")
        counts = np.asarray(state["counts"], dtype=np.int64)
        self._counts = np.zeros(max(1, counts.shape[0]), dtype=np.int64)
        self._counts[: counts.shape[0]] = counts
        self._cold = int(state["cold"])
        self._total = int(state["total"])
        self._scale = float(state["scale"])

    def miss_ratio_curve(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(sizes_bytes, miss_ratios)`` at bucket-boundary cache sizes.

        A distance in bucket ``b`` hits once the cache holds at least
        ``(b+1) * bin_bytes`` bytes (conservative upper boundary).
        """
        if self._total == 0:
            raise ValueError("no accesses recorded")
        nz = np.flatnonzero(self._counts)
        n_buckets = (int(nz[-1]) + 1) if nz.size else 1
        counts = self._counts[:n_buckets]
        hits = np.concatenate(([0], np.cumsum(counts)))
        sizes = np.arange(n_buckets + 1, dtype=np.int64) * self._bin
        misses = self._total - hits
        return sizes, misses / self._total
