"""Exact LRU stack-distance oracles.

Two independent implementations of Mattson's LRU stack:

* :class:`LinkedListLRUStack` — the textbook ``O(NM)`` doubly-linked list
  (``O(1)`` move-to-front, linear-scan distance).  Simple enough to be an
  oracle for everything else.
* :class:`TreeLRUStack` — Olken's ``O(N logM)`` formulation using a Fenwick
  tree over access timestamps: slot ``t`` holds 1 (or the object's byte
  size) iff timestamp ``t`` is some object's most recent access, so the sum
  of slots newer than an object's previous access is its stack distance.

Both report object-granularity and byte-granularity distances and can run a
whole trace into histograms via :func:`lru_distance_stream`.

For whole traces there is a third, much faster route:
:func:`lru_distance_arrays` computes every distance at once with the
offline batch kernel (:func:`repro.kernels.batch_stack_distances` — whole-
array NumPy, no per-access Python loop), and :func:`lru_histograms` uses it
by default.  The streaming stacks remain the oracles the kernel is tested
against, and the incremental path is still available via
``vectorized=False``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Tuple

import numpy as np

from ..kernels.olken import batch_stack_distances
from ..workloads.trace import Trace
from .fenwick import GrowableFenwick
from .histogram import ByteDistanceHistogram, DistanceHistogram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> stack)
    from ..engine.plan import TracePlan

__all__ = [
    "LinkedListLRUStack",
    "TreeLRUStack",
    "lru_distance_arrays",
    "lru_distance_stream",
    "lru_histograms",
]



class _DNode:
    __slots__ = ("key", "size", "prev", "next")

    def __init__(self, key: int, size: int) -> None:
        self.key = key
        self.size = size
        self.prev: Optional["_DNode"] = None
        self.next: Optional["_DNode"] = None


class LinkedListLRUStack:
    """Doubly-linked-list LRU stack: exact distances, ``O(M)`` per access."""

    def __init__(self) -> None:
        self._head: Optional[_DNode] = None
        self._nodes: dict[int, _DNode] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def access(self, key: int, size: int = 1) -> tuple[int, int]:
        """Return pre-access ``(stack_distance, byte_distance)``; cold = (-1, -1).

        ``byte_distance`` is the byte-level stack distance of Figure 4.3:
        bytes of all more recent objects plus the object's own (pre-access)
        size — the smallest byte capacity at which this access hits.
        """
        node = self._nodes.get(key)
        if node is None:
            dist, above = -1, -1
        else:
            dist = 1
            above = node.size  # own (old) size counts toward the distance
            cur = self._head
            while cur is not node:
                above += cur.size
                dist += 1
                cur = cur.next
            # Unlink.
            if node.prev is not None:
                node.prev.next = node.next
            else:
                self._head = node.next
            if node.next is not None:
                node.next.prev = node.prev
        if node is None:
            node = _DNode(key, size)
            self._nodes[key] = node
        else:
            node.size = size
        node.prev = None
        node.next = self._head
        if self._head is not None:
            self._head.prev = node
        self._head = node
        return dist, above

    def keys_in_stack_order(self) -> list[int]:
        out: list[int] = []
        cur = self._head
        while cur is not None:
            out.append(cur.key)
            cur = cur.next
        return out


class TreeLRUStack:
    """Fenwick-tree LRU stack: exact distances in ``O(logN)`` per access."""

    def __init__(self) -> None:
        self._count_ft = GrowableFenwick()
        self._bytes_ft = GrowableFenwick()
        self._last_ts: dict[int, int] = {}
        self._last_size: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._last_ts)

    def access(self, key: int, size: int = 1) -> tuple[int, int]:
        """Return pre-access ``(stack_distance, byte_distance)``; cold = (-1, -1).

        ``byte_distance`` includes the object's own pre-access size (see
        :class:`LinkedListLRUStack.access`).
        """
        prev_ts = self._last_ts.get(key)
        if prev_ts is None:
            dist, above = -1, -1
        else:
            # Objects accessed after prev_ts sit above this one; including
            # itself gives the 1-based stack position (and, on the byte tree,
            # the inclusive byte-level distance).
            dist = self._count_ft.suffix_sum(prev_ts)
            above = self._bytes_ft.suffix_sum(prev_ts)
            # Clear the old most-recent marker.
            self._count_ft.add(prev_ts, -1)
            self._bytes_ft.add(prev_ts, -self._last_size[key])
        ts = self._count_ft.append(1)
        ts2 = self._bytes_ft.append(size)
        assert ts == ts2
        self._last_ts[key] = ts
        self._last_size[key] = size
        return dist, above

    def items_in_recency_order(self) -> list[Tuple[int, int]]:
        """``(key, size)`` pairs, least- to most-recently used.

        Future distances depend only on this order (and the sizes on the
        byte tree), not on absolute timestamps, so replaying the pairs
        into a fresh stack reproduces its observable behavior exactly —
        the snapshot/restore contract used by the SHARDS baseline.
        """
        order = sorted(self._last_ts, key=self._last_ts.__getitem__)
        return [(key, self._last_size[key]) for key in order]


def lru_distance_stream(trace: Trace, use_tree: bool = True) -> Iterator[tuple[int, int]]:
    """Yield per-request ``(distance, bytes_above)`` for a whole trace."""
    stack = TreeLRUStack() if use_tree else LinkedListLRUStack()
    keys = trace.keys
    sizes = trace.sizes
    for i in range(keys.shape[0]):
        yield stack.access(int(keys[i]), int(sizes[i]))


def lru_distance_arrays(
    trace: Trace, plan: Optional["TracePlan"] = None
) -> Tuple[np.ndarray, np.ndarray]:
    """Exact per-request ``(distances, byte_distances)`` for a whole trace.

    One call into the offline Olken batch kernel
    (:func:`repro.kernels.batch_stack_distances`); element ``i`` equals
    what ``stack.access(keys[i], sizes[i])`` would have returned on either
    streaming stack (cold accesses are ``(-1, -1)``).  ``plan`` supplies a
    precomputed previous-occurrence column (e.g. from a shared
    :class:`~repro.engine.plan.TracePlan`) so it is not rebuilt here.
    """
    prev = plan.prev_occurrence if plan is not None else None
    return batch_stack_distances(trace.keys, trace.sizes, prev=prev)


def lru_histograms(
    trace: Trace,
    use_tree: bool = True,
    byte_bin: int = 4096,
    vectorized: bool = True,
    plan: Optional["TracePlan"] = None,
) -> tuple[DistanceHistogram, ByteDistanceHistogram]:
    """Run a trace through an exact LRU stack into both histograms.

    ``vectorized=True`` (default) computes every distance in one batch-
    kernel call and fills the histograms with one ``bincount`` pass each —
    bit-identical counts to the streaming path, typically >10x faster.
    ``vectorized=False`` streams the trace through a
    :class:`TreeLRUStack`/:class:`LinkedListLRUStack` (selected by
    ``use_tree``) one access at a time; the equivalence is regression-
    tested.
    """
    obj_hist = DistanceHistogram()
    byte_hist = ByteDistanceHistogram(bin_bytes=byte_bin)
    if vectorized:
        distances, byte_distances = lru_distance_arrays(trace, plan=plan)
        obj_hist.record_many(distances)
        byte_hist.record_many(byte_distances.astype(np.float64))
        return obj_hist, byte_hist
    for dist, byte_dist in lru_distance_stream(trace, use_tree=use_tree):
        obj_hist.record(dist if dist > 0 else 0)
        if dist > 0:
            byte_hist.record(float(byte_dist))
        else:
            byte_hist.record_cold()
    return obj_hist, byte_hist
