"""Exact LRU stack-distance oracles.

Two independent implementations of Mattson's LRU stack:

* :class:`LinkedListLRUStack` — the textbook ``O(NM)`` doubly-linked list
  (``O(1)`` move-to-front, linear-scan distance).  Simple enough to be an
  oracle for everything else.
* :class:`TreeLRUStack` — Olken's ``O(N logM)`` formulation using a Fenwick
  tree over access timestamps: slot ``t`` holds 1 (or the object's byte
  size) iff timestamp ``t`` is some object's most recent access, so the sum
  of slots newer than an object's previous access is its stack distance.

Both report object-granularity and byte-granularity distances and can run a
whole trace into histograms via :func:`lru_distance_stream`.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from ..workloads.trace import Trace
from .fenwick import GrowableFenwick
from .histogram import ByteDistanceHistogram, DistanceHistogram

__all__ = [
    "LinkedListLRUStack",
    "TreeLRUStack",
    "lru_distance_stream",
    "lru_histograms",
]



class _DNode:
    __slots__ = ("key", "size", "prev", "next")

    def __init__(self, key: int, size: int) -> None:
        self.key = key
        self.size = size
        self.prev: Optional["_DNode"] = None
        self.next: Optional["_DNode"] = None


class LinkedListLRUStack:
    """Doubly-linked-list LRU stack: exact distances, ``O(M)`` per access."""

    def __init__(self) -> None:
        self._head: Optional[_DNode] = None
        self._nodes: dict[int, _DNode] = {}

    def __len__(self) -> int:
        return len(self._nodes)

    def access(self, key: int, size: int = 1) -> tuple[int, int]:
        """Return pre-access ``(stack_distance, byte_distance)``; cold = (-1, -1).

        ``byte_distance`` is the byte-level stack distance of Figure 4.3:
        bytes of all more recent objects plus the object's own (pre-access)
        size — the smallest byte capacity at which this access hits.
        """
        node = self._nodes.get(key)
        if node is None:
            dist, above = -1, -1
        else:
            dist = 1
            above = node.size  # own (old) size counts toward the distance
            cur = self._head
            while cur is not node:
                above += cur.size
                dist += 1
                cur = cur.next
            # Unlink.
            if node.prev is not None:
                node.prev.next = node.next
            else:
                self._head = node.next
            if node.next is not None:
                node.next.prev = node.prev
        if node is None:
            node = _DNode(key, size)
            self._nodes[key] = node
        else:
            node.size = size
        node.prev = None
        node.next = self._head
        if self._head is not None:
            self._head.prev = node
        self._head = node
        return dist, above

    def keys_in_stack_order(self) -> list[int]:
        out: list[int] = []
        cur = self._head
        while cur is not None:
            out.append(cur.key)
            cur = cur.next
        return out


class TreeLRUStack:
    """Fenwick-tree LRU stack: exact distances in ``O(logN)`` per access."""

    def __init__(self) -> None:
        self._count_ft = GrowableFenwick()
        self._bytes_ft = GrowableFenwick()
        self._last_ts: dict[int, int] = {}
        self._last_size: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self._last_ts)

    def access(self, key: int, size: int = 1) -> tuple[int, int]:
        """Return pre-access ``(stack_distance, byte_distance)``; cold = (-1, -1).

        ``byte_distance`` includes the object's own pre-access size (see
        :class:`LinkedListLRUStack.access`).
        """
        prev_ts = self._last_ts.get(key)
        if prev_ts is None:
            dist, above = -1, -1
        else:
            # Objects accessed after prev_ts sit above this one; including
            # itself gives the 1-based stack position (and, on the byte tree,
            # the inclusive byte-level distance).
            dist = self._count_ft.suffix_sum(prev_ts)
            above = self._bytes_ft.suffix_sum(prev_ts)
            # Clear the old most-recent marker.
            self._count_ft.add(prev_ts, -1)
            self._bytes_ft.add(prev_ts, -self._last_size[key])
        ts = self._count_ft.append(1)
        ts2 = self._bytes_ft.append(size)
        assert ts == ts2
        self._last_ts[key] = ts
        self._last_size[key] = size
        return dist, above


def lru_distance_stream(trace: Trace, use_tree: bool = True) -> Iterator[tuple[int, int]]:
    """Yield per-request ``(distance, bytes_above)`` for a whole trace."""
    stack = TreeLRUStack() if use_tree else LinkedListLRUStack()
    keys = trace.keys
    sizes = trace.sizes
    for i in range(keys.shape[0]):
        yield stack.access(int(keys[i]), int(sizes[i]))


def lru_histograms(
    trace: Trace,
    use_tree: bool = True,
    byte_bin: int = 4096,
) -> tuple[DistanceHistogram, ByteDistanceHistogram]:
    """Run a trace through an exact LRU stack into both histograms."""
    obj_hist = DistanceHistogram()
    byte_hist = ByteDistanceHistogram(bin_bytes=byte_bin)
    for dist, byte_dist in lru_distance_stream(trace, use_tree=use_tree):
        obj_hist.record(dist if dist > 0 else 0)
        if dist > 0:
            byte_hist.record(float(byte_dist))
        else:
            byte_hist.record_cold()
    return obj_hist, byte_hist
