"""On-demand native build of the SoA chain-walk kernel.

The backward-update swap chain is a data-dependent scalar recurrence —
each step's slot is ``ceil(draw * j) - 1`` of the previous one — so NumPy
cannot vectorize it and the CPython interpreter caps the streaming KRR
path at a few hundred nanoseconds per chain step.  The kernel in
``_soa_kernel.c`` runs the identical arithmetic at C speed over the flat
SoA arrays (10x+ end to end; see docs/PERFORMANCE.md).

This module compiles that one C file with the system compiler the first
time it is needed and binds it through :mod:`ctypes`.  There is no build
step, no packaging change and no new dependency: if no compiler is
available (or ``REPRO_NATIVE=0`` disables the attempt), callers fall back
to the pure-Python SoA path, which consumes the same draws and produces
bit-identical results — the kernel is a throughput lever, never a
semantics change.

The shared object is cached under a per-user directory keyed by the
SHA-256 of the C source, so editing the kernel invalidates stale builds
and concurrent processes converge on one artifact (build to a unique
temp name, then atomic ``os.replace``).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Optional

import numpy as np

__all__ = [
    "BackwardKernel",
    "load_backward_kernel",
    "native_kernel_active",
]


_SOURCE = Path(__file__).with_name("_soa_kernel.c")

#: Sentinel distinguishing "never tried" from "tried and unavailable".
_UNSET = object()
_KERNEL: object = _UNSET


def _compiler() -> Optional[str]:
    """The C compiler to use: ``$CC`` if set, else the first of cc/gcc/clang."""
    cc = os.environ.get("CC")
    if cc:
        return cc if shutil.which(cc) else None
    for candidate in ("cc", "gcc", "clang"):
        if shutil.which(candidate):
            return candidate
    return None


def _cache_dir() -> Path:
    """Per-user build cache (override with ``REPRO_NATIVE_CACHE``)."""
    override = os.environ.get("REPRO_NATIVE_CACHE")
    if override:
        return Path(override)
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return Path(tempfile.gettempdir()) / f"repro-native-{uid}"


def _extra_cflags() -> list:
    """Extra compile flags from ``REPRO_NATIVE_CFLAGS`` (whitespace-split).

    This is how the sanitizer CI job rebuilds the kernel with
    ``-fsanitize=address,undefined``: the flags participate in the cache
    digest, so sanitized and plain builds never collide in the cache.
    """
    return os.environ.get("REPRO_NATIVE_CFLAGS", "").split()


def _build_library(source: Path) -> Optional[Path]:
    """Compile ``source`` into the cache; returns the .so path or None."""
    cc = _compiler()
    if cc is None:
        return None
    extra = _extra_cflags()
    text = source.read_bytes() + "\x00".join(extra).encode()
    digest = hashlib.sha256(text).hexdigest()[:16]
    cache = _cache_dir()
    lib_path = cache / f"soa_kernel-{digest}.so"
    if lib_path.exists():
        return lib_path
    try:
        cache.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(suffix=".so", dir=str(cache))
        os.close(fd)
        cmd = [cc, "-O3", "-shared", "-fPIC", *extra, "-o", tmp_name, str(source)]
        proc = subprocess.run(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            timeout=120,
            check=False,
        )
        if proc.returncode != 0:
            os.unlink(tmp_name)
            return None
        os.replace(tmp_name, lib_path)  # atomic: racers converge
        return lib_path
    except OSError:
        return None


class BackwardKernel:
    """Bound native ``krr_backward_chunk`` (see ``_soa_kernel.c``)."""

    __slots__ = ("_fn",)

    def __init__(self, library: ctypes.CDLL) -> None:
        fn = library.krr_backward_chunk
        fn.restype = ctypes.c_int64
        fn.argtypes = [
            ctypes.c_void_p,  # kids
            ctypes.c_int64,   # n
            ctypes.c_void_p,  # stack
            ctypes.c_void_p,  # pos
            ctypes.c_void_p,  # buf
            ctypes.c_int64,   # block
            ctypes.c_void_p,  # distances
            ctypes.c_void_p,  # state
        ]
        self._fn = fn

    def run(
        self,
        kids: np.ndarray,
        stack: np.ndarray,
        pos: np.ndarray,
        buf: np.ndarray,
        distances: np.ndarray,
        state: np.ndarray,
    ) -> bool:
        """One kernel call; True = chunk done, False = refill ``buf`` first.

        All arrays must be C-contiguous (``int64`` except the ``float64``
        draw buffer); the caller owns buffer refills and state resets.
        """
        done = self._fn(
            kids.ctypes.data,
            kids.shape[0],
            stack.ctypes.data,
            pos.ctypes.data,
            buf.ctypes.data,
            buf.shape[0],
            distances.ctypes.data,
            state.ctypes.data,
        )
        return bool(done)


def load_backward_kernel() -> Optional[BackwardKernel]:
    """The process-wide kernel instance, or None if unavailable.

    Compilation is attempted once per process; failures (no compiler,
    sandboxed tmpdir, ``REPRO_NATIVE=0``) are cached as None so the SoA
    stack silently stays on its pure-Python fallback.
    """
    global _KERNEL
    if _KERNEL is _UNSET:
        _KERNEL = _load()
    return _KERNEL if isinstance(_KERNEL, BackwardKernel) else None


def _load() -> Optional[BackwardKernel]:
    if os.environ.get("REPRO_NATIVE", "1") == "0":
        return None
    if not _SOURCE.exists():
        return None
    lib_path = _build_library(_SOURCE)
    if lib_path is None:
        return None
    try:
        return BackwardKernel(ctypes.CDLL(str(lib_path)))
    except OSError:
        return None


def native_kernel_active() -> bool:
    """True when the compiled kernel is loaded (benchmarks report this)."""
    return load_backward_kernel() is not None
