"""Struct-of-arrays KRR stack: the streaming hot path on flat arrays.

:class:`~repro.core.krr.KRRStack` is a pointer-chasing Python object
structure — a list of boxed keys, a dict position map, per-access result
tuples — and that layout caps streaming throughput near 10^5 requests/s
no matter how carefully the loop is written.  :class:`SoAKRRStack` is the
same abstract data structure laid out the way the Multi-step LRU line of
work recommends: one flat ``int64`` array per field.

* ``stack[slot] -> key id`` — stack order, top of stack at slot 0;
* ``pos[key id] -> slot`` — the O(1) position lookup (``-1`` = absent);
* ``sizes[key id]`` — last-written object size;
* keys are *dense ids*: raw keys are factorized once per batch (or once
  per trace by a :class:`~repro.engine.plan.TracePlan`), so the hot loop
  never touches a Python dict or a boxed integer.

``access_many`` then processes whole request chunks: the inverse-CDF
draw blocks are produced vectorized by
:func:`~repro.core.updates.backward_draw_block`, survival probabilities
come from the shared :func:`~repro.core.updates.survival_table`, and the
data-dependent chain walk runs inside the compiled kernel from
:mod:`repro.stack._native` when a C compiler is available (pure-Python
fallback otherwise — same draws, same results, less speed).

**Seeding contract.**  For any ``(k, strategy, seed)`` this stack
consumes the generator's stream in exactly the refill pattern the scalar
strategies use (blocks of :data:`~repro.core.updates.DRAW_BLOCK` draws,
transformed by the shared helpers) and applies the identical update
arithmetic, so distances, final stack order and swap counters are
bit-identical to :class:`~repro.core.krr.KRRStack` — property-tested in
``tests/test_soa_engine.py``.  Supported strategies: ``"backward"``
(chain walk) and ``"linear"`` (vectorized survival sweep); ``"topdown"``
has no array-friendly formulation and stays scalar-only.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from .._util import RngLike, ensure_rng
from ..core.updates import (
    DRAW_BLOCK,
    backward_draw_block,
    survival_table,
)
from ._native import BackwardKernel, load_backward_kernel

__all__ = [
    "SOA_STRATEGIES",
    "SoAKRRStack",
]


#: Update strategies with an SoA implementation.
SOA_STRATEGIES = ("backward", "linear")

_STATE_LEN = 6  # see _soa_kernel.c: [i, n_stack, bpos, cur_j, swaps, ref]


class SoAKRRStack:
    """Array-native KRR stack with batched, draw-identical updates.

    Parameters
    ----------
    k:
        The (possibly corrected) KRR parameter; may be fractional.
    strategy:
        ``"backward"`` (default) or ``"linear"``.
    rng:
        Seed or generator; the stream is consumed exactly as the scalar
        strategy with the same seed would consume it.
    initial_capacity:
        Starting length of the slot/id arrays (they double on demand).
    use_native:
        ``None`` (default) uses the compiled kernel when available;
        ``False`` forces the pure-Python walk (testing/diagnostics);
        ``True`` requires it (raises ``RuntimeError`` if unavailable).
    stack_buffer / pos_buffer:
        Preallocated ``int64`` state rows (e.g. rows of a grid-wide 2-D
        array, as :class:`~repro.core.vkrr.MultiKRR` passes).  Both must
        be given together, C-contiguous, and large enough for every
        distinct key; growth is disabled in this mode.
    """

    def __init__(
        self,
        k: float,
        strategy: str = "backward",
        rng: RngLike = None,
        initial_capacity: int = 1024,
        use_native: Optional[bool] = None,
        stack_buffer: Optional[np.ndarray] = None,
        pos_buffer: Optional[np.ndarray] = None,
    ) -> None:
        if k <= 0:
            raise ValueError("K must be positive")
        if strategy not in SOA_STRATEGIES:
            raise ValueError(
                f"SoA stack supports strategies {SOA_STRATEGIES}, got {strategy!r}"
            )
        self.k = float(k)
        self._inv_k = 1.0 / self.k
        self.strategy_name = strategy
        self._rng = ensure_rng(rng)

        self._kernel: Optional[BackwardKernel] = None
        if strategy == "backward" and use_native is not False:
            self._kernel = load_backward_kernel()
            if use_native and self._kernel is None:
                raise RuntimeError(
                    "use_native=True but no C compiler is available "
                    "(set REPRO_NATIVE=1 and install cc/gcc/clang)"
                )

        if (stack_buffer is None) != (pos_buffer is None):
            raise ValueError("stack_buffer and pos_buffer must be given together")
        if stack_buffer is not None and pos_buffer is not None:
            self._stack = self._check_buffer(stack_buffer, "stack_buffer")
            self._pos = self._check_buffer(pos_buffer, "pos_buffer")
            self._pos[:] = -1
            self._fixed_capacity = True
        else:
            cap = max(1, int(initial_capacity))
            self._stack = np.empty(cap, dtype=np.int64)
            self._pos = np.full(cap, -1, dtype=np.int64)
            self._fixed_capacity = False
        self._n = 0
        self._sizes = np.ones(self._pos.shape[0], dtype=np.int64)

        # Draw buffers, lazily filled on first use — exactly like the
        # scalar strategies, so construction consumes no generator state.
        self._buf = np.empty(0, dtype=np.float64)  # backward: (1-U)^(1/K)
        self._buf_list: List[float] = []           # python-walk mirror
        self._bpos = 0
        self._ubuf = np.empty(0, dtype=np.float64)  # linear: raw uniforms
        self._ubpos = 0
        self._table = survival_table(self.k) if strategy == "linear" else None

        # Raw-key interning (unused when ids are supplied externally).
        self._ids: Dict[int, int] = {}
        self._id_keys: List[int] = []
        self._key_table: Optional[np.ndarray] = None
        # True once access_many_interned bound this stack to an external
        # streaming interner (first-seen dense ids, no key table here).
        self._external_dense = False

        #: Cumulative number of swap positions drawn (Fig 5.4's cost proxy).
        self.total_swaps = 0
        #: Number of stack updates performed.
        self.updates = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _check_buffer(buffer: np.ndarray, name: str) -> np.ndarray:
        if buffer.dtype != np.int64 or buffer.ndim != 1:
            raise ValueError(f"{name} must be a 1-D int64 array")
        if not buffer.flags.c_contiguous:
            raise ValueError(f"{name} must be C-contiguous")
        return buffer

    @property
    def uses_native_kernel(self) -> bool:
        """True when chain walks run in the compiled kernel."""
        return self._kernel is not None

    @property
    def tracks_sizes(self) -> bool:
        return False

    @property
    def uses_external_ids(self) -> bool:
        """True once :meth:`access_many_ids` has bound a key table."""
        return self._key_table is not None

    @property
    def has_interned_keys(self) -> bool:
        """True once raw-key :meth:`access_many` has interned keys."""
        return bool(self._ids)

    def __len__(self) -> int:
        return self._n

    def __contains__(self, key: int) -> bool:
        return self.position_of(key) > 0

    def position_of(self, key: int) -> int:
        """Current 1-based stack position of ``key`` (-1 if absent)."""
        kid = self._lookup_id(key)
        if kid is None:
            return -1
        slot = int(self._pos[kid])
        return -1 if slot < 0 else slot + 1

    def _lookup_id(self, key: int) -> Optional[int]:
        if self._external_dense:
            raise RuntimeError(
                "this stack consumes externally-interned dense ids "
                "(access_many_interned); the caller owns the key<->id map"
            )
        if self._key_table is not None:
            idx = int(np.searchsorted(self._key_table, key))
            if idx < self._key_table.shape[0] and int(self._key_table[idx]) == key:
                return idx
            return None
        return self._ids.get(key)

    def _key_of_id(self, kid: int) -> int:
        if self._external_dense:
            raise RuntimeError(
                "this stack consumes externally-interned dense ids; "
                "the caller owns the key<->id map"
            )
        if self._key_table is not None:
            return int(self._key_table[kid])
        return self._id_keys[kid]

    def keys_in_stack_order(self) -> List[int]:
        return [self._key_of_id(kid) for kid in self._stack[: self._n].tolist()]

    def sizes_in_stack_order(self) -> List[int]:
        return self._sizes[self._stack[: self._n]].tolist()

    @property
    def total_bytes(self) -> int:
        return int(self._sizes[self._stack[: self._n]].sum())

    # ------------------------------------------------------------------
    # capacity management
    # ------------------------------------------------------------------
    def _grow(self, array: np.ndarray, capacity: int, fill: int) -> np.ndarray:
        new_cap = max(capacity, array.shape[0] * 2, 1)
        grown = np.full(new_cap, fill, dtype=np.int64)
        grown[: array.shape[0]] = array
        return grown

    def _ensure_capacity(self, max_kid: int, incoming: int) -> None:
        """Room for ``incoming`` potential colds and ids up to ``max_kid``."""
        need_slots = self._n + incoming
        need_ids = max_kid + 1
        if self._fixed_capacity:
            if need_ids > self._pos.shape[0] or need_ids > self._stack.shape[0]:
                raise ValueError(
                    "fixed-capacity SoA stack too small for key ids up to "
                    f"{max_kid} (capacity {self._pos.shape[0]})"
                )
            if self._sizes.shape[0] < need_ids:
                self._sizes = self._grow(self._sizes, need_ids, 1)
            return
        if self._stack.shape[0] < need_slots:
            self._stack = self._grow(self._stack, need_slots, 0)
        if self._pos.shape[0] < need_ids:
            self._pos = self._grow(self._pos, need_ids, -1)
        if self._sizes.shape[0] < need_ids:
            self._sizes = self._grow(self._sizes, need_ids, 1)

    def _intern_keys(self, keys: np.ndarray) -> np.ndarray:
        """Map raw keys to dense ids, assigning fresh ids to unseen keys."""
        if self._key_table is not None or self._external_dense:
            raise RuntimeError(
                "this stack was fed pre-factorized ids (access_many_ids/"
                "access_many_interned); mixing raw-key access would corrupt "
                "the id space"
            )
        uniq, inverse = np.unique(keys, return_inverse=True)
        lut = np.empty(uniq.shape[0], dtype=np.int64)
        ids = self._ids
        id_keys = self._id_keys
        for j, key in enumerate(uniq.tolist()):
            kid = ids.get(key)
            if kid is None:
                kid = len(id_keys)
                ids[key] = kid
                id_keys.append(key)
            lut[j] = kid
        out = lut[inverse]
        assert isinstance(out, np.ndarray)
        return np.ascontiguousarray(out, dtype=np.int64)

    # ------------------------------------------------------------------
    # access paths
    # ------------------------------------------------------------------
    def access(self, key: int, size: int = 1) -> tuple[int, float]:
        """Single-request :meth:`access_many` (API parity with KRRStack)."""
        distances, _ = self.access_many(
            np.asarray([key], dtype=np.int64), [size]
        )
        return int(distances[0]), -1.0

    def access_many(
        self,
        keys: Union[np.ndarray, Sequence[int]],
        sizes: Union[np.ndarray, Sequence[int], None] = None,
    ) -> tuple[np.ndarray, None]:
        """Process a request chunk; returns ``(distances, None)``.

        ``distances`` is an ``int64`` array of pre-update 1-based stack
        positions (``-1`` for cold accesses) — elementwise identical to
        what :meth:`KRRStack.access_many` returns for the same seed.
        """
        keys_arr = np.ascontiguousarray(np.asarray(keys, dtype=np.int64))
        kids = self._intern_keys(keys_arr)
        return self._access_ids(kids, sizes), None

    def access_many_ids(
        self,
        kids: np.ndarray,
        key_table: np.ndarray,
        sizes: Union[np.ndarray, Sequence[int], None] = None,
    ) -> np.ndarray:
        """:meth:`access_many` on pre-factorized dense key ids.

        ``kids`` must be ``key_table``-relative ids (``key_table`` sorted
        ascending, as :func:`~repro.kernels.prep.factorize_keys` and
        :class:`~repro.engine.plan.TracePlan` produce); the table is
        retained for reverse lookups, and later raw-key calls are
        rejected to keep the id space consistent.
        """
        if self._ids or self._external_dense:
            raise RuntimeError(
                "this stack already interned keys (raw or streaming); "
                "cannot switch to pre-factorized table ids"
            )
        table = np.asarray(key_table, dtype=np.int64)
        if self._key_table is not None and table is not self._key_table:
            if not np.array_equal(table, self._key_table):
                raise ValueError(
                    "access_many_ids called with a different key table; "
                    "ids from another trace would corrupt the stack"
                )
        self._key_table = table
        kids = np.ascontiguousarray(np.asarray(kids, dtype=np.int64))
        return self._access_ids(kids, sizes)

    def access_many_interned(
        self,
        kids: np.ndarray,
        sizes: Union[np.ndarray, Sequence[int], None] = None,
    ) -> np.ndarray:
        """:meth:`access_many` on *externally streamed* dense key ids.

        The out-of-core feed: a streaming interner (e.g.
        :class:`~repro.engine.plan.StreamingTracePlan`) assigns dense ids
        in first-seen order, chunk by chunk, and this stack just consumes
        them — capacity grows on demand, so the distinct-key count never
        needs to be known up front.  Ids are opaque labels to the update
        walk (distances depend only on stack *positions*), so the
        resulting distance sequence is bit-identical to
        :meth:`access_many_ids` over the same trace with sorted-table
        ids.  The caller owns the key<->id map; reverse lookups
        (``position_of`` etc.) are refused in this mode, as is mixing
        with the other access paths.
        """
        if self._ids or self._key_table is not None:
            raise RuntimeError(
                "this stack already interned keys via another access path; "
                "mixing with streamed dense ids would corrupt the id space"
            )
        self._external_dense = True
        kids = np.ascontiguousarray(np.asarray(kids, dtype=np.int64))
        return self._access_ids(kids, sizes)

    def _access_ids(
        self,
        kids: np.ndarray,
        sizes: Union[np.ndarray, Sequence[int], None],
    ) -> np.ndarray:
        if kids.shape[0] == 0:
            return np.empty(0, dtype=np.int64)
        self._ensure_capacity(int(kids.max()), kids.shape[0])
        if self.strategy_name == "linear":
            distances = self._walk_linear(kids)
        elif self._kernel is not None:
            distances = self._walk_backward_native(kids)
        else:
            distances = self._walk_backward_python(kids)
        self.updates += int(kids.shape[0])
        if sizes is not None:
            # Fancy assignment applies duplicates in order, so the last
            # access's size wins — the same end state the scalar stack's
            # per-access dict writes produce.
            self._sizes[kids] = np.asarray(sizes, dtype=np.int64)
        return distances

    # ------------------------------------------------------------------
    def _walk_backward_native(self, kids: np.ndarray) -> np.ndarray:
        assert self._kernel is not None
        distances = np.empty(kids.shape[0], dtype=np.int64)
        state = np.zeros(_STATE_LEN, dtype=np.int64)
        state[1] = self._n
        state[2] = self._bpos
        state[4] = self.total_swaps
        state[5] = -1
        while not self._kernel.run(
            kids, self._stack, self._pos, self._buf, distances, state
        ):
            self._buf = np.ascontiguousarray(
                backward_draw_block(self._rng, self._inv_k, DRAW_BLOCK)
            )
            state[2] = 0
        self._n = int(state[1])
        self._bpos = int(state[2])
        self.total_swaps = int(state[4])
        return distances

    def _walk_backward_python(self, kids: np.ndarray) -> np.ndarray:
        """Pure-Python mirror of the native kernel (same draws, same state)."""
        n_res = self._n
        stack_l = self._stack[:n_res].tolist()
        pos_l = self._pos.tolist()
        buf = self._buf_list
        bpos = self._bpos
        block = len(buf)
        swaps = 0
        distances: List[int] = []
        record = distances.append
        append = stack_l.append
        for kid in kids.tolist():
            p = pos_l[kid]
            if p < 0:
                append(kid)
                phi = len(stack_l)
                pos_l[kid] = phi - 1
                record(-1)
            else:
                phi = p + 1
                record(phi)
            swaps += 1
            j = phi - 1
            if j == 0:
                continue
            ref = stack_l[j]
            while j > 0:
                if bpos >= block:
                    buf = backward_draw_block(
                        self._rng, self._inv_k, DRAW_BLOCK
                    ).tolist()
                    bpos = 0
                    block = len(buf)
                v = buf[bpos] * j
                bpos += 1
                t = int(v)
                y = t if t < v else t - 1
                moved = stack_l[y]
                stack_l[j] = moved
                pos_l[moved] = j
                swaps += 1
                j = y
            stack_l[0] = ref
            pos_l[ref] = 0
        self._buf_list = buf
        self._bpos = bpos
        self._n = len(stack_l)
        self._stack[: self._n] = stack_l
        self._pos[:] = pos_l
        self.total_swaps += swaps
        return np.asarray(distances, dtype=np.int64)

    # ------------------------------------------------------------------
    def _take_uniforms(self, needed: int) -> np.ndarray:
        """Next ``needed`` uniforms, refilling in DRAW_BLOCK-sized blocks.

        Consumes ``Generator.random(DRAW_BLOCK)`` blocks exactly like the
        scalar ``_BufferedUniform``, so the value sequence matches the
        linear oracle draw for draw.
        """
        parts: List[np.ndarray] = []
        while needed > 0:
            available = self._ubuf.shape[0] - self._ubpos
            if available <= 0:
                self._ubuf = self._rng.random(DRAW_BLOCK)
                self._ubpos = 0
                available = DRAW_BLOCK
            take = min(needed, available)
            parts.append(self._ubuf[self._ubpos : self._ubpos + take])
            self._ubpos += take
            needed -= take
        if len(parts) == 1:
            return parts[0]
        return np.concatenate(parts)

    def _walk_linear(self, kids: np.ndarray) -> np.ndarray:
        """Vectorized linear sweep: one survival-table compare per access."""
        assert self._table is not None
        stack = self._stack
        pos = self._pos
        table = self._table
        n_res = self._n
        swaps = 0
        distances = np.empty(kids.shape[0], dtype=np.int64)
        for i, kid in enumerate(kids.tolist()):
            p = int(pos[kid])
            if p < 0:
                stack[n_res] = kid
                pos[kid] = n_res
                n_res += 1
                phi = n_res
                distances[i] = -1
            else:
                phi = p + 1
                distances[i] = phi
            if phi == 1:
                swaps += 1
                continue
            # Positions 2..phi-1 swap where their uniform clears the
            # survival probability — one vectorized compare per access.
            mids = np.empty(0, dtype=np.int64)
            if phi > 2:
                u = self._take_uniforms(phi - 2)
                surv = table.as_array(phi)
                mids = np.flatnonzero(u >= surv[2:phi])
            swaps += int(mids.shape[0]) + 2
            slots = np.empty(mids.shape[0] + 2, dtype=np.int64)
            slots[0] = 0
            slots[1:-1] = mids + 1  # 1-based position (m+2) -> slot (m+1)
            slots[-1] = phi - 1
            ref = int(stack[phi - 1])
            moved = stack[slots[:-1]]
            stack[slots[1:]] = moved
            pos[moved] = slots[1:]
            stack[0] = ref
            pos[ref] = 0
        self._n = n_res
        self.total_swaps += swaps
        return distances
