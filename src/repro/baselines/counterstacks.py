"""Counter Stacks: LRU MRCs from cardinality counters (Wires et al., OSDI'14).

§6.1's compressed-stack baseline.  The stream is processed in chunks of
``downsample`` requests; a new HyperLogLog counter starts at every chunk
boundary and every alive counter ingests every request.  For an access in
chunk ``t`` to an object last touched in chunk ``i``, exactly the counters
started *after* chunk ``i`` increment — so the per-chunk increment profile
across counters recovers how many accesses had their previous access in
each earlier chunk, and the value of the counter started just after that
chunk is their (unique-reference) stack distance.

Pruning merges adjacent counters whose cardinalities have converged
(they would keep producing identical columns), bounding memory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._util import check_positive
from ..mrc.builder import from_distance_histogram
from ..mrc.curve import MissRatioCurve
from ..stack.histogram import DistanceHistogram
from ..workloads.trace import Trace
from .hll import HyperLogLog

__all__ = [
    "CounterStacks",
    "counterstacks_mrc",
]



@dataclass
class _Counter:
    hll: HyperLogLog
    prev_value: float  # cardinality at the previous chunk boundary


class CounterStacks:
    """Streaming Counter Stacks estimator."""

    def __init__(
        self,
        downsample: int = 1_000,
        precision: int = 11,
        prune_ratio: float = 0.02,
        seed: int = 0,
    ) -> None:
        check_positive("downsample", downsample)
        if not 0 <= prune_ratio < 1:
            raise ValueError("prune_ratio must be in [0, 1)")
        self.downsample = int(downsample)
        self.precision = int(precision)
        self.prune_ratio = float(prune_ratio)
        self._seed = int(seed)
        self._counters: list[_Counter] = []
        self._hist = DistanceHistogram()
        self._buffer: list[int] = []
        self.requests_seen = 0

    def access(self, key: int, size: int = 1) -> None:
        self._buffer.append(int(key))
        self.requests_seen += 1
        if len(self._buffer) >= self.downsample:
            self._flush_chunk()

    def process(self, trace: Trace) -> "CounterStacks":
        for key in trace.keys:
            self.access(int(key))
        return self

    def finish(self) -> None:
        """Flush a trailing partial chunk (call before :meth:`mrc`)."""
        if self._buffer:
            self._flush_chunk()

    # ------------------------------------------------------------------
    def _flush_chunk(self) -> None:
        chunk = np.asarray(self._buffer, dtype=np.int64)
        self._buffer.clear()
        # A counter born at this chunk boundary sees the chunk too.
        self._counters.append(
            _Counter(HyperLogLog(self.precision, self._seed), 0.0)
        )
        for c in self._counters:
            c.hll.add_many(chunk)
        values = np.array([c.hll.cardinality() for c in self._counters])
        incs = np.array([v - c.prev_value for v, c in zip(values, self._counters)])
        incs = np.maximum(incs, 0.0)
        n = len(self._counters)
        # Oldest counter's increment = cold (never seen anywhere) accesses.
        cold = incs[0]
        finite_total = 0.0
        for i in range(n - 1):
            count = max(0.0, incs[i + 1] - incs[i])
            if count <= 0:
                continue
            distance = max(1.0, values[i + 1])
            self._record_weighted(distance, count)
            finite_total += count
        # Remainder: re-references within the current chunk (increment no
        # counter).  Their distance is bounded by the chunk's distinct count.
        remainder = chunk.shape[0] - cold - finite_total
        if remainder > 0:
            intra = max(1.0, values[-1] / 2.0)
            self._record_weighted(intra, remainder)
        self._record_cold_weighted(cold)
        for v, c in zip(values, self._counters):
            c.prev_value = float(v)
        self._prune(values)

    def _record_weighted(self, distance: float, count: float) -> None:
        d = max(1, int(round(distance)))
        for _ in range(int(round(count))):
            self._hist.record(d)

    def _record_cold_weighted(self, count: float) -> None:
        for _ in range(int(round(count))):
            self._hist.record_cold()

    def _prune(self, values: np.ndarray) -> None:
        """Drop the younger of adjacent counters that have converged."""
        if self.prune_ratio <= 0 or len(self._counters) < 3:
            return
        keep: list[_Counter] = [self._counters[0]]
        last_val = values[0]
        for c, v in zip(self._counters[1:-1], values[1:-1]):
            if last_val - v >= self.prune_ratio * max(1.0, last_val):
                keep.append(c)
                last_val = v
        keep.append(self._counters[-1])  # always keep the newest
        self._counters = keep

    # ------------------------------------------------------------------
    def mrc(self, max_size: int | None = None, label: str = "CounterStacks") -> MissRatioCurve:
        self.finish()
        return from_distance_histogram(self._hist, max_size=max_size, label=label)


def counterstacks_mrc(
    trace: Trace,
    downsample: int = 1_000,
    precision: int = 11,
    prune_ratio: float = 0.02,
    seed: int = 0,
) -> MissRatioCurve:
    """Convenience: Counter Stacks MRC for one trace."""
    return CounterStacks(downsample, precision, prune_ratio, seed).process(trace).mrc()
