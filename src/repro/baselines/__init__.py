"""Exact-LRU MRC baselines the paper compares against (and motivates past)."""

from .aet import AETModel, aet_mrc
from .counterstacks import CounterStacks, counterstacks_mrc
from .hll import HyperLogLog
from .shards import FixedSizeShards, Shards, shards_mrc
from .statstack import StatStackModel, statstack_mrc

__all__ = [
    "AETModel",
    "CounterStacks",
    "FixedSizeShards",
    "HyperLogLog",
    "Shards",
    "StatStackModel",
    "aet_mrc",
    "counterstacks_mrc",
    "shards_mrc",
    "statstack_mrc",
]
