"""StatStack: expected stack distance from reuse times (Eklov & Hagersten).

§6.1's description: for a reference with reuse time ``r`` the expected LRU
stack distance is the expected number of the ``r`` intervening accesses
whose *forward* reuse time reaches past the re-reference — i.e. accesses to
objects not re-touched inside the window, each of which contributes one
distinct object above ours.

Approximation used (the classic StatStack closed form): an access at lag
``i`` inside the window contributes iff its forward reuse time exceeds
``r - i``; averaging over the window with the global reuse-time tail
``P(t)`` gives ``E[sd(r)] = sum_{i=1}^{r} P(i)`` — conveniently the same
cumulative integral AET uses, read at ``r`` instead of solved for ``T``.
"""

from __future__ import annotations

import numpy as np

from ..mrc.builder import from_distance_histogram
from ..mrc.curve import MissRatioCurve
from ..stack.histogram import DistanceHistogram
from ..workloads.trace import Trace, reuse_times

__all__ = [
    "StatStackModel",
    "statstack_mrc",
]



class StatStackModel:
    """Expected-stack-distance LRU model from the reuse-time histogram."""

    def __init__(self, trace: Trace) -> None:
        rts = reuse_times(trace)
        n = rts.shape[0]
        if n == 0:
            raise ValueError("empty trace")
        self._rts = rts
        finite = rts[rts > 0]
        max_rt = int(finite.max()) if finite.size else 1
        counts = np.bincount(finite, minlength=max_rt + 1)
        exceed = n - np.cumsum(counts)
        p = exceed / n
        # expected_sd[r] = sum_{i=1}^{r} P(i)  (P itself is tail at lag i).
        self._expected_sd = np.concatenate(([0.0], np.cumsum(p[1:])))
        self._max_rt = max_rt

    def expected_stack_distance(self, reuse_time: int) -> float:
        """E[LRU stack distance] for one access with the given reuse time."""
        if reuse_time <= 0:
            return float("inf")
        r = min(int(reuse_time), self._expected_sd.shape[0] - 1)
        # Distance is 1-based: the window's distinct survivors plus self.
        return float(self._expected_sd[r]) + 1.0

    def mrc(self, max_size: int | None = None, label: str = "StatStack") -> MissRatioCurve:
        hist = DistanceHistogram()
        for rt in self._rts:
            if rt <= 0:
                hist.record_cold()
            else:
                hist.record(max(1, int(round(self.expected_stack_distance(int(rt))))))
        return from_distance_histogram(hist, max_size=max_size, label=label)


def statstack_mrc(trace: Trace, max_size: int | None = None) -> MissRatioCurve:
    """Convenience: StatStack MRC for one trace."""
    return StatStackModel(trace).mrc(max_size=max_size)
