"""SHARDS: spatially sampled LRU MRC construction (Waldspurger, FAST'15).

The baseline the paper compares against in Table 5.4.  SHARDS feeds only
spatially sampled references (``hash(key) mod P < T``) to an exact LRU
reuse-distance tracker, then rescales each measured distance by ``1/R``.
Two refinements from the paper are included:

* **fixed-size mode** (``s_max``): the threshold self-lowers to cap tracked
  objects, with eviction of ejected keys from the distance tracker;
* **SHARDS-adj**: corrects the histogram's first bucket by the difference
  between expected and actual sampled counts, compensating rate drift.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

import numpy as np

from .._util import check_positive
from ..kernels.olken import batch_stack_distances
from ..kernels.prep import next_occurrence
from ..mrc.builder import from_distance_histogram
from ..mrc.curve import MissRatioCurve
from ..sampling.hashing import splitmix64
from ..sampling.spatial import FixedSizeSpatialSampler, SpatialSampler
from ..stack.histogram import ByteDistanceHistogram, DistanceHistogram
from ..stack.lru_stack import TreeLRUStack
from ..workloads.trace import Trace

if TYPE_CHECKING:  # pragma: no cover - typing-only import
    from ..engine.plan import TracePlan

__all__ = [
    "FixedSizeShards",
    "Shards",
    "shards_mrc",
]



class Shards:
    """Streaming SHARDS estimator (fixed-rate mode).

    ``byte_bin`` > 0 additionally collects byte-granularity distances (for
    variable-object-size workloads), readable via :meth:`byte_mrc`.
    """

    def __init__(
        self,
        rate: float = 0.001,
        seed: int = 0,
        adjustment: bool = True,
        byte_bin: int = 0,
    ) -> None:
        self._sampler = SpatialSampler(rate, seed=seed)
        self._stack = TreeLRUStack()
        self._hist = DistanceHistogram(scale=self._sampler.scale)
        self._byte_hist = (
            ByteDistanceHistogram(bin_bytes=byte_bin, scale=self._sampler.scale)
            if byte_bin
            else None
        )
        self._adjust = bool(adjustment)
        self.requests_seen = 0
        self.requests_sampled = 0

    @property
    def rate(self) -> float:
        return self._sampler.rate

    def access(self, key: int, size: int = 1) -> None:
        if not self._sampler.keep(key):
            self.requests_seen += 1
            return
        self._force_access(key, size)

    def process(
        self,
        trace: "Trace | Iterable[Trace]",
        plan: Optional["TracePlan"] = None,
    ) -> "Shards":
        """Feed a whole trace; batch-kernel fast path on a fresh instance.

        The spatial filter is applied to the key column in one vectorized
        pass (reusing ``plan``'s cached hash column when given).  On a
        fresh estimator the sampled subsequence then goes through the
        offline Olken batch kernel instead of the per-access Fenwick loop
        — identical distances, hence identical histograms — and the
        streaming stack state is rebuilt so subsequent :meth:`access`
        calls continue exactly where the per-access path would have.  An
        estimator that already holds stack state falls back to streaming.

        ``trace`` also accepts a bounded-memory stream of chunks
        (:class:`~repro.workloads.stream.TraceStream`): the first chunk
        takes the batch-kernel path, the stack-rebuild makes each later
        chunk a plain streaming continuation, and SHARDS is RNG-free, so
        the result is identical to the concatenated in-memory run.
        ``plan`` (whole-trace hash cache) cannot be combined with one.
        """
        if not isinstance(trace, Trace):
            if plan is not None:
                raise ValueError(
                    "plan caches whole-trace hash columns; streamed chunks "
                    "hash per chunk instead"
                )
            for chunk in trace:
                self.process(chunk)
            return self
        keys = trace.keys
        sizes = trace.sizes
        if plan is not None:
            idx = plan.sample_indices(
                self._sampler.threshold, self._sampler.modulus, self._sampler.seed
            )
        else:
            idx = self._sampler.filter_indices(keys)
        if len(self._stack) == 0 and self.requests_sampled == 0:
            skeys = keys[idx]
            ssizes = sizes[idx]
            distances, byte_distances = batch_stack_distances(
                skeys, ssizes if self._byte_hist is not None else None
            )
            self.requests_seen += int(keys.shape[0])
            self.requests_sampled += int(skeys.shape[0])
            self._hist.record_many(distances)
            if self._byte_hist is not None:
                self._byte_hist.record_many(byte_distances.astype(np.float64))
            self._rebuild_stack(skeys, ssizes)
            return self
        # Unsampled requests only bump the seen counter; sampled ones go
        # through the shared recording path (pre-filtered, no re-hash).
        self.requests_seen += int(keys.shape[0]) - int(idx.shape[0])
        for i in idx:
            self._force_access(int(keys[i]), int(sizes[i]))
        return self

    def _rebuild_stack(self, skeys: np.ndarray, ssizes: np.ndarray) -> None:
        """Recreate the streaming stack state after a batch-kernel pass.

        Future distances depend only on the recency *order* of the most
        recent access per object (and its size on the byte tree), not on
        absolute timestamps — so replaying just each object's last
        occurrence, in trace order, leaves a stack whose every subsequent
        ``access`` returns exactly what the streamed equivalent would.
        """
        if skeys.shape[0] == 0:
            return
        last = np.flatnonzero(next_occurrence(skeys) == skeys.shape[0])
        for key, size in zip(skeys[last].tolist(), ssizes[last].tolist()):
            self._stack.access(key, size)

    def _force_access(self, key: int, size: int) -> None:
        self.requests_seen += 1
        self.requests_sampled += 1
        dist, byte_dist = self._stack.access(key, size)
        self._hist.record(dist if dist > 0 else 0)
        if self._byte_hist is not None:
            if dist > 0:
                self._byte_hist.record(float(byte_dist))
            else:
                self._byte_hist.record_cold()

    # ------------------------------------------------------------------
    STATE_KIND = "repro-shards"
    STATE_VERSION = 1

    def state_dict(self) -> dict:
        """JSON-safe snapshot (behaviorally exact restore).

        SHARDS is RNG-free (the spatial filter is a pure key hash), so the
        snapshot is the recency order, the histograms and the counters;
        :meth:`from_state` replays the order into a fresh Fenwick stack,
        after which every subsequent access returns exactly what the
        uninterrupted estimator would have returned.
        """
        return {
            "kind": self.STATE_KIND,
            "version": self.STATE_VERSION,
            "sampler": self._sampler.state_dict(),
            "adjust": self._adjust,
            "byte_bin": self._byte_hist.bin_bytes if self._byte_hist else 0,
            "stack": [
                [int(k), int(s)] for k, s in self._stack.items_in_recency_order()
            ],
            "hist": self._hist.state_dict(),
            "byte_hist": (
                self._byte_hist.state_dict() if self._byte_hist else None
            ),
            "requests_seen": self.requests_seen,
            "requests_sampled": self.requests_sampled,
        }

    @classmethod
    def from_state(cls, state: dict) -> "Shards":
        if state.get("kind") != cls.STATE_KIND:
            raise ValueError("not a Shards state dict")
        if int(state.get("version", -1)) != cls.STATE_VERSION:
            raise ValueError(
                f"unsupported Shards state version {state.get('version')!r}"
            )
        est = cls(rate=1.0, byte_bin=int(state["byte_bin"]))
        est._sampler = SpatialSampler.from_state(state["sampler"])
        est._adjust = bool(state["adjust"])
        for key, size in state["stack"]:
            est._stack.access(int(key), int(size))
        est._hist.load_state(state["hist"])
        if est._byte_hist is not None and state["byte_hist"] is not None:
            est._byte_hist.load_state(state["byte_hist"])
        est.requests_seen = int(state["requests_seen"])
        est.requests_sampled = int(state["requests_sampled"])
        return est

    def byte_mrc(self, label: str = "SHARDS-bytes") -> MissRatioCurve:
        """Byte-granularity LRU MRC (requires ``byte_bin`` > 0)."""
        if self._byte_hist is None:
            raise RuntimeError("construct Shards with byte_bin > 0 for byte_mrc")
        from ..mrc.builder import from_byte_histogram

        return from_byte_histogram(self._byte_hist, label=label)

    def mrc(self, max_size: int | None = None, label: str = "SHARDS") -> MissRatioCurve:
        """MRC with the SHARDS-adj first-bucket correction applied."""
        curve = from_distance_histogram(self._hist, max_size=max_size, label=label)
        if not self._adjust or self.requests_seen == 0:
            return curve
        # SHARDS-adj: expected sampled count is N*R; the surplus/deficit is
        # attributed to the smallest-distance bucket.  In miss-ratio space
        # that shifts every ratio by delta/N_sampled at sizes >= 1.
        expected = self.requests_seen * self.rate
        diff = expected - self.requests_sampled
        if self.requests_sampled <= 0:
            return curve
        adjusted = np.clip(
            (curve.miss_ratios * self.requests_sampled + 0.0)
            / max(1.0, self.requests_sampled + diff),
            0.0,
            1.0,
        )
        return MissRatioCurve(curve.sizes, adjusted, unit="objects", label=label)


def shards_mrc(
    trace: Trace,
    rate: float = 0.001,
    seed: int = 0,
    adjustment: bool = True,
    max_size: int | None = None,
) -> MissRatioCurve:
    """Convenience: SHARDS MRC for one trace."""
    return Shards(rate, seed, adjustment).process(trace).mrc(max_size=max_size)


class FixedSizeShards:
    """SHARDS ``s_max`` mode: bounded tracking state, adaptive rate.

    Ejected objects are *removed from the LRU stack state* lazily: their
    future accesses are filtered (hash above the lowered threshold), and
    distances measured before ejection were taken at the then-current
    scale.  Following the SHARDS paper, each distance is rescaled by the
    sampling rate in effect when it was measured.
    """

    def __init__(self, s_max: int = 8192, seed: int = 0) -> None:
        check_positive("s_max", s_max)
        self._stack = TreeLRUStack()
        self._hist = DistanceHistogram()
        self._raw: list[tuple[int, float]] = []  # (distance, rate at record)
        self._sampler = FixedSizeSpatialSampler(s_max, seed=seed)
        self.requests_seen = 0
        self.requests_sampled = 0

    @property
    def rate(self) -> float:
        return self._sampler.rate

    def access(self, key: int, size: int = 1) -> None:
        self.requests_seen += 1
        if not self._sampler.offer(key):
            return
        self.requests_sampled += 1
        dist, _ = self._stack.access(key, size)
        self._raw.append((dist if dist > 0 else 0, self._sampler.rate))

    def process(
        self,
        trace: "Trace | Iterable[Trace]",
        plan: Optional["TracePlan"] = None,
    ) -> "FixedSizeShards":
        """Feed a whole trace, hashing the key column in one batch pass.

        The adaptive threshold makes the sampling decision inherently
        sequential, but the per-key ``splitmix64`` is not: it is computed
        vectorized up front (or reused from ``plan``'s hash column) and
        streamed into :meth:`FixedSizeSpatialSampler.offer_hashed`, leaving
        only the threshold compare and stack update in the Python loop.

        Accepts a stream of chunks like :meth:`Shards.process`; the
        sampler's adaptive threshold and the stack persist across chunks,
        so streamed and in-memory runs are identical.
        """
        if not isinstance(trace, Trace):
            if plan is not None:
                raise ValueError(
                    "plan caches whole-trace hash columns; streamed chunks "
                    "hash per chunk instead"
                )
            for chunk in trace:
                self.process(chunk)
            return self
        if plan is not None:
            hashed_arr = plan.hashes(self._sampler.seed)
        else:
            hashed = splitmix64(trace.keys, self._sampler.seed)
            assert isinstance(hashed, np.ndarray)
            hashed_arr = hashed
        keys = trace.keys.tolist()
        sizes = trace.sizes.tolist()
        hashes = hashed_arr.tolist()
        sampler = self._sampler
        stack = self._stack
        raw = self._raw
        for key, size, h in zip(keys, sizes, hashes):
            self.requests_seen += 1
            if not sampler.offer_hashed(key, h):
                continue
            self.requests_sampled += 1
            dist, _ = stack.access(key, size)
            raw.append((dist if dist > 0 else 0, sampler.rate))
        return self

    def mrc(self, max_size: int | None = None, label: str = "SHARDS-smax") -> MissRatioCurve:
        hist = DistanceHistogram()
        for dist, rate in self._raw:
            if dist <= 0:
                hist.record_cold()
            else:
                hist.record(max(1, int(round(dist / rate))))
        return from_distance_histogram(hist, max_size=max_size, label=label)
