"""SHARDS: spatially sampled LRU MRC construction (Waldspurger, FAST'15).

The baseline the paper compares against in Table 5.4.  SHARDS feeds only
spatially sampled references (``hash(key) mod P < T``) to an exact LRU
reuse-distance tracker, then rescales each measured distance by ``1/R``.
Two refinements from the paper are included:

* **fixed-size mode** (``s_max``): the threshold self-lowers to cap tracked
  objects, with eviction of ejected keys from the distance tracker;
* **SHARDS-adj**: corrects the histogram's first bucket by the difference
  between expected and actual sampled counts, compensating rate drift.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._util import check_positive
from ..mrc.builder import from_distance_histogram
from ..mrc.curve import MissRatioCurve
from ..sampling.spatial import FixedSizeSpatialSampler, SpatialSampler
from ..stack.histogram import ByteDistanceHistogram, DistanceHistogram
from ..stack.lru_stack import TreeLRUStack
from ..workloads.trace import Trace

__all__ = [
    "FixedSizeShards",
    "Shards",
    "shards_mrc",
]



class Shards:
    """Streaming SHARDS estimator (fixed-rate mode).

    ``byte_bin`` > 0 additionally collects byte-granularity distances (for
    variable-object-size workloads), readable via :meth:`byte_mrc`.
    """

    def __init__(
        self,
        rate: float = 0.001,
        seed: int = 0,
        adjustment: bool = True,
        byte_bin: int = 0,
    ) -> None:
        self._sampler = SpatialSampler(rate, seed=seed)
        self._stack = TreeLRUStack()
        self._hist = DistanceHistogram(scale=self._sampler.scale)
        self._byte_hist = (
            ByteDistanceHistogram(bin_bytes=byte_bin, scale=self._sampler.scale)
            if byte_bin
            else None
        )
        self._adjust = bool(adjustment)
        self.requests_seen = 0
        self.requests_sampled = 0

    @property
    def rate(self) -> float:
        return self._sampler.rate

    def access(self, key: int, size: int = 1) -> None:
        if not self._sampler.keep(key):
            self.requests_seen += 1
            return
        self._force_access(key, size)

    def process(self, trace: Trace) -> "Shards":
        keys = trace.keys
        sizes = trace.sizes
        idx = self._sampler.filter_indices(keys)
        # Unsampled requests only bump the seen counter; sampled ones go
        # through the shared recording path (pre-filtered, no re-hash).
        self.requests_seen += int(keys.shape[0]) - int(idx.shape[0])
        for i in idx:
            self._force_access(int(keys[i]), int(sizes[i]))
        return self

    def _force_access(self, key: int, size: int) -> None:
        self.requests_seen += 1
        self.requests_sampled += 1
        dist, byte_dist = self._stack.access(key, size)
        self._hist.record(dist if dist > 0 else 0)
        if self._byte_hist is not None:
            if dist > 0:
                self._byte_hist.record(float(byte_dist))
            else:
                self._byte_hist.record_cold()

    def byte_mrc(self, label: str = "SHARDS-bytes") -> MissRatioCurve:
        """Byte-granularity LRU MRC (requires ``byte_bin`` > 0)."""
        if self._byte_hist is None:
            raise RuntimeError("construct Shards with byte_bin > 0 for byte_mrc")
        from ..mrc.builder import from_byte_histogram

        return from_byte_histogram(self._byte_hist, label=label)

    def mrc(self, max_size: int | None = None, label: str = "SHARDS") -> MissRatioCurve:
        """MRC with the SHARDS-adj first-bucket correction applied."""
        curve = from_distance_histogram(self._hist, max_size=max_size, label=label)
        if not self._adjust or self.requests_seen == 0:
            return curve
        # SHARDS-adj: expected sampled count is N*R; the surplus/deficit is
        # attributed to the smallest-distance bucket.  In miss-ratio space
        # that shifts every ratio by delta/N_sampled at sizes >= 1.
        expected = self.requests_seen * self.rate
        diff = expected - self.requests_sampled
        if self.requests_sampled <= 0:
            return curve
        adjusted = np.clip(
            (curve.miss_ratios * self.requests_sampled + 0.0)
            / max(1.0, self.requests_sampled + diff),
            0.0,
            1.0,
        )
        return MissRatioCurve(curve.sizes, adjusted, unit="objects", label=label)


def shards_mrc(
    trace: Trace,
    rate: float = 0.001,
    seed: int = 0,
    adjustment: bool = True,
    max_size: int | None = None,
) -> MissRatioCurve:
    """Convenience: SHARDS MRC for one trace."""
    return Shards(rate, seed, adjustment).process(trace).mrc(max_size=max_size)


class FixedSizeShards:
    """SHARDS ``s_max`` mode: bounded tracking state, adaptive rate.

    Ejected objects are *removed from the LRU stack state* lazily: their
    future accesses are filtered (hash above the lowered threshold), and
    distances measured before ejection were taken at the then-current
    scale.  Following the SHARDS paper, each distance is rescaled by the
    sampling rate in effect when it was measured.
    """

    def __init__(self, s_max: int = 8192, seed: int = 0) -> None:
        check_positive("s_max", s_max)
        self._stack = TreeLRUStack()
        self._hist = DistanceHistogram()
        self._raw: list[tuple[int, float]] = []  # (distance, rate at record)
        self._sampler = FixedSizeSpatialSampler(s_max, seed=seed)
        self.requests_seen = 0
        self.requests_sampled = 0

    @property
    def rate(self) -> float:
        return self._sampler.rate

    def access(self, key: int, size: int = 1) -> None:
        self.requests_seen += 1
        if not self._sampler.offer(key):
            return
        self.requests_sampled += 1
        dist, _ = self._stack.access(key, size)
        self._raw.append((dist if dist > 0 else 0, self._sampler.rate))

    def process(self, trace: Trace) -> "FixedSizeShards":
        for i in range(len(trace)):
            self.access(int(trace.keys[i]), int(trace.sizes[i]))
        return self

    def mrc(self, max_size: int | None = None, label: str = "SHARDS-smax") -> MissRatioCurve:
        hist = DistanceHistogram()
        for dist, rate in self._raw:
            if dist <= 0:
                hist.record_cold()
            else:
                hist.record(max(1, int(round(dist / rate))))
        return from_distance_histogram(hist, max_size=max_size, label=label)
