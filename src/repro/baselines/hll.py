"""HyperLogLog cardinality counters (built from scratch).

Counter Stacks (§6.1) replaces exact per-window unique-reference counters
with probabilistic cardinality counters; this is that substrate.  Standard
HLL (Flajolet et al. 2007): hash each item, use ``p`` leading bits to pick
a register, track the max leading-zero run of the remainder, and estimate
``alpha_m * m^2 / sum(2^-M_j)`` with small- and large-range corrections.
"""

from __future__ import annotations

import math

import numpy as np

from ..sampling.hashing import splitmix64

__all__ = [
    "HyperLogLog",
]



def _alpha(m: int) -> float:
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog:
    """HLL counter with ``2**precision`` one-byte registers.

    ``precision`` in [4, 18]; standard error is about ``1.04 / sqrt(2^p)``.
    Supports union (register-wise max), which Counter Stacks uses to prune.
    """

    __slots__ = ("precision", "m", "registers", "_seed")

    def __init__(self, precision: int = 11, seed: int = 0) -> None:
        if not 4 <= precision <= 18:
            raise ValueError("precision must be in [4, 18]")
        self.precision = int(precision)
        self.m = 1 << self.precision
        self.registers = np.zeros(self.m, dtype=np.uint8)
        self._seed = int(seed)

    def add(self, item: int) -> None:
        """Insert one integer item."""
        h = int(splitmix64(int(item), self._seed))
        idx = h >> (64 - self.precision)
        rest = (h << self.precision) & ((1 << 64) - 1)
        # Leading-zero run of the remaining 64-p bits, plus one.
        if rest == 0:
            rank = 64 - self.precision + 1
        else:
            rank = min(64 - self.precision, 64 - rest.bit_length()) + 1
        if rank > self.registers[idx]:
            self.registers[idx] = rank

    def add_many(self, items: np.ndarray) -> None:
        """Vectorized bulk insert."""
        h = splitmix64(np.asarray(items, dtype=np.int64), self._seed)
        idx = (h >> np.uint64(64 - self.precision)).astype(np.int64)
        rest = (h << np.uint64(self.precision)) & np.uint64(0xFFFFFFFFFFFFFFFF)
        # Leading zeros of `rest`: 64 - bit_length(rest).
        bl = np.zeros(rest.shape, dtype=np.int64)
        tmp = rest.copy()
        for shift in (32, 16, 8, 4, 2, 1):
            mask = tmp >= (np.uint64(1) << np.uint64(shift))
            bl[mask] += shift
            tmp[mask] >>= np.uint64(shift)
        bl[rest > 0] += 1  # bit_length
        rank = np.where(
            rest == 0,
            64 - self.precision + 1,
            np.minimum(64 - self.precision, 64 - bl) + 1,
        ).astype(np.uint8)
        np.maximum.at(self.registers, idx, rank)

    def cardinality(self) -> float:
        """Estimated number of distinct items inserted."""
        regs = self.registers.astype(np.float64)
        est = _alpha(self.m) * self.m * self.m / np.sum(np.exp2(-regs))
        if est <= 2.5 * self.m:
            zeros = int(np.count_nonzero(self.registers == 0))
            if zeros:
                return self.m * math.log(self.m / zeros)  # linear counting
        two64 = 2.0**64
        if est > two64 / 30.0:
            return -two64 * math.log1p(-est / two64)
        return float(est)

    def union(self, other: "HyperLogLog") -> "HyperLogLog":
        """Counter for the union of the two insert streams."""
        if self.precision != other.precision or self._seed != other._seed:
            raise ValueError("can only union HLLs with equal precision and seed")
        out = HyperLogLog(self.precision, self._seed)
        np.maximum(self.registers, other.registers, out=out.registers)
        return out

    def copy(self) -> "HyperLogLog":
        out = HyperLogLog(self.precision, self._seed)
        out.registers[:] = self.registers
        return out

    @property
    def relative_error(self) -> float:
        """Theoretical standard error ``1.04/sqrt(m)``."""
        return 1.04 / math.sqrt(self.m)
