"""AET: the average-eviction-time kinetic LRU model (Hu et al., TOS'18).

One of the linear-time reuse-time techniques the paper cites (§6.1) as
accurate *for exact LRU only* — our ablation bench shows it mis-predicting
K-LRU caches with small K, which is the paper's motivation.

Model: let ``P(t)`` be the probability a random access's reuse time exceeds
``t`` (cold accesses count as infinite reuse).  In an LRU stack an object's
expected downward "velocity" at age ``t`` is ``P(t)``; the average eviction
time ``T(c)`` for cache size ``c`` solves ``integral_0^T P(t) dt = c``, and
the predicted miss ratio is ``mr(c) = P(T(c))``.
"""

from __future__ import annotations

import numpy as np

from ..mrc.builder import from_points
from ..mrc.curve import MissRatioCurve
from ..workloads.trace import Trace, reuse_times

__all__ = [
    "AETModel",
    "aet_mrc",
]



class AETModel:
    """AET MRC model built from a trace's reuse-time distribution."""

    def __init__(self, trace: Trace) -> None:
        rts = reuse_times(trace)
        n = rts.shape[0]
        if n == 0:
            raise ValueError("empty trace")
        finite = rts[rts > 0]
        self.n_accesses = int(n)
        self.n_cold = int(n - finite.shape[0])
        max_rt = int(finite.max()) if finite.size else 1
        # Tail distribution P(t) = fraction of accesses with reuse time > t,
        # cold accesses having infinite reuse time.
        counts = np.bincount(finite, minlength=max_rt + 1)
        exceed = n - np.cumsum(counts)  # index t: accesses with rt > t
        self._p = exceed / n  # P(0) counts everything not reused at lag 0
        # Cumulative integral of P over t (trapezoid on the unit grid).
        self._cum = np.concatenate(([0.0], np.cumsum(self._p)))

    def average_eviction_time(self, cache_size: float) -> float:
        """Solve ``integral_0^T P(t) dt = c`` for T (linear interpolation)."""
        c = float(cache_size)
        cum = self._cum
        if c >= cum[-1]:
            return float(cum.shape[0] - 1)
        t = int(np.searchsorted(cum, c, side="right")) - 1
        # Fractional step inside [t, t+1): P is constant there.
        p_t = self._p[t] if t < self._p.shape[0] else 0.0
        frac = 0.0 if p_t <= 0 else (c - cum[t]) / p_t
        return t + frac

    def miss_ratio(self, cache_size: float) -> float:
        """Predicted LRU miss ratio at ``cache_size`` objects."""
        T = self.average_eviction_time(cache_size)
        idx = min(int(T), self._p.shape[0] - 1)
        return float(self._p[idx])

    def mrc(self, sizes, label: str = "AET") -> MissRatioCurve:
        sizes = np.asarray(sizes, dtype=np.float64)
        ratios = np.array([self.miss_ratio(c) for c in sizes])
        return from_points(sizes, ratios, unit="objects", label=label)


def aet_mrc(trace: Trace, sizes, label: str = "AET") -> MissRatioCurve:
    """Convenience: AET MRC for one trace on a size grid."""
    return AETModel(trace).mrc(sizes, label=label)
