"""Crash-safe generational snapshots for tenant model state.

A tenant worker can be SIGKILLed at any byte of a snapshot write, so
durability comes from three mechanical rules:

1. **Atomic replace** — the payload is written to a tempfile in the same
   directory, flushed, fsynced, then ``os.rename``d over the final name
   (POSIX rename is atomic within a filesystem), and the directory is
   fsynced so the rename itself survives a host crash.
2. **Self-verifying envelope** — the JSON body is wrapped with a SHA-256
   of its canonical serialization.  A torn or bit-rotted file fails
   verification instead of restoring garbage into a live model.
3. **Generations** — each save gets a monotonically increasing
   generation number; :meth:`SnapshotStore.load_latest` walks
   generations newest-first and falls back past any snapshot that fails
   to verify (with a :class:`RuntimeWarning`), so one torn write costs
   one snapshot interval of progress, never the tenant.

The body carried for a tenant is
``{"applied_seq": <last WAL batch applied>, "wall_time": <unix time>,
"model": WindowedKRRModel.state_dict(), "shards": Shards.state_dict()?}``
— everything the worker needs to resume exactly, with the WAL replaying
any acked batch newer than ``applied_seq``.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "SnapshotError",
    "SnapshotStore",
    "write_atomic",
]


class SnapshotError(RuntimeError):
    """No verifiable snapshot could be loaded."""


def _fsync_dir(path: Path) -> None:
    """Persist a directory entry change (rename/unlink) to disk."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def write_atomic(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via tmpfile + fsync + rename + dir fsync."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.rename(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise


def _envelope(body: Dict[str, Any]) -> bytes:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode()).hexdigest()
    return json.dumps(
        {"kind": SnapshotStore.KIND, "version": SnapshotStore.VERSION,
         "sha256": digest, "body": body},
        sort_keys=True,
    ).encode()


def _verify(raw: bytes) -> Dict[str, Any]:
    """Decode + checksum-verify an envelope; raises ``ValueError`` if torn."""
    env = json.loads(raw)
    if env.get("kind") != SnapshotStore.KIND:
        raise ValueError("not a service snapshot")
    if int(env.get("version", -1)) != SnapshotStore.VERSION:
        raise ValueError(f"unsupported snapshot version {env.get('version')!r}")
    body = env["body"]
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode()).hexdigest()
    if digest != env.get("sha256"):
        raise ValueError("snapshot checksum mismatch (torn or corrupted write)")
    assert isinstance(body, dict)
    return body


_SNAP_RE = re.compile(r"^snap-(\d{12})\.json$")


class SnapshotStore:
    """Generational snapshot files for one tenant directory.

    >>> store = SnapshotStore(data_dir / "snapshots" / tenant_id)
    >>> gen = store.save(body)               # atomic, verifiable
    >>> gen, body = store.load_latest()      # falls back past torn files
    """

    KIND = "repro-service-snapshot"
    VERSION = 1

    def __init__(self, root: "Path | str", keep: int = 2) -> None:
        if keep < 1:
            raise ValueError("keep must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.keep = int(keep)

    # ------------------------------------------------------------------
    def _path(self, generation: int) -> Path:
        return self.root / f"snap-{generation:012d}.json"

    def generations(self) -> List[int]:
        """Existing generation numbers, ascending (unverified)."""
        gens = []
        for entry in self.root.iterdir():
            m = _SNAP_RE.match(entry.name)
            if m:
                gens.append(int(m.group(1)))
        return sorted(gens)

    # ------------------------------------------------------------------
    def save(self, body: Dict[str, Any]) -> int:
        """Durably write ``body`` as the next generation; prune old ones.

        Pruning keeps the newest ``keep`` generations so there is always
        a previous generation to fall back to if the newest file turns
        out torn (the atomic rename makes that window one of filesystem
        corruption, not of process crash — but the fallback is cheap).
        """
        gens = self.generations()
        generation = (gens[-1] + 1) if gens else 1
        write_atomic(self._path(generation), _envelope(body))
        for old in gens[: max(0, len(gens) + 1 - self.keep)]:
            try:
                self._path(old).unlink()
            except OSError:  # pragma: no cover - already pruned
                pass
        return generation

    def load(self, generation: int) -> Dict[str, Any]:
        """Load + verify one specific generation."""
        return _verify(self._path(generation).read_bytes())

    def load_latest(self) -> Optional[Tuple[int, Dict[str, Any]]]:
        """Newest snapshot that verifies, or ``None`` when starting fresh.

        Unverifiable generations are skipped with a ``RuntimeWarning``
        (torn-write debris); if *every* existing generation fails,
        :class:`SnapshotError` is raised — silently restarting a tenant
        from scratch when snapshots exist but are all corrupt would mask
        real data loss.
        """
        gens = self.generations()
        if not gens:
            return None
        for generation in reversed(gens):
            try:
                return generation, self.load(generation)
            except (ValueError, OSError, json.JSONDecodeError) as exc:
                warnings.warn(
                    f"{self._path(generation)}: unusable snapshot "
                    f"({exc}); falling back to the previous generation",
                    RuntimeWarning,
                    stacklevel=2,
                )
        raise SnapshotError(
            f"{self.root}: {len(gens)} snapshot generation(s) present but "
            "none verified — refusing to silently restart from empty state"
        )
