"""Worker supervision: one process per tenant, restarts, degradation.

Process model
-------------
The daemon parent owns the HTTP surface, the tenant WALs and the shared
queues; each tenant's model lives in a dedicated worker process::

    parent (HTTP + WAL + supervision)
      ├── inbox  Queue ──►  worker[tenant A]  (WindowedKRRModel + SHARDS)
      │◄── outbox Queue ──      │
      │                         └── snapshots/ (atomic, generational)
      └── wal/ (fsync before every 200)

Durability: an ingest batch is WAL-appended and fsynced *before* the
HTTP 200 — the ack means durable, not applied.  Workers deduplicate by
the batch sequence number (skip ``seq <= applied_seq``), so the same
batch arriving twice (once replayed from the WAL after a crash, once
still sitting in the inherited queue) is applied exactly once.

Backpressure: the inbox queue is bounded.  A full queue (or a pending
parent-side overflow) turns ingest into :class:`Backpressure`, which the
HTTP layer maps to ``429`` + ``Retry-After`` — load is shed at the edge
instead of growing an unbounded buffer in the parent.

Degradation: a dead worker's queries are answered from its latest
snapshot, flagged ``"stale": true`` with the staleness age in seconds —
never a 500.  The supervisor restarts the worker with exponential
backoff; past ``max_restarts`` consecutive failures the tenant is marked
``failed`` and stays in snapshot-serving mode (ingest remains durable in
the WAL and replays on the next daemon start).

Large ingest batches cross the process boundary through a
:class:`~repro.engine.shm.SharedTraceStore` segment instead of the
queue; the parent closes the segment when the worker acks the batch (or
when the worker dies — the WAL still has the data, and a restarted
worker's sequence-number dedup guarantees the stale queue entry is
skipped before it would ever attach).

Named fault points (``REPRO_FAULTS``, see :mod:`repro.engine.faults`):
``ingest`` fires in the parent's ingest path, ``worker`` as the worker
applies a batch, ``snapshot`` just before a snapshot write, ``query``
as the worker answers a query.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import queue as queue_mod
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from ..baselines.shards import Shards
from ..core.windowed import WindowedKRRModel
from ..engine.faults import maybe_inject
from ..engine.shm import AttachedTrace, SharedTraceStore, TraceSpec
from ..workloads.trace import Trace
from .registry import TenantConfig, TenantRegistry
from .snapshot import SnapshotStore
from .wal import TenantWAL

__all__ = [
    "Backpressure",
    "Supervisor",
    "TenantUnavailable",
]


class Backpressure(RuntimeError):
    """Tenant ingest queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, tenant_id: str, retry_after: float) -> None:
        super().__init__(
            f"tenant {tenant_id!r} ingest queue is full; "
            f"retry after {retry_after:g}s"
        )
        self.tenant_id = tenant_id
        self.retry_after = retry_after


class TenantUnavailable(KeyError):
    """No such tenant is registered."""


# Worker lifecycle states (parent-side view).
_RUNNING = "running"
_RESTARTING = "restarting"
_FAILED = "failed"
_STOPPED = "stopped"


def _curve_payload(
    model: WindowedKRRModel,
    shards: Optional[Shards],
    max_size: Optional[int],
) -> Dict[str, Any]:
    """JSON-safe MRC + counters for one tenant model pair."""
    payload: Dict[str, Any] = {"counters": model.counters()}
    try:
        curve = model.mrc(max_size=max_size)
        payload["mrc"] = {
            "sizes": np.asarray(curve.sizes).tolist(),
            "miss_ratios": np.asarray(curve.miss_ratios, dtype=float).tolist(),
            "unit": curve.unit,
        }
    except ValueError:
        # Nothing sampled yet: an empty curve, not an error.
        payload["mrc"] = {"sizes": [], "miss_ratios": [], "unit": "objects"}
    if shards is not None:
        try:
            sc = shards.mrc(max_size=max_size)
            payload["shards_mrc"] = {
                "sizes": np.asarray(sc.sizes).tolist(),
                "miss_ratios": np.asarray(sc.miss_ratios, dtype=float).tolist(),
                "unit": sc.unit,
            }
        except ValueError:
            payload["shards_mrc"] = {
                "sizes": [], "miss_ratios": [], "unit": "objects"
            }
    return payload


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------

def _worker_main(
    tenant_id: str,
    config_dict: Dict[str, Any],
    tenant_dir: str,
    inbox: "multiprocessing.Queue[Any]",
    outbox: "multiprocessing.Queue[Any]",
    snapshot_interval: float,
    snapshot_every: Optional[int],
) -> None:
    """Tenant worker: restore, replay, then drain the inbox forever."""
    # The parent's chained SIGTERM handler (shm cleanup, daemon shutdown)
    # is inherited across fork; a worker must die plainly instead.
    try:
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread spawn
        pass
    config = TenantConfig.from_dict(config_dict)
    root = Path(tenant_dir)
    snapshots = SnapshotStore(root / "snapshots")

    loaded = snapshots.load_latest()
    if loaded is not None:
        _, body = loaded
        model = WindowedKRRModel.from_state(body["model"])
        shards = (
            Shards.from_state(body["shards"])
            if body.get("shards") is not None
            else None
        )
        applied_seq = int(body["applied_seq"])
    else:
        model = config.build_model()
        shards = config.build_shards()
        applied_seq = 0

    # Re-apply every acked batch newer than the snapshot.  Anything still
    # sitting in the (inherited) inbox with seq <= applied_seq afterwards
    # is a duplicate and gets skipped by the dedup check below.
    wal = TenantWAL(root / "wal")
    for seq, keys, sizes in wal.replay(applied_seq):
        model.access_many(keys, sizes)
        if shards is not None:
            for i, key in enumerate(keys):
                shards.access(int(key), int(sizes[i]) if sizes else 1)
        applied_seq = seq
    wal.close()

    def apply_batch(seq: int, keys: List[int], sizes: Optional[List[int]]) -> int:
        maybe_inject("worker")
        model.access_many(keys, sizes)
        if shards is not None:
            for i, key in enumerate(keys):
                shards.access(int(key), int(sizes[i]) if sizes else 1)
        return seq

    def save_snapshot() -> None:
        maybe_inject("snapshot")
        body = {
            "applied_seq": applied_seq,
            "wall_time": time.time(),
            "model": model.state_dict(),
            "shards": shards.state_dict() if shards is not None else None,
        }
        generation = snapshots.save(body)
        outbox.put(("snapshotted", generation, applied_seq))

    last_snapshot = time.monotonic()
    batches_since_snapshot = 0
    while True:
        timeout = max(0.05, snapshot_interval - (time.monotonic() - last_snapshot))
        try:
            msg = inbox.get(timeout=min(timeout, 0.25))
        except queue_mod.Empty:
            msg = None
        if msg is not None:
            kind = msg[0]
            if kind == "batch":
                _, seq, keys, sizes = msg
                if seq > applied_seq:
                    applied_seq = apply_batch(seq, keys, sizes)
                    batches_since_snapshot += 1
            elif kind == "shm_batch":
                _, seq, spec = msg
                if seq > applied_seq:
                    with AttachedTrace(spec) as att:
                        keys, sizes = att.columns_as_lists()
                        applied_seq = apply_batch(seq, list(keys), list(sizes))
                    batches_since_snapshot += 1
                outbox.put(("ack", seq))
            elif kind == "query":
                _, req_id, max_size = msg
                maybe_inject("query")
                payload = _curve_payload(model, shards, max_size)
                payload["stale"] = False
                payload["applied_seq"] = applied_seq
                outbox.put(("query_result", req_id, payload))
            elif kind == "stop":
                save_snapshot()
                outbox.put(("stopped", applied_seq))
                return
        due = (
            time.monotonic() - last_snapshot >= snapshot_interval
            or (snapshot_every is not None
                and batches_since_snapshot >= snapshot_every)
        )
        if due and batches_since_snapshot > 0:
            save_snapshot()
            last_snapshot = time.monotonic()
            batches_since_snapshot = 0


# ----------------------------------------------------------------------
# Parent-side tenant handle
# ----------------------------------------------------------------------

@dataclass
class _Tenant:
    config: TenantConfig
    root: Path
    wal: TenantWAL
    snapshots: SnapshotStore
    inbox: Any
    outbox: Any
    proc: Optional[multiprocessing.process.BaseProcess] = None
    pump: Optional[threading.Thread] = None
    state: str = _RESTARTING
    restarts: int = 0
    restart_at: float = 0.0
    applied_seq: int = 0
    #: WAL-acked puts that found the queue momentarily full; retried by
    #: the supervision loop.  Non-empty overflow => 429 on new ingest.
    overflow: Deque[Tuple[str, ...]] = field(default_factory=collections.deque)
    pending_shm: Dict[int, SharedTraceStore] = field(default_factory=dict)
    responses: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    resp_cv: threading.Condition = field(default_factory=threading.Condition)
    next_req_id: int = 0
    #: Memoized (generation, body) of the newest verified snapshot, so a
    #: burst of stale queries does not re-read and re-verify per request.
    snapshot_cache: Optional[Tuple[int, Dict[str, Any]]] = None
    lock: threading.RLock = field(default_factory=threading.RLock)

    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()


class Supervisor:
    """Parent-side owner of all tenant workers and their durability state.

    Parameters
    ----------
    registry:
        The durable tenant list; every registered tenant gets a worker.
    queue_depth:
        Inbox bound per tenant (batches, not requests).
    snapshot_interval / snapshot_every:
        Workers snapshot after this many seconds *or* this many applied
        batches, whichever comes first.
    watchdog_timeout:
        Seconds a live query may take before the worker is declared hung
        and killed (the query is then answered from the snapshot, stale).
    max_restarts:
        Consecutive worker deaths tolerated before the tenant is marked
        ``failed`` (a clean restart resets the count... it does not: the
        count is per daemon lifetime, deliberately — a crash-looping
        tenant should degrade, not flap forever).
    restart_backoff:
        Base delay before the first restart; doubles per consecutive
        death, capped at 30s.
    shm_threshold:
        Batches with at least this many requests ship via shared memory
        instead of the queue.
    """

    def __init__(
        self,
        registry: TenantRegistry,
        queue_depth: int = 64,
        snapshot_interval: float = 30.0,
        snapshot_every: Optional[int] = None,
        watchdog_timeout: float = 10.0,
        max_restarts: int = 5,
        restart_backoff: float = 0.25,
        retry_after: float = 1.0,
        shm_threshold: int = 4096,
    ) -> None:
        self.registry = registry
        self.queue_depth = int(queue_depth)
        self.snapshot_interval = float(snapshot_interval)
        self.snapshot_every = snapshot_every
        self.watchdog_timeout = float(watchdog_timeout)
        self.max_restarts = int(max_restarts)
        self.restart_backoff = float(restart_backoff)
        self.retry_after = float(retry_after)
        self.shm_threshold = int(shm_threshold)
        self._ctx = multiprocessing.get_context("fork")
        self._tenants: Dict[str, _Tenant] = {}
        self._tenants_lock = threading.Lock()
        self._stopping = threading.Event()
        self._loop_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spin up a worker per registered tenant + the supervision loop."""
        for config in self.registry.list():
            self._add_tenant_locked(config)
        self._loop_thread = threading.Thread(
            target=self._supervise_loop, name="repro-supervise", daemon=True
        )
        self._loop_thread.start()

    def stop(self, grace: float = 10.0) -> None:
        """Graceful shutdown: snapshot every worker, then reap them."""
        self._stopping.set()
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=grace)
        with self._tenants_lock:
            tenants = list(self._tenants.values())
        for t in tenants:
            with t.lock:
                t.state = _STOPPED
                if t.alive():
                    try:
                        t.inbox.put_nowait(("stop",))
                    except queue_mod.Full:
                        pass
        deadline = time.monotonic() + grace
        for t in tenants:
            if t.proc is not None:
                t.proc.join(timeout=max(0.1, deadline - time.monotonic()))
                if t.proc.is_alive():
                    t.proc.terminate()
                    t.proc.join(timeout=2.0)
        for t in tenants:
            self._drain_outbox(t)
            for store in list(t.pending_shm.values()):
                store.close()
            t.pending_shm.clear()
            self._compact(t)
            t.wal.close()

    # ------------------------------------------------------------------
    # Tenant management
    # ------------------------------------------------------------------
    def add_tenant(self, config: TenantConfig) -> None:
        """Register + start a new tenant (persists to the registry)."""
        self.registry.add(config)
        self._add_tenant_locked(config)

    def remove_tenant(self, tenant_id: str) -> None:
        """Stop and deregister a tenant (its on-disk state is kept)."""
        config = self.registry.remove(tenant_id)
        del config
        with self._tenants_lock:
            t = self._tenants.pop(tenant_id, None)
        if t is None:
            return
        with t.lock:
            t.state = _STOPPED
        if t.alive():
            try:
                t.inbox.put_nowait(("stop",))
            except queue_mod.Full:
                t.proc.terminate()  # type: ignore[union-attr]
        if t.proc is not None:
            t.proc.join(timeout=5.0)
            if t.proc.is_alive():
                t.proc.terminate()
                t.proc.join(timeout=2.0)
        for store in list(t.pending_shm.values()):
            store.close()
        t.pending_shm.clear()
        t.wal.close()

    def _add_tenant_locked(self, config: TenantConfig) -> None:
        root = self.registry.tenant_dir(config.tenant_id)
        t = _Tenant(
            config=config,
            root=root,
            wal=TenantWAL(root / "wal"),
            snapshots=SnapshotStore(root / "snapshots"),
            inbox=self._ctx.Queue(maxsize=self.queue_depth),
            outbox=self._ctx.Queue(),
        )
        t.applied_seq = 0
        with self._tenants_lock:
            if config.tenant_id in self._tenants:
                raise KeyError(f"tenant {config.tenant_id!r} already running")
            self._tenants[config.tenant_id] = t
        self._start_worker(t)
        t.pump = threading.Thread(
            target=self._pump_outbox,
            args=(t,),
            name=f"repro-pump-{config.tenant_id}",
            daemon=True,
        )
        t.pump.start()

    def _tenant(self, tenant_id: str) -> _Tenant:
        with self._tenants_lock:
            try:
                return self._tenants[tenant_id]
            except KeyError:
                raise TenantUnavailable(tenant_id) from None

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _start_worker(self, t: _Tenant) -> None:
        # Fork workers with the shm resource tracker already running, so
        # their attach-side registrations land in the *shared* tracker
        # (idempotent no-op) instead of each worker spawning a private
        # tracker that warns about "leaked" segments it never owned.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                t.config.tenant_id,
                t.config.to_dict(),
                str(t.root),
                t.inbox,
                t.outbox,
                self.snapshot_interval,
                self.snapshot_every,
            ),
            name=f"repro-tenant-{t.config.tenant_id}",
            daemon=True,
        )
        proc.start()
        with t.lock:
            t.proc = proc
            t.state = _RUNNING

    def _on_worker_death(self, t: _Tenant) -> None:
        """Schedule a restart (or mark failed); release in-flight shm."""
        with t.lock:
            if t.state in (_STOPPED, _FAILED):
                return
            t.restarts += 1
            # WAL replay covers every acked batch, and the seq dedup in
            # the restarted worker skips the stale queue copies before
            # they would attach — so pending segments can be released now.
            for store in list(t.pending_shm.values()):
                store.close()
            t.pending_shm.clear()
            # A SIGKILLed worker can die *holding the queue's shared
            # reader lock* (Queue.get holds it while polling), which
            # would deadlock any successor on the same queue.  Each
            # generation therefore gets fresh queues; everything the dead
            # queue still held is in the WAL and replays on restart.
            for q in (t.inbox, t.outbox):
                try:
                    q.close()
                    q.cancel_join_thread()
                except (OSError, ValueError):  # pragma: no cover
                    pass
            t.inbox = self._ctx.Queue(maxsize=self.queue_depth)
            t.outbox = self._ctx.Queue()
            t.overflow.clear()  # WAL-acked; the replay re-applies them
            if t.restarts > self.max_restarts:
                t.state = _FAILED
                return
            backoff = min(
                30.0, self.restart_backoff * (2 ** (t.restarts - 1))
            )
            t.state = _RESTARTING
            t.restart_at = time.monotonic() + backoff

    def _supervise_loop(self) -> None:
        """Liveness polling, restart scheduling, overflow retry."""
        while not self._stopping.wait(timeout=0.1):
            with self._tenants_lock:
                tenants = list(self._tenants.values())
            for t in tenants:
                with t.lock:
                    state = t.state
                if state == _RUNNING and not t.alive():
                    self._on_worker_death(t)
                elif state == _RESTARTING and time.monotonic() >= t.restart_at:
                    self._start_worker(t)
                # Retry WAL-acked batches that found the queue full.
                while t.overflow:
                    try:
                        t.inbox.put_nowait(t.overflow[0])
                    except queue_mod.Full:
                        break
                    t.overflow.popleft()

    # ------------------------------------------------------------------
    # Outbox pump (one daemon thread per tenant, survives restarts)
    # ------------------------------------------------------------------
    def _pump_outbox(self, t: _Tenant) -> None:
        while not self._stopping.is_set():
            outbox = t.outbox  # re-read: restarts swap in fresh queues
            try:
                msg = outbox.get(timeout=0.25)
            except queue_mod.Empty:
                continue
            except (OSError, ValueError):
                # The queue we were blocked on was closed by a restart;
                # loop around and pick up the replacement.
                time.sleep(0.05)
                continue
            self._dispatch(t, msg)

    def _drain_outbox(self, t: _Tenant) -> None:
        while True:
            try:
                msg = t.outbox.get_nowait()
            except (queue_mod.Empty, OSError, ValueError):
                return
            self._dispatch(t, msg)

    def _dispatch(self, t: _Tenant, msg: Tuple[Any, ...]) -> None:
        kind = msg[0]
        if kind == "query_result":
            _, req_id, payload = msg
            with t.resp_cv:
                t.responses[req_id] = payload
                t.resp_cv.notify_all()
        elif kind == "ack":
            _, seq = msg
            store = t.pending_shm.pop(int(seq), None)
            if store is not None:
                store.close()
        elif kind in ("snapshotted", "stopped"):
            if kind == "snapshotted":
                _, _generation, applied_seq = msg
            else:
                _, applied_seq = msg
            with t.lock:
                t.applied_seq = max(t.applied_seq, int(applied_seq))
                t.snapshot_cache = None  # newer generation exists on disk
            self._compact(t)

    def _compact(self, t: _Tenant) -> None:
        with t.lock:
            through = t.applied_seq
        if through > 0:
            try:
                t.wal.compact(through)
            except OSError:  # pragma: no cover - best effort
                pass

    # ------------------------------------------------------------------
    # Ingest (parent side; ack == durable)
    # ------------------------------------------------------------------
    def ingest(
        self,
        tenant_id: str,
        keys: List[int],
        sizes: Optional[List[int]] = None,
    ) -> int:
        """Durably accept one batch; returns its sequence number.

        Raises :class:`Backpressure` when the tenant's queue is full (or
        earlier accepted batches are still waiting for queue space) and
        :class:`TenantUnavailable` for an unknown tenant.  A batch is
        acked only after its WAL append has been fsynced.
        """
        t = self._tenant(tenant_id)
        maybe_inject("ingest")
        if not keys:
            raise ValueError("empty batch")
        with t.lock:
            if t.overflow or t.inbox.full():
                raise Backpressure(tenant_id, self.retry_after)
            seq = t.wal.next_seq()
            t.wal.append(seq, keys, sizes)  # fsync: the ack is now earned
            if t.state == _FAILED:
                return seq  # durable; will replay on the next daemon start
            if len(keys) >= self.shm_threshold:
                msg = self._shm_message(t, seq, keys, sizes)
            else:
                msg = ("batch", seq, list(keys), list(sizes) if sizes else None)
            try:
                t.inbox.put_nowait(msg)
            except queue_mod.Full:
                # Durable but momentarily unqueueable (a race with other
                # producers): park it; the supervise loop retries and new
                # ingest sees 429 until the overflow drains.
                t.overflow.append(msg)
        return seq

    def _shm_message(
        self, t: _Tenant, seq: int, keys: List[int], sizes: Optional[List[int]]
    ) -> Tuple[Any, ...]:
        n = len(keys)
        trace = Trace(
            np.asarray(keys, dtype=np.int64),
            np.asarray(sizes, dtype=np.int64)
            if sizes is not None
            else np.ones(n, dtype=np.int64),
            np.zeros(n, dtype=np.int8),
            name=f"ingest-{t.config.tenant_id}-{seq}",
        )
        store = SharedTraceStore(trace)
        t.pending_shm[seq] = store
        return ("shm_batch", seq, store.spec)

    # ------------------------------------------------------------------
    # Queries (live when possible, snapshot + stale flag when not)
    # ------------------------------------------------------------------
    def query(
        self, tenant_id: str, max_size: Optional[int] = None
    ) -> Dict[str, Any]:
        """The tenant's current MRC + counters.

        A healthy worker answers live.  A dead, restarting, failed or
        *hung* worker (watchdog timeout) is answered from the newest
        verified snapshot with ``"stale": true`` and the snapshot's age;
        a hung worker is additionally killed so the supervision loop can
        restart it.
        """
        t = self._tenant(tenant_id)
        with t.lock:
            live = t.state == _RUNNING and t.alive()
            proc = t.proc
            if live:
                req_id = t.next_req_id = t.next_req_id + 1
        if live:
            try:
                t.inbox.put_nowait(("query", req_id, max_size))
            except queue_mod.Full:
                return self._stale_payload(t)
            payload = self._await_response(t, req_id)
            if payload is not None:
                return payload
            # Watchdog tripped: the worker accepted work but never
            # answered.  Kill it (only the process we actually asked —
            # not a fresh replacement); supervision restarts with backoff.
            if proc is not None and proc.is_alive():
                proc.terminate()
        return self._stale_payload(t)

    def _await_response(
        self, t: _Tenant, req_id: int
    ) -> Optional[Dict[str, Any]]:
        deadline = time.monotonic() + self.watchdog_timeout
        with t.resp_cv:
            while req_id not in t.responses:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                t.resp_cv.wait(timeout=remaining)
            return t.responses.pop(req_id)

    def _stale_payload(self, t: _Tenant) -> Dict[str, Any]:
        with t.lock:
            cached = t.snapshot_cache
        if cached is None:
            loaded = t.snapshots.load_latest()
            if loaded is not None:
                with t.lock:
                    t.snapshot_cache = loaded
            cached = loaded
        if cached is None:
            # Never snapshotted: answer from an empty model of the same
            # configuration rather than 500ing.
            payload = _curve_payload(t.config.build_model(), None, None)
            payload.update(
                stale=True, staleness_seconds=None, applied_seq=0
            )
            return payload
        _, body = cached
        model = WindowedKRRModel.from_state(body["model"])
        shards = (
            Shards.from_state(body["shards"])
            if body.get("shards") is not None
            else None
        )
        payload = _curve_payload(model, shards, None)
        payload.update(
            stale=True,
            staleness_seconds=max(0.0, time.time() - float(body["wall_time"])),
            applied_seq=int(body["applied_seq"]),
        )
        return payload

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, Any]:
        """Daemon + per-tenant health for ``GET /health``."""
        with self._tenants_lock:
            tenants = dict(self._tenants)
        out: Dict[str, Any] = {"tenants": {}}
        for tenant_id, t in tenants.items():
            with t.lock:
                out["tenants"][tenant_id] = {
                    "state": t.state,
                    "alive": t.alive(),
                    "restarts": t.restarts,
                    "last_acked_seq": t.wal.last_seq,
                    "applied_seq": t.applied_seq,
                    "overflow": len(t.overflow),
                    "pending_shm": len(t.pending_shm),
                }
        return out
