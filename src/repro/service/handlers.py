"""HTTP surface of the daemon: routes in, supervisor calls out.

Pure translation layer — parse the request, call one
:class:`~repro.service.supervisor.Supervisor` method, serialize the
result.  All policy (durability, backpressure, degradation) lives in the
supervisor; all transport (status codes, ``Retry-After``) lives here::

    GET    /health                      daemon + per-tenant health
    GET    /tenants                     registered tenant configs
    POST   /tenants                     register a tenant (JSON config)
    DELETE /tenants/<id>                deregister (state kept on disk)
    POST   /tenants/<id>/ingest         {"keys": [...], "sizes": [...]?}
    GET    /tenants/<id>/mrc?max_size=N current curve (live or stale)
    GET    /caches                      registered in-process caches
    GET    /caches/partition?budget=N   fleet budget-split advice
    GET    /caches/<name>               one cache's full introspection
    GET    /caches/<name>/mrc?max_size=N  its self-reported curve

The ``/caches`` routes expose the process-local
:class:`~repro.cache.registry.CacheRegistry` — introspection for
:class:`~repro.cache.lru.SamplingLRUCache` instances living *in the
daemon's own process* (embedded apps, sidecars); they involve no worker
round-trip.  ``partition`` is a reserved cache name.

Error mapping: unknown tenant -> 404, full queue -> 429 + Retry-After,
bad input -> 400, duplicate tenant -> 409.  A crashed worker is *not* an
error: ``/mrc`` answers 200 from the snapshot with ``"stale": true``.
"""

from __future__ import annotations

import json
import re
from typing import TYPE_CHECKING, Any, Callable, Dict, Iterable, List, Optional, Tuple
from urllib.parse import parse_qs

from .registry import TenantConfig
from .supervisor import Backpressure, Supervisor, TenantUnavailable

if TYPE_CHECKING:
    from ..cache.registry import CacheRegistry

__all__ = [
    "Api",
]


_STATUS = {
    200: "200 OK",
    201: "201 Created",
    400: "400 Bad Request",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    409: "409 Conflict",
    429: "429 Too Many Requests",
    500: "500 Internal Server Error",
}

#: (status, headers, body-dict)
_Response = Tuple[int, List[Tuple[str, str]], Dict[str, Any]]

_TENANT_PATH = re.compile(r"^/tenants/([^/]+)(?:/([a-z_]+))?$")
_CACHE_PATH = re.compile(r"^/caches/([^/]+)(?:/([a-z_]+))?$")


class Api:
    """WSGI application exposing one :class:`Supervisor`.

    ``cache_registry`` (default: the process-wide
    :data:`repro.cache.registry.default_registry`) backs the ``/caches``
    introspection routes.
    """

    def __init__(
        self,
        supervisor: Supervisor,
        cache_registry: "Optional[CacheRegistry]" = None,
    ) -> None:
        self.supervisor = supervisor
        if cache_registry is None:
            from ..cache.registry import default_registry

            cache_registry = default_registry
        self.cache_registry = cache_registry

    # ------------------------------------------------------------------
    def __call__(
        self,
        environ: Dict[str, Any],
        start_response: Callable[..., Any],
    ) -> Iterable[bytes]:
        try:
            status, headers, body = self._route(environ)
        except TenantUnavailable as exc:
            status, headers, body = 404, [], {"error": f"unknown tenant {exc.args[0]!r}"}
        except Backpressure as exc:
            status = 429
            headers = [("Retry-After", f"{exc.retry_after:g}")]
            body = {"error": str(exc), "retry_after": exc.retry_after}
        except (ValueError, TypeError) as exc:
            status, headers, body = 400, [], {"error": str(exc)}
        except KeyError as exc:
            status, headers, body = 409, [], {"error": str(exc)}
        payload = json.dumps(body).encode()
        start_response(
            _STATUS[status],
            [
                ("Content-Type", "application/json"),
                ("Content-Length", str(len(payload))),
                *headers,
            ],
        )
        return [payload]

    # ------------------------------------------------------------------
    def _route(self, environ: Dict[str, Any]) -> _Response:
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        if path == "/health" and method == "GET":
            return self._health()
        if path == "/tenants":
            if method == "GET":
                return self._list_tenants()
            if method == "POST":
                return self._add_tenant(_read_json(environ))
            return 405, [], {"error": f"{method} not allowed on {path}"}
        m = _TENANT_PATH.match(path)
        if m:
            tenant_id, action = m.group(1), m.group(2)
            if action is None:
                if method == "DELETE":
                    return self._remove_tenant(tenant_id)
                return 405, [], {"error": f"{method} not allowed on {path}"}
            if action == "ingest" and method == "POST":
                return self._ingest(tenant_id, _read_json(environ))
            if action == "mrc" and method == "GET":
                return self._mrc(tenant_id, environ.get("QUERY_STRING", ""))
            return 405, [], {"error": f"{method} {path} not supported"}
        if path == "/caches":
            if method == "GET":
                return self._list_caches()
            return 405, [], {"error": f"{method} not allowed on {path}"}
        m = _CACHE_PATH.match(path)
        if m:
            cache_name, action = m.group(1), m.group(2)
            if method != "GET":
                return 405, [], {"error": f"{method} not allowed on {path}"}
            if cache_name == "partition" and action is None:
                return self._cache_partition(environ.get("QUERY_STRING", ""))
            if action is None:
                return self._cache_info(cache_name)
            if action == "mrc":
                return self._cache_mrc(cache_name, environ.get("QUERY_STRING", ""))
            return 405, [], {"error": f"{method} {path} not supported"}
        return 404, [], {"error": f"no route for {path}"}

    # ------------------------------------------------------------------
    def _health(self) -> _Response:
        body = self.supervisor.health()
        body["status"] = "ok"
        return 200, [], body

    def _list_tenants(self) -> _Response:
        configs = [c.to_dict() for c in self.supervisor.registry.list()]
        return 200, [], {"tenants": configs}

    def _add_tenant(self, doc: Dict[str, Any]) -> _Response:
        config = TenantConfig.from_dict(doc)
        self.supervisor.add_tenant(config)
        return 201, [], {"tenant": config.to_dict()}

    def _remove_tenant(self, tenant_id: str) -> _Response:
        if tenant_id not in self.supervisor.registry:
            raise TenantUnavailable(tenant_id)
        self.supervisor.remove_tenant(tenant_id)
        return 200, [], {"removed": tenant_id}

    def _ingest(self, tenant_id: str, doc: Dict[str, Any]) -> _Response:
        keys = doc.get("keys")
        if not isinstance(keys, list) or not keys:
            raise ValueError('ingest body needs a non-empty "keys" array')
        sizes = doc.get("sizes")
        if sizes is not None and (
            not isinstance(sizes, list) or len(sizes) != len(keys)
        ):
            raise ValueError('"sizes" must be an array parallel to "keys"')
        seq = self.supervisor.ingest(
            tenant_id,
            [int(k) for k in keys],
            [int(s) for s in sizes] if sizes is not None else None,
        )
        return 200, [], {"seq": seq, "durable": True}

    def _mrc(self, tenant_id: str, query_string: str) -> _Response:
        params = parse_qs(query_string)
        max_size: Optional[int] = None
        if "max_size" in params:
            max_size = int(params["max_size"][0])
        payload = self.supervisor.query(tenant_id, max_size=max_size)
        return 200, [], payload

    # ------------------------------------------------------------------
    # in-process SamplingLRUCache introspection
    def _list_caches(self) -> _Response:
        return 200, [], {"caches": self.cache_registry.summaries()}

    def _cache(self, name: str) -> Any:
        cache = self.cache_registry.get(name)
        if cache is None:
            raise TenantUnavailable(name)
        return cache

    def _cache_info(self, name: str) -> _Response:
        return 200, [], self._cache(name).info()

    def _cache_mrc(self, name: str, query_string: str) -> _Response:
        cache = self._cache(name)
        if not cache.instrumented:
            raise ValueError(f"cache {name!r} runs uninstrumented (no model)")
        params = parse_qs(query_string)
        max_size: Optional[int] = None
        if "max_size" in params:
            max_size = int(params["max_size"][0])
        curve = (
            cache.byte_mrc() if cache.track_sizes else cache.mrc(max_size=max_size)
        )
        return 200, [], {
            "cache": name,
            "unit": curve.unit,
            "sizes": [float(s) for s in curve.sizes],
            "miss_ratios": [float(r) for r in curve.miss_ratios],
        }

    def _cache_partition(self, query_string: str) -> _Response:
        params = parse_qs(query_string)
        budget: Optional[int] = None
        if "budget" in params:
            budget = int(params["budget"][0])
        result = self.cache_registry.partition_advice(budget=budget)
        return 200, [], {
            "budget": result.budget,
            "allocations": result.allocations,
            "total_miss_cost": result.total_miss_cost,
        }


def _read_json(environ: Dict[str, Any]) -> Dict[str, Any]:
    try:
        length = int(environ.get("CONTENT_LENGTH") or 0)
    except (TypeError, ValueError):
        length = 0
    raw = environ["wsgi.input"].read(length) if length > 0 else b""
    if not raw:
        raise ValueError("expected a JSON request body")
    doc = json.loads(raw)
    if not isinstance(doc, dict):
        raise ValueError("request body must be a JSON object")
    return doc
