"""Per-tenant ingest write-ahead log: acked means durable.

The daemon's contract is that an HTTP 200 on ``/ingest`` can never be
un-happened by a worker crash.  Model state only hits disk every
snapshot interval, so the gap is covered the classic way: the *parent*
appends every accepted batch to a JSONL write-ahead log — flushed and
fsynced before the ack — and each snapshot records the highest batch
sequence number it contains (``applied_seq``).  A restarting worker
loads the newest snapshot, then replays every WAL batch with
``seq > applied_seq``, in order; batches that also still sit in the
(re-created) delivery queue are deduplicated by the same sequence
number.

The log is segmented (``wal-<first_seq>.jsonl``) so reclamation is
whole-file deletion: once a snapshot covers a segment's last batch the
segment is dropped (:meth:`TenantWAL.compact`), never rewritten in
place.  Replay tolerates a torn trailing line on the *newest* segment
only (a parent crash mid-append — by definition unacked, so dropping it
loses nothing); a torn line anywhere else raises :class:`WALError`,
because those bytes were fsynced and acked.
"""

from __future__ import annotations

import json
import os
import re
import warnings
from pathlib import Path
from typing import IO, Iterator, List, Optional, Tuple

from .snapshot import _fsync_dir

__all__ = [
    "TenantWAL",
    "WALError",
]


class WALError(RuntimeError):
    """The write-ahead log lost or corrupted an acked record."""


_SEG_RE = re.compile(r"^wal-(\d{12})\.jsonl$")

#: One replayed ingest batch: ``(seq, keys, sizes)``.
Batch = Tuple[int, List[int], List[int]]


class TenantWAL:
    """Segmented JSONL write-ahead log for one tenant's acked batches."""

    def __init__(
        self, root: "Path | str", segment_bytes: int = 4 * 1024 * 1024
    ) -> None:
        if segment_bytes < 1:
            raise ValueError("segment_bytes must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = int(segment_bytes)
        self._fh: Optional[IO[bytes]] = None
        self._fh_path: Optional[Path] = None
        self._last_seq = 0
        for seq, _, _ in self.replay(0):  # establish last_seq from disk
            self._last_seq = seq

    # ------------------------------------------------------------------
    def _segments(self) -> List[Path]:
        """Segment files ordered by first contained sequence number."""
        segs = []
        for entry in self.root.iterdir():
            if _SEG_RE.match(entry.name):
                segs.append(entry)
        return sorted(segs)

    @property
    def last_seq(self) -> int:
        """Highest sequence number ever appended (0 when empty)."""
        return self._last_seq

    def next_seq(self) -> int:
        return self._last_seq + 1

    # ------------------------------------------------------------------
    def append(self, seq: int, keys: List[int], sizes: Optional[List[int]]) -> None:
        """Durably append one batch (flush + fsync before returning)."""
        if seq <= self._last_seq:
            raise WALError(
                f"non-monotonic WAL append: seq {seq} after {self._last_seq}"
            )
        record = {"seq": int(seq), "keys": [int(k) for k in keys]}
        if sizes is not None:
            record["sizes"] = [int(s) for s in sizes]
        line = json.dumps(record, separators=(",", ":")).encode() + b"\n"
        fh = self._writer(seq)
        fh.write(line)
        fh.flush()
        os.fsync(fh.fileno())
        self._last_seq = int(seq)

    def _writer(self, seq: int) -> IO[bytes]:
        """The append handle, rolling to a new segment past the size cap."""
        if self._fh is not None and self._fh_path is not None:
            if self._fh.tell() < self.segment_bytes:
                return self._fh
            self._fh.close()
            self._fh = None
        if self._fh is None:
            segs = self._segments()
            fresh = not (segs and segs[-1].stat().st_size < self.segment_bytes)
            if fresh:
                self._fh_path = self.root / f"wal-{seq:012d}.jsonl"
            else:
                self._fh_path = segs[-1]
            self._fh = self._fh_path.open("ab")
            if fresh:
                # fsyncing the file persists its bytes, not its directory
                # entry: without this, a host crash after the ack can make
                # the whole new segment vanish.
                _fsync_dir(self.root)
        return self._fh

    # ------------------------------------------------------------------
    def replay(self, after_seq: int) -> Iterator[Batch]:
        """Yield every durable batch with ``seq > after_seq``, in order."""
        segs = self._segments()
        for si, seg in enumerate(segs):
            newest = si == len(segs) - 1
            with seg.open("rb") as fh:
                raw = fh.read()
            lines = raw.split(b"\n")
            for li, line in enumerate(lines):
                line = line.strip()
                if not line:
                    continue
                try:
                    d = json.loads(line)
                except json.JSONDecodeError:
                    tail = newest and not any(
                        l.strip() for l in lines[li + 1:]
                    )
                    if tail:
                        # Parent died mid-append: the batch was never acked.
                        warnings.warn(
                            f"{seg}: dropping torn trailing WAL line "
                            "(crash mid-append, batch was never acked)",
                            RuntimeWarning,
                            stacklevel=2,
                        )
                        break
                    raise WALError(
                        f"{seg}: corrupt WAL record at line {li + 1} — an "
                        "acked batch is unreadable"
                    )
                seq = int(d["seq"])
                if seq > after_seq:
                    yield seq, d["keys"], d.get("sizes")

    # ------------------------------------------------------------------
    def compact(self, through_seq: int) -> int:
        """Delete whole segments fully covered by ``through_seq``.

        A segment is reclaimable when the *next* segment starts at or
        below ``through_seq + 1`` (so every record it holds is older).
        The newest segment is never deleted — it is the append target.
        Returns the number of segments removed.
        """
        segs = self._segments()
        removed = 0
        for si in range(len(segs) - 1):
            nxt = _SEG_RE.match(segs[si + 1].name)
            assert nxt is not None
            if int(nxt.group(1)) <= through_seq + 1:
                if segs[si] == self._fh_path and self._fh is not None:
                    break  # pragma: no cover - append target, keep
                segs[si].unlink()
                removed += 1
            else:
                break
        return removed

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TenantWAL":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
