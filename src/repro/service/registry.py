"""Tenant registry: which models the daemon runs, persisted across restarts.

A tenant is one independently-modeled request stream — its own
:class:`~repro.core.windowed.WindowedKRRModel` (and optionally a SHARDS
baseline running alongside for comparison), its own WAL, snapshots and
worker process.  The registry is the durable list of tenants and their
model configurations: a daemon restart re-creates every registered
tenant's worker from this file plus its snapshot + WAL.

The file (``<data_dir>/tenants.json``) is rewritten atomically on every
mutation via :func:`~repro.service.snapshot.write_atomic`, so a crash
mid-registration leaves either the old or the new tenant list — never a
torn one.
"""

from __future__ import annotations

import json
import re
import threading
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..baselines.shards import Shards
from ..core.windowed import WindowedKRRModel
from .snapshot import write_atomic

__all__ = [
    "TenantConfig",
    "TenantRegistry",
]


#: Tenant ids double as directory names, so keep them filesystem-safe.
_TENANT_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


@dataclass
class TenantConfig:
    """Model configuration for one tenant (JSON-serializable)."""

    tenant_id: str
    k: int = 5
    window: int = 100_000
    strategy: str = "backward"
    sampling_rate: Union[None, float, str] = None
    correction: bool = True
    track_sizes: bool = False
    seed: int = 0
    #: Run a SHARDS baseline next to the KRR model (rate in (0, 1]).
    shards_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if not _TENANT_ID_RE.match(self.tenant_id):
            raise ValueError(
                f"invalid tenant id {self.tenant_id!r}: must match "
                f"{_TENANT_ID_RE.pattern}"
            )
        if self.shards_rate is not None and not (0.0 < self.shards_rate <= 1.0):
            raise ValueError("shards_rate must be in (0, 1]")

    # ------------------------------------------------------------------
    def build_model(self) -> WindowedKRRModel:
        """A fresh (empty) windowed model for this configuration."""
        return WindowedKRRModel(
            k=self.k,
            window=self.window,
            strategy=self.strategy,
            sampling_rate=self.sampling_rate,
            correction=self.correction,
            track_sizes=self.track_sizes,
            seed=self.seed,
        )

    def build_shards(self) -> Optional[Shards]:
        """A fresh SHARDS baseline, or ``None`` when not configured."""
        if self.shards_rate is None:
            return None
        return Shards(rate=self.shards_rate, seed=self.seed)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "TenantConfig":
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416 - set of names
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                f"unknown tenant config field(s): {sorted(unknown)}"
            )
        return cls(**d)


class TenantRegistry:
    """Durable ``tenant_id -> TenantConfig`` map for one data directory."""

    KIND = "repro-service-tenants"
    VERSION = 1

    def __init__(self, data_dir: "Path | str") -> None:
        self.data_dir = Path(data_dir)
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.data_dir / "tenants.json"
        self._lock = threading.Lock()
        self._tenants: Dict[str, TenantConfig] = {}
        if self.path.exists():
            self._load()

    # ------------------------------------------------------------------
    def _load(self) -> None:
        doc = json.loads(self.path.read_bytes())
        if doc.get("kind") != self.KIND or doc.get("version") != self.VERSION:
            raise ValueError(f"{self.path}: not a v{self.VERSION} tenant registry")
        for entry in doc["tenants"]:
            cfg = TenantConfig.from_dict(entry)
            self._tenants[cfg.tenant_id] = cfg

    def _persist_locked(self) -> None:
        doc = {
            "kind": self.KIND,
            "version": self.VERSION,
            "tenants": [
                self._tenants[tid].to_dict() for tid in sorted(self._tenants)
            ],
        }
        write_atomic(self.path, json.dumps(doc, indent=2).encode() + b"\n")

    # ------------------------------------------------------------------
    def add(self, config: TenantConfig) -> None:
        """Register a tenant; raises ``KeyError`` if the id is taken."""
        with self._lock:
            if config.tenant_id in self._tenants:
                raise KeyError(f"tenant {config.tenant_id!r} already exists")
            self._tenants[config.tenant_id] = config
            self._persist_locked()

    def remove(self, tenant_id: str) -> TenantConfig:
        """Deregister a tenant; raises ``KeyError`` if unknown."""
        with self._lock:
            config = self._tenants.pop(tenant_id)  # KeyError propagates
            self._persist_locked()
            return config

    def get(self, tenant_id: str) -> TenantConfig:
        with self._lock:
            return self._tenants[tenant_id]

    def __contains__(self, tenant_id: object) -> bool:
        with self._lock:
            return tenant_id in self._tenants

    def list(self) -> List[TenantConfig]:
        with self._lock:
            return [self._tenants[tid] for tid in sorted(self._tenants)]

    def __len__(self) -> int:
        with self._lock:
            return len(self._tenants)

    # ------------------------------------------------------------------
    def tenant_dir(self, tenant_id: str) -> Path:
        """Per-tenant state directory (WAL + snapshots live under it)."""
        return self.data_dir / "tenants" / tenant_id
