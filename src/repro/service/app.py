"""Daemon assembly: registry + supervisor + WSGI server + signal wiring.

:func:`create_app` builds the WSGI callable for embedding (tests drive
it through ``wsgiref`` or a plain socket); :func:`serve` is the
``repro serve`` entrypoint — it binds a threading WSGI server, starts
the supervisor, and registers graceful shutdown on the process-wide
chained SIGTERM handler from :mod:`repro.engine.shm`: on SIGTERM every
worker snapshots and exits, the WALs are compacted, shared-memory
segments are released, and then the chain's default disposition re-kills
the process so the exit status is still death-by-SIGTERM (what a
systemd/container supervisor expects).
"""

from __future__ import annotations

import os
import sys
import threading
from pathlib import Path
from socketserver import ThreadingMixIn
from typing import Any, Optional
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer, make_server

from ..engine.shm import on_sigterm, remove_sigterm_callback
from .handlers import Api
from .registry import TenantRegistry
from .supervisor import Supervisor

__all__ = [
    "create_app",
    "serve",
]


def create_app(supervisor: Supervisor, cache_registry: Any = None) -> Api:
    """The WSGI application for an already-constructed supervisor.

    ``cache_registry`` (a :class:`~repro.cache.registry.CacheRegistry`)
    backs the ``/caches`` introspection routes; the process-wide default
    registry is used when omitted.
    """
    return Api(supervisor, cache_registry=cache_registry)


class _ThreadingWSGIServer(ThreadingMixIn, WSGIServer):
    """Concurrent requests (ingest + query overlap) on daemon threads."""

    daemon_threads = True
    allow_reuse_address = True


class _Handler(WSGIRequestHandler):
    def log_message(self, format: str, *args: Any) -> None:
        # One access-log line per request on stderr (the CI smoke job
        # captures this as the run log artifact).
        sys.stderr.write(
            "repro-serve: %s - %s\n" % (self.address_string(), format % args)
        )


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    data_dir: "str | Path" = "repro-service-data",
    port_file: Optional[str] = None,
    grace: float = 10.0,
    **supervisor_kwargs: Any,
) -> int:
    """Run the daemon until SIGTERM/SIGINT; returns an exit code.

    ``port=0`` binds an ephemeral port; the bound address is printed on
    stdout (``listening on http://host:port``) and, when ``port_file``
    is given, the port number is also written there — that is how the
    smoke/chaos harnesses find a race-free port.
    """
    registry = TenantRegistry(data_dir)
    supervisor = Supervisor(registry, **supervisor_kwargs)
    supervisor.start()
    app = create_app(supervisor)
    httpd = make_server(
        host, port, app, server_class=_ThreadingWSGIServer,
        handler_class=_Handler,
    )
    bound_port = httpd.server_address[1]
    print(
        f"repro serve: listening on http://{host}:{bound_port} "
        f"(data_dir={data_dir}, pid={os.getpid()})",
        flush=True,
    )
    if port_file:
        Path(port_file).write_text(f"{bound_port}\n")

    server_thread = threading.Thread(
        target=httpd.serve_forever,
        kwargs={"poll_interval": 0.1},
        name="repro-serve-http",
        daemon=True,
    )
    server_thread.start()

    owner_pid = os.getpid()
    done = threading.Event()

    def _graceful_shutdown() -> None:
        # Chained SIGTERM callback: runs in the parent only (workers
        # fork-inherit the handler list before they reset SIGTERM), does
        # the entire graceful sequence, then lets the chain's default
        # disposition re-kill the process (exit status = SIGTERM).
        if os.getpid() != owner_pid or done.is_set():
            return
        done.set()
        print("repro serve: SIGTERM — snapshotting and shutting down", flush=True)
        httpd.shutdown()
        supervisor.stop(grace=grace)
        httpd.server_close()
        print("repro serve: shutdown complete", flush=True)

    on_sigterm(_graceful_shutdown)
    try:
        while server_thread.is_alive():
            server_thread.join(timeout=0.5)
        return 0
    except KeyboardInterrupt:
        print("repro serve: interrupt — snapshotting and shutting down", flush=True)
        done.set()
        httpd.shutdown()
        supervisor.stop(grace=grace)
        httpd.server_close()
        return 0
    finally:
        remove_sigterm_callback(_graceful_shutdown)
