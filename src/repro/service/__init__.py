"""``repro.service``: the supervised multi-tenant online-modeling daemon.

`repro serve` turns the library's online models into an MRC-as-a-service
process: per-tenant :class:`~repro.core.windowed.WindowedKRRModel`
(+ optional SHARDS baseline) instances run in supervised worker
processes, ingest flows through bounded queues with explicit
backpressure, every acked request is durable in a write-ahead log before
the HTTP 200 goes out, and workers snapshot their full model state
(RNG included — resume is bit-identical) atomically on an interval and
on shutdown.  A crashed worker is restarted with backoff while queries
keep being answered from its last snapshot, flagged ``stale``.

Layering (mirroring a conventional WSGI split):

* :mod:`~repro.service.app`        — WSGI app + ``serve()`` entrypoint
* :mod:`~repro.service.handlers`   — HTTP surface -> service calls
* :mod:`~repro.service.supervisor` — worker processes, watchdog, restarts
* :mod:`~repro.service.registry`   — tenant configs, persisted
* :mod:`~repro.service.wal`        — per-tenant ingest write-ahead log
* :mod:`~repro.service.snapshot`   — atomic generational snapshots

See ``docs/SERVICE.md`` for endpoints, the snapshot format and the
failure-mode table.
"""

from .app import create_app, serve
from .registry import TenantConfig, TenantRegistry
from .snapshot import SnapshotStore
from .supervisor import Backpressure, Supervisor, TenantUnavailable
from .wal import TenantWAL

__all__ = [
    "Backpressure",
    "SnapshotStore",
    "Supervisor",
    "TenantConfig",
    "TenantRegistry",
    "TenantUnavailable",
    "TenantWAL",
    "create_app",
    "serve",
]
