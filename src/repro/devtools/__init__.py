"""Developer tooling that enforces the reproduction's invariants.

:mod:`repro.devtools.lint` ("reprolint") is the driver: repo-specific
static analysis run as ``repro lint`` or ``python -m repro.devtools.lint``;
it gates CI.  Two tiers of rules:

* single-file AST rules — seeded-randomness plumbing (RNG-001/002),
  shared-memory lifecycle safety (SHM-001), model-path determinism
  (DET-001) and Python hygiene (PY-001/002);
* project-level dataflow rules built on
  :mod:`repro.devtools.analysis` (per-function CFGs, reaching
  definitions, one-level call summaries) — fork-boundary and
  worker-lifecycle safety (CONC-001/002/003), crash-durability ordering
  over the WAL/snapshot/checkpoint protocol (DUR-001/002/003), and the
  ctypes ↔ C contract of the native kernel (NAT-001/002/003).

:mod:`repro.devtools.findings` holds the rule registry and the
:class:`~repro.devtools.findings.Finding` type both tiers report
through; docs/LINTING.md is the full catalog.
"""

from .lint import (
    RULES,
    SEVERITIES,
    Finding,
    Rule,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)

__all__ = [
    "Finding",
    "RULES",
    "Rule",
    "SEVERITIES",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
