"""Developer tooling that enforces the reproduction's invariants.

Currently one tool: :mod:`repro.devtools.lint` ("reprolint"), an AST-based
static analyzer with repo-specific rules — seeded-randomness plumbing
(RNG-001/002), shared-memory lifecycle safety (SHM-001), model-path
determinism (DET-001) and Python hygiene (PY-001/002).  Run it as
``repro lint`` or ``python -m repro.devtools.lint``; it gates CI.
"""

from .lint import (
    RULES,
    SEVERITIES,
    Finding,
    Rule,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)

__all__ = [
    "Finding",
    "RULES",
    "Rule",
    "SEVERITIES",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
]
