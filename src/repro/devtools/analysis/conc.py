"""CONC-*: fork/concurrency safety rules.

The service layer's crash-safety story (PR 7) rests on three process-model
conventions that nothing but review used to enforce:

* **CONC-001** — nothing holding a ``threading`` primitive (or a live
  ``SharedMemory`` handle) crosses a fork boundary.  A forked child
  inherits the lock *state* but not the owning thread: a lock held at
  fork time deadlocks the child forever.  Workers receive plain data,
  ``mp.Queue``\\ s, or shm *specs* — never lock-holding composites.
* **CONC-002** — worker-side code never mutates supervisor-owned state.
  After ``fork`` the worker's memory is a copy: assigning to the
  registry, a ``global``, or any parent-side structure silently diverges
  from the parent's view.  Changes travel over the outbox queue.
* **CONC-003** — queue objects are never reused across worker
  generations.  A SIGKILLed worker can die *holding the queue's shared
  reader lock* (``Queue.get`` holds it while polling), wedging any
  successor handed the same queue.  This was a real PR 7 bug; the rule
  is its regression test generalized to the whole tree.

Detection is dataflow-based, not name-based: a queue argument is "fresh"
only if a ``Queue(...)`` construction in the same scope *reaches* the
spawn site (:class:`~repro.devtools.analysis.cfg.ReachingDefs`), and the
one-level call summaries let a restart helper that spawns with
caller-supplied queues transfer the obligation to its caller.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Set, Tuple

from ..findings import Finding, RULES
from .cfg import CFG, CFGNode, dotted_name
from .project import (
    FunctionInfo,
    ModuleInfo,
    Project,
    THREAD_PRIMITIVE_CALLS,
    is_fork_spawn,
    is_queue_constructor,
    spawn_payload_args,
    spawn_target,
)

__all__ = ["check_conc"]

#: Function names that signal "this scope handles a dead worker".
_RESTART_NAME_RE = re.compile(
    r"(^|_)(restart|respawn|revive)|on_\w*death|worker_death"
)

#: Method leaves that mutate a registry-like object in place.
_MUTATOR_LEAVES = frozenset(
    {"add", "remove", "update", "pop", "clear", "setdefault", "register",
     "deregister", "put", "discard"}
)

#: Receiver roots that mark supervisor-owned state in worker code.
_SUPERVISOR_TOKENS = ("registry", "supervisor")


def _emit(
    module: ModuleInfo, rule_id: str, node: ast.AST, message: str
) -> Finding:
    rule = RULES[rule_id]
    lineno = getattr(node, "lineno", 1)
    lines = module.source.splitlines()
    snippet = lines[lineno - 1].strip() if 1 <= lineno <= len(lines) else ""
    return Finding(
        rule=rule_id,
        severity=rule.severity,
        path=module.path,
        line=lineno,
        col=getattr(node, "col_offset", 0) + 1,
        message=message,
        fix_hint=rule.fix_hint,
        snippet=snippet,
        end_line=getattr(node, "end_lineno", lineno) or lineno,
    )


def check_conc(module: ModuleInfo, project: Project) -> List[Finding]:
    findings: List[Finding] = []
    worker_entries = _worker_entry_functions(project)
    for fn in module.functions:
        findings.extend(_check_fork_captures(module, project, fn))
        findings.extend(_check_queue_generations(module, project, fn))
    for fn in module.functions:
        if fn in worker_entries:
            findings.extend(_check_worker_mutations(module, fn))
    return findings


# ----------------------------------------------------------------------
# CONC-001: lock-holding values crossing the fork boundary
# ----------------------------------------------------------------------


def _check_fork_captures(
    module: ModuleInfo, project: Project, fn: FunctionInfo
) -> List[Finding]:
    findings: List[Finding] = []
    imports = module.imports
    cfg = fn.cfg
    for node in cfg.statement_nodes():
        for call in node.calls():
            if not is_fork_spawn(call, imports):
                continue
            for arg in spawn_payload_args(call):
                reason = _traces_to_primitive(module, project, fn, node, arg)
                if reason:
                    findings.append(
                        _emit(
                            module,
                            "CONC-001",
                            arg,
                            f"{reason} is shipped across a fork boundary: "
                            "the child inherits the lock state but not its "
                            "owner",
                        )
                    )
            target = spawn_target(call)
            if target is not None:
                findings.extend(
                    _check_closure_capture(module, project, fn, node, target)
                )
    return findings


def _traces_to_primitive(
    module: ModuleInfo,
    project: Project,
    fn: FunctionInfo,
    node: CFGNode,
    arg: ast.expr,
) -> Optional[str]:
    """Why ``arg`` holds a thread primitive, or None if untraceable."""
    if isinstance(arg, ast.Call):
        qual = module.imports.qualname(arg.func)
        if qual in THREAD_PRIMITIVE_CALLS:
            return f"a fresh {qual}()"
        cls = _class_with_primitives(module, project, qual)
        if cls:
            return f"a {cls[0]} instance (holds {', '.join(sorted(cls[1]))})"
        return None
    path = dotted_name(arg)
    if not path:
        return None
    for def_idx in fn.reaching.defs_reaching(node.index, path):
        value = _def_value(fn.cfg, def_idx, path)
        if isinstance(value, ast.Call):
            qual = module.imports.qualname(value.func)
            if qual in THREAD_PRIMITIVE_CALLS:
                return f"{path} (constructed as {qual}())"
            cls = _class_with_primitives(module, project, qual)
            if cls:
                return (
                    f"{path} (a {cls[0]} holding "
                    f"{', '.join(sorted(cls[1]))})"
                )
    return None


def _class_with_primitives(
    module: ModuleInfo, project: Project, qual: str
) -> Optional[Tuple[str, Set[str]]]:
    """(class_name, primitive_fields) when ``qual`` names such a class."""
    if not qual:
        return None
    leaf = qual.rsplit(".", 1)[-1]
    for mod in project.modules:
        fields = mod.class_primitive_fields.get(leaf)
        if fields:
            return leaf, fields
    return None


def _def_value(cfg: CFG, def_idx: int, path: str) -> Optional[ast.expr]:
    stmt = cfg.nodes[def_idx].stmt
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            if dotted_name(target) == path:
                return stmt.value
        # tuple unpacking etc. — give up rather than mis-attribute
        return None
    if isinstance(stmt, ast.AnnAssign) and dotted_name(stmt.target) == path:
        return stmt.value
    return None


def _check_closure_capture(
    module: ModuleInfo,
    project: Project,
    fn: FunctionInfo,
    node: CFGNode,
    target: ast.expr,
) -> List[Finding]:
    """Nested spawn target closing over a lock-holding local."""
    findings: List[Finding] = []
    if not isinstance(target, ast.Name):
        return findings
    nested = next(
        (
            sub
            for sub in ast.walk(fn.node)
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef))
            and sub.name == target.id
            and sub is not fn.node
        ),
        None,
    )
    if nested is None:
        return findings
    local = _local_names(nested)
    free = {
        sub.id
        for sub in ast.walk(nested)
        if isinstance(sub, ast.Name)
        and isinstance(sub.ctx, ast.Load)
        and sub.id not in local
    }
    for name in sorted(free):
        reason = _traces_to_primitive(module, project, fn, node, ast.Name(
            id=name, ctx=ast.Load(), lineno=target.lineno,
            col_offset=target.col_offset,
        ))
        if reason:
            findings.append(
                _emit(
                    module,
                    "CONC-001",
                    target,
                    f"fork target {target.id}() closes over {reason}",
                )
            )
    return findings


def _local_names(func: ast.AST) -> Set[str]:
    names: Set[str] = set()
    args = getattr(func, "args", None)
    if args is not None:
        names.update(a.arg for a in args.posonlyargs)
        names.update(a.arg for a in args.args)
        names.update(a.arg for a in args.kwonlyargs)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
    for sub in ast.walk(func):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            names.add(sub.id)
    return names


# ----------------------------------------------------------------------
# CONC-002: worker-side mutation of supervisor-owned state
# ----------------------------------------------------------------------


def _worker_entry_functions(project: Project) -> Set[FunctionInfo]:
    """Functions used as ``Process(target=...)`` anywhere in the project,
    plus their same-module direct callees (one level)."""
    entries: Set[FunctionInfo] = set()
    for mod in project.modules:
        for fn in mod.functions:
            for node in fn.cfg.statement_nodes():
                for call in node.calls():
                    if not is_fork_spawn(call, mod.imports):
                        continue
                    target = spawn_target(call)
                    if target is None:
                        continue
                    name = (
                        target.id
                        if isinstance(target, ast.Name)
                        else target.attr
                        if isinstance(target, ast.Attribute)
                        else ""
                    )
                    for cand in project.function_named(name):
                        entries.add(cand)
    # One level of same-module callees: a worker entry that delegates its
    # body to helpers keeps those helpers on the worker side.
    for entry in list(entries):
        for sub in ast.walk(entry.node):
            if isinstance(sub, ast.Call):
                resolved = entry.module.functions
                callee_name = (
                    sub.func.id if isinstance(sub.func, ast.Name) else ""
                )
                for cand in resolved:
                    if callee_name and cand.name == callee_name:
                        entries.add(cand)
    return entries


def _check_worker_mutations(
    module: ModuleInfo, fn: FunctionInfo
) -> List[Finding]:
    findings: List[Finding] = []
    for sub in ast.walk(fn.node):
        if isinstance(sub, ast.Global):
            findings.append(
                _emit(
                    module,
                    "CONC-002",
                    sub,
                    f"worker-side function {fn.name}() declares "
                    f"global {', '.join(sub.names)}: after fork the write "
                    "only changes the worker's copy",
                )
            )
        elif isinstance(sub, ast.Call) and isinstance(sub.func, ast.Attribute):
            recv = dotted_name(sub.func.value)
            if _is_supervisor_owned(recv) and sub.func.attr in _MUTATOR_LEAVES:
                findings.append(
                    _emit(
                        module,
                        "CONC-002",
                        sub,
                        f"worker-side call {recv}.{sub.func.attr}(...) "
                        "mutates supervisor-owned state the parent will "
                        "never see",
                    )
                )
        elif isinstance(sub, (ast.Assign, ast.AugAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for target in targets:
                base = target
                while isinstance(base, (ast.Attribute, ast.Subscript)):
                    base = base.value
                recv = dotted_name(target if isinstance(target, ast.Attribute) else base)
                if recv and _is_supervisor_owned(recv) and target is not base:
                    findings.append(
                        _emit(
                            module,
                            "CONC-002",
                            sub,
                            f"worker-side store to {recv} mutates "
                            "supervisor-owned state the parent will never "
                            "see",
                        )
                    )
    return findings


def _is_supervisor_owned(recv: str) -> bool:
    tokens = recv.lower().split(".")
    return any(
        any(marker in tok for marker in _SUPERVISOR_TOKENS) for tok in tokens
    )


# ----------------------------------------------------------------------
# CONC-003: queue reuse across worker generations
# ----------------------------------------------------------------------


def _check_queue_generations(
    module: ModuleInfo, project: Project, fn: FunctionInfo
) -> List[Finding]:
    findings: List[Finding] = []
    if not _observes_worker_death(fn):
        return findings
    cfg = fn.cfg
    for node in cfg.statement_nodes():
        for call in node.calls():
            if is_fork_spawn(call, module.imports):
                for arg in spawn_payload_args(call):
                    path = dotted_name(arg)
                    if not path or not _queueish_path(path):
                        continue
                    if not _fresh_queue_reaches(module, fn, node, path):
                        findings.append(
                            _emit(
                                module,
                                "CONC-003",
                                arg,
                                f"respawn passes {path} to the new worker "
                                "but no fresh Queue() construction reaches "
                                "this spawn — a queue inherited from the "
                                "dead generation can arrive with its reader "
                                "lock held",
                            )
                        )
                continue
            # One level out: a helper that spawns with caller queues moves
            # the freshness obligation here.
            callee = project.resolve_local_call(module, call)
            if callee is None or callee is fn:
                continue
            summary = callee.summary()
            if not summary.spawn_queue_args:
                continue
            mapping = _map_args_to_params(call, callee)
            for qpath in summary.spawn_queue_args:
                root, _, rest = qpath.partition(".")
                caller_expr = mapping.get(root)
                if caller_expr is None:
                    continue
                caller_base = dotted_name(caller_expr)
                if not caller_base:
                    continue
                caller_path = f"{caller_base}.{rest}" if rest else caller_base
                if not _fresh_queue_reaches(module, fn, node, caller_path):
                    findings.append(
                        _emit(
                            module,
                            "CONC-003",
                            call,
                            f"{callee.name}() respawns a worker with "
                            f"{caller_path}, which was not re-created in "
                            "this death-handling scope — fresh queues per "
                            "worker generation",
                        )
                    )
    return findings


def _observes_worker_death(fn: FunctionInfo) -> bool:
    if _RESTART_NAME_RE.search(fn.name):
        return True
    for node in fn.cfg.statement_nodes():
        for expr in node.own_exprs():
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Call) and isinstance(
                    sub.func, ast.Attribute
                ):
                    if sub.func.attr in ("terminate", "kill"):
                        return True
                elif isinstance(sub, ast.Attribute) and sub.attr == "exitcode":
                    return True
    return False


def _queueish_path(path: str) -> bool:
    tokens = path.lower().replace("_", ".").split(".")
    return any(
        tok in ("queue", "inbox", "outbox", "mailbox", "q") for tok in tokens
    )


def _fresh_queue_reaches(
    module: ModuleInfo, fn: FunctionInfo, node: CFGNode, path: str
) -> bool:
    for def_idx in fn.reaching.defs_reaching(node.index, path):
        value = _def_value(fn.cfg, def_idx, path)
        if isinstance(value, ast.Call) and is_queue_constructor(
            module.imports.qualname(value.func)
        ):
            return True
    return False


def _map_args_to_params(
    call: ast.Call, callee: FunctionInfo
) -> Dict[str, ast.expr]:
    """Caller expression for each callee parameter name (positional only)."""
    params = callee.params
    if callee.class_name is not None and params and params[0] in ("self", "cls"):
        params = params[1:]
    mapping = {}
    for param, arg in zip(params, call.args):
        mapping[param] = arg
    for kw in call.keywords:
        if kw.arg:
            mapping[kw.arg] = kw.value
    return mapping
