"""NAT-*: native-kernel contract rules.

The C chain-walk kernel is bound through :mod:`ctypes`, which performs
no checking whatsoever: an ``argtypes`` list that disagrees with the C
prototype in arity, integer width or pointer-ness silently truncates or
misreads arguments and corrupts the walk (or the heap).  These rules
make the binding a *checked* contract:

* **NAT-001** — every ``fn.argtypes``/``fn.restype`` declaration must
  match the C definition of the bound symbol: same arity, pointer
  parameters bound as pointers (``c_void_p`` matches any pointer,
  ``POINTER(T)`` must match the pointee), scalar widths equal.
* **NAT-002** — every non-``static`` function the C file exports must
  have a ctypes binding in the referencing module.  Unbound exports have
  no checked contract at all, which is how a signature skew lands
  unnoticed.
* **NAT-003** — every ``*_native`` entry point needs a ``*_python``
  fallback twin (same class or module scope): the kernel is a throughput
  lever, never a semantics change, and the twin is what parity tests
  diff against.

The checker finds the C source the same way the binding module does: a
string constant ending in ``.c`` (``Path(__file__).with_name("_soa_kernel.c")``)
resolved next to the module file.  Prototype parsing is a small
comment-stripping regex pass — enough for the kernel's C dialect (no
function pointers, no macros in signatures); anything it cannot parse is
skipped rather than guessed at.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..findings import Finding, RULES
from .project import ModuleInfo, Project

__all__ = ["check_nat", "parse_c_exports"]


def _emit(
    module: ModuleInfo, rule_id: str, line: int, message: str, end_line: int = 0
) -> Finding:
    rule = RULES[rule_id]
    lines = module.source.splitlines()
    snippet = lines[line - 1].strip() if 1 <= line <= len(lines) else ""
    return Finding(
        rule=rule_id,
        severity=rule.severity,
        path=module.path,
        line=line,
        col=1,
        message=message,
        fix_hint=rule.fix_hint,
        snippet=snippet,
        end_line=end_line or line,
    )


# ----------------------------------------------------------------------
# C prototype parsing
# ----------------------------------------------------------------------


@dataclass
class CParam:
    text: str
    is_pointer: bool
    kind: str  # "i64", "u64", "f64", ... or "?" when unrecognized


@dataclass
class CExport:
    name: str
    params: List[CParam]
    ret_is_pointer: bool
    ret_kind: str  # "void", "i64", ... or "?"


_COMMENT_RE = re.compile(r"/\*.*?\*/|//[^\n]*", re.DOTALL)
_FUNC_RE = re.compile(
    r"(?:^|\n)\s*([A-Za-z_][A-Za-z0-9_ \t]*?[\s\*]+)([A-Za-z_]\w*)\s*\(([^()]*)\)\s*\{"
)
_C_KEYWORDS = frozenset({"if", "for", "while", "switch", "return", "do", "else", "sizeof"})

#: C type spellings -> width/signedness kind token.
_C_KINDS: Dict[str, str] = {
    "int64_t": "i64",
    "long long": "i64",
    "long long int": "i64",
    "uint64_t": "u64",
    "unsigned long long": "u64",
    "size_t": "u64",
    "int32_t": "i32",
    "int": "i32",
    "uint32_t": "u32",
    "unsigned int": "u32",
    "unsigned": "u32",
    "int16_t": "i16",
    "short": "i16",
    "uint16_t": "u16",
    "int8_t": "i8",
    "signed char": "i8",
    "uint8_t": "u8",
    "unsigned char": "u8",
    "char": "char",
    "double": "f64",
    "float": "f32",
    "_Bool": "bool",
    "bool": "bool",
    "void": "void",
}

#: ctypes leaf names -> kind token (scalars).
_CTYPES_KINDS: Dict[str, str] = {
    "c_int64": "i64",
    "c_longlong": "i64",
    "c_uint64": "u64",
    "c_ulonglong": "u64",
    "c_size_t": "u64",
    "c_int32": "i32",
    "c_int": "i32",
    "c_uint32": "u32",
    "c_uint": "u32",
    "c_int16": "i16",
    "c_short": "i16",
    "c_uint16": "u16",
    "c_ushort": "u16",
    "c_int8": "i8",
    "c_byte": "i8",
    "c_uint8": "u8",
    "c_ubyte": "u8",
    "c_char": "char",
    "c_double": "f64",
    "c_float": "f32",
    "c_bool": "bool",
}


def _c_kind(text: str) -> Tuple[bool, str]:
    """(is_pointer, kind) for one C declarator (qualifiers stripped)."""
    is_pointer = "*" in text
    cleaned = text.replace("*", " ")
    words = [
        w
        for w in cleaned.split()
        if w not in ("const", "restrict", "volatile", "register", "struct")
    ]
    # Drop a trailing parameter name if the prefix already names a type.
    for take in range(len(words), 0, -1):
        candidate = " ".join(words[:take])
        if candidate in _C_KINDS:
            return is_pointer, _C_KINDS[candidate]
    return is_pointer, "?"


def parse_c_exports(text: str) -> List[CExport]:
    """Non-static function definitions in one C translation unit."""
    stripped = _COMMENT_RE.sub(" ", text)
    exports: List[CExport] = []
    for match in _FUNC_RE.finditer(stripped):
        ret_text, name, params_text = match.groups()
        if name in _C_KEYWORDS:
            continue
        ret_words = ret_text.replace("*", " * ").split()
        if "static" in ret_words:
            continue
        if not any(w.strip("*") for w in ret_words):
            continue
        ret_is_pointer, ret_kind = _c_kind(ret_text)
        params: List[CParam] = []
        body = params_text.strip()
        if body and body != "void":
            for piece in body.split(","):
                piece = piece.strip()
                if not piece:
                    continue
                is_ptr, kind = _c_kind(piece)
                params.append(CParam(piece, is_ptr, kind))
        exports.append(CExport(name, params, ret_is_pointer, ret_kind))
    return exports


# ----------------------------------------------------------------------
# ctypes binding extraction
# ----------------------------------------------------------------------


@dataclass
class CTypeDesc:
    """One argtypes entry / restype, normalized."""

    is_pointer: bool
    kind: str  # pointee kind for pointers ("void" for c_void_p), else scalar


@dataclass
class Binding:
    symbol: str
    argtypes: Optional[List[Optional[CTypeDesc]]] = None
    argtypes_line: int = 0
    argtypes_end: int = 0
    restype: Optional[CTypeDesc] = None
    restype_set: bool = False
    restype_line: int = 0


def _ctype_desc(expr: ast.expr, module: ModuleInfo) -> Optional[CTypeDesc]:
    """Normalize one ctypes expression; None when unrecognized."""
    if isinstance(expr, ast.Constant) and expr.value is None:
        return CTypeDesc(False, "void")
    if isinstance(expr, ast.Call):
        qual = module.imports.qualname(expr.func)
        leaf = qual.rsplit(".", 1)[-1] if qual else ""
        if leaf == "POINTER" and expr.args:
            inner = _ctype_desc(expr.args[0], module)
            return CTypeDesc(True, inner.kind if inner else "?")
        if leaf == "ndpointer":
            return CTypeDesc(True, "?")
        return None
    qual = module.imports.qualname(expr)
    leaf = qual.rsplit(".", 1)[-1] if qual else ""
    if leaf == "c_void_p":
        return CTypeDesc(True, "void")
    if leaf == "c_char_p":
        return CTypeDesc(True, "char")
    if leaf in _CTYPES_KINDS:
        return CTypeDesc(False, _CTYPES_KINDS[leaf])
    return None


def _collect_bindings(module: ModuleInfo) -> Dict[str, Binding]:
    """Every ``<x>.argtypes`` / ``<x>.restype`` assignment, keyed by the C
    symbol the receiver was loaded from (``fn = library.krr_...``)."""
    bindings: Dict[str, Binding] = {}
    # name -> symbol it was bound from, per enclosing scope (flat is fine:
    # binding modules are small and symbol handles are single-assignment).
    handle_symbols: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if isinstance(target, ast.Name) and isinstance(node.value, ast.Attribute):
            # fn = library.krr_backward_chunk  (or lib["sym"] is not supported)
            handle_symbols[target.id] = node.value.attr
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Attribute):
            continue
        if target.attr not in ("argtypes", "restype"):
            continue
        recv = target.value
        symbol = ""
        if isinstance(recv, ast.Attribute):
            symbol = recv.attr  # lib.krr_backward_chunk.argtypes = ...
        elif isinstance(recv, ast.Name):
            symbol = handle_symbols.get(recv.id, "")
        if not symbol:
            continue
        binding = bindings.setdefault(symbol, Binding(symbol))
        if target.attr == "argtypes":
            if isinstance(node.value, (ast.List, ast.Tuple)):
                binding.argtypes = [
                    _ctype_desc(elt, module) for elt in node.value.elts
                ]
            binding.argtypes_line = node.lineno
            binding.argtypes_end = getattr(node, "end_lineno", node.lineno) or node.lineno
        else:
            binding.restype = _ctype_desc(node.value, module)
            binding.restype_set = True
            binding.restype_line = node.lineno
    return bindings


# ----------------------------------------------------------------------
# the checks
# ----------------------------------------------------------------------


def check_nat(module: ModuleInfo, project: Project) -> List[Finding]:
    findings: List[Finding] = []
    findings.extend(_check_fallback_twins(module))
    source_refs = _c_source_refs(module)
    for const_node, c_path in source_refs:
        try:
            text = c_path.read_text()
        except OSError:
            continue
        exports = parse_c_exports(text)
        bindings = _collect_bindings(module)
        for export in exports:
            binding = bindings.get(export.name)
            if binding is None:
                findings.append(
                    _emit(
                        module,
                        "NAT-002",
                        const_node.lineno,
                        f"{c_path.name} exports {export.name}() but this "
                        "module declares no argtypes/restype for it",
                    )
                )
                continue
            findings.extend(_check_signature(module, export, binding))
    return findings


def _c_source_refs(module: ModuleInfo) -> List[Tuple[ast.Constant, Path]]:
    if module.real_path is None:
        return []
    refs: List[Tuple[ast.Constant, Path]] = []
    seen = set()
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value.endswith(".c")
        ):
            candidate = module.real_path.parent / Path(node.value).name
            if candidate in seen:
                continue
            seen.add(candidate)
            if candidate.exists():
                refs.append((node, candidate))
    return refs


def _check_signature(
    module: ModuleInfo, export: CExport, binding: Binding
) -> List[Finding]:
    findings: List[Finding] = []
    name = export.name
    if binding.argtypes is not None:
        if len(binding.argtypes) != len(export.params):
            findings.append(
                _emit(
                    module,
                    "NAT-001",
                    binding.argtypes_line,
                    f"{name}(): argtypes has {len(binding.argtypes)} "
                    f"entries but the C definition takes "
                    f"{len(export.params)} parameters",
                    binding.argtypes_end,
                )
            )
        else:
            for i, (desc, param) in enumerate(
                zip(binding.argtypes, export.params)
            ):
                problem = _mismatch(desc, param)
                if problem:
                    findings.append(
                        _emit(
                            module,
                            "NAT-001",
                            binding.argtypes_line,
                            f"{name}() parameter {i} ({param.text!r}): "
                            f"{problem}",
                            binding.argtypes_end,
                        )
                    )
    if binding.restype_set:
        problem = _restype_mismatch(binding.restype, export)
        if problem:
            findings.append(
                _emit(
                    module,
                    "NAT-001",
                    binding.restype_line,
                    f"{name}() restype: {problem}",
                )
            )
    return findings


def _mismatch(desc: Optional[CTypeDesc], param: CParam) -> str:
    if desc is None:
        return ""  # unrecognized ctypes expression: skip, never guess
    if param.is_pointer:
        if not desc.is_pointer:
            return "C expects a pointer but the binding passes a scalar"
        if desc.kind not in ("void", "?") and param.kind not in ("?",):
            if desc.kind != param.kind:
                return (
                    f"pointee width mismatch: POINTER({desc.kind}) vs "
                    f"C {param.kind}*"
                )
        return ""
    if desc.is_pointer:
        return "C expects a scalar but the binding passes a pointer"
    if desc.kind != param.kind and "?" not in (desc.kind, param.kind):
        return f"scalar width mismatch: ctypes {desc.kind} vs C {param.kind}"
    return ""


def _restype_mismatch(desc: Optional[CTypeDesc], export: CExport) -> str:
    if export.ret_kind == "void" and not export.ret_is_pointer:
        if desc is not None and desc.kind != "void":
            return "C returns void but the binding declares a value"
        return ""
    if desc is None:
        return ""
    if desc.kind == "void" and not desc.is_pointer:
        return f"C returns {export.ret_kind} but restype is None"
    if export.ret_is_pointer:
        if not desc.is_pointer:
            return "C returns a pointer but restype is a scalar"
        return ""
    if desc.is_pointer:
        return "C returns a scalar but restype is a pointer"
    if desc.kind != export.ret_kind and "?" not in (desc.kind, export.ret_kind):
        return f"ctypes {desc.kind} vs C {export.ret_kind}"
    return ""


def _check_fallback_twins(module: ModuleInfo) -> List[Finding]:
    findings: List[Finding] = []
    by_scope: Dict[Tuple[Optional[str], str], bool] = {}
    for fn in module.functions:
        by_scope[(fn.class_name, fn.name)] = True
    for fn in module.functions:
        if not fn.name.endswith("_native"):
            continue
        twin = fn.name[: -len("_native")] + "_python"
        if (fn.class_name, twin) in by_scope or (None, twin) in by_scope:
            continue
        findings.append(
            _emit(
                module,
                "NAT-003",
                getattr(fn.node, "lineno", 1),
                f"{fn.qualname}() has no pure-Python fallback twin "
                f"{twin}() — the parity tests have nothing to diff the "
                "kernel against",
            )
        )
    return findings
