"""Intraprocedural dataflow core: per-function CFG + reaching definitions.

This is the machinery under the CONC-* and DUR-* rule families.  It is a
*statement-level* control-flow graph — precise enough to answer the two
question shapes those rules need, cheap enough to run over the whole repo
on every lint:

1. **Ordering on all paths** — "does every path from this ``write`` to a
   normal function exit pass an ``os.fsync``?" (:meth:`CFG.path_avoiding`
   with the exit as target), and the dominator-flavoured dual "can this
   ``rename`` be reached from entry without passing an fsync?".
2. **Value provenance** — "what assignments can reach this use of
   ``t.inbox``?" (:class:`ReachingDefs`), so a rule can ask whether a
   queue passed to ``Process(...)`` was *freshly constructed* in this
   scope or inherited from a previous worker generation.

Design notes.  Exception flow is approximated the standard way: every
statement inside a ``try`` body gets an edge to each handler, ``raise``
jumps to the nearest matching construct or to the abnormal exit, and the
abnormal exit is distinct from the normal one — durability rules only
reason about *normal* exits (an exception is not an ack).  Names are
tracked as dotted paths (``t.inbox`` as well as ``seq``) because the
supervisor idiom mutates attributes of a handle object; anything fancier
(aliasing, containers) is deliberately out of scope.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "CFG",
    "CFGNode",
    "ReachingDefs",
    "build_cfg",
    "dotted_name",
    "assigned_paths",
]


def dotted_name(node: ast.expr) -> str:
    """``a.b.c`` for a Name/Attribute chain, ``""`` for anything else."""
    parts: List[str] = []
    cur: ast.expr = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return ""


def assigned_paths(target: ast.expr) -> Iterator[str]:
    """Dotted paths defined by one assignment target (tuples unpacked)."""
    if isinstance(target, (ast.Tuple, ast.List)):
        for elt in target.elts:
            yield from assigned_paths(elt)
    elif isinstance(target, ast.Starred):
        yield from assigned_paths(target.value)
    else:
        path = dotted_name(target)
        if path:
            yield path


@dataclass
class CFGNode:
    """One statement (or synthetic entry/exit marker) in the graph."""

    index: int
    stmt: Optional[ast.AST]
    kind: str = "stmt"  # "stmt" | "entry" | "exit" | "raise_exit"
    #: Dotted paths (re)defined by this statement.
    defs: Tuple[str, ...] = ()

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0) if self.stmt is not None else 0

    def own_exprs(self) -> Iterator[ast.AST]:
        """The AST fragments executed *at this node* (headers only).

        Compound statements (``if``/``while``/``with``/``try``) put their
        bodies in separate CFG nodes, so scanning a node for calls must
        not descend into them; nested function/class definitions are
        opaque (their bodies do not run here).
        """
        stmt = self.stmt
        if stmt is None:
            return
        if isinstance(stmt, (ast.If, ast.While)):
            yield stmt.test
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            yield stmt.target
            yield stmt.iter
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                yield item.context_expr
                if item.optional_vars is not None:
                    yield item.optional_vars
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                yield stmt.value
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                yield stmt.exc
            if stmt.cause is not None:
                yield stmt.cause
        elif isinstance(stmt, ast.Assert):
            yield stmt.test
            if stmt.msg is not None:
                yield stmt.msg
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.type is not None:
                yield stmt.type
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # opaque: the body runs elsewhere, if ever
        else:
            yield stmt

    def calls(self) -> Iterator[ast.Call]:
        """Every call executed at this node (headers only, see own_exprs)."""
        for expr in self.own_exprs():
            for sub in ast.walk(expr):
                if isinstance(sub, ast.Call):
                    yield sub


class CFG:
    """Statement-level control-flow graph of one function body."""

    def __init__(self, func: ast.AST) -> None:
        self.func = func
        self.nodes: List[CFGNode] = []
        self.succ: Dict[int, Set[int]] = {}
        self.entry = self._new_node(None, "entry")
        self.exit = self._new_node(None, "exit")
        self.raise_exit = self._new_node(None, "raise_exit")

    # -- construction ----------------------------------------------------

    def _new_node(self, stmt: Optional[ast.AST], kind: str = "stmt") -> int:
        idx = len(self.nodes)
        defs: Tuple[str, ...] = ()
        if stmt is not None:
            defs = tuple(_stmt_defs(stmt))
        self.nodes.append(CFGNode(idx, stmt, kind, defs))
        self.succ[idx] = set()
        return idx

    def _edge(self, a: int, b: int) -> None:
        self.succ[a].add(b)

    # -- queries -----------------------------------------------------------

    def statement_nodes(self) -> Iterator[CFGNode]:
        for node in self.nodes:
            if node.kind == "stmt" and node.stmt is not None:
                yield node

    def path_avoiding(
        self,
        start: int,
        target: int,
        blocked: Callable[[CFGNode], bool],
        *,
        include_start: bool = False,
    ) -> bool:
        """True if ``target`` is reachable from ``start`` without touching a
        node for which ``blocked`` holds.

        ``start`` itself is exempt from ``blocked`` unless
        ``include_start``; ``target`` is never tested against ``blocked``
        (reaching it at all is the answer).
        """
        if include_start and blocked(self.nodes[start]):
            return start == target
        seen = {start}
        frontier = [start]
        while frontier:
            cur = frontier.pop()
            for nxt in self.succ[cur]:
                if nxt == target:
                    return True
                if nxt in seen:
                    continue
                seen.add(nxt)
                if blocked(self.nodes[nxt]):
                    continue
                frontier.append(nxt)
        return False

    def every_path_passes(
        self, start: int, target: int, barrier: Callable[[CFGNode], bool]
    ) -> bool:
        """True if every ``start``→``target`` path crosses a barrier node."""
        return not self.path_avoiding(start, target, barrier)


def _stmt_defs(stmt: ast.AST) -> Iterator[str]:
    """Dotted paths (re)defined by one statement, shallowly."""
    if isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            yield stmt.name
        return
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            yield from assigned_paths(target)
    elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
        yield from assigned_paths(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield from assigned_paths(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                yield from assigned_paths(item.optional_vars)
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            if alias.name != "*":
                yield alias.asname or alias.name.split(".")[0]
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        yield stmt.name


@dataclass
class _Frame:
    """Loop / handler context while lowering statements into the graph."""

    #: Per enclosing loop: the set collecting its ``break`` nodes.
    break_sets: List[Set[int]] = field(default_factory=list)
    continue_to: List[int] = field(default_factory=list)
    #: First node of each live except-handler (innermost try last).
    handlers: List[List[int]] = field(default_factory=list)


def build_cfg(func: ast.AST) -> CFG:
    """Build the CFG of one (async) function definition."""
    cfg = CFG(func)
    frame = _Frame()
    body = getattr(func, "body", [])
    frontier = _lower_block(cfg, body, {cfg.entry}, frame)
    for idx in frontier:
        cfg._edge(idx, cfg.exit)
    return cfg


def _lower_block(
    cfg: CFG, stmts: Sequence[ast.stmt], frontier: Set[int], frame: _Frame
) -> Set[int]:
    """Lower a statement list; returns the dangling frontier."""
    for stmt in stmts:
        if not frontier:
            break  # unreachable code after return/raise/break
        frontier = _lower_stmt(cfg, stmt, frontier, frame)
    return frontier


def _attach(cfg: CFG, frontier: Set[int], idx: int, frame: _Frame) -> None:
    for prev in frontier:
        cfg._edge(prev, idx)
    # Any statement inside a try body may raise into the live handlers.
    for handler_heads in frame.handlers:
        for head in handler_heads:
            cfg._edge(idx, head)


def _lower_stmt(
    cfg: CFG, stmt: ast.stmt, frontier: Set[int], frame: _Frame
) -> Set[int]:
    if isinstance(stmt, (ast.If,)):
        idx = cfg._new_node(stmt)
        _attach(cfg, frontier, idx, frame)
        then_f = _lower_block(cfg, stmt.body, {idx}, frame)
        else_f = _lower_block(cfg, stmt.orelse, {idx}, frame) if stmt.orelse else {idx}
        return then_f | else_f

    if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
        head = cfg._new_node(stmt)
        _attach(cfg, frontier, head, frame)
        breaks: Set[int] = set()
        frame.break_sets.append(breaks)
        frame.continue_to.append(head)
        body_f = _lower_block(cfg, stmt.body, {head}, frame)
        for idx in body_f:
            cfg._edge(idx, head)  # back edge
        frame.break_sets.pop()
        frame.continue_to.pop()
        out: Set[int] = {head} | breaks
        if stmt.orelse:
            out = _lower_block(cfg, stmt.orelse, {head}, frame) | breaks
        return out

    if isinstance(stmt, ast.Try):
        # Handler head nodes exist before the body is lowered so body
        # statements can point at them.
        handler_heads: List[int] = []
        handler_nodes: List[Tuple[int, ast.ExceptHandler]] = []
        for handler in stmt.handlers:
            h_idx = cfg._new_node(handler)
            handler_heads.append(h_idx)
            handler_nodes.append((h_idx, handler))
        frame.handlers.append(handler_heads)
        body_f = _lower_block(cfg, stmt.body, frontier, frame)
        frame.handlers.pop()
        if stmt.orelse:
            body_f = _lower_block(cfg, stmt.orelse, body_f, frame)
        out = set(body_f)
        for h_idx, handler in handler_nodes:
            out |= _lower_block(cfg, handler.body, {h_idx}, frame)
        if stmt.finalbody:
            out = _lower_block(cfg, stmt.finalbody, out, frame)
        return out

    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        idx = cfg._new_node(stmt)
        _attach(cfg, frontier, idx, frame)
        return _lower_block(cfg, stmt.body, {idx}, frame)

    if isinstance(stmt, ast.Return):
        idx = cfg._new_node(stmt)
        _attach(cfg, frontier, idx, frame)
        cfg._edge(idx, cfg.exit)
        return set()

    if isinstance(stmt, ast.Raise):
        idx = cfg._new_node(stmt)
        _attach(cfg, frontier, idx, frame)
        if frame.handlers:
            for head in frame.handlers[-1]:
                cfg._edge(idx, head)
        else:
            cfg._edge(idx, cfg.raise_exit)
        return set()

    if isinstance(stmt, ast.Break):
        idx = cfg._new_node(stmt)
        _attach(cfg, frontier, idx, frame)
        if frame.break_sets:
            frame.break_sets[-1].add(idx)
        return set()

    if isinstance(stmt, ast.Continue):
        idx = cfg._new_node(stmt)
        _attach(cfg, frontier, idx, frame)
        if frame.continue_to:
            cfg._edge(idx, frame.continue_to[-1])
        return set()

    if isinstance(stmt, ast.Assert):
        idx = cfg._new_node(stmt)
        _attach(cfg, frontier, idx, frame)
        cfg._edge(idx, cfg.raise_exit)
        return {idx}

    # Plain statement (incl. nested def/class, which we do not descend into).
    idx = cfg._new_node(stmt)
    _attach(cfg, frontier, idx, frame)
    return {idx}


class ReachingDefs:
    """Classic forward may-analysis: which defs of a dotted path reach a use.

    ``defs_reaching(node, path)`` returns the set of CFG node indices whose
    statement (re)defined ``path`` last on *some* path to ``node``.  An
    empty set means no definition inside this function reaches it — the
    value came in from outside the scope (parameter, closure, attribute
    set elsewhere), which is exactly the "not freshly constructed here"
    signal CONC-003 keys on.
    """

    def __init__(self, cfg: CFG, param_names: Sequence[str] = ()) -> None:
        self.cfg = cfg
        # def site -> path it defines; the entry node "defines" parameters.
        self._in: Dict[int, Dict[str, Set[int]]] = {}
        all_defs: Dict[str, Set[int]] = {}
        for node in cfg.nodes:
            for path in node.defs:
                all_defs.setdefault(path, set()).add(node.index)
        out: Dict[int, Dict[str, Set[int]]] = {
            n.index: {} for n in cfg.nodes
        }
        preds: Dict[int, Set[int]] = {n.index: set() for n in cfg.nodes}
        for a, bs in cfg.succ.items():
            for b in bs:
                preds[b].add(a)
        work = [n.index for n in cfg.nodes]
        while work:
            idx = work.pop()
            merged: Dict[str, Set[int]] = {}
            for p in preds[idx]:
                for path, sites in out[p].items():
                    merged.setdefault(path, set()).update(sites)
            self._in[idx] = merged
            node = cfg.nodes[idx]
            new_out: Dict[str, Set[int]] = {
                k: set(v) for k, v in merged.items()
            }
            for path in node.defs:
                new_out[path] = {idx}
                # Redefining `a` kills knowledge of `a.b` (new object).
                for other in list(new_out):
                    if other.startswith(path + "."):
                        new_out[other] = {idx}
            if new_out != out[idx]:
                out[idx] = new_out
                work.extend(self.cfg.succ[idx])

    def defs_reaching(self, node_index: int, path: str) -> Set[int]:
        return set(self._in.get(node_index, {}).get(path, set()))
