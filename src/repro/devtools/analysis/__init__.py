"""Project-level static analysis behind reprolint's CONC/DUR/NAT rules.

Layout:

* :mod:`~repro.devtools.analysis.cfg` — per-function statement CFG,
  reaching definitions, and the two path queries (ordering-on-all-paths,
  value provenance) the rules are phrased in.
* :mod:`~repro.devtools.analysis.project` — the whole-tree view: import
  maps, function/method indexes, conservative call resolution, and the
  one-level :class:`~repro.devtools.analysis.project.FunctionSummary`.
* :mod:`~repro.devtools.analysis.conc` / :mod:`~.dur` / :mod:`~.nat` —
  the rule families.  Each exposes one entry point
  ``check_*(module, project) -> List[Finding]``; the driver in
  :mod:`repro.devtools.lint` builds a :class:`Project` over everything
  under lint and runs all three per module.
"""

from __future__ import annotations

from .cfg import CFG, CFGNode, ReachingDefs, build_cfg, dotted_name
from .conc import check_conc
from .dur import check_dur
from .nat import check_nat
from .project import (
    FunctionInfo,
    FunctionSummary,
    ImportMap,
    ModuleInfo,
    Project,
    is_durable_module,
)

__all__ = [
    "CFG",
    "CFGNode",
    "FunctionInfo",
    "FunctionSummary",
    "ImportMap",
    "ModuleInfo",
    "Project",
    "ReachingDefs",
    "build_cfg",
    "check_conc",
    "check_dur",
    "check_nat",
    "dotted_name",
    "is_durable_module",
]

#: The per-module analyzers the lint driver runs, in report order.
ANALYZERS = (check_conc, check_dur, check_nat)
