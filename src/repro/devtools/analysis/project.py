"""Project-wide view for the lint analyzers: modules, call graph, summaries.

A :class:`Project` parses every file under lint once and builds three
indexes the rule families share:

* **import map** per module (``np.random.default_rng`` →
  ``numpy.random.default_rng``), same convention as the single-file
  linter;
* **function index** — every (async) function/method, keyed by
  ``module:Qual.Name``, with its CFG and reaching-defs built lazily;
* **one-level call summaries** (:class:`FunctionSummary`) — the small
  set of facts a *caller's* rule check needs about a helper it calls:
  does it fsync on every normal exit, does it return a file handle it
  opened, does it forward which parameters into a fork boundary.  One
  level deep by design: summaries are computed from the callee's own
  body only, never recursively, so the analysis stays linear and its
  verdicts stay explainable.

Method-call resolution is deliberately conservative: ``t.wal.append(...)``
resolves to ``TenantWAL.append`` only because the receiver chain mentions
``wal`` and exactly one project class matching that hint defines
``append``.  When the hint is ambiguous or absent the call stays
unresolved and the rules treat it as opaque (no finding) — a static
analyzer for a bit-identity repo must never guess.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .cfg import CFG, ReachingDefs, build_cfg, dotted_name

__all__ = [
    "FunctionInfo",
    "FunctionSummary",
    "ImportMap",
    "ModuleInfo",
    "Project",
    "body_has_direct_fsync",
    "is_durable_module",
    "resolve_in_module",
]


class ImportMap:
    """Resolve local names to canonical dotted module paths."""

    def __init__(self, tree: ast.Module) -> None:
        self._aliases: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    full = alias.name if alias.asname else alias.name.split(".")[0]
                    self._aliases[local] = full
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def qualname(self, func: ast.expr) -> str:
        """Dotted name of a call target with its root import-expanded."""
        parts: List[str] = []
        node: ast.expr = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(self._aliases.get(node.id, node.id))
        else:
            return ""
        return ".".join(reversed(parts))


@dataclass
class FunctionSummary:
    """One-level facts about a function, as seen from a call site."""

    #: ``os.fsync`` (or ``<fh>.flush``-then-fsync) is called somewhere.
    calls_fsync: bool = False
    #: Every path from entry to a *normal* exit crosses an ``os.fsync``.
    fsyncs_all_exits: bool = False
    #: Some return value traces back to ``open()`` / ``os.fdopen()`` /
    #: ``<path>.open()`` — callers treat the result as a live file handle.
    returns_file_handle: bool = False
    #: Parameter attribute paths forwarded into a ``Process(...)`` spawn
    #: as queue-like arguments, e.g. ``("t.inbox", "t.outbox")``.
    spawn_queue_args: Tuple[str, ...] = ()
    #: Parameter names forwarded (directly) into a fork boundary.
    forwards_to_fork: Tuple[str, ...] = ()


@dataclass(eq=False)  # identity semantics: rule checkers keep these in sets
class FunctionInfo:
    """One function/method and its lazily-built analyses."""

    module: "ModuleInfo"
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    qualname: str  # e.g. "TenantWAL.append"
    class_name: Optional[str] = None
    _cfg: Optional[CFG] = None
    _reaching: Optional[ReachingDefs] = None
    _summary: Optional[FunctionSummary] = None

    @property
    def name(self) -> str:
        return getattr(self.node, "name", "")

    @property
    def params(self) -> List[str]:
        args = getattr(self.node, "args", None)
        if args is None:
            return []
        names = [a.arg for a in args.posonlyargs]
        names += [a.arg for a in args.args]
        names += [a.arg for a in args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    @property
    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.node)
        return self._cfg

    @property
    def reaching(self) -> ReachingDefs:
        if self._reaching is None:
            self._reaching = ReachingDefs(self.cfg, self.params)
        return self._reaching

    def summary(self) -> FunctionSummary:
        if self._summary is None:
            self._summary = _summarize(self)
        return self._summary


@dataclass
class ModuleInfo:
    """One parsed source file."""

    path: str  # display path (as given to the linter)
    real_path: Optional[Path]
    source: str
    tree: ast.Module
    imports: ImportMap
    #: Top-level and nested functions, in source order.
    functions: List[FunctionInfo] = field(default_factory=list)
    #: Class name -> attribute names assigned a threading/queue primitive.
    class_primitive_fields: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def stem(self) -> str:
        return Path(self.path).stem

    @property
    def dir_parts(self) -> Tuple[str, ...]:
        return tuple(Path(self.path).parts[:-1])


#: Constructors whose results must never cross a fork boundary (CONC-001),
#: and queue constructors (fork-safe by design, tracked for CONC-003).
THREAD_PRIMITIVE_CALLS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Event",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Barrier",
        "threading.local",
        "_thread.allocate_lock",
        "multiprocessing.shared_memory.SharedMemory",
    }
)

QUEUE_CALL_LEAVES = frozenset({"Queue", "JoinableQueue", "SimpleQueue"})


def is_queue_constructor(qual: str) -> bool:
    """``ctx.Queue(...)`` / ``multiprocessing.Queue(...)`` and friends."""
    return bool(qual) and qual.rsplit(".", 1)[-1] in QUEUE_CALL_LEAVES


def is_fork_spawn(call: ast.Call, imports: ImportMap) -> bool:
    """A call that starts a forked worker: ``Process(...)`` or pool submit."""
    qual = imports.qualname(call.func)
    leaf = qual.rsplit(".", 1)[-1] if qual else ""
    if leaf == "Process" and any(kw.arg == "target" for kw in call.keywords):
        return True
    if isinstance(call.func, ast.Attribute) and call.func.attr == "submit":
        recv = dotted_name(call.func.value).lower()
        return "pool" in recv or "executor" in recv
    return False


def spawn_payload_args(call: ast.Call) -> List[ast.expr]:
    """The expressions shipped to the child: Process args=(...) / submit args."""
    out: List[ast.expr] = []
    qualish = call.func
    leaf = qualish.attr if isinstance(qualish, ast.Attribute) else (
        qualish.id if isinstance(qualish, ast.Name) else ""
    )
    if leaf == "submit":
        out.extend(call.args[1:])
        out.extend(kw.value for kw in call.keywords if kw.arg)
        return out
    for kw in call.keywords:
        if kw.arg == "args" and isinstance(kw.value, (ast.Tuple, ast.List)):
            out.extend(kw.value.elts)
        elif kw.arg == "kwargs" and isinstance(kw.value, ast.Dict):
            out.extend(v for v in kw.value.values if v is not None)
    return out


def spawn_target(call: ast.Call) -> Optional[ast.expr]:
    """The ``target=`` expression of a Process spawn (or submit's fn)."""
    for kw in call.keywords:
        if kw.arg == "target":
            return kw.value
    if isinstance(call.func, ast.Attribute) and call.func.attr == "submit":
        return call.args[0] if call.args else None
    return None


def _is_fsync_call(call: ast.Call, imports: ImportMap) -> bool:
    return imports.qualname(call.func) == "os.fsync"


def _is_open_call(call: ast.Call, imports: ImportMap) -> bool:
    qual = imports.qualname(call.func)
    if qual in ("open", "os.fdopen", "io.open"):
        return True
    return isinstance(call.func, ast.Attribute) and call.func.attr == "open"


def body_has_direct_fsync(fn: FunctionInfo) -> bool:
    """``os.fsync`` appears textually in the function's own body.

    This is the *one level* of the call summaries: when summarizing a
    caller, a call to a same-module helper whose body directly fsyncs
    (``write_atomic``, ``_fsync_dir``) counts as an fsync site, but the
    helper's own callees are never chased.
    """
    imports = fn.module.imports
    for sub in ast.walk(fn.node):
        if isinstance(sub, ast.Call) and _is_fsync_call(sub, imports):
            return True
    return False


def resolve_in_module(module: ModuleInfo, call: ast.Call) -> Optional[FunctionInfo]:
    """``helper(...)`` / ``self._helper(...)`` resolved within one module."""
    func = call.func
    name = ""
    if isinstance(func, ast.Name):
        name = func.id
    elif isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id in ("self", "cls"):
            name = func.attr
    if not name:
        return None
    candidates = [f for f in module.functions if f.name == name]
    if len(candidates) == 1:
        return candidates[0]
    return None


def _summarize(fn: FunctionInfo) -> FunctionSummary:
    imports = fn.module.imports
    cfg = fn.cfg
    calls_fsync = False
    fsync_nodes: Set[int] = set()
    handle_names: Set[str] = set()
    spawn_queue_args: List[str] = []
    forwards: List[str] = []
    params = set(fn.params)

    for node in cfg.statement_nodes():
        for call in node.calls():
            if _is_fsync_call(call, imports):
                calls_fsync = True
                fsync_nodes.add(node.index)
            else:
                callee = resolve_in_module(fn.module, call)
                if callee is not None and callee is not fn and body_has_direct_fsync(callee):
                    calls_fsync = True
                    fsync_nodes.add(node.index)
            if _is_open_call(call, imports):
                for path in node.defs:
                    handle_names.add(path)
            if is_fork_spawn(call, imports):
                for arg in spawn_payload_args(call):
                    path = dotted_name(arg)
                    if not path:
                        continue
                    root = path.split(".")[0]
                    if root in params:
                        if _queueish(path):
                            spawn_queue_args.append(path)
                        forwards.append(path)

    fsyncs_all_exits = bool(fsync_nodes) and cfg.every_path_passes(
        cfg.entry, cfg.exit, lambda n: n.index in fsync_nodes
    )

    returns_handle = False
    for node in cfg.statement_nodes():
        stmt = node.stmt
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            path = dotted_name(stmt.value)
            if not path:
                continue
            if path in handle_names:
                returns_handle = True
                continue
            for def_idx in fn.reaching.defs_reaching(node.index, path):
                def_node = cfg.nodes[def_idx]
                for call in def_node.calls():
                    if _is_open_call(call, imports):
                        returns_handle = True

    return FunctionSummary(
        calls_fsync=calls_fsync,
        fsyncs_all_exits=fsyncs_all_exits,
        returns_file_handle=returns_handle,
        spawn_queue_args=tuple(spawn_queue_args),
        forwards_to_fork=tuple(forwards),
    )


def _queueish(path: str) -> bool:
    """Identifier smells like a worker queue (``t.inbox``, ``out_q`` ...)."""
    tokens = path.lower().replace("_", ".").split(".")
    return any(
        tok in ("queue", "inbox", "outbox", "mailbox", "q") for tok in tokens
    )


class Project:
    """Every module under lint, parsed once, with shared indexes."""

    def __init__(self) -> None:
        self.modules: List[ModuleInfo] = []
        self._methods: Dict[str, List[FunctionInfo]] = {}
        self._functions_by_name: Dict[str, List[FunctionInfo]] = {}

    # -- construction ----------------------------------------------------

    @classmethod
    def from_sources(
        cls, sources: Sequence[Tuple[str, Optional[Path], str, ast.Module]]
    ) -> "Project":
        """Build from pre-parsed ``(display_path, real_path, source, tree)``."""
        project = cls()
        for display, real, source, tree in sources:
            project.add_module(display, real, source, tree)
        return project

    def add_module(
        self,
        display_path: str,
        real_path: Optional[Path],
        source: str,
        tree: ast.Module,
    ) -> ModuleInfo:
        module = ModuleInfo(
            path=display_path,
            real_path=real_path,
            source=source,
            tree=tree,
            imports=ImportMap(tree),
        )
        self._index_functions(module)
        self._index_classes(module)
        self.modules.append(module)
        return module

    def _index_functions(self, module: ModuleInfo) -> None:
        def visit(node: ast.AST, qual_prefix: str, class_name: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = (
                        f"{qual_prefix}.{child.name}" if qual_prefix else child.name
                    )
                    info = FunctionInfo(
                        module=module,
                        node=child,
                        qualname=qual,
                        class_name=class_name,
                    )
                    module.functions.append(info)
                    self._functions_by_name.setdefault(child.name, []).append(info)
                    if class_name is not None:
                        self._methods.setdefault(child.name, []).append(info)
                    visit(child, qual, None)
                elif isinstance(child, ast.ClassDef):
                    cq = f"{qual_prefix}.{child.name}" if qual_prefix else child.name
                    visit(child, cq, child.name)

        visit(module.tree, "", None)

    def _index_classes(self, module: ModuleInfo) -> None:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            fields: Set[str] = set()
            for sub in ast.walk(node):
                value: Optional[ast.expr] = None
                names: List[str] = []
                if isinstance(sub, ast.Assign):
                    value = sub.value
                    for tgt in sub.targets:
                        path = dotted_name(tgt)
                        if path:
                            names.append(path.split(".")[-1])
                elif isinstance(sub, ast.AnnAssign):
                    value = sub.value
                    path = dotted_name(sub.target)
                    if path:
                        names.append(path.split(".")[-1])
                    # dataclass `field(default_factory=threading.RLock)`
                    if value is None and sub.annotation is not None:
                        ann = _annotation_text(sub.annotation)
                        if _primitive_annotation(ann):
                            fields.update(names)
                if value is not None and names:
                    if self._constructs_primitive(module, value):
                        fields.update(names)
            if fields:
                module.class_primitive_fields[node.name] = fields

    def _constructs_primitive(self, module: ModuleInfo, value: ast.expr) -> bool:
        for sub in ast.walk(value):
            if isinstance(sub, ast.Call):
                qual = module.imports.qualname(sub.func)
                if qual in THREAD_PRIMITIVE_CALLS:
                    return True
                # dataclasses.field(default_factory=threading.RLock)
                for kw in sub.keywords:
                    if kw.arg == "default_factory":
                        fq = module.imports.qualname(kw.value) if isinstance(
                            kw.value, (ast.Name, ast.Attribute)
                        ) else ""
                        if fq in THREAD_PRIMITIVE_CALLS:
                            return True
        return False

    # -- lookups -----------------------------------------------------------

    def functions_in(self, module: ModuleInfo) -> Iterator[FunctionInfo]:
        yield from module.functions

    def function_named(self, name: str) -> List[FunctionInfo]:
        """Every project function with this bare name."""
        return list(self._functions_by_name.get(name, []))

    def resolve_local_call(
        self, module: ModuleInfo, call: ast.Call
    ) -> Optional[FunctionInfo]:
        """Resolve ``helper(...)`` / ``self._helper(...)`` within a module."""
        return resolve_in_module(module, call)

    def resolve_method_call(
        self, call: ast.Call, *, durable_only: bool = False
    ) -> Optional[FunctionInfo]:
        """Resolve ``recv.method(...)`` by receiver-hint + uniqueness.

        The receiver chain's identifiers must overlap the defining class's
        lowercase name (``t.wal.append`` → ``TenantWAL``), and exactly one
        candidate may match; otherwise the call stays unresolved.
        """
        if not isinstance(call.func, ast.Attribute):
            return None
        method = call.func.attr
        recv = dotted_name(call.func.value)
        if not recv:
            return None
        tokens = {tok for tok in recv.lower().split(".") if len(tok) >= 3}
        if not tokens:
            return None
        matches: List[FunctionInfo] = []
        for cand in self._methods.get(method, []):
            cls = (cand.class_name or "").lower()
            if durable_only and not _durable_module(cand.module):
                continue
            if any(tok in cls for tok in tokens):
                matches.append(cand)
        if len(matches) == 1:
            return matches[0]
        return None


#: Module scope for the DUR-* family: the WAL/snapshot/checkpoint protocol
#: files plus everything under a ``service`` directory.
DURABLE_STEMS = frozenset({"wal", "snapshot", "snapshots", "checkpoint"})


def _durable_module(module: ModuleInfo) -> bool:
    return module.stem in DURABLE_STEMS or "service" in module.dir_parts


def is_durable_module(module: ModuleInfo) -> bool:
    """Public alias used by the DUR checker."""
    return _durable_module(module)


def _annotation_text(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - exotic annotation
        return ""


def _primitive_annotation(text: str) -> bool:
    lowered = text.lower()
    return any(
        tok in lowered
        for tok in ("rlock", "threading.lock", "condition", "sharedmemory")
    )
