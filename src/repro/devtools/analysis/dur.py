"""DUR-*: durability-ordering rules for the WAL/snapshot/checkpoint protocol.

The service's contract is *acked means durable*: an ingest ack, a
snapshot rename, or a checkpoint row must never be un-happened by a
crash.  Mechanically that is three orderings, checked here on the CFG:

* **DUR-001** — data fsync dominates every rename-into-place.  Renaming
  an unfsynced tempfile publishes a name whose *contents* may still be
  in the page cache; a crash leaves a verifiable-looking path holding
  garbage.  ``every path entry → rename must cross an fsync``.
* **DUR-002** — no normal exit is reachable from a durable write without
  crossing an fsync.  Returning (= acking) after ``fh.write`` but before
  ``os.fsync`` means the ack can outlive the data.  Exception exits are
  exempt: raising is not an ack.
* **DUR-003** — creating or renaming a file must be followed by a
  *directory* fsync somewhere before exit.  ``os.fsync(fh)`` persists the
  bytes, not the directory entry; after a host crash the file itself can
  vanish.  This rule is a reachability check (is a dir-fsync reachable at
  all?) rather than an all-paths check, so the cheap idiom "fsync the
  directory only when the open actually created the file" stays legal.

Scope: modules whose stem is wal/snapshot/checkpoint or that live under a
``service`` directory (:func:`~.project.is_durable_module`).  File
handles are traced by provenance, not name: a receiver counts as durable
only when its reaching definitions include an ``open()`` (or a local
helper whose summary says it returns a handle it opened), so
``sys.stderr.write`` and socket writes never trip the rules.
"""

from __future__ import annotations

import ast
from typing import Callable, List, Optional, Set

from ..findings import Finding, RULES
from .cfg import CFG, CFGNode, dotted_name
from .project import (
    FunctionInfo,
    ModuleInfo,
    Project,
    body_has_direct_fsync,
    is_durable_module,
    resolve_in_module,
)

__all__ = ["check_dur"]

#: Method names that ack/flush durable state when resolved to a class in a
#: durable module; used for the cross-object leg of DUR-002.
_DURABLE_METHOD_LEAVES = frozenset({"append", "save", "write", "commit"})

#: Receiver-chain tokens that mark a rename receiver as filesystem-ish
#: (so ``some_string.replace(...)`` is never mistaken for a file rename).
_PATHISH_TOKENS = ("path", "tmp", "file", "dest", "dst", "seg", "snap")


def _emit(module: ModuleInfo, rule_id: str, node: ast.AST, message: str) -> Finding:
    rule = RULES[rule_id]
    lineno = getattr(node, "lineno", 1)
    lines = module.source.splitlines()
    snippet = lines[lineno - 1].strip() if 1 <= lineno <= len(lines) else ""
    return Finding(
        rule=rule_id,
        severity=rule.severity,
        path=module.path,
        line=lineno,
        col=getattr(node, "col_offset", 0) + 1,
        message=message,
        fix_hint=rule.fix_hint,
        snippet=snippet,
        end_line=getattr(node, "end_lineno", lineno) or lineno,
    )


def check_dur(module: ModuleInfo, project: Project) -> List[Finding]:
    if not is_durable_module(module):
        return []
    findings: List[Finding] = []
    for fn in module.functions:
        findings.extend(_check_function(module, project, fn))
    return findings


def _check_function(
    module: ModuleInfo, project: Project, fn: FunctionInfo
) -> List[Finding]:
    findings: List[Finding] = []
    cfg = fn.cfg

    strict = _strict_fsync_predicate(module, project, fn)
    dir_fsync = _dir_fsync_predicate(module, project, fn)

    rename_nodes: List[CFGNode] = []
    create_nodes: List[CFGNode] = []
    write_nodes: List[CFGNode] = []
    unfenced_calls: List[CFGNode] = []

    for node in cfg.statement_nodes():
        for call in node.calls():
            if _is_rename_call(call, module):
                rename_nodes.append(node)
                create_nodes.append(node)  # rename also creates a dir entry
            elif _is_creating_open(call, module):
                create_nodes.append(node)
            elif _is_durable_write(call, module, fn, node):
                write_nodes.append(node)
            else:
                callee = _resolved_durable_callee(call, module, project)
                if callee is not None:
                    summary = callee.summary()
                    if not summary.fsyncs_all_exits:
                        unfenced_calls.append(node)

    # DUR-001: fsync dominates the rename.
    for node in rename_nodes:
        if cfg.path_avoiding(cfg.entry, node.index, strict):
            findings.append(
                _emit(
                    module,
                    "DUR-001",
                    node.stmt if node.stmt is not None else ast.Pass(),
                    "rename-into-place is reachable without an os.fsync of "
                    "the data: a crash can publish a name whose contents "
                    "never left the page cache",
                )
            )

    # DUR-002: no normal exit after an unfsynced durable write.
    for node in write_nodes:
        if cfg.path_avoiding(node.index, cfg.exit, strict):
            findings.append(
                _emit(
                    module,
                    "DUR-002",
                    node.stmt if node.stmt is not None else ast.Pass(),
                    "a normal return (= ack) is reachable after this durable "
                    "write with no os.fsync in between — the ack can outlive "
                    "the data",
                )
            )
    for node in unfenced_calls:
        if cfg.path_avoiding(node.index, cfg.exit, strict):
            findings.append(
                _emit(
                    module,
                    "DUR-002",
                    node.stmt if node.stmt is not None else ast.Pass(),
                    "this durable call does not fsync on all of its exits "
                    "and no fsync fences it before a normal return here",
                )
            )

    # DUR-003: a directory fsync must be reachable after every create/rename.
    for node in create_nodes:
        if not _reaches(cfg, node.index, dir_fsync):
            findings.append(
                _emit(
                    module,
                    "DUR-003",
                    node.stmt if node.stmt is not None else ast.Pass(),
                    "a new directory entry is created here but no directory "
                    "fsync is reachable before exit — after a host crash the "
                    "file itself can vanish",
                )
            )
    return findings


# ----------------------------------------------------------------------
# barrier predicates
# ----------------------------------------------------------------------


def _strict_fsync_predicate(
    module: ModuleInfo, project: Project, fn: FunctionInfo
) -> Callable[[CFGNode], bool]:
    """Node performs a data fsync: direct ``os.fsync``, a same-module helper
    that directly fsyncs, or a resolved durable method that fsyncs on all
    of its exits (one level, by design)."""

    def barrier(node: CFGNode) -> bool:
        for call in node.calls():
            qual = module.imports.qualname(call.func)
            if qual == "os.fsync":
                return True
            callee = resolve_in_module(module, call)
            if callee is not None and callee is not fn and body_has_direct_fsync(callee):
                return True
            resolved = project.resolve_method_call(call, durable_only=True)
            if resolved is not None and resolved.summary().fsyncs_all_exits:
                return True
        return False

    return barrier


def _dir_fsync_predicate(
    module: ModuleInfo, project: Project, fn: FunctionInfo
) -> Callable[[CFGNode], bool]:
    """Node plausibly fsyncs a *directory* entry, not just file data.

    ``os.fsync(fh.fileno())`` persists bytes, never the directory entry,
    so a direct ``os.fsync`` only counts when its argument is NOT a
    ``.fileno()`` of a written handle (``os.fsync(fd)`` on a directory fd
    does count).  Helper idioms count too: any call whose name leaf
    mentions ``fsync`` (``_fsync_dir`` — local or imported), a same-module
    helper that directly fsyncs, or a resolved durable method whose
    summary fsyncs (``write_atomic`` does its own dir fsync)."""

    def barrier(node: CFGNode) -> bool:
        for call in node.calls():
            qual = module.imports.qualname(call.func)
            leaf = qual.rsplit(".", 1)[-1] if qual else ""
            if qual == "os.fsync":
                arg = call.args[0] if call.args else None
                data_only = (
                    isinstance(arg, ast.Call)
                    and isinstance(arg.func, ast.Attribute)
                    and arg.func.attr == "fileno"
                )
                if not data_only:
                    return True
                continue
            if "fsync" in leaf.lower():
                return True
            callee = resolve_in_module(module, call)
            if callee is not None and callee is not fn and body_has_direct_fsync(callee):
                return True
            resolved = project.resolve_method_call(call, durable_only=True)
            if resolved is not None and resolved.summary().calls_fsync:
                return True
        return False

    return barrier


def _reaches(cfg: CFG, start: int, pred: Callable[[CFGNode], bool]) -> bool:
    """Is a node satisfying ``pred`` reachable from ``start`` (exclusive)?"""
    seen: Set[int] = {start}
    frontier = [start]
    while frontier:
        cur = frontier.pop()
        for nxt in cfg.succ[cur]:
            if nxt in seen:
                continue
            seen.add(nxt)
            if pred(cfg.nodes[nxt]):
                return True
            frontier.append(nxt)
    return False


# ----------------------------------------------------------------------
# event detection
# ----------------------------------------------------------------------


def _is_rename_call(call: ast.Call, module: ModuleInfo) -> bool:
    qual = module.imports.qualname(call.func)
    if qual in ("os.rename", "os.replace"):
        return True
    if isinstance(call.func, ast.Attribute) and call.func.attr in (
        "rename",
        "replace",
    ):
        recv = dotted_name(call.func.value).lower()
        if not recv:
            return False
        tokens = recv.replace("_", ".").split(".")
        return any(
            any(mark in tok for mark in _PATHISH_TOKENS) for tok in tokens
        )
    return False


def _is_creating_open(call: ast.Call, module: ModuleInfo) -> bool:
    """An ``open`` that can create a directory entry (mode has w/x/a)."""
    qual = module.imports.qualname(call.func)
    mode: Optional[ast.expr] = None
    if qual in ("open", "io.open"):
        if len(call.args) >= 2:
            mode = call.args[1]
    elif isinstance(call.func, ast.Attribute) and call.func.attr == "open":
        if call.args:
            mode = call.args[0]
    else:
        return False
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
        return False
    return bool(set(mode.value) & {"w", "x", "a"})


def _is_durable_write(
    call: ast.Call, module: ModuleInfo, fn: FunctionInfo, node: CFGNode
) -> bool:
    """``fh.write(...)`` where ``fh`` provably came from an ``open``."""
    if not isinstance(call.func, ast.Attribute):
        return False
    if call.func.attr not in ("write", "writelines"):
        return False
    recv = dotted_name(call.func.value)
    if not recv or recv.split(".", 1)[0] == "sys":
        return False
    for def_idx in fn.reaching.defs_reaching(node.index, recv):
        def_node = fn.cfg.nodes[def_idx]
        for dcall in def_node.calls():
            qual = module.imports.qualname(dcall.func)
            if qual in ("open", "os.fdopen", "io.open"):
                return True
            if isinstance(dcall.func, ast.Attribute) and dcall.func.attr == "open":
                return True
            callee = resolve_in_module(module, dcall)
            if callee is not None and callee.summary().returns_file_handle:
                return True
    return False


def _resolved_durable_callee(
    call: ast.Call, module: ModuleInfo, project: Project
) -> Optional[FunctionInfo]:
    """The durable-module method this call provably lands on, if its leaf
    is one of the ack-ish names."""
    if not isinstance(call.func, ast.Attribute):
        return None
    if call.func.attr not in _DURABLE_METHOD_LEAVES:
        return None
    return project.resolve_method_call(call, durable_only=True)
