"""Shared reprolint vocabulary: rules, severities, findings.

Split out of :mod:`repro.devtools.lint` so the project-level analyzers in
:mod:`repro.devtools.analysis` can emit :class:`Finding`\\ s without a
circular import — ``lint`` drives the analyzers, and both sides speak this
module's types.  The rule *registry* also lives here so ``--list-rules``,
the docs catalog and the JSON schema all read from one table.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Tuple

__all__ = [
    "Finding",
    "RULES",
    "Rule",
    "SEVERITIES",
    "SEVERITY_RANK",
]

#: Severity names in increasing order of badness.
SEVERITIES: Tuple[str, ...] = ("info", "warning", "error")

SEVERITY_RANK: Dict[str, int] = {name: i for i, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class Rule:
    """A reprolint rule: stable id, severity, and a fix hint shown inline."""

    id: str
    severity: str
    summary: str
    fix_hint: str


RULES: Dict[str, Rule] = {
    r.id: r
    for r in (
        # -- determinism / randomness plumbing --------------------------
        Rule(
            "RNG-001",
            "error",
            "unseeded or legacy global NumPy randomness in library code",
            "thread an `rng` argument through repro._util.ensure_rng instead",
        ),
        Rule(
            "RNG-002",
            "error",
            "randomness constructed outside the ensure_rng entry point",
            "accept `rng` and normalize it with ensure_rng(rng); seed "
            "random.Random from int(ensure_rng(rng).integers(...))",
        ),
        Rule(
            "SHM-001",
            "error",
            "shared-memory segment lifecycle outside the cleanup contract",
            "register created segments with the cleanup registry and guard "
            "unlink() behind an owner-PID check",
        ),
        Rule(
            "DET-001",
            "error",
            "wall clock or OS entropy inside a model path",
            "model code must be a pure function of the trace and the seed; "
            "pass timestamps/randomness in from the caller",
        ),
        Rule(
            "PY-001",
            "error",
            "mutable default argument",
            "default to None and construct the container inside the function",
        ),
        Rule(
            "PY-002",
            "warning",
            "__all__ drift between a module and a package re-export",
            "add the name to the module's __all__ (or stop re-exporting it)",
        ),
        # -- fork / concurrency safety (CONC-*) --------------------------
        Rule(
            "CONC-001",
            "error",
            "thread-sync primitive or lock-holding object captured across "
            "a fork boundary",
            "pass plain data (or an mp.Queue / shm spec) to the worker and "
            "rebuild locks on the child side",
        ),
        Rule(
            "CONC-002",
            "error",
            "worker-side code mutates supervisor-owned state",
            "a forked worker's writes are invisible to the parent: send the "
            "change back over the outbox queue instead",
        ),
        Rule(
            "CONC-003",
            "error",
            "queue object reused across worker generations",
            "a SIGKILLed worker can die holding the queue's shared reader "
            "lock; construct fresh Queue objects before respawning",
        ),
        # -- durability ordering (DUR-*) ----------------------------------
        Rule(
            "DUR-001",
            "error",
            "rename-into-place not preceded by an fsync of the data on "
            "every path",
            "write to a tempfile, flush + os.fsync it, and only then "
            "os.rename over the final name",
        ),
        Rule(
            "DUR-002",
            "error",
            "ack/return reachable after a durable write with no fsync in "
            "between",
            "flush + os.fsync the handle before every return that callers "
            "treat as an ack (the ack means durable, not buffered)",
        ),
        Rule(
            "DUR-003",
            "error",
            "file created or renamed without fsyncing its directory",
            "os.fsync an O_RDONLY fd of the parent directory so the new "
            "directory entry itself survives a host crash",
        ),
        # -- native-kernel contract (NAT-*) --------------------------------
        Rule(
            "NAT-001",
            "error",
            "ctypes binding disagrees with the C prototype",
            "make argtypes/restype match the C signature in arity, integer "
            "width and pointer-ness (c_void_p matches any pointer)",
        ),
        Rule(
            "NAT-002",
            "error",
            "exported C symbol with no ctypes binding",
            "bind the symbol (argtypes + restype) or mark the C function "
            "static; unbound exports have no checked contract",
        ),
        Rule(
            "NAT-003",
            "error",
            "native entry point without a pure-Python fallback twin",
            "every *_native function needs a *_python sibling that consumes "
            "the same draws and produces bit-identical results",
        ),
    )
}


@dataclass(frozen=True)
class Finding:
    """One rule violation anchored at ``path:line:col``.

    ``end_line`` is the last line of the flagged statement (0 when
    unknown); suppression comments may sit on any line of that span.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    fix_hint: str
    snippet: str = ""
    end_line: int = 0

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselines: survives pure line-number drift."""
        basis = f"{self.path}|{self.rule}|{self.snippet.strip()}"
        return hashlib.sha1(basis.encode("utf-8")).hexdigest()[:16]

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "end_line": self.end_line,
            "message": self.message,
            "fix_hint": self.fix_hint,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }
