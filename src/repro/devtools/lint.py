"""reprolint — AST-based determinism & shm-safety analyzer for this repo.

The reproduction's headline guarantees rest on conventions that no general
linter knows about: KRR is statistically equivalent to K-LRU only under
correctly *seeded* randomness, sweep recovery is bit-identical only when
every draw is derived from the one blessed RNG entry point
(:func:`repro._util.ensure_rng`), and shared-memory segments survive crash
paths only when their creators register with the cleanup registry in
:mod:`repro.engine.shm`.  ``reprolint`` machine-enforces those invariants
with repo-specific AST checks.

Rule catalog (see ``docs/LINTING.md`` for the full rationale):

========  ========  ==========================================================
id        severity  what it flags
========  ========  ==========================================================
RNG-001   error     unseeded ``np.random.default_rng()`` or legacy module-
                    level ``np.random.<dist>()`` calls in library code
RNG-002   error     randomness plumbed around ``ensure_rng``: a function with
                    an ``rng``/``seed`` parameter calling
                    ``np.random.default_rng`` directly; ``random.Random(...)``
                    seeded by anything other than an ``ensure_rng`` draw; a
                    public function constructing randomness with no
                    ``rng``/``seed`` parameter at all
SHM-001   error     ``SharedMemory(create=True)`` in a scope with no cleanup-
                    registry registration; ``.unlink()`` in a scope with no
                    owner-PID guard
DET-001   error     wall-clock / OS-entropy reads (``time.time``,
                    ``datetime.now``, ``os.urandom`` ...) inside model paths
                    (``core/``, ``stack/``, ``simulator/``)
PY-001    error     mutable default arguments
PY-002    warning   ``__all__`` drift: a name re-exported by a package
                    ``__init__`` missing from the source module's ``__all__``
CONC-001  error     lock/SharedMemory-holding objects shipped across a fork
                    boundary (``Process``/pool submit), incl. closures
CONC-002  error     worker-side mutation of supervisor-owned state
CONC-003  error     queue object reused across worker generations (the
                    SIGKILL reader-lock wedge)
DUR-001   error     rename-into-place reachable without a prior data fsync
DUR-002   error     normal return (= ack) reachable after a durable write
                    with no fsync in between
DUR-003   error     file created/renamed with no directory fsync reachable
NAT-001   error     ctypes argtypes/restype disagreeing with the C prototype
NAT-002   error     exported C symbol with no ctypes binding
NAT-003   error     ``*_native`` entry point without a ``*_python`` twin
========  ========  ==========================================================

The RNG/SHM/DET/PY families are single-file AST checks; the CONC/DUR/NAT
families run on the project-level dataflow core in
:mod:`repro.devtools.analysis` (per-function CFGs, reaching definitions,
one-level call summaries over every file in the same lint invocation).

Any finding can be suppressed in place with a trailing comment::

    foo = np.random.default_rng()  # repro: allow[RNG-001]: CLI entropy is fine

The comment must name the rule id (several may be comma-separated) and
should carry a reason after the colon; for a multi-line statement the
comment may sit on any line of the statement's span.  ``--baseline``
freezes a set of pre-existing findings so only *new* violations gate CI.
"""

from __future__ import annotations

import ast
import fnmatch
import json
import re
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .findings import RULES, SEVERITIES, SEVERITY_RANK, Finding, Rule
from .analysis import ANALYZERS, Project

__all__ = [
    "RULES",
    "SEVERITIES",
    "Finding",
    "Rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "main",
    "render_json",
    "render_text",
    "write_baseline",
]

_SEVERITY_RANK = SEVERITY_RANK

#: Path components that mark deterministic "model path" code for DET-001.
DEFAULT_MODEL_DIRS: Tuple[str, ...] = ("core", "stack", "simulator")

#: Legacy module-level numpy.random distribution/seeding functions (RNG-001).
_NP_LEGACY_FNS = frozenset(
    {
        "seed", "random", "rand", "randn", "randint", "random_integers",
        "random_sample", "ranf", "sample", "choice", "bytes", "shuffle",
        "permutation", "beta", "binomial", "chisquare", "dirichlet",
        "exponential", "gamma", "geometric", "gumbel", "hypergeometric",
        "laplace", "logistic", "lognormal", "logseries", "multinomial",
        "multivariate_normal", "negative_binomial", "noncentral_chisquare",
        "noncentral_f", "normal", "pareto", "poisson", "power", "rayleigh",
        "standard_cauchy", "standard_exponential", "standard_gamma",
        "standard_normal", "standard_t", "triangular", "uniform", "vonmises",
        "wald", "weibull", "zipf",
    }
)

#: Wall-clock / OS-entropy call targets banned from model paths (DET-001).
_NONDETERMINISTIC_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "os.urandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.randbits",
    }
)

#: Call names that count as "registering with the cleanup registry" (SHM-001).
_SHM_REGISTRATION_NAMES = frozenset({"add", "register", "_install_cleanup_handlers"})

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_\-*,\s]+)\]")


# ----------------------------------------------------------------------
# Suppressions
# ----------------------------------------------------------------------


def _parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> rule ids suppressed by ``# repro: allow[...]``."""
    allowed: Dict[int, Set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        m = _ALLOW_RE.search(line)
        if m:
            rules = {tok.strip() for tok in m.group(1).split(",") if tok.strip()}
            allowed.setdefault(lineno, set()).update(rules)
    return allowed


def _apply_suppressions(source: str, findings: Sequence[Finding]) -> List[Finding]:
    """Drop findings whose statement span carries a matching allow-comment.

    A finding anchored on a multi-line statement (``end_line > line``) is
    suppressed by a comment on *any* line of that span — e.g. the closing
    bracket of a long ``argtypes`` list.
    """
    allowed = _parse_suppressions(source)
    kept: List[Finding] = []
    for f in findings:
        span = range(f.line, max(f.line, f.end_line) + 1)
        hit = any(
            f.rule in allowed.get(line, ()) or "*" in allowed.get(line, ())
            for line in span
        )
        if not hit:
            kept.append(f)
    return kept


# ----------------------------------------------------------------------
# Per-file AST analysis
# ----------------------------------------------------------------------


class _ImportTracker:
    """Resolve local names to canonical dotted module paths.

    ``import numpy as np`` makes ``np.random.default_rng`` resolve to
    ``numpy.random.default_rng``; ``from multiprocessing.shared_memory
    import SharedMemory as SM`` makes ``SM`` resolve to
    ``multiprocessing.shared_memory.SharedMemory``.
    """

    def __init__(self) -> None:
        self._aliases: Dict[str, str] = {}

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                full = alias.name if alias.asname else alias.name.split(".")[0]
                self._aliases[local] = full
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                self._aliases[local] = f"{node.module}.{alias.name}"

    def qualname(self, func: ast.expr) -> str:
        """Dotted name of a call target with its root import-expanded."""
        parts: List[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(self._aliases.get(node.id, node.id))
        else:
            return ""
        return ".".join(reversed(parts))


def _contains_call_to(node: ast.AST, name: str) -> bool:
    """True if any call to a function whose (last) name is ``name`` occurs."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            target = sub.func
            if isinstance(target, ast.Name) and target.id == name:
                return True
            if isinstance(target, ast.Attribute) and target.attr == name:
                return True
    return False


def _line_of(source_lines: Sequence[str], lineno: int) -> str:
    if 1 <= lineno <= len(source_lines):
        return source_lines[lineno - 1]
    return ""


class _FileChecker(ast.NodeVisitor):
    """Single-pass checker for every intra-file rule."""

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        *,
        model_dirs: Sequence[str] = DEFAULT_MODEL_DIRS,
    ) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.tree = tree
        self.imports = _ImportTracker()
        self.findings: List[Finding] = []
        parts = set(Path(path).parts)
        self.in_model_path = bool(parts.intersection(model_dirs))
        # Stack of enclosing function definitions (innermost last).
        self._func_stack: List[ast.AST] = []

    # -- plumbing ------------------------------------------------------

    def _emit(self, rule_id: str, node: ast.AST, message: str) -> None:
        rule = RULES[rule_id]
        lineno = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                rule=rule_id,
                severity=rule.severity,
                path=self.path,
                line=lineno,
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                fix_hint=rule.fix_hint,
                snippet=_line_of(self.lines, lineno).strip(),
            )
        )

    def run(self) -> List[Finding]:
        self.visit(self.tree)
        return self.findings

    # -- visitors ------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        self.imports.visit(node)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.visit(node)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)

    def _check_function(self, node: ast.AST) -> None:
        self._check_mutable_defaults(node)
        self._func_stack.append(node)
        self.generic_visit(node)
        self._func_stack.pop()
        if not self._func_stack:
            # Scope-level rules run once per outermost function.
            self._check_rng_plumbing(node)
            self._check_shm_scope(node)

    def visit_Call(self, node: ast.Call) -> None:
        qual = self.imports.qualname(node.func)
        self._check_rng_001(node, qual)
        self._check_det_001(node, qual)
        self.generic_visit(node)

    # -- RNG-001: unseeded / legacy global numpy randomness ------------

    def _check_rng_001(self, node: ast.Call, qual: str) -> None:
        if qual in ("numpy.random.default_rng", "numpy.random.Generator.default_rng"):
            unseeded = not node.args and not node.keywords
            explicit_none = bool(
                node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value is None
            )
            if unseeded or explicit_none:
                self._emit(
                    "RNG-001",
                    node,
                    "unseeded np.random.default_rng() in library code: every "
                    "draw must trace back to a caller-controlled seed",
                )
        elif qual.startswith("numpy.random."):
            leaf = qual.rsplit(".", 1)[1]
            if leaf in _NP_LEGACY_FNS:
                self._emit(
                    "RNG-001",
                    node,
                    f"legacy module-level np.random.{leaf}() draws from the "
                    "hidden global RandomState",
                )

    # -- DET-001: wall clock / OS entropy in model paths ---------------

    def _check_det_001(self, node: ast.Call, qual: str) -> None:
        if not self.in_model_path:
            return
        hit = qual in _NONDETERMINISTIC_CALLS
        if not hit and qual:
            # `from datetime import datetime; datetime.now()` resolves to
            # "datetime.datetime.now" via the tracker, but a bare
            # `datetime.now()` after `import datetime` needs the suffix check.
            hit = any(qual == full.split(".", 1)[1] for full in _NONDETERMINISTIC_CALLS if "." in full)
        if hit:
            self._emit(
                "DET-001",
                node,
                f"{qual}() inside a model path breaks replayability: results "
                "must be a pure function of (trace, seed)",
            )

    # -- RNG-002: bypassing ensure_rng ---------------------------------

    def _check_rng_plumbing(self, func: ast.AST) -> None:
        """Scope-level randomness-plumbing checks on an outermost function.

        Nested functions are inspected as part of their outermost parent so
        closures over an ``rng`` parameter don't misfire.
        """
        name = getattr(func, "name", "")
        if name == "ensure_rng":
            return  # the one blessed constructor
        params = self._param_names(func)
        # Closures may thread rng through a nested def; count those params too.
        for sub in ast.walk(func):
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                params.update(self._param_names(sub))
        has_rng_param = bool(params.intersection({"rng", "seed", "random_state"}))
        is_public = not name.startswith("_")

        for sub in ast.walk(func):
            if not isinstance(sub, ast.Call):
                continue
            qual = self.imports.qualname(sub.func)
            if qual == "numpy.random.default_rng" and has_rng_param:
                seeded_ok = bool(sub.args or sub.keywords)
                self._emit(
                    "RNG-002",
                    sub,
                    f"{name}() takes an rng/seed parameter but calls "
                    "np.random.default_rng directly"
                    + (" (seeded, but still bypasses the entry point)" if seeded_ok else ""),
                )
            elif qual == "random.Random":
                arg_ok = bool(sub.args) and _contains_call_to(sub.args[0], "ensure_rng")
                if not arg_ok:
                    self._emit(
                        "RNG-002",
                        sub,
                        "random.Random seeded outside ensure_rng; use "
                        "random.Random(int(ensure_rng(rng).integers(0, 2**63)))",
                    )
            elif (
                qual == "repro._util.ensure_rng"
                or (isinstance(sub.func, ast.Name) and sub.func.id == "ensure_rng")
            ):
                if is_public and not has_rng_param and not self._feeds_from_state(sub):
                    self._emit(
                        "RNG-002",
                        sub,
                        f"public function {name}() draws randomness but takes "
                        "no rng/seed parameter: callers cannot reproduce it",
                    )

    @staticmethod
    def _param_names(func: ast.AST) -> Set[str]:
        args = getattr(func, "args", None)
        if args is None:
            return set()
        names = {a.arg for a in args.args}
        names.update(a.arg for a in args.kwonlyargs)
        names.update(a.arg for a in args.posonlyargs)
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
        return names

    @staticmethod
    def _feeds_from_state(call: ast.Call) -> bool:
        """True if the call's arguments read held state (``self._rng`` etc.)."""
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            for sub in ast.walk(arg):
                if isinstance(sub, ast.Attribute):
                    return True
        return False

    # -- SHM-001: segment lifecycle ------------------------------------

    def _check_shm_scope(self, func: ast.AST) -> None:
        creates: List[ast.Call] = []
        unlinks: List[ast.Call] = []
        registered = False
        pid_guarded = False
        for sub in ast.walk(func):
            if isinstance(sub, ast.Call):
                qual = self.imports.qualname(sub.func)
                leaf = qual.rsplit(".", 1)[-1] if qual else ""
                if leaf == "SharedMemory" and any(
                    kw.arg == "create"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is True
                    for kw in sub.keywords
                ):
                    creates.append(sub)
                elif (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr == "unlink"
                    and self._is_shm_receiver(sub.func.value)
                ):
                    # Only segment-looking receivers: Path.unlink() is not ours.
                    unlinks.append(sub)
                elif leaf in _SHM_REGISTRATION_NAMES:
                    registered = True
            if isinstance(sub, ast.Compare):
                if self._mentions_pid(sub):
                    pid_guarded = True
        for call in creates:
            if not registered:
                self._emit(
                    "SHM-001",
                    call,
                    "SharedMemory(create=True) without registering the segment "
                    "in a cleanup registry: a crash here leaks /dev/shm until "
                    "reboot",
                )
        for call in unlinks:
            if not pid_guarded:
                self._emit(
                    "SHM-001",
                    call,
                    "unlink() without an owner-PID guard: a forked worker "
                    "inheriting this object would destroy the parent's live "
                    "segment",
                )

    @staticmethod
    def _is_shm_receiver(node: ast.expr) -> bool:
        """Identifier chain smells like a shared-memory segment handle."""
        for sub in ast.walk(node):
            ident = ""
            if isinstance(sub, ast.Attribute):
                ident = sub.attr
            elif isinstance(sub, ast.Name):
                ident = sub.id
            if any(tok in ident.lower() for tok in ("shm", "segment", "shared")):
                return True
        return False

    @staticmethod
    def _mentions_pid(node: ast.Compare) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                target = sub.func
                leaf = (
                    target.attr
                    if isinstance(target, ast.Attribute)
                    else target.id if isinstance(target, ast.Name) else ""
                )
                if leaf == "getpid":
                    return True
            if isinstance(sub, (ast.Attribute, ast.Name)):
                ident = sub.attr if isinstance(sub, ast.Attribute) else sub.id
                if "pid" in ident.lower():
                    return True
        return False

    # -- PY-001: mutable defaults --------------------------------------

    def _check_mutable_defaults(self, func: ast.AST) -> None:
        args = getattr(func, "args", None)
        if args is None:
            return
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                    ast.DictComp, ast.SetComp)):
                bad = True
            elif isinstance(default, ast.Call):
                qual = self.imports.qualname(default.func)
                bad = qual in {"list", "dict", "set", "bytearray", "collections.defaultdict"}
            else:
                bad = False
            if bad:
                self._emit(
                    "PY-001",
                    default,
                    f"mutable default argument in {getattr(func, 'name', '?')}(): "
                    "shared across every call",
                )


# ----------------------------------------------------------------------
# PY-002: cross-file __all__ drift
# ----------------------------------------------------------------------


def _module_all(tree: ast.Module) -> Optional[List[str]]:
    """The module's literal ``__all__`` list, or None if absent/dynamic."""
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == "__all__":
                if isinstance(value, (ast.List, ast.Tuple)):
                    names = []
                    for elt in value.elts:
                        if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                            names.append(elt.value)
                    return names
                return None
    return None


def _check_all_drift(
    init_path: Path, source: str, tree: ast.Module, display_path: str
) -> List[Finding]:
    """PY-002 for one package ``__init__.py``: re-exports vs module __all__."""
    findings: List[Finding] = []
    rule = RULES["PY-002"]
    lines = source.splitlines()
    pkg_dir = init_path.parent
    for node in tree.body:
        if not isinstance(node, ast.ImportFrom) or node.level != 1 or not node.module:
            continue
        # Only leaf sibling modules: `from .curve import MissRatioCurve`.
        mod_file = pkg_dir / (node.module.split(".")[0] + ".py")
        if not mod_file.is_file():
            continue
        try:
            mod_tree = ast.parse(mod_file.read_text(encoding="utf-8"))
        except SyntaxError:
            continue
        exported = _module_all(mod_tree)
        names = [a.name for a in node.names if a.name != "*"]
        if exported is None:
            findings.append(
                Finding(
                    rule="PY-002",
                    severity=rule.severity,
                    path=display_path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message=(
                        f"module {node.module!r} is re-exported here but "
                        "defines no __all__"
                    ),
                    fix_hint=rule.fix_hint,
                    snippet=_line_of(lines, node.lineno).strip(),
                )
            )
            continue
        for missing in (n for n in names if n not in exported):
            findings.append(
                Finding(
                    rule="PY-002",
                    severity=rule.severity,
                    path=display_path,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    message=(
                        f"{missing!r} is re-exported from {node.module!r} but "
                        f"missing from that module's __all__"
                    ),
                    fix_hint=rule.fix_hint,
                    snippet=_line_of(lines, node.lineno).strip(),
                )
            )
    return findings


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def _try_parse(source: str, path: str) -> "Tuple[Optional[ast.Module], List[Finding]]":
    try:
        return ast.parse(source, filename=path), []
    except SyntaxError as exc:
        return None, [
            Finding(
                rule="PARSE",
                severity="error",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"syntax error: {exc.msg}",
                fix_hint="fix the syntax error",
            )
        ]


def _lint_module(
    source: str,
    path: str,
    real_path: Optional[Path],
    tree: ast.Module,
    project: Project,
    *,
    model_dirs: Sequence[str] = DEFAULT_MODEL_DIRS,
) -> List[Finding]:
    """All rule families for one already-parsed module of ``project``."""
    findings = _FileChecker(path, source, tree, model_dirs=model_dirs).run()
    if real_path is not None and real_path.name == "__init__.py":
        findings.extend(_check_all_drift(real_path, source, tree, path))
    module = next((m for m in project.modules if m.path == path), None)
    if module is not None:
        for analyzer in ANALYZERS:
            findings.extend(analyzer(module, project))
    return _apply_suppressions(source, findings)


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    real_path: Optional[Path] = None,
    model_dirs: Sequence[str] = DEFAULT_MODEL_DIRS,
) -> List[Finding]:
    """Lint one module's source text; applies suppression comments.

    The project-level CONC/DUR/NAT analyzers run too, seeing a one-module
    project — cross-module call resolution only engages under
    :func:`lint_paths`, which shares one :class:`Project` across files.
    """
    tree, parse_findings = _try_parse(source, path)
    if tree is None:
        return parse_findings
    project = Project.from_sources([(path, real_path, source, tree)])
    return _lint_module(
        source, path, real_path, tree, project, model_dirs=model_dirs
    )


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Yield ``.py`` files under ``paths``, skipping caches and hidden dirs."""
    seen: Set[Path] = set()
    for root in paths:
        root = Path(root)
        candidates = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for p in candidates:
            if any(part.startswith(".") or part == "__pycache__" for part in p.parts):
                continue
            rp = p.resolve()
            if rp not in seen:
                seen.add(rp)
                yield p


def lint_paths(
    paths: Sequence[Path],
    *,
    model_dirs: Sequence[str] = DEFAULT_MODEL_DIRS,
    exclude: Sequence[str] = (),
) -> List[Finding]:
    """Lint every Python file under ``paths`` and return sorted findings.

    Two passes: every file is parsed into one shared :class:`Project`
    first (so the CONC/DUR/NAT analyzers can resolve calls and summaries
    across files), then each module is checked.
    """
    findings: List[Finding] = []
    parsed: List[Tuple[str, Path, str, ast.Module]] = []
    project = Project()
    for file in iter_python_files(paths):
        display = str(file)
        if any(fnmatch.fnmatch(display, pat) for pat in exclude):
            continue
        source = file.read_text(encoding="utf-8")
        tree, parse_findings = _try_parse(source, display)
        if tree is None:
            findings.extend(parse_findings)
            continue
        project.add_module(display, file, source, tree)
        parsed.append((display, file, source, tree))
    for display, file, source, tree in parsed:
        findings.extend(
            _lint_module(
                source, display, file, tree, project, model_dirs=model_dirs
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------


def load_baseline(path: Path) -> Dict[str, int]:
    """Load ``fingerprint -> count`` from a baseline JSON file."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    raw = data.get("fingerprints", {})
    return {str(k): int(v) for k, v in raw.items()}


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Freeze ``findings`` as the accepted baseline at ``path``."""
    counts: Dict[str, int] = {}
    for f in findings:
        counts[f.fingerprint] = counts.get(f.fingerprint, 0) + 1
    payload = {
        "version": 1,
        "tool": "reprolint",
        "count": len(findings),
        "fingerprints": counts,
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def apply_baseline(
    findings: Sequence[Finding], baseline: Dict[str, int]
) -> List[Finding]:
    """Drop findings frozen in ``baseline`` (counted per fingerprint)."""
    budget = dict(baseline)
    fresh: List[Finding] = []
    for f in findings:
        if budget.get(f.fingerprint, 0) > 0:
            budget[f.fingerprint] -= 1
        else:
            fresh.append(f)
    return fresh


# ----------------------------------------------------------------------
# Reports / CLI
# ----------------------------------------------------------------------


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report with file:line anchors and per-rule totals."""
    if not findings:
        return "reprolint: no findings"
    out = [
        f"{f.path}:{f.line}:{f.col} {f.rule} {f.severity}: {f.message}"
        f"\n    hint: {f.fix_hint}"
        for f in findings
    ]
    by_rule: Dict[str, int] = {}
    for f in findings:
        by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
    summary = ", ".join(f"{rid}={n}" for rid, n in sorted(by_rule.items()))
    out.append(f"reprolint: {len(findings)} finding(s) ({summary})")
    return "\n".join(out)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable report (stable schema, used as a CI artifact)."""
    by_sev = {s: 0 for s in SEVERITIES}
    for f in findings:
        by_sev[f.severity] = by_sev.get(f.severity, 0) + 1
    payload = {
        "tool": "reprolint",
        # v2: findings carry `end_line` (multi-line statement spans) and the
        # CONC/DUR/NAT rule families exist.  Fields are append-only.
        "version": 2,
        "summary": {"total": len(findings), **by_sev},
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (also reachable as ``repro lint``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="reprolint: repo-specific determinism & shm-safety checks",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="report format (json is the CI-artifact schema)",
    )
    parser.add_argument(
        "--severity", choices=list(SEVERITIES), default="info",
        help="minimum severity to report; exit is nonzero iff anything "
             "at/above this level remains (default: info)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="JSON baseline of frozen findings to ignore",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite --baseline with the current findings and exit 0",
    )
    parser.add_argument(
        "--exclude", action="append", default=[], metavar="GLOB",
        help="path glob(s) to skip (repeatable)",
    )
    parser.add_argument(
        "-o", "--output", default=None, metavar="PATH",
        help="also write the report to this file",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.id}  {rule.severity:8s} {rule.summary}")
            print(f"         fix: {rule.fix_hint}")
        return 0

    findings = lint_paths(
        [Path(p) for p in args.paths], exclude=tuple(args.exclude)
    )

    if args.baseline and args.update_baseline:
        write_baseline(Path(args.baseline), findings)
        print(f"reprolint: froze {len(findings)} finding(s) in {args.baseline}")
        return 0
    if args.baseline and Path(args.baseline).is_file():
        findings = apply_baseline(findings, load_baseline(Path(args.baseline)))

    threshold = _SEVERITY_RANK[args.severity]
    reported = [f for f in findings if _SEVERITY_RANK.get(f.severity, 2) >= threshold]

    report = render_json(reported) if args.format == "json" else render_text(reported)
    print(report)
    if args.output:
        Path(args.output).write_text(report + "\n")
    return 1 if reported else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
