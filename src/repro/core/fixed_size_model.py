"""Bounded-memory KRR: fixed-size (``s_max``) spatial sampling.

The fixed-rate model's memory grows with the workload's sampled working
set.  SHARDS's ``s_max`` mode caps it: track at most ``s_max`` distinct
objects; when a new object would exceed the cap, eject the tracked object
with the largest key hash and lower the threshold below it.  Ejected
objects leave the KRR stack (``KRRStack.remove``), and every recorded
distance is rescaled by the sampling rate *in effect when it was measured*.

This gives a hard O(s_max) memory bound for indefinite online operation —
the deployment mode §5.6's space numbers assume.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .._util import RngLike, check_positive, check_sampling_size, ensure_rng
from ..mrc.curve import MissRatioCurve
from ..sampling.spatial import FixedSizeSpatialSampler
from ..stack.histogram import ByteDistanceHistogram, DistanceHistogram
from ..workloads.trace import Trace
from .correction import DEFAULT_EXPONENT, corrected_k
from .krr import KRRStack

__all__ = [
    "FixedSizeKRRModel",
]



class FixedSizeKRRModel:
    """One-pass K-LRU MRC model with an O(s_max) memory bound.

    Parameters mirror :class:`~repro.core.model.KRRModel`; ``s_max`` caps
    the tracked distinct objects instead of a fixed sampling rate.
    """

    def __init__(
        self,
        k: int = 5,
        s_max: int = 8_192,
        strategy: str = "backward",
        correction: bool = True,
        correction_exponent: float = DEFAULT_EXPONENT,
        track_sizes: bool = False,
        byte_bin: int = 4096,
        seed: RngLike = None,
        hash_seed: int = 0,
    ) -> None:
        self.k = check_sampling_size(k)
        check_positive("s_max", s_max)
        self.effective_k = (
            corrected_k(self.k, correction_exponent) if correction else float(self.k)
        )
        self._stack = KRRStack(
            self.effective_k,
            strategy=strategy,
            rng=ensure_rng(seed),
            track_sizes=track_sizes,
        )
        self._sampler = FixedSizeSpatialSampler(
            s_max, seed=hash_seed, on_evict=self._stack.remove
        )
        self._track_sizes = bool(track_sizes)
        self._byte_bin = int(byte_bin)
        # (distance, byte_distance, rate at measurement time)
        self._raw: List[Tuple[int, float, float]] = []
        self.requests_seen = 0
        self.requests_sampled = 0

    # ------------------------------------------------------------------
    @property
    def rate(self) -> float:
        """Current (monotonically non-increasing) sampling rate."""
        return self._sampler.rate

    @property
    def tracked_objects(self) -> int:
        return len(self._stack)

    def access(self, key: int, size: int = 1) -> None:
        self.requests_seen += 1
        if not self._sampler.offer(key):
            return
        self.requests_sampled += 1
        dist, byte_dist = self._stack.access(key, size)
        self._raw.append((dist, byte_dist, self._sampler.rate))

    def process(self, trace: Trace) -> "FixedSizeKRRModel":
        keys = trace.keys
        sizes = trace.sizes
        for i in range(keys.shape[0]):
            self.access(int(keys[i]), int(sizes[i]))
        return self

    # ------------------------------------------------------------------
    def mrc(self, max_size: int | None = None, label: str | None = None) -> MissRatioCurve:
        from ..mrc.builder import from_distance_histogram

        hist = DistanceHistogram()
        for dist, _, rate in self._raw:
            if dist <= 0:
                hist.record_cold()
            else:
                hist.record(max(1, int(round(dist / rate))))
        return from_distance_histogram(
            hist, max_size=max_size, label=label or f"KRR-smax(K={self.k})"
        )

    def byte_mrc(self, label: str | None = None) -> MissRatioCurve:
        if not self._track_sizes:
            raise RuntimeError("byte_mrc requires track_sizes=True")
        from ..mrc.builder import from_byte_histogram

        hist = ByteDistanceHistogram(bin_bytes=self._byte_bin)
        for dist, byte_dist, rate in self._raw:
            if dist <= 0:
                hist.record_cold()
            else:
                hist.record(byte_dist / rate)
        return from_byte_histogram(hist, label=label or f"var-KRR-smax(K={self.k})")
