"""The public one-pass K-LRU MRC modeler.

:class:`KRRModel` is the API a downstream user adopts: construct it with the
cache's eviction sampling size ``K``, stream requests (or feed a whole
:class:`~repro.workloads.trace.Trace`), and read out miss ratio curves at
object or byte granularity.  Internally it wires together:

* the :class:`~repro.core.krr.KRRStack` with the chosen update strategy,
* the ``K' = K^1.4`` correction (§4.2, on by default),
* SHARDS-style spatial sampling (§2.4, optional; ``sampling_rate="auto"``
  applies the paper's rate-selection rule),
* object- and byte-level stack-distance histograms.

Example
-------
>>> from repro import KRRModel
>>> from repro.workloads import ycsb
>>> trace = ycsb.workload_c(5_000, 50_000, alpha=0.99, rng=1)
>>> model = KRRModel(k=4, seed=1)
>>> result = model.process(trace)
>>> round(float(result.mrc(1000)), 3)  # doctest: +SKIP
0.42
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Union

import numpy as np

from .._util import RngLike, check_sampling_size, ensure_rng
from ..mrc.builder import from_byte_histogram, from_distance_histogram
from ..mrc.curve import MissRatioCurve
from ..sampling.spatial import SpatialSampler, choose_rate
from ..stack.histogram import ByteDistanceHistogram, DistanceHistogram
from ..stack.soa import SOA_STRATEGIES, SoAKRRStack
from ..workloads.trace import Trace
from .correction import DEFAULT_EXPONENT, corrected_k
from .krr import KRRStack

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> core)
    from ..engine.plan import TracePlan

__all__ = [
    "KRRModel",
    "KRRResult",
    "ModelStats",
    "model_trace",
]



@dataclass
class ModelStats:
    """Counters describing one modeling run."""

    requests_seen: int = 0
    requests_sampled: int = 0
    cold_misses: int = 0
    stack_updates: int = 0
    swap_positions: int = 0

    @property
    def effective_rate(self) -> float:
        if self.requests_seen == 0:
            return 0.0
        return self.requests_sampled / self.requests_seen

    @property
    def mean_swaps_per_update(self) -> float:
        if self.stack_updates == 0:
            return 0.0
        return self.swap_positions / self.stack_updates


class KRRModel:
    """One-pass MRC model for a K-LRU cache with sampling size ``K``.

    Parameters
    ----------
    k:
        The *cache's* eviction sampling size (Redis default: 5).
    strategy:
        Stack update strategy: ``"backward"`` (default), ``"topdown"`` or
        ``"linear"``.
    sampling_rate:
        ``None`` disables spatial sampling; a float in (0, 1] fixes the
        rate; ``"auto"`` defers to :func:`~repro.sampling.spatial.choose_rate`
        when processing a full trace (falls back to 0.001 for streaming use).
    correction:
        Apply the ``K' = K^exponent`` correction (default on; §4.2).
    correction_exponent:
        The correction exponent (paper: 1.4).
    track_sizes:
        Maintain byte-level distances (var-KRR).  Required for
        :meth:`byte_mrc`.
    byte_bin:
        Byte-histogram bucket width.
    seed:
        Seed for the stack's probabilistic update draws.
    """

    def __init__(
        self,
        k: int = 5,
        strategy: str = "backward",
        sampling_rate: Union[None, float, str] = None,
        correction: bool = True,
        correction_exponent: float = DEFAULT_EXPONENT,
        track_sizes: bool = False,
        size_array_base: int = 2,
        byte_bin: int = 4096,
        seed: RngLike = None,
    ) -> None:
        self.k = check_sampling_size(k)
        self.effective_k = (
            corrected_k(self.k, correction_exponent) if correction else float(self.k)
        )
        # Constructor arguments (minus the seed — RNG state is snapshotted
        # exactly) so state_dict() can rebuild an identical instance.
        self._config: dict = {
            "k": int(k),
            "strategy": strategy,
            "sampling_rate": sampling_rate,
            "correction": bool(correction),
            "correction_exponent": float(correction_exponent),
            "track_sizes": bool(track_sizes),
            "size_array_base": int(size_array_base),
            "byte_bin": int(byte_bin),
        }
        self._rng = ensure_rng(seed)
        self._strategy_name = strategy
        self._auto_rate = sampling_rate == "auto"
        if sampling_rate is None:
            self._sampler: Optional[SpatialSampler] = None
        elif self._auto_rate:
            self._sampler = None  # resolved per trace in process()
        else:
            self._sampler = SpatialSampler(float(sampling_rate))
        self._stack = KRRStack(
            self.effective_k,
            strategy=strategy,
            rng=self._rng,
            track_sizes=track_sizes,
            size_array_base=size_array_base,
        )
        # The SoA engine shares self._rng and is built lazily: strategy
        # draw buffers only fill on first use, so whichever engine touches
        # the generator first owns the (identical) stream.
        self._soa: Optional[SoAKRRStack] = None
        self._engine: Optional[str] = None
        scale = self._sampler.scale if self._sampler else 1.0
        self._obj_hist = DistanceHistogram(scale=scale)
        self._byte_hist = (
            ByteDistanceHistogram(bin_bytes=byte_bin, scale=scale)
            if track_sizes
            else None
        )
        self.stats = ModelStats()

    # ------------------------------------------------------------------
    @property
    def sampling_rate(self) -> Optional[float]:
        return self._sampler.rate if self._sampler else None

    @property
    def tracks_sizes(self) -> bool:
        return self._stack.tracks_sizes

    @property
    def engine(self) -> Optional[str]:
        """The resolved streaming engine (None until the first request)."""
        return self._engine

    def _resolve_engine(self, engine: str) -> str:
        """Validate and pin the engine; it is sticky once draws started."""
        if engine not in ("auto", "scalar", "soa"):
            raise ValueError(f"unknown engine {engine!r}")
        soa_capable = (
            self._strategy_name in SOA_STRATEGIES and not self.tracks_sizes
        )
        if engine == "auto":
            if self._engine is not None:
                return self._engine  # stay on whatever already drew
            engine = "soa" if soa_capable else "scalar"
        elif engine == "soa" and not soa_capable:
            if self.tracks_sizes:
                raise ValueError(
                    "engine='soa' does not track byte distances; "
                    "use engine='scalar' with track_sizes=True"
                )
            raise ValueError(
                f"engine='soa' supports strategies {SOA_STRATEGIES}, "
                f"not {self._strategy_name!r}"
            )
        if self._engine is None:
            self._engine = engine
        elif self._engine != engine:
            raise RuntimeError(
                f"model already streamed through engine={self._engine!r}; "
                "engines share one RNG stream and cannot be switched mid-run"
            )
        return self._engine

    def _resolve_auto_sampler(self, trace: Trace) -> None:
        rate = choose_rate(max(1, trace.unique_objects()))
        self._sampler = SpatialSampler(rate)
        self._obj_hist.scale = self._sampler.scale
        if self._byte_hist is not None:
            self._byte_hist.scale = self._sampler.scale

    # ------------------------------------------------------------------
    def access(self, key: int, size: int = 1) -> None:
        """Stream one request into the model (always the scalar engine)."""
        self._resolve_engine("scalar")
        if self._auto_rate and self._sampler is None:
            # Streaming use without a trace: fall back to the default rate.
            self._sampler = SpatialSampler(0.001)
            self._obj_hist.scale = self._sampler.scale
            if self._byte_hist is not None:
                self._byte_hist.scale = self._sampler.scale
        self.stats.requests_seen += 1
        if self._sampler is not None and not self._sampler.keep(key):
            return
        self.stats.requests_sampled += 1
        dist, byte_dist = self._stack.access(key, size)
        if dist < 0:
            self.stats.cold_misses += 1
            self._obj_hist.record_cold()
            if self._byte_hist is not None:
                self._byte_hist.record_cold()
        else:
            self._obj_hist.record(dist)
            if self._byte_hist is not None:
                self._byte_hist.record(byte_dist)

    def access_many(
        self,
        keys: "list[int] | np.ndarray",
        sizes: Optional["list[int]"] = None,
        engine: str = "scalar",
    ) -> None:
        """Stream a batch of requests, without snapshotting.

        Draw-for-draw identical to calling :meth:`access` per request —
        same sampling decisions, same RNG consumption, same histograms —
        but batched: the spatial filter runs one vectorized hash pass and
        the stack consumes one fused batch loop.  This is the incremental
        sibling of :meth:`process` for callers that feed chunks of an
        ongoing stream (the service ingest path, the cache's buffered
        model feed).

        ``engine`` follows the :meth:`process` contract (``"scalar"`` /
        ``"soa"`` / ``"auto"``) and is sticky per model.  The default is
        ``"scalar"`` — unlike :meth:`process` — because long-lived online
        models need :meth:`state_dict`, which the SoA engine does not
        support; callers that never snapshot (the cache) pass ``"auto"``.

        ``keys`` may be a list of Python ints or a NumPy integer column
        (a ``uint64`` column is reinterpreted mod 2^64, exactly as scalar
        ``splitmix64`` wraps).
        """
        engine = self._resolve_engine(engine)
        if self._auto_rate and self._sampler is None:
            self._sampler = SpatialSampler(0.001)
            self._obj_hist.scale = self._sampler.scale
            if self._byte_hist is not None:
                self._byte_hist.scale = self._sampler.scale
        n = len(keys)
        if n == 0:
            return
        self.stats.requests_seen += n
        key_list: Optional[list] = None
        if isinstance(keys, np.ndarray):
            arr = (
                keys.view(np.int64)
                if keys.dtype == np.uint64
                else np.asarray(keys, dtype=np.int64)
            )
        else:
            key_list = list(keys)
            try:
                arr = np.asarray(key_list, dtype=np.int64)
            except OverflowError:
                # Keys outside int64 range (e.g. raw 64-bit hashes):
                # wrap mod 2^64, exactly as scalar splitmix64 does.
                arr = np.fromiter(
                    (k & 0xFFFFFFFFFFFFFFFF for k in key_list),
                    dtype=np.uint64,
                    count=n,
                ).view(np.int64)
        if self._sampler is not None:
            idx = self._sampler.filter_indices(arr)
            if int(idx.shape[0]) != n:
                arr = arr[idx]
                picks = idx.tolist()
                if key_list is not None:
                    key_list = [key_list[i] for i in picks]
                if sizes is not None:
                    sizes = [sizes[i] for i in picks]
                n = int(arr.shape[0])
        self.stats.requests_sampled += n
        if n == 0:
            return
        if engine == "soa":
            size_col = (
                np.ones(n, dtype=np.int64)
                if sizes is None
                else np.asarray(sizes, dtype=np.int64)
            )
            self._process_soa(arr, size_col, None, None)
        else:
            distances, byte_distances = self._stack.access_many(
                key_list if key_list is not None else arr.tolist(), sizes
            )
            self._obj_hist.record_many(distances)
            if self._byte_hist is not None:
                self._byte_hist.record_many(byte_distances)
            self.stats.cold_misses += distances.count(-1)

    def process(
        self,
        trace: Optional[Trace] = None,
        plan: Optional["TracePlan"] = None,
        engine: str = "auto",
        stream: Optional["Iterable[Trace]"] = None,
    ) -> "KRRResult":
        """Feed a whole trace through the batched hot path and snapshot.

        ``engine`` selects the streaming implementation:

        * ``"scalar"`` — the fused per-access loop over the boxed
          :class:`~repro.core.krr.KRRStack` (supports every strategy and
          byte tracking).
        * ``"soa"`` — the array-native
          :class:`~repro.stack.soa.SoAKRRStack` (backward/linear only,
          object granularity only; an order of magnitude faster when the
          native kernel is available).
        * ``"auto"`` (default) — ``"soa"`` whenever this model's
          configuration supports it, else ``"scalar"``.

        Both engines consume the model seed's stream in the identical
        refill pattern and apply the identical update arithmetic, so the
        choice is **bit-invisible**: distances, histograms and counters
        match draw for draw (property-tested in ``tests/test_soa_engine``).
        The engine is sticky per model — both share one generator, so
        switching mid-run would desynchronize the stream and is refused.

        On the scalar engine, three batch passes replace the per-access
        loop: the spatial filter is applied to the key column vectorized,
        the surviving columns are converted to Python lists once (NumPy
        scalar unboxing inside the stack loop is ~10x slower) and fed to
        :meth:`KRRStack.access_many`, and the resulting distance batch is
        recorded into the histograms with one ``bincount`` pass each.
        Statistically identical to streaming :meth:`access` per request
        (draw-for-draw, given the same seed and sampler).

        ``plan`` supplies a :class:`~repro.engine.plan.TracePlan` for this
        trace; its cached hash column and per-rate sampled-index cache
        replace the filter's hash pass entirely (the sweep engine shares
        one plan across every grid cell and worker), and on the SoA
        engine its cached factorization also replaces the stack's key
        interning.  The selected indices are identical either way.

        ``stream`` accepts a bounded-memory
        :class:`~repro.workloads.stream.TraceStream` (any iterable of
        trace chunks) instead of ``trace``: each chunk runs through the
        same batched hot path via :meth:`access_many`.  Because the
        spatial filter is stateless per key and both engines buffer
        their draws across calls, a streamed run is **bit-identical** to
        processing the concatenated trace in one shot, for any chunk
        size (property-tested in ``tests/test_stream.py``).  A stream
        has no whole-trace unique-object count, so
        ``sampling_rate="auto"`` is refused — pass an explicit rate; and
        ``plan`` (a whole-trace column cache) cannot be combined with a
        stream.
        """
        if stream is not None:
            if trace is not None:
                raise ValueError("pass either trace= or stream=, not both")
            if plan is not None:
                raise ValueError(
                    "plan caches whole-trace columns; streamed chunks "
                    "compute their columns per chunk instead"
                )
            return self._process_stream(stream, engine)
        if trace is None:
            raise ValueError("process() needs a trace or a stream")
        engine = self._resolve_engine(engine)
        if self._auto_rate and self._sampler is None:
            self._resolve_auto_sampler(trace)
        keys = trace.keys
        sizes = trace.sizes
        self.stats.requests_seen += int(keys.shape[0])
        idx: Optional[np.ndarray] = None
        if self._sampler is not None:
            if plan is not None:
                idx = plan.sample_indices(
                    self._sampler.threshold,
                    self._sampler.modulus,
                    self._sampler.seed,
                )
            else:
                idx = self._sampler.filter_indices(keys)
            keys = keys[idx]
            sizes = sizes[idx]
        self.stats.requests_sampled += int(keys.shape[0])
        if engine == "soa":
            self._process_soa(keys, sizes, plan, idx)
        else:
            distances, byte_distances = self._stack.access_many(
                keys.tolist(), sizes.tolist()
            )
            self._obj_hist.record_many(distances)
            if self._byte_hist is not None:
                self._byte_hist.record_many(byte_distances)
            self.stats.cold_misses += distances.count(-1)
        self._sync_stats()
        return self.result()

    def _process_stream(self, stream: "Iterable[Trace]", engine: str) -> "KRRResult":
        """Streamed half of :meth:`process`: one hot-path pass per chunk."""
        engine = self._resolve_engine(engine)
        if self._auto_rate and self._sampler is None:
            raise ValueError(
                "sampling_rate='auto' needs the whole trace's unique-object "
                "count up front; pass an explicit rate when streaming"
            )
        for chunk in stream:
            self.access_many(chunk.keys, chunk.sizes.tolist(), engine=engine)
        self._sync_stats()
        return self.result()

    def _process_soa(
        self,
        keys: np.ndarray,
        sizes: np.ndarray,
        plan: Optional["TracePlan"],
        idx: Optional[np.ndarray],
    ) -> None:
        """SoA half of :meth:`process`: flat-array stack, numpy distances."""
        if self._soa is None:
            self._soa = SoAKRRStack(
                self.effective_k, strategy=self._strategy_name, rng=self._rng
            )
        stack = self._soa
        use_plan_ids = plan is not None and not stack.has_interned_keys
        if use_plan_ids:
            assert plan is not None
            kids = plan.key_ids if idx is None else plan.key_ids[idx]
            distances = stack.access_many_ids(
                np.ascontiguousarray(kids, dtype=np.int64),
                plan.unique_keys,
                sizes,
            )
        else:
            distances, _ = stack.access_many(keys, sizes)
        self._obj_hist.record_many(distances)
        self.stats.cold_misses += int(np.count_nonzero(distances == -1))

    def _sync_stats(self) -> None:
        stack = self._soa if self._soa is not None else self._stack
        self.stats.stack_updates = stack.updates
        self.stats.swap_positions = stack.total_swaps

    # ------------------------------------------------------------------
    def mrc(self, max_size: int | None = None, label: str | None = None) -> MissRatioCurve:
        """Object-granularity MRC snapshot."""
        self._sync_stats()
        return from_distance_histogram(
            self._obj_hist,
            max_size=max_size,
            label=label or f"KRR(K={self.k})",
        )

    def byte_mrc(self, label: str | None = None) -> MissRatioCurve:
        """Byte-granularity MRC snapshot (requires ``track_sizes=True``)."""
        if self._byte_hist is None:
            raise RuntimeError("byte_mrc requires track_sizes=True")
        self._sync_stats()
        return from_byte_histogram(
            self._byte_hist, label=label or f"var-KRR(K={self.k})"
        )

    def result(self) -> "KRRResult":
        return KRRResult(self)

    # ------------------------------------------------------------------
    STATE_KIND = "repro-krr-model"
    STATE_VERSION = 1

    def state_dict(self) -> dict:
        """JSON-safe snapshot of the full model state (scalar engine).

        Captures the constructor configuration, the PCG64 generator state,
        the strategy's buffered draws, the stack, both histograms, the
        sampler's exact threshold and the counters — everything needed for
        :meth:`load_state`/:meth:`from_state` to resume *bit-identically*:
        a restored model consumes the identical draw stream and reports
        the identical curves as one that never stopped (floats survive
        JSON via ``repr`` round-tripping).

        Raises :class:`NotImplementedError` once the SoA engine holds
        state; snapshotting covers the scalar streaming path (the one
        long-lived online models use).
        """
        if self._soa is not None:
            raise NotImplementedError(
                "state_dict() supports the scalar engine; this model has "
                "streamed through engine='soa'"
            )
        rng_state = self._rng.bit_generator.state
        return {
            "kind": self.STATE_KIND,
            "version": self.STATE_VERSION,
            "config": dict(self._config),
            "engine": self._engine,
            "rng": rng_state,
            "stack": self._stack.state_dict(),
            "obj_hist": self._obj_hist.state_dict(),
            "byte_hist": (
                self._byte_hist.state_dict()
                if self._byte_hist is not None
                else None
            ),
            "sampler": (
                self._sampler.state_dict() if self._sampler is not None else None
            ),
            "auto_rate": self._auto_rate,
            "stats": {
                "requests_seen": self.stats.requests_seen,
                "requests_sampled": self.stats.requests_sampled,
                "cold_misses": self.stats.cold_misses,
                "stack_updates": self.stats.stack_updates,
                "swap_positions": self.stats.swap_positions,
            },
        }

    def load_state(self, state: dict) -> None:
        """Restore :meth:`state_dict` output into this (compatible) model."""
        if state.get("kind") != self.STATE_KIND:
            raise ValueError("not a KRRModel state dict")
        if int(state.get("version", -1)) != self.STATE_VERSION:
            raise ValueError(
                f"unsupported KRRModel state version {state.get('version')!r}"
            )
        if state["config"] != self._config:
            raise ValueError(
                "model state was captured under a different configuration: "
                f"{state['config']!r} != {self._config!r}"
            )
        engine = state.get("engine")
        if engine == "soa":  # pragma: no cover - state_dict refuses first
            raise NotImplementedError("cannot restore SoA-engine state")
        self._engine = engine
        self._rng.bit_generator.state = state["rng"]
        self._stack.load_state(state["stack"])
        self._obj_hist.load_state(state["obj_hist"])
        if self._byte_hist is not None and state["byte_hist"] is not None:
            self._byte_hist.load_state(state["byte_hist"])
        if state["sampler"] is not None:
            self._sampler = SpatialSampler.from_state(state["sampler"])
        else:
            self._sampler = None
        self._auto_rate = bool(state["auto_rate"])
        s = state["stats"]
        self.stats = ModelStats(
            requests_seen=int(s["requests_seen"]),
            requests_sampled=int(s["requests_sampled"]),
            cold_misses=int(s["cold_misses"]),
            stack_updates=int(s["stack_updates"]),
            swap_positions=int(s["swap_positions"]),
        )

    @classmethod
    def from_state(cls, state: dict) -> "KRRModel":
        """Reconstruct a model solely from a :meth:`state_dict` snapshot."""
        if state.get("kind") != cls.STATE_KIND:
            raise ValueError("not a KRRModel state dict")
        model = cls(seed=0, **state["config"])
        model.load_state(state)
        return model


class KRRResult:
    """Snapshot of a finished modeling run (curves + stats)."""

    def __init__(self, model: KRRModel) -> None:
        self._model = model
        self.stats = model.stats
        self.k = model.k
        self.effective_k = model.effective_k
        self.sampling_rate = model.sampling_rate

    def mrc(self, max_size: int | None = None) -> MissRatioCurve:
        return self._model.mrc(max_size=max_size)

    def byte_mrc(self) -> MissRatioCurve:
        return self._model.byte_mrc()


def model_trace(
    trace: Trace,
    k: int = 5,
    sampling_rate: Union[None, float, str] = None,
    strategy: str = "backward",
    track_sizes: Optional[bool] = None,
    seed: RngLike = None,
    **kwargs: object,
) -> KRRResult:
    """Convenience: model one trace and return the result.

    ``track_sizes=None`` auto-enables byte tracking when the trace carries
    non-uniform sizes.
    """
    if track_sizes is None:
        track_sizes = not trace.is_uniform_size()
    model = KRRModel(
        k=k,
        strategy=strategy,
        sampling_rate=sampling_rate,
        track_sizes=track_sizes,
        seed=seed,
        **kwargs,
    )
    return model.process(trace)
