"""Windowed online MRC tracking: rolling curves that follow phase changes.

A long-lived :class:`~repro.core.model.KRRModel` averages over all history,
so after a workload shift its curve converges only slowly to the new
regime.  :class:`WindowedKRRModel` keeps two staggered models ("current"
and "warming") and rotates them every half window: the reported curve
always reflects between half a window and a full window of recent
requests, with no cold-start gap at rotation — the standard two-generation
trick for streaming statistics.
"""

from __future__ import annotations

from typing import Optional, Union

from .._util import RngLike, check_positive, ensure_rng
from ..mrc.curve import MissRatioCurve
from ..workloads.trace import Trace
from .model import KRRModel

__all__ = [
    "WindowedKRRModel",
]



class WindowedKRRModel:
    """K-LRU MRC over a sliding window of the most recent requests.

    Parameters
    ----------
    k, strategy, sampling_rate, correction, track_sizes, seed:
        Forwarded to the underlying :class:`KRRModel` instances.
    window:
        Nominal window length in requests; the reported curve covers
        between ``window/2`` and ``window`` recent requests.
    """

    def __init__(
        self,
        k: int = 5,
        window: int = 100_000,
        strategy: str = "backward",
        sampling_rate: Union[None, float, str] = None,
        correction: bool = True,
        track_sizes: bool = False,
        seed: RngLike = None,
    ) -> None:
        check_positive("window", window)
        self.window = int(window)
        self._half = max(1, self.window // 2)
        self._rng = ensure_rng(seed)
        self._kwargs = dict(
            k=k,
            strategy=strategy,
            sampling_rate=sampling_rate,
            correction=correction,
            track_sizes=track_sizes,
        )
        self._current = self._fresh()
        self._warming = self._fresh()
        self._since_rotation = 0
        self.requests_seen = 0
        self.rotations = 0

    def _fresh(self) -> KRRModel:
        return KRRModel(seed=int(self._rng.integers(0, 2**63)), **self._kwargs)

    # ------------------------------------------------------------------
    def access(self, key: int, size: int = 1) -> None:
        self.requests_seen += 1
        self._since_rotation += 1
        self._current.access(key, size)
        self._warming.access(key, size)
        if self._since_rotation >= self._half:
            # The warming model now holds half a window: promote it.
            self._current = self._warming
            self._warming = self._fresh()
            self._since_rotation = 0
            self.rotations += 1

    def access_many(
        self,
        keys: "list[int]",
        sizes: "Optional[list[int]]" = None,
        engine: str = "scalar",
    ) -> None:
        """Stream a batch of requests (the service and cache ingest path).

        Equivalent to calling :meth:`access` per request — same rotation
        points, same draws — but batched: the stream is split at the
        rotation boundaries and each segment goes through the two
        generations' :meth:`KRRModel.access_many` fused batch path.
        ``engine`` is forwarded per the :meth:`KRRModel.access_many`
        contract (``"scalar"`` default; snapshotting requires it).
        """
        n = len(keys)
        start = 0
        while start < n:
            take = min(n - start, self._half - self._since_rotation)
            stop = start + take
            chunk_keys = keys[start:stop]
            chunk_sizes = sizes[start:stop] if sizes is not None else None
            self._current.access_many(chunk_keys, chunk_sizes, engine=engine)
            self._warming.access_many(chunk_keys, chunk_sizes, engine=engine)
            self.requests_seen += take
            self._since_rotation += take
            start = stop
            if self._since_rotation >= self._half:
                self._current = self._warming
                self._warming = self._fresh()
                self._since_rotation = 0
                self.rotations += 1

    def process(self, trace: Trace) -> "WindowedKRRModel":
        keys = trace.keys
        sizes = trace.sizes
        for i in range(keys.shape[0]):
            self.access(int(keys[i]), int(sizes[i]))
        return self

    # ------------------------------------------------------------------
    @property
    def coverage(self) -> int:
        """Requests reflected by :meth:`mrc` right now."""
        return min(self.requests_seen, self._half + self._since_rotation)

    def counters(self) -> dict:
        """Health-endpoint counters: lifetime ingest and rotation totals."""
        return {
            "requests_seen": self.requests_seen,
            "rotations": self.rotations,
            "since_rotation": self._since_rotation,
            "coverage": self.coverage,
            "window": self.window,
        }

    def mrc(self, max_size: int | None = None) -> MissRatioCurve:
        """The rolling-window curve (half to one window of recent traffic)."""
        return self._current.mrc(max_size=max_size)

    def byte_mrc(self) -> MissRatioCurve:
        """Rolling byte-granularity curve (requires ``track_sizes=True``)."""
        return self._current.byte_mrc()

    # ------------------------------------------------------------------
    STATE_KIND = "repro-windowed-krr-model"
    STATE_VERSION = 1

    def state_dict(self) -> dict:
        """JSON-safe snapshot: both generations plus the seeding RNG.

        The seeding generator's state is captured alongside the two
        :meth:`KRRModel.state_dict` snapshots, so the restored instance
        rotates into *the same* future generations (each ``_fresh()``
        seed comes from this generator) — resume is bit-identical across
        rotation boundaries too.
        """
        return {
            "kind": self.STATE_KIND,
            "version": self.STATE_VERSION,
            "window": self.window,
            "config": dict(self._kwargs),
            "rng": self._rng.bit_generator.state,
            "current": self._current.state_dict(),
            "warming": self._warming.state_dict(),
            "since_rotation": self._since_rotation,
            "requests_seen": self.requests_seen,
            "rotations": self.rotations,
        }

    def load_state(self, state: dict) -> None:
        if state.get("kind") != self.STATE_KIND:
            raise ValueError("not a WindowedKRRModel state dict")
        if int(state.get("version", -1)) != self.STATE_VERSION:
            raise ValueError(
                f"unsupported WindowedKRRModel state version "
                f"{state.get('version')!r}"
            )
        if int(state["window"]) != self.window or state["config"] != self._kwargs:
            raise ValueError(
                "windowed-model state was captured under a different "
                "configuration"
            )
        self._rng.bit_generator.state = state["rng"]
        self._current = KRRModel.from_state(state["current"])
        self._warming = KRRModel.from_state(state["warming"])
        self._since_rotation = int(state["since_rotation"])
        self.requests_seen = int(state["requests_seen"])
        self.rotations = int(state["rotations"])

    @classmethod
    def from_state(cls, state: dict) -> "WindowedKRRModel":
        """Reconstruct a windowed model solely from :meth:`state_dict`."""
        if state.get("kind") != cls.STATE_KIND:
            raise ValueError("not a WindowedKRRModel state dict")
        model = cls(window=int(state["window"]), seed=0, **state["config"])
        model.load_state(state)
        return model
