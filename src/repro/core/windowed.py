"""Windowed online MRC tracking: rolling curves that follow phase changes.

A long-lived :class:`~repro.core.model.KRRModel` averages over all history,
so after a workload shift its curve converges only slowly to the new
regime.  :class:`WindowedKRRModel` keeps two staggered models ("current"
and "warming") and rotates them every half window: the reported curve
always reflects between half a window and a full window of recent
requests, with no cold-start gap at rotation — the standard two-generation
trick for streaming statistics.
"""

from __future__ import annotations

from typing import Optional, Union

from .._util import RngLike, check_positive, ensure_rng
from ..mrc.curve import MissRatioCurve
from ..workloads.trace import Trace
from .model import KRRModel

__all__ = [
    "WindowedKRRModel",
]



class WindowedKRRModel:
    """K-LRU MRC over a sliding window of the most recent requests.

    Parameters
    ----------
    k, strategy, sampling_rate, correction, track_sizes, seed:
        Forwarded to the underlying :class:`KRRModel` instances.
    window:
        Nominal window length in requests; the reported curve covers
        between ``window/2`` and ``window`` recent requests.
    """

    def __init__(
        self,
        k: int = 5,
        window: int = 100_000,
        strategy: str = "backward",
        sampling_rate: Union[None, float, str] = None,
        correction: bool = True,
        track_sizes: bool = False,
        seed: RngLike = None,
    ) -> None:
        check_positive("window", window)
        self.window = int(window)
        self._half = max(1, self.window // 2)
        self._rng = ensure_rng(seed)
        self._kwargs = dict(
            k=k,
            strategy=strategy,
            sampling_rate=sampling_rate,
            correction=correction,
            track_sizes=track_sizes,
        )
        self._current = self._fresh()
        self._warming = self._fresh()
        self._since_rotation = 0
        self.requests_seen = 0
        self.rotations = 0

    def _fresh(self) -> KRRModel:
        return KRRModel(seed=int(self._rng.integers(0, 2**63)), **self._kwargs)

    # ------------------------------------------------------------------
    def access(self, key: int, size: int = 1) -> None:
        self.requests_seen += 1
        self._since_rotation += 1
        self._current.access(key, size)
        self._warming.access(key, size)
        if self._since_rotation >= self._half:
            # The warming model now holds half a window: promote it.
            self._current = self._warming
            self._warming = self._fresh()
            self._since_rotation = 0
            self.rotations += 1

    def process(self, trace: Trace) -> "WindowedKRRModel":
        keys = trace.keys
        sizes = trace.sizes
        for i in range(keys.shape[0]):
            self.access(int(keys[i]), int(sizes[i]))
        return self

    # ------------------------------------------------------------------
    @property
    def coverage(self) -> int:
        """Requests reflected by :meth:`mrc` right now."""
        return min(self.requests_seen, self._half + self._since_rotation)

    def mrc(self, max_size: int | None = None) -> MissRatioCurve:
        """The rolling-window curve (half to one window of recent traffic)."""
        return self._current.mrc(max_size=max_size)
