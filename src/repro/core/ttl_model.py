"""TTL-aware K-LRU MRC modeling (the "expiration time" future-work item).

In-memory caches commonly attach a time-to-live to objects: an access
whose *reuse time* exceeds the TTL misses no matter how large the cache
is.  With TTLs measured in requests (as in our simulators), the one-pass
model barely changes: record each access's stack distance *and* reuse
time, and

```
miss_ratio(C) = P(stack distance > C  OR  reuse time > TTL)
```

Both TTL semantics found in real systems are supported and must match the
cache being modeled: ``absolute`` (Redis ``EXPIRE`` — the lease starts at
insert and reads don't extend it) and ``sliding`` (reads renew the lease).
Measured against the TTL-aware sampled-LRU simulator
(``tests/test_ttl_model.py``, ``benchmarks/bench_ext_ttl.py``) the model's
MAE stays below 1e-2 across TTL regimes in both modes — same order as
plain KRR.  A Redis-style active-expiration cycle (periodic purge of
idle-past-TTL objects) keeps the model's memory bounded on endless
streams.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._util import RngLike, check_positive, check_sampling_size, ensure_rng
from ..mrc.curve import MissRatioCurve
from ..sampling.spatial import SpatialSampler
from ..stack.histogram import DistanceHistogram
from ..workloads.trace import Trace
from .correction import DEFAULT_EXPONENT, corrected_k
from .krr import KRRStack

__all__ = [
    "TTLAwareKRRModel",
]



class TTLAwareKRRModel:
    """One-pass MRC model for a K-LRU cache with per-object TTLs.

    Parameters
    ----------
    k:
        Eviction sampling size of the modeled cache.
    ttl:
        Time-to-live in *requests* of the original stream.  An access with
        reuse time greater than ``ttl`` is a miss at every cache size.
    ttl_mode:
        ``"absolute"`` (default; Redis ``EXPIRE`` semantics — the lease
        starts when the object enters or is refreshed after expiry; *reads
        do not renew it*) or ``"sliding"`` (every access renews the lease,
        so expiry is simply reuse time exceeding the TTL).
    sampling_rate:
        Optional spatial sampling.  Expiry clocks are measured against the
        *unsampled* request clock, so TTL semantics are preserved exactly
        under sampling.
    """

    def __init__(
        self,
        k: int = 5,
        ttl: int = 100_000,
        ttl_mode: str = "absolute",
        strategy: str = "backward",
        sampling_rate: Optional[float] = None,
        correction: bool = True,
        correction_exponent: float = DEFAULT_EXPONENT,
        seed: RngLike = None,
    ) -> None:
        self.k = check_sampling_size(k)
        check_positive("ttl", ttl)
        if ttl_mode not in ("absolute", "sliding"):
            raise ValueError("ttl_mode must be 'absolute' or 'sliding'")
        self.ttl = int(ttl)
        self.ttl_mode = ttl_mode
        effective = corrected_k(self.k, correction_exponent) if correction else float(self.k)
        self._stack = KRRStack(effective, strategy=strategy, rng=ensure_rng(seed))
        self._sampler = SpatialSampler(sampling_rate) if sampling_rate else None
        scale = self._sampler.scale if self._sampler else 1.0
        self._hist = DistanceHistogram(scale=scale)
        self._expired = 0
        self._clock = 0
        self._last_access: dict[int, int] = {}
        self._lease_start: dict[int, int] = {}  # absolute-mode expiry clock
        self.requests_seen = 0
        self.requests_sampled = 0
        # Active expiration (Redis-style expire cycle): periodically purge
        # objects whose last access is older than the TTL, so dead entries
        # stop inflating live objects' stack distances.
        self._purge_interval = max(1_000, self.ttl // 4)
        self._next_purge = self._purge_interval

    # ------------------------------------------------------------------
    def access(self, key: int, size: int = 1) -> None:
        self._clock += 1
        self.requests_seen += 1
        if self._sampler is not None and not self._sampler.keep(key):
            return
        self.requests_sampled += 1
        prev = self._last_access.get(key)
        self._last_access[key] = self._clock
        dist, _ = self._stack.access(key, size)
        if dist < 0:
            self._lease_start[key] = self._clock
            self._hist.record_cold()
            return
        if self.ttl_mode == "sliding":
            reuse = self._clock - prev if prev is not None else None
            expired = reuse is None or reuse > self.ttl
        else:
            lease = self._lease_start.get(key, self._clock)
            expired = self._clock - lease > self.ttl
        if expired:
            # Expired: a miss at every size — same bucket as cold misses.
            # The object re-enters with a fresh lease.
            self._expired += 1
            self._lease_start[key] = self._clock
            self._hist.record_cold()
        else:
            self._hist.record(dist)
        if self._clock >= self._next_purge:
            self._purge_expired()
            self._next_purge = self._clock + self._purge_interval

    def _purge_expired(self) -> None:
        horizon = self._clock - self.ttl
        doomed = [
            key
            for key in self._stack.keys_in_stack_order()
            if self._last_access.get(key, 0) < horizon
        ]
        if doomed:
            self._stack.remove_many(doomed)
            for key in doomed:
                self._last_access.pop(key, None)
                self._lease_start.pop(key, None)

    def process(self, trace: Trace) -> "TTLAwareKRRModel":
        keys = trace.keys
        sizes = trace.sizes
        for i in range(keys.shape[0]):
            self.access(int(keys[i]), int(sizes[i]))
        return self

    # ------------------------------------------------------------------
    @property
    def expired_accesses(self) -> int:
        """Sampled accesses that missed purely due to TTL expiry."""
        return self._expired

    def mrc(self, max_size: int | None = None, label: str | None = None) -> MissRatioCurve:
        from ..mrc.builder import from_distance_histogram

        return from_distance_histogram(
            self._hist,
            max_size=max_size,
            label=label or f"KRR(K={self.k}, ttl={self.ttl})",
        )

    def miss_ratio_floor(self) -> float:
        """The TTL-imposed lower bound on the miss ratio (infinite cache)."""
        if self._hist.total == 0:
            return 0.0
        return self._hist.cold_misses / self._hist.total
