"""The sampling-size correction ``K' ~= K^1.4`` (§4.2).

KRR orders objects by recency only at coarse granularity, so compared to
true K-LRU it is slightly biased toward evicting *more* recently used
objects.  The paper compensates by running KRR with a larger effective
sampling size ``K' > K``; empirically ``K' = K^1.4`` tracks K-LRU best.
The exponent is exposed so the ablation bench can sweep it.
"""

from __future__ import annotations

__all__ = [
    "DEFAULT_EXPONENT",
    "corrected_k",
    "uncorrected_k",
]


#: The paper's empirically chosen correction exponent.
DEFAULT_EXPONENT = 1.4


def corrected_k(k: float, exponent: float = DEFAULT_EXPONENT) -> float:
    """Effective KRR parameter ``K' = K**exponent`` for target K-LRU ``K``.

    ``K = 1`` maps to itself for every exponent (KRR with ``K=1`` *is*
    statistically identical to random replacement, so no correction is
    needed or possible there).
    """
    if k < 1:
        raise ValueError("K must be >= 1")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    return float(k) ** exponent


def uncorrected_k(k_prime: float, exponent: float = DEFAULT_EXPONENT) -> float:
    """Inverse map: the K-LRU sampling size a given ``K'`` models."""
    if k_prime < 1:
        raise ValueError("K' must be >= 1")
    return float(k_prime) ** (1.0 / exponent)
