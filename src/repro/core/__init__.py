"""The paper's contribution: the KRR probabilistic stack and MRC model."""

from .correction import DEFAULT_EXPONENT, corrected_k, uncorrected_k
from .eviction import (
    eviction_cdf,
    eviction_prob_with_replacement,
    eviction_prob_without_replacement,
    expected_swap_positions,
    expected_swap_positions_bound,
    inverse_eviction_cdf,
    krr_eviction_prob,
    no_swap_probability_interval,
    stay_probability,
    swap_probability,
)
from .fixed_size_model import FixedSizeKRRModel
from .kfr import KFRModel, KFRStack
from .krr import KRRStack
from .model import KRRModel, KRRResult, ModelStats, model_trace
from .ttl_model import TTLAwareKRRModel
from .windowed import WindowedKRRModel
from .sizearray import SizeArray
from .updates import (
    DRAW_BLOCK,
    BackwardUpdate,
    LinearUpdate,
    SurvivalTable,
    TopDownUpdate,
    apply_swaps,
    backward_draw_block,
    make_strategy,
    survival_table,
)
from .vkrr import GridConfig, GridResult, MultiKRR, spawn_seeds

__all__ = [
    "BackwardUpdate",
    "DEFAULT_EXPONENT",
    "DRAW_BLOCK",
    "FixedSizeKRRModel",
    "GridConfig",
    "GridResult",
    "KFRModel",
    "KFRStack",
    "KRRModel",
    "KRRResult",
    "KRRStack",
    "LinearUpdate",
    "ModelStats",
    "MultiKRR",
    "SizeArray",
    "SurvivalTable",
    "TTLAwareKRRModel",
    "WindowedKRRModel",
    "TopDownUpdate",
    "apply_swaps",
    "backward_draw_block",
    "corrected_k",
    "eviction_cdf",
    "eviction_prob_with_replacement",
    "eviction_prob_without_replacement",
    "expected_swap_positions",
    "expected_swap_positions_bound",
    "inverse_eviction_cdf",
    "krr_eviction_prob",
    "make_strategy",
    "model_trace",
    "no_swap_probability_interval",
    "spawn_seeds",
    "stay_probability",
    "survival_table",
    "swap_probability",
    "uncorrected_k",
]
