"""MultiKRR: one-pass evaluation of a whole (K, strategy, rate) grid.

:class:`~repro.engine.sweep.ModelSweep` answers grid questions by running
one full :class:`~repro.core.model.KRRModel` per configuration — C
passes over the trace, C factorizations, C hash columns.  MultiKRR
evaluates the same grid in **one streaming pass**: the trace is prepared
once (dense key ids via factorization, one hash column per sampling
seed), every configuration's stack lives as one row of a C×U 2-D
``int64`` state block (slot row + position row, C-contiguous so each
row feeds a :class:`~repro.stack.soa.SoAKRRStack` zero-copy), and each
request chunk is pushed through all C stacks before the next chunk is
touched — the chunk stays hot in cache while every configuration
consumes it.

**Seeding contract.**  Per-configuration seeds are spawned from the grid
seed by position with :func:`spawn_seeds` — the *same* derivation
:meth:`ModelSweep.config_seeds` uses — and each stack owns its own
generator, so chunking and configuration order cannot leak draws between
cells.  Every cell's distances, histogram and counters are bit-identical
to an independent ``KRRModel.process`` run with the matching seed
(property-tested in ``tests/test_vkrr.py``).

Configurations are duck-typed: anything with ``k``, ``strategy``,
``sampling_rate`` and ``correction`` attributes works, so
:class:`~repro.engine.sweep.SweepConfig` instances can be passed
directly.  Strategies are limited to the SoA-capable set
(``backward``/``linear``); byte-level tracking (``track_sizes``) needs
the scalar engine — use :class:`ModelSweep` for those grids.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .._util import check_sampling_size
from ..kernels.prep import factorize_keys
from ..mrc.builder import from_distance_histogram, from_points
from ..mrc.curve import MissRatioCurve
from ..sampling.spatial import SpatialSampler
from ..stack.histogram import DistanceHistogram
from ..stack.soa import SOA_STRATEGIES, SoAKRRStack
from ..workloads.trace import Trace
from .correction import DEFAULT_EXPONENT, corrected_k

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine -> core)
    from ..engine.plan import TracePlan

__all__ = [
    "GridConfig",
    "GridResult",
    "MultiKRR",
    "spawn_seeds",
]


#: Default requests per streaming chunk (all C stacks consume each chunk
#: before the next is touched; the value only affects locality, never
#: results — per-config draws are fixed by per-config generators).
DEFAULT_CHUNK = 1 << 18


def spawn_seeds(n: int, seed: int = 0) -> List[int]:
    """Per-cell model seeds, fixed by grid position.

    This is the engine-wide seed derivation: ``ModelSweep.config_seeds``
    delegates here, so a MultiKRR grid and a ModelSweep over the same
    configuration list draw identical per-cell streams.
    """
    root = np.random.SeedSequence(int(seed))
    return [
        int(child.generate_state(1, dtype=np.uint64)[0] >> np.uint64(1))
        for child in root.spawn(int(n))
    ]


@dataclass(frozen=True)
class GridConfig:
    """One grid cell (field-compatible subset of ``SweepConfig``)."""

    k: int = 5
    strategy: str = "backward"
    sampling_rate: Optional[float] = None
    correction: bool = True

    def label(self) -> str:
        rate = "full" if self.sampling_rate is None else f"R={self.sampling_rate:g}"
        return f"K={self.k}/{self.strategy}/{rate}"


@dataclass
class GridResult:
    """One cell's finished curve plus the model counters."""

    config: object
    seed: int
    sizes: np.ndarray
    miss_ratios: np.ndarray
    unit: str = "objects"
    requests_seen: int = 0
    requests_sampled: int = 0
    cold_misses: int = 0
    stack_updates: int = 0
    swap_positions: int = 0

    def mrc(self) -> MissRatioCurve:
        label = self.config.label() if hasattr(self.config, "label") else ""
        return from_points(
            self.sizes, self.miss_ratios, unit=self.unit, label=str(label)
        )


class _Cell:
    """Internal per-configuration state: stack row + histogram + counters."""

    __slots__ = ("config", "seed", "stack", "hist", "mask_key", "scale", "sampled", "cold")

    def __init__(
        self,
        config: object,
        seed: int,
        stack: SoAKRRStack,
        hist: DistanceHistogram,
        mask_key: Optional[Tuple[int, int, int]],
    ) -> None:
        self.config = config
        self.seed = seed
        self.stack = stack
        self.hist = hist
        self.mask_key = mask_key
        self.sampled = 0
        self.cold = 0


class MultiKRR:
    """A grid of KRR configurations evaluated in one pass over one trace.

    Parameters
    ----------
    configs:
        Grid cells — :class:`GridConfig`, ``SweepConfig``, or any object
        with ``k``/``strategy``/``sampling_rate``/``correction``.
    seed:
        Grid-level seed; per-cell seeds come from :func:`spawn_seeds` by
        position, exactly like ``ModelSweep``.

    Example
    -------
    >>> grid = MultiKRR.grid(ks=[1, 5], sampling_rates=[None, 0.01])
    >>> results = grid.run(trace)  # doctest: +SKIP
    """

    def __init__(
        self,
        configs: Sequence[object],
        seed: int = 0,
        seeds: Optional[Sequence[int]] = None,
    ) -> None:
        self.configs: List[object] = list(configs)
        if not self.configs:
            raise ValueError("need at least one grid configuration")
        for cfg in self.configs:
            strategy = getattr(cfg, "strategy", "backward")
            if strategy not in SOA_STRATEGIES:
                raise ValueError(
                    f"MultiKRR supports strategies {SOA_STRATEGIES}; "
                    f"{strategy!r} needs the scalar engine (ModelSweep)"
                )
            if getattr(cfg, "track_sizes", False):
                raise ValueError(
                    "MultiKRR does not track byte distances; "
                    "use ModelSweep for track_sizes grids"
                )
            check_sampling_size(int(cfg.k))  # type: ignore[attr-defined]
        self.seed = int(seed)
        # Explicit per-cell seeds override the positional spawn — this is
        # how a resumed fleet runs only the *missing* subset of a grid
        # with each cell still drawing its original position's stream.
        self._seeds_override: Optional[List[int]] = (
            [int(s) for s in seeds] if seeds is not None else None
        )
        if self._seeds_override is not None and len(self._seeds_override) != len(
            self.configs
        ):
            raise ValueError(
                f"seeds has {len(self._seeds_override)} entries for "
                f"{len(self.configs)} configs"
            )

    @classmethod
    def grid(
        cls,
        ks: Iterable[int],
        strategies: Iterable[str] = ("backward",),
        sampling_rates: Iterable[Optional[float]] = (None,),
        correction: bool = True,
        seed: int = 0,
    ) -> "MultiKRR":
        """Cross-product grid, same cell order as ``ModelSweep.grid``."""
        configs = [
            GridConfig(k=int(k), strategy=s, sampling_rate=r, correction=correction)
            for k, s, r in product(ks, strategies, sampling_rates)
        ]
        return cls(configs, seed=seed)

    def __len__(self) -> int:
        return len(self.configs)

    def config_seeds(self) -> List[int]:
        """Per-cell seeds (``spawn_seeds`` of the grid seed, by position,
        unless explicit ``seeds`` were passed at construction)."""
        if self._seeds_override is not None:
            return list(self._seeds_override)
        return spawn_seeds(len(self.configs), self.seed)

    # ------------------------------------------------------------------
    def run(
        self,
        trace: Optional[Trace] = None,
        plan: Optional["TracePlan"] = None,
        max_size: Optional[int] = None,
        chunk_size: int = DEFAULT_CHUNK,
        use_native: Optional[bool] = None,
        stream: Optional[Iterable[Trace]] = None,
    ) -> List[GridResult]:
        """Evaluate every cell in one streaming pass; ordered like ``configs``.

        ``plan`` supplies a prepared :class:`~repro.engine.plan.TracePlan`
        (cached factorization and hash columns); without one the same
        columns are computed here, once for the whole grid.  ``use_native``
        is forwarded to the SoA stacks.  ``chunk_size`` trades memory
        locality only — results are bit-identical for any value.

        ``stream`` accepts a bounded-memory
        :class:`~repro.workloads.stream.TraceStream` instead of ``trace``:
        keys are interned incrementally (first-seen dense ids via
        :class:`~repro.engine.plan.StreamingTracePlan`), hash columns and
        masks are computed per chunk and shared across cells, and each
        cell's stack grows on demand.  Ids are opaque labels to the
        update walk, so every cell's distances, histogram and counters
        are **bit-identical** to the in-memory ``run(trace)`` over the
        concatenated stream, for any chunking (property-tested in
        ``tests/test_stream.py``).  The source chunking wins, so
        ``chunk_size`` is ignored; ``plan`` cannot be combined with a
        stream.
        """
        if stream is not None:
            if trace is not None:
                raise ValueError("pass either trace= or stream=, not both")
            if plan is not None:
                raise ValueError(
                    "plan caches whole-trace columns; streams intern and "
                    "hash per chunk instead"
                )
            return self._run_stream(stream, max_size, use_native)
        if trace is None:
            raise ValueError("run() needs a trace or a stream")
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        keys = trace.keys
        n = int(keys.shape[0])
        if plan is not None:
            kids = plan.key_ids
            key_table = plan.unique_keys
        else:
            key_table, kids = factorize_keys(keys)
        kids = np.ascontiguousarray(kids, dtype=np.int64)
        key_table = np.asarray(key_table, dtype=np.int64)
        n_unique = int(key_table.shape[0])

        seeds = self.config_seeds()
        n_cells = len(self.configs)

        # The grid-wide SoA state block: one slot row + one position row
        # per cell.  Rows of a C-contiguous 2-D array are themselves
        # contiguous, so each stack operates on its row zero-copy.
        width = max(1, n_unique)
        stack_block = np.zeros((n_cells, width), dtype=np.int64)
        pos_block = np.empty((n_cells, width), dtype=np.int64)

        masks: Dict[Tuple[int, int, int], np.ndarray] = {}
        cells: List[_Cell] = []
        for c, cfg in enumerate(self.configs):
            rate = getattr(cfg, "sampling_rate", None)
            mask_key: Optional[Tuple[int, int, int]] = None
            scale = 1.0
            if rate is not None:
                sampler = SpatialSampler(float(rate))
                scale = sampler.scale
                mask_key = (sampler.seed, sampler.modulus, sampler.threshold)
                if mask_key not in masks:
                    if plan is not None:
                        masks[mask_key] = plan.sample_mask(
                            sampler.threshold, sampler.modulus, sampler.seed
                        )
                    else:
                        masks[mask_key] = sampler.mask(keys)
            effective_k = (
                corrected_k(int(cfg.k), DEFAULT_EXPONENT)  # type: ignore[attr-defined]
                if getattr(cfg, "correction", True)
                else float(int(cfg.k))  # type: ignore[attr-defined]
            )
            stack = SoAKRRStack(
                effective_k,
                strategy=getattr(cfg, "strategy", "backward"),
                rng=seeds[c],
                use_native=use_native,
                stack_buffer=stack_block[c],
                pos_buffer=pos_block[c],
            )
            cells.append(
                _Cell(cfg, seeds[c], stack, DistanceHistogram(scale=scale), mask_key)
            )

        # One pass: each chunk of dense ids visits every cell while hot.
        for lo in range(0, n, chunk_size):
            hi = min(n, lo + chunk_size)
            kids_chunk = kids[lo:hi]
            for cell in cells:
                if cell.mask_key is not None:
                    sub = kids_chunk[masks[cell.mask_key][lo:hi]]
                else:
                    sub = kids_chunk
                distances = cell.stack.access_many_ids(sub, key_table)
                cell.hist.record_many(distances)
                cell.sampled += int(sub.shape[0])
                cell.cold += int(np.count_nonzero(distances == -1))

        return self._collect_results(cells, n, max_size)

    def _run_stream(
        self,
        stream: Iterable[Trace],
        max_size: Optional[int],
        use_native: Optional[bool],
    ) -> List[GridResult]:
        """Out-of-core half of :meth:`run`: per-chunk interning and masks."""
        from ..engine.plan import StreamingTracePlan

        splan = StreamingTracePlan()
        seeds = self.config_seeds()
        cells: List[_Cell] = []
        for c, cfg in enumerate(self.configs):
            rate = getattr(cfg, "sampling_rate", None)
            mask_key: Optional[Tuple[int, int, int]] = None
            scale = 1.0
            if rate is not None:
                sampler = SpatialSampler(float(rate))
                scale = sampler.scale
                mask_key = (sampler.seed, sampler.modulus, sampler.threshold)
            effective_k = (
                corrected_k(int(cfg.k), DEFAULT_EXPONENT)  # type: ignore[attr-defined]
                if getattr(cfg, "correction", True)
                else float(int(cfg.k))  # type: ignore[attr-defined]
            )
            # Growable stacks: a stream's distinct-key count is unknown up
            # front, so the fixed grid-wide 2-D state block does not apply.
            stack = SoAKRRStack(
                effective_k,
                strategy=getattr(cfg, "strategy", "backward"),
                rng=seeds[c],
                use_native=use_native,
            )
            cells.append(
                _Cell(cfg, seeds[c], stack, DistanceHistogram(scale=scale), mask_key)
            )

        for chunk in stream:
            splan.observe(chunk)
            kids = splan.intern(chunk.keys)
            masks: Dict[Tuple[int, int, int], np.ndarray] = {}
            for cell in cells:
                if cell.mask_key is not None:
                    mask = masks.get(cell.mask_key)
                    if mask is None:
                        mseed, modulus, threshold = cell.mask_key
                        mask = splan.chunk_sample_mask(
                            chunk.keys, threshold, modulus, mseed
                        )
                        masks[cell.mask_key] = mask
                    sub = kids[mask]
                else:
                    sub = kids
                distances = cell.stack.access_many_interned(sub)
                cell.hist.record_many(distances)
                cell.sampled += int(sub.shape[0])
                cell.cold += int(np.count_nonzero(distances == -1))
        return self._collect_results(cells, splan.n_requests, max_size)

    def _collect_results(
        self, cells: List[_Cell], n: int, max_size: Optional[int]
    ) -> List[GridResult]:
        results: List[GridResult] = []
        for cell in cells:
            curve = from_distance_histogram(
                cell.hist,
                max_size=max_size,
                label=f"KRR(K={int(cell.config.k)})",  # type: ignore[attr-defined]
            )
            results.append(
                GridResult(
                    config=cell.config,
                    seed=cell.seed,
                    sizes=curve.sizes,
                    miss_ratios=curve.miss_ratios,
                    unit="objects",
                    requests_seen=n,
                    requests_sampled=cell.sampled,
                    cold_misses=cell.cold,
                    stack_updates=cell.stack.updates,
                    swap_positions=cell.stack.total_swaps,
                )
            )
        return results
