"""The KRR probabilistic stack (§4.1, §4.4).

:class:`KRRStack` is the paper's data structure: a simple array holding
objects in stack order plus a hash table mapping key → array index, so a
referenced object's stack distance is found in ``O(1)``.  Each access draws
a swap-position set from the configured update strategy (linear / top-down /
backward — all sampling the same distribution, Eq. 4.1) and applies one
cyclic shift (Figure 4.2(b)).

With ``track_sizes=True`` the stack also maintains the logarithmic
``sizeArray`` so byte-level stack distances come back alongside the
object-level ones (var-KRR, §4.4.1).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

import numpy as np

from .._util import RngLike, ensure_rng
from .sizearray import SizeArray
from .updates import UpdateStrategy, apply_swaps, make_strategy

__all__ = [
    "KRRStack",
]



class KRRStack:
    """Array-backed KRR stack with pluggable fast update.

    Parameters
    ----------
    k:
        The KRR parameter (possibly already corrected, i.e. ``K'``); may be
        fractional.  ``k=1`` reproduces Mattson's RR stack; large ``k``
        approaches an exact LRU stack.
    strategy:
        ``"backward"`` (default, ``O(K logM)``), ``"topdown"``
        (``O(K log^2 M)``) or ``"linear"`` (``O(M)``, oracle).
    track_sizes:
        Maintain the sizeArray for byte-level distances (var-KRR).
    size_array_base:
        Anchor spacing base ``b`` for the sizeArray.
    """

    def __init__(
        self,
        k: float,
        strategy: str | UpdateStrategy = "backward",
        rng: RngLike = None,
        track_sizes: bool = False,
        size_array_base: int = 2,
    ) -> None:
        if k <= 0:
            raise ValueError("K must be positive")
        self.k = float(k)
        rng = ensure_rng(rng)
        if isinstance(strategy, str):
            self._strategy: UpdateStrategy = make_strategy(strategy, self.k, rng)
        else:
            self._strategy = strategy
        self._stack: List[int] = []
        self._pos: dict[int, int] = {}
        self._sizes: dict[int, int] = {}
        self._size_array: Optional[SizeArray] = (
            SizeArray(size_array_base) if track_sizes else None
        )
        #: Cumulative number of swap positions drawn (Fig 5.4's cost proxy).
        self.total_swaps = 0
        #: Number of stack updates performed.
        self.updates = 0

    # ------------------------------------------------------------------
    @property
    def strategy_name(self) -> str:
        return self._strategy.name

    def set_strategy(self, strategy: str | UpdateStrategy, rng: RngLike = None) -> None:
        """Swap the update strategy mid-stream.

        All strategies draw from the same swap-set distribution (§4.3), so
        the stack's statistics are unaffected; this exists so experiments
        can time one strategy on a stack warmed cheaply by another.
        """
        if isinstance(strategy, str):
            self._strategy = make_strategy(strategy, self.k, ensure_rng(rng))
        else:
            self._strategy = strategy

    @property
    def tracks_sizes(self) -> bool:
        return self._size_array is not None

    def __len__(self) -> int:
        return len(self._stack)

    def __contains__(self, key: int) -> bool:
        return key in self._pos

    def position_of(self, key: int) -> int:
        """Current 1-based stack position of ``key`` (-1 if absent)."""
        idx = self._pos.get(key)
        return -1 if idx is None else idx + 1

    def keys_in_stack_order(self) -> List[int]:
        return list(self._stack)

    def sizes_in_stack_order(self) -> List[int]:
        return [self._sizes.get(key, 1) for key in self._stack]

    @property
    def total_bytes(self) -> int:
        if self._size_array is not None:
            return self._size_array.total_bytes
        return sum(self._sizes.values())

    # ------------------------------------------------------------------
    def access(self, key: int, size: int = 1) -> tuple[int, float]:
        """Reference ``key``: returns ``(stack_distance, byte_distance)``.

        ``stack_distance`` is the pre-update 1-based position (``-1`` for a
        cold access).  ``byte_distance`` is the sizeArray estimate of the
        bytes in positions ``1..distance`` (``-1.0`` for cold accesses or
        when size tracking is off).  The stack is then updated.
        """
        idx = self._pos.get(key)
        cold = idx is None
        if cold:
            distance = -1
            self._stack.append(key)
            self._pos[key] = len(self._stack) - 1
            if self._size_array is not None:
                self._size_array.append(size)
            old_size = size
            phi = len(self._stack)
        else:
            distance = idx + 1
            phi = distance
            old_size = self._sizes.get(key, size)

        byte_distance = -1.0
        if not cold and self._size_array is not None:
            byte_distance = self._size_array.byte_distance(phi)

        swaps = self._strategy.swap_positions(phi)
        self.total_swaps += len(swaps)
        self.updates += 1
        if self._size_array is not None:
            resident_sizes = [
                self._sizes.get(self._stack[p - 1], size if p == phi else 1)
                for p in swaps
            ]
            self._size_array.apply_update(swaps, resident_sizes, size, old_size)
        apply_swaps(self._stack, self._pos, swaps)
        self._sizes[key] = size
        return distance, byte_distance

    def access_many(
        self, keys: List[int], sizes: Optional[List[int]] = None
    ) -> tuple[List[int], Optional[List[float]]]:
        """Batched :meth:`access`: one fused loop over many requests.

        Returns ``(distances, byte_distances)``; ``byte_distances`` is
        ``None`` unless ``track_sizes``.  Draw-for-draw identical to an
        equivalent sequence of :meth:`access` calls — same RNG consumption,
        same final stack order — but substantially faster: attribute and
        method lookups are hoisted out of the loop, the cyclic shift is
        inlined, and no per-access result tuple is allocated.

        ``keys``/``sizes`` should be Python lists (callers convert NumPy
        columns with ``tolist()`` once; NumPy scalar unboxing inside the
        loop would dominate otherwise).
        """
        if sizes is None:
            sizes = [1] * len(keys)
        if self._size_array is not None:
            # Size-tracked path: the sizeArray update is the bottleneck,
            # so per-access dispatch overhead is immaterial here.
            access = self.access
            distances: List[int] = []
            byte_distances: List[float] = []
            d_append = distances.append
            b_append = byte_distances.append
            for key, size in zip(keys, sizes):
                d, bd = access(key, size)
                d_append(d)
                b_append(bd)
            return distances, byte_distances
        pos = self._pos
        pos_get = pos.get
        stack = self._stack
        stack_append = stack.append
        obj_sizes = self._sizes
        distances = []
        record = distances.append
        total_swaps = 0
        fused = getattr(self._strategy, "apply_fused", None)
        if fused is not None:
            # Backward strategy: draw chain and cyclic shift fuse into one
            # loop (no swap-list allocation at all).
            for key, size in zip(keys, sizes):
                idx = pos_get(key)
                if idx is None:
                    stack_append(key)
                    phi = len(stack)
                    pos[key] = phi - 1
                    record(-1)
                else:
                    phi = idx + 1
                    record(phi)
                total_swaps += fused(phi, stack, pos)
                obj_sizes[key] = size
            self.total_swaps += total_swaps
            self.updates += len(distances)
            return distances, None
        swap_positions = self._strategy.swap_positions
        for key, size in zip(keys, sizes):
            idx = pos_get(key)
            if idx is None:
                stack_append(key)
                phi = len(stack)
                pos[key] = phi - 1
                record(-1)
            else:
                phi = idx + 1
                record(phi)
            swaps = swap_positions(phi)
            n = len(swaps)
            total_swaps += n
            if n > 1:
                # Inlined apply_swaps(): cyclic shift along the swap chain.
                referenced = stack[phi - 1]
                for j in range(n - 1, 0, -1):
                    dst = swaps[j]
                    moved = stack[swaps[j - 1] - 1]
                    stack[dst - 1] = moved
                    pos[moved] = dst - 1
                stack[0] = referenced
                pos[referenced] = 0
            obj_sizes[key] = size
        self.total_swaps += total_swaps
        self.updates += len(distances)
        return distances, None

    # ------------------------------------------------------------------
    def state_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the stack's mutable state.

        Covers the stack order, per-object sizes, the strategy's buffered
        draws and the cost counters; the RNG generator itself belongs to
        the owning model (one generator is shared model-wide).  Restoring
        via :meth:`load_state` and continuing consumes draws identically
        to a run that never stopped.
        """
        strategy_state: Optional[Dict[str, Any]] = None
        dump = getattr(self._strategy, "state_dict", None)
        if dump is not None:
            strategy_state = dump()
        return {
            "k": self.k,
            "stack": [int(key) for key in self._stack],
            "sizes": [[int(key), int(sz)] for key, sz in self._sizes.items()],
            "strategy": strategy_state,
            "size_array": (
                self._size_array.state_dict()
                if self._size_array is not None
                else None
            ),
            "total_swaps": self.total_swaps,
            "updates": self.updates,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        if float(state["k"]) != self.k:
            raise ValueError(
                f"stack state is for K={state['k']!r}, this stack has K={self.k}"
            )
        self._stack = [int(key) for key in state["stack"]]
        self._pos = {key: i for i, key in enumerate(self._stack)}
        self._sizes = {int(key): int(sz) for key, sz in state["sizes"]}
        if state["strategy"] is not None:
            load = getattr(self._strategy, "load_state", None)
            if load is None:
                raise ValueError(
                    f"strategy {self._strategy.name!r} cannot load state"
                )
            load(state["strategy"])
        if self._size_array is not None:
            if state["size_array"] is None:
                raise ValueError("state has no sizeArray but track_sizes is on")
            self._size_array.load_state(state["size_array"])
        self.total_swaps = int(state["total_swaps"])
        self.updates = int(state["updates"])

    # ------------------------------------------------------------------
    def remove(self, key: int) -> None:
        """Remove an object from the stack (fixed-size spatial sampling).

        Used by the SHARDS ``s_max`` mode: when the sampling threshold
        drops, ejected objects must leave the model's state.  Everything
        below the removed position shifts up one slot; with size tracking
        on, every anchor prefix that contained the object loses its bytes.
        ``O(M)`` — removal happens only ``s_max`` times total, so the
        amortized cost is negligible.
        """
        idx = self._pos.pop(key, None)
        if idx is None:
            return
        self._sizes.pop(key, None)
        del self._stack[idx]
        for i in range(idx, len(self._stack)):
            self._pos[self._stack[i]] = i
        if self._size_array is not None:
            self._size_array.rebuild(self.sizes_in_stack_order())

    def remove_many(self, keys: Iterable[int]) -> None:
        """Remove a batch of objects in one ``O(M)`` pass.

        Used by TTL purging (many expirations at once): rebuilding the
        stack once beats repeated single removals' ``O(M)`` shifts.
        """
        doomed = {k for k in keys if k in self._pos}
        if not doomed:
            return
        self._stack = [k for k in self._stack if k not in doomed]
        self._pos = {k: i for i, k in enumerate(self._stack)}
        for k in doomed:
            self._sizes.pop(k, None)
        if self._size_array is not None:
            self._size_array.rebuild(self.sizes_in_stack_order())

    # ------------------------------------------------------------------
    def exact_byte_distance(self, phi: int) -> int:
        """Exact bytes in positions ``1..phi`` by scanning (test oracle, O(M))."""
        return sum(self._sizes.get(k, 1) for k in self._stack[:phi])

    def memory_estimate_bytes(self) -> int:
        """Rough resident-set estimate mirroring the paper's §5.6 accounting.

        The paper's C implementation spends 68 B per object (stack slot +
        hash entry + auxiliaries) plus 4 B for var-KRR sizes; we report the
        same accounting model so the space-cost bench can reproduce the
        0.036 %-of-working-set claim independent of CPython object overhead.
        """
        per_object = 68 + (4 if self._size_array is not None else 0)
        return per_object * len(self._stack)
