"""KRR stack-update strategies: linear, top-down, backward (§4.3).

All three strategies draw a *swap-position set* for a reference hitting
stack position ``phi`` — the 1-based positions whose resident is displaced
one hop downward — from the identical distribution: position ``i`` in
``[2, phi-1]`` swaps independently with probability ``1 - ((i-1)/i)^K``,
and positions ``1`` and ``phi`` always swap.  They differ only in cost:

============  =====================  =========================
strategy      expected cost/update   mechanism
============  =====================  =========================
`linear`      ``O(M)``               per-position draws (Mattson sweep)
`topdown`     ``O(K log^2 M)``       interval splitting (Algorithm 1)
`backward`    ``O(K log M)``         inverse-CDF chain (Algorithm 2)
============  =====================  =========================

The equivalence of the three distributions is property-tested in
``tests/test_update_equivalence.py``.
"""

from __future__ import annotations

from typing import List, Protocol

import numpy as np

from .._util import RngLike, ensure_rng

__all__ = [
    "BackwardUpdate",
    "LinearUpdate",
    "TopDownUpdate",
    "UpdateStrategy",
    "apply_swaps",
    "make_strategy",
]



class _BufferedUniform:
    """Amortized scalar uniforms from a NumPy generator.

    Per-call overhead of ``Generator.random()`` dominates the fast updates;
    refilling a block and serving *Python* floats (``tolist`` strips the
    NumPy scalar wrapper, whose arithmetic is ~10x slower) keeps draws cheap
    while preserving seeded reproducibility.
    """

    __slots__ = ("_rng", "_buf", "_pos", "_block")

    def __init__(self, rng: np.random.Generator, block: int = 4096) -> None:
        self._rng = rng
        self._block = block
        self._buf = rng.random(block).tolist()
        self._pos = 0

    def __call__(self) -> float:
        pos = self._pos
        if pos >= self._block:
            self._buf = self._rng.random(self._block).tolist()
            self._pos = pos = 0
        self._pos = pos + 1
        return self._buf[pos]


class UpdateStrategy(Protocol):
    """Draws swap-position sets for KRR stack updates."""

    name: str

    def swap_positions(self, phi: int) -> List[int]:
        """Sorted 1-based swap positions for a hit at ``phi`` (includes 1, phi)."""
        ...


class LinearUpdate:
    """Naive Mattson sweep: one Bernoulli draw per stack position, ``O(M)``."""

    name = "linear"

    def __init__(self, k: float, rng: RngLike = None) -> None:
        if k <= 0:
            raise ValueError("K must be positive")
        self.k = float(k)
        self._uniform = _BufferedUniform(ensure_rng(rng))
        # Survival probabilities ((i-1)/i)^K depend only on the position,
        # not the access: cache them (grow-on-demand, indexed by position)
        # instead of paying one pow() per position per access.
        self._survival: List[float] = [0.0, 0.0]  # positions 0/1 never drawn

    def swap_positions(self, phi: int) -> List[int]:
        if phi < 1:
            raise ValueError("phi must be >= 1")
        if phi == 1:
            return [1]
        survival = self._survival
        if phi > len(survival):
            k = self.k
            survival.extend(
                ((i - 1) / i) ** k for i in range(len(survival), phi)
            )
        swaps = [1]
        u = self._uniform
        for i in range(2, phi):
            if u() >= survival[i]:
                swaps.append(i)
        swaps.append(phi)
        return swaps


class BackwardUpdate:
    """Algorithm 2: generate swap positions bottom-up via the inverse CDF.

    Starting at ``i = phi``, the next swap position below ``i`` is the
    evicted rank in a KRR cache of size ``i - 1``; its CDF is
    ``(x/(i-1))^K``, so ``x = ceil(u^(1/K) * (i-1))`` with ``u`` uniform on
    (0, 1].  Each loop iteration produces exactly one swap position, so the
    expected cost matches Corollary 1's ``O(K logM)``.
    """

    name = "backward"

    _BLOCK = 4096

    def __init__(self, k: float, rng: RngLike = None) -> None:
        if k <= 0:
            raise ValueError("K must be positive")
        self.k = float(k)
        self._inv_k = 1.0 / float(k)
        self._rng = ensure_rng(rng)
        self._buf: List[float] = []
        self._pos = 0
        self._refills = -1  # first _refill() brings it to 0
        self._refill()

    def _refill(self) -> None:
        # Pre-apply the inverse-CDF power to a whole block at once: the
        # vectorized u^(1/K) is ~20x cheaper than scalar pow in the loop.
        u = 1.0 - self._rng.random(self._BLOCK)  # uniform on (0, 1]
        self._buf = (u**self._inv_k).tolist()
        self._pos = 0
        self._refills += 1

    def swap_positions(self, phi: int) -> List[int]:
        if phi < 1:
            raise ValueError("phi must be >= 1")
        if phi == 1:
            return [1]
        rev: List[int] = [phi]
        i = phi
        buf = self._buf
        pos = self._pos
        block = self._BLOCK
        while i > 1:
            if pos >= block:
                self._refill()
                buf = self._buf
                pos = 0
            v = buf[pos] * (i - 1)
            pos += 1
            x = int(v)
            if x < v:
                x += 1
            if x < 1:
                x = 1
            elif x > i - 1:
                x = i - 1
            rev.append(x)
            i = x
        self._pos = pos
        rev.reverse()
        return rev

    def apply_fused(self, phi: int, stack: list, pos: dict) -> int:
        """Draw the swap chain and apply its cyclic shift in one pass.

        The backward chain is generated top-down (``phi`` first) — exactly
        the order :func:`apply_swaps` consumes a sorted swap set bottom-up —
        so the draw and the shift fuse into a single loop with no swap-list
        allocation.  Consumes the same buffered draws as
        ``swap_positions(phi)`` (draw-for-draw parity) and leaves ``stack``/
        ``pos`` exactly as ``apply_swaps`` would.  Returns the size of the
        equivalent swap-position set (for the cost counters).
        """
        if phi < 1:
            raise ValueError("phi must be >= 1")
        if phi == 1:
            return 1
        referenced = stack[phi - 1]
        buf = self._buf
        bpos = self._pos
        block = self._BLOCK
        draws_before = self._refills * block + bpos
        # Zero-based loop over slot indices: j is the slot receiving the
        # displaced resident, y = ceil(u*j) - 1 the slot it comes from.
        # u in (0, 1] makes ceil(u*j) land in [1, j] already, so the
        # defensive clamps of swap_positions() are provably dead here.
        j = phi - 1
        while j > 0:
            if bpos >= block:
                self._refill()
                buf = self._buf
                bpos = 0
            v = buf[bpos] * j
            bpos += 1
            t = int(v)
            y = t if t < v else t - 1
            moved = stack[y]
            stack[j] = moved
            pos[moved] = j
            j = y
        stack[0] = referenced
        pos[referenced] = 0
        self._pos = bpos
        return 1 + self._refills * block + bpos - draws_before


class TopDownUpdate:
    """Algorithm 1: identify swap positions by recursive interval splitting.

    The survival probabilities telescope — P(no swap in ``[a, b]``) is
    ``((a-1)/b)^K`` — so an interval known to contain at least one swap can
    be split at its midpoint and the (only-left / only-right / both) case
    drawn from the correctly conditioned joint distribution.  Expected node
    visits are ``O(K log^2 M)`` (Proposition 3); the instance counter
    :attr:`nodes_visited` lets benchmarks verify that scaling.
    """

    name = "topdown"

    def __init__(self, k: float, rng: RngLike = None) -> None:
        if k <= 0:
            raise ValueError("K must be positive")
        self.k = float(k)
        self._uniform = _BufferedUniform(ensure_rng(rng))
        self.nodes_visited = 0

    def _no_swap(self, a: int, b: int) -> float:
        """P(no swap position in [a, b]) = ((a-1)/b)^K."""
        return ((a - 1) / b) ** self.k

    def swap_positions(self, phi: int) -> List[int]:
        if phi < 1:
            raise ValueError("phi must be >= 1")
        if phi == 1:
            return [1]
        swaps: List[int] = []
        u = self._uniform
        if phi > 2:
            a, b = 2, phi - 1
            # Condition on at least one swap existing in [2, phi-1].
            if u() >= self._no_swap(a, b):
                stack: List[tuple[int, int]] = [(a, b)]
                while stack:
                    self.nodes_visited += 1
                    lo, hi = stack.pop()
                    if lo == hi:
                        swaps.append(lo)
                        continue
                    mid = (lo + hi + 1) // 2  # split: [lo, mid-1], [mid, hi]
                    nsw1 = self._no_swap(lo, mid - 1)
                    nsw2 = self._no_swap(mid, hi)
                    sw1 = 1.0 - nsw1
                    sw2 = 1.0 - nsw2
                    only1 = sw1 * nsw2
                    only2 = nsw1 * sw2
                    both = sw1 * sw2
                    weight = only1 + only2 + both
                    r = u() * weight
                    if r < only1:
                        stack.append((lo, mid - 1))
                    elif r < only1 + only2:
                        stack.append((mid, hi))
                    else:
                        stack.append((mid, hi))
                        stack.append((lo, mid - 1))
        swaps.sort()
        return [1] + swaps + [phi]


def make_strategy(name: str, k: float, rng: RngLike = None) -> UpdateStrategy:
    """Factory: ``"linear"``, ``"topdown"`` or ``"backward"`` by name."""
    table = {
        "linear": LinearUpdate,
        "topdown": TopDownUpdate,
        "backward": BackwardUpdate,
    }
    if name not in table:
        raise ValueError(f"unknown update strategy {name!r}; choose from {sorted(table)}")
    return table[name](k, rng)


def apply_swaps(stack: list, pos: dict, swaps: List[int]) -> None:
    """Apply one cyclic shift over sorted swap positions (Fig 4.2(b)).

    ``stack`` is 0-indexed (slot 0 = position 1); ``pos`` maps key -> index.
    The referenced object at ``swaps[-1]`` moves to the top and every other
    swap position's resident moves down to the next swap position.
    """
    if len(swaps) == 1:  # phi == 1, referenced already on top
        return
    phi = swaps[-1]
    referenced = stack[phi - 1]
    # Shift residents downward along the swap chain, bottom-up.
    for j in range(len(swaps) - 1, 0, -1):
        src = swaps[j - 1]
        dst = swaps[j]
        moved = stack[src - 1]
        stack[dst - 1] = moved
        pos[moved] = dst - 1
    stack[0] = referenced
    pos[referenced] = 0
