"""KRR stack-update strategies: linear, top-down, backward (§4.3).

All three strategies draw a *swap-position set* for a reference hitting
stack position ``phi`` — the 1-based positions whose resident is displaced
one hop downward — from the identical distribution: position ``i`` in
``[2, phi-1]`` swaps independently with probability ``1 - ((i-1)/i)^K``,
and positions ``1`` and ``phi`` always swap.  They differ only in cost:

============  =====================  =========================
strategy      expected cost/update   mechanism
============  =====================  =========================
`linear`      ``O(M)``               per-position draws (Mattson sweep)
`topdown`     ``O(K log^2 M)``       interval splitting (Algorithm 1)
`backward`    ``O(K log M)``         inverse-CDF chain (Algorithm 2)
============  =====================  =========================

The equivalence of the three distributions is property-tested in
``tests/test_update_equivalence.py``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Protocol

import numpy as np

from .._util import RngLike, ensure_rng

__all__ = [
    "BackwardUpdate",
    "DRAW_BLOCK",
    "LinearUpdate",
    "SurvivalTable",
    "TopDownUpdate",
    "UpdateStrategy",
    "apply_swaps",
    "backward_draw_block",
    "make_strategy",
    "survival_table",
]


#: Draw-buffer block size shared by every consumer of a strategy's RNG
#: stream.  The scalar strategies and the SoA engine
#: (:mod:`repro.stack.soa`) both refill in blocks of exactly this many
#: ``Generator.random`` draws, which is what makes their consumption
#: patterns — and therefore their results — bit-identical.
DRAW_BLOCK = 4096


def backward_draw_block(
    rng: np.random.Generator, inv_k: float, block: int = DRAW_BLOCK
) -> np.ndarray:
    """One backward-update draw block: ``(1 - U)^(1/K)`` for a uniform block.

    The inverse-CDF power is pre-applied to the whole block at once (the
    vectorized ``u^(1/K)`` is ~20x cheaper than scalar ``pow`` in the
    chain loop).  This is the *single* source of backward-update draws:
    :class:`BackwardUpdate` serves the block as Python floats and the SoA
    engine consumes the array directly, so for the same generator state
    both paths see exactly the same IEEE-754 values in the same order.
    """
    u = 1.0 - rng.random(block)  # uniform on (0, 1]
    out = u**inv_k
    assert isinstance(out, np.ndarray)
    return out


class SurvivalTable:
    """Per-K cache of the linear-update survival probabilities.

    Position ``i`` of the stack survives a reference (keeps its resident)
    with probability ``((i-1)/i)^K`` (Eq. 4.1); the values depend only on
    ``(i, K)``, so one grow-on-demand table per ``K`` serves every
    consumer.  :meth:`as_list` feeds the scalar :class:`LinearUpdate`
    sweep (Python floats, shared list identity so growth is free) and
    :meth:`as_array` feeds the vectorized SoA path; both views expose the
    *same* float64 values, computed once, so survival comparisons agree
    bit-for-bit across engines.

    Entries 0 and 1 are 0.0: positions below 2 are never drawn against.
    """

    __slots__ = ("k", "_values", "_array")

    def __init__(self, k: float) -> None:
        if k <= 0:
            raise ValueError("K must be positive")
        self.k = float(k)
        self._values: List[float] = [0.0, 0.0]
        self._array = np.asarray(self._values, dtype=np.float64)

    def __len__(self) -> int:
        return len(self._values)

    def as_list(self, n: int) -> List[float]:
        """The shared value list, grown to cover positions ``< n``."""
        values = self._values
        if n > len(values):
            k = self.k
            values.extend(((i - 1) / i) ** k for i in range(len(values), n))
        return values

    def as_array(self, n: int) -> np.ndarray:
        """Array view of the same values, grown to cover positions ``< n``."""
        values = self.as_list(n)
        if self._array.shape[0] < len(values):
            self._array = np.asarray(values, dtype=np.float64)
        return self._array


_SURVIVAL_TABLES: Dict[float, SurvivalTable] = {}


def survival_table(k: float) -> SurvivalTable:
    """The process-wide shared :class:`SurvivalTable` for sampling size ``k``."""
    table = _SURVIVAL_TABLES.get(float(k))
    if table is None:
        table = SurvivalTable(k)
        _SURVIVAL_TABLES[float(k)] = table
    return table


class _BufferedUniform:
    """Amortized scalar uniforms from a NumPy generator.

    Per-call overhead of ``Generator.random()`` dominates the fast updates;
    refilling a block and serving *Python* floats (``tolist`` strips the
    NumPy scalar wrapper, whose arithmetic is ~10x slower) keeps draws cheap
    while preserving seeded reproducibility.  The first block is drawn
    lazily on first use, so constructing a strategy consumes no generator
    state (the engine selector in :class:`~repro.core.model.KRRModel`
    relies on this to hand the untouched generator to either engine).
    """

    __slots__ = ("_rng", "_buf", "_pos", "_block")

    def __init__(self, rng: np.random.Generator, block: int = DRAW_BLOCK) -> None:
        self._rng = rng
        self._block = block
        self._buf: List[float] = []
        self._pos = block  # forces a refill on first draw

    def __call__(self) -> float:
        pos = self._pos
        if pos >= self._block:
            self._buf = self._rng.random(self._block).tolist()
            self._pos = pos = 0
        self._pos = pos + 1
        return self._buf[pos]

    def state_dict(self) -> Dict[str, Any]:
        """Buffered draws not yet served (the generator state lives with
        the owner of the shared ``Generator``, not here)."""
        return {"buf": list(self._buf), "pos": self._pos}

    def load_state(self, state: Dict[str, Any]) -> None:
        self._buf = [float(v) for v in state["buf"]]
        self._pos = int(state["pos"])


class UpdateStrategy(Protocol):
    """Draws swap-position sets for KRR stack updates."""

    name: str

    def swap_positions(self, phi: int) -> List[int]:
        """Sorted 1-based swap positions for a hit at ``phi`` (includes 1, phi)."""
        ...


class LinearUpdate:
    """Naive Mattson sweep: one Bernoulli draw per stack position, ``O(M)``."""

    name = "linear"

    def __init__(self, k: float, rng: RngLike = None) -> None:
        if k <= 0:
            raise ValueError("K must be positive")
        self.k = float(k)
        self._uniform = _BufferedUniform(ensure_rng(rng))
        # Survival probabilities ((i-1)/i)^K depend only on the position,
        # not the access: the process-wide shared table caches them
        # (grow-on-demand, indexed by position) instead of paying one
        # pow() per position per access — and the SoA engine compares
        # against the very same values.
        self._table = survival_table(self.k)

    def state_dict(self) -> Dict[str, Any]:
        return {"kind": self.name, "uniform": self._uniform.state_dict()}

    def load_state(self, state: Dict[str, Any]) -> None:
        if state.get("kind") != self.name:
            raise ValueError(f"state is for strategy {state.get('kind')!r}")
        self._uniform.load_state(state["uniform"])

    def swap_positions(self, phi: int) -> List[int]:
        if phi < 1:
            raise ValueError("phi must be >= 1")
        if phi == 1:
            return [1]
        survival = self._table.as_list(phi)
        swaps = [1]
        u = self._uniform
        for i in range(2, phi):
            if u() >= survival[i]:
                swaps.append(i)
        swaps.append(phi)
        return swaps


class BackwardUpdate:
    """Algorithm 2: generate swap positions bottom-up via the inverse CDF.

    Starting at ``i = phi``, the next swap position below ``i`` is the
    evicted rank in a KRR cache of size ``i - 1``; its CDF is
    ``(x/(i-1))^K``, so ``x = ceil(u^(1/K) * (i-1))`` with ``u`` uniform on
    (0, 1].  Each loop iteration produces exactly one swap position, so the
    expected cost matches Corollary 1's ``O(K logM)``.
    """

    name = "backward"

    _BLOCK = DRAW_BLOCK

    def __init__(self, k: float, rng: RngLike = None) -> None:
        if k <= 0:
            raise ValueError("K must be positive")
        self.k = float(k)
        self._inv_k = 1.0 / float(k)
        self._rng = ensure_rng(rng)
        # The first block is drawn lazily (pos == _BLOCK forces a refill
        # on first use): constructing the strategy consumes no generator
        # state, so an engine selector can still hand the untouched
        # generator to the SoA path.
        self._buf: List[float] = []
        self._pos = self._BLOCK
        self._refills = -1  # first _refill() brings it to 0

    def _refill(self) -> None:
        # One shared inverse-CDF block transform (see backward_draw_block);
        # served as Python floats for the scalar chain loop.
        self._buf = backward_draw_block(self._rng, self._inv_k, self._BLOCK).tolist()
        self._pos = 0
        self._refills += 1

    def state_dict(self) -> Dict[str, Any]:
        """Unserved buffered draws + refill count (floats round-trip
        exactly through JSON ``repr``, so a restored strategy replays the
        identical tail of the current block before touching the RNG)."""
        return {
            "kind": self.name,
            "buf": list(self._buf),
            "pos": self._pos,
            "refills": self._refills,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        if state.get("kind") != self.name:
            raise ValueError(f"state is for strategy {state.get('kind')!r}")
        self._buf = [float(v) for v in state["buf"]]
        self._pos = int(state["pos"])
        self._refills = int(state["refills"])

    def swap_positions(self, phi: int) -> List[int]:
        if phi < 1:
            raise ValueError("phi must be >= 1")
        if phi == 1:
            return [1]
        rev: List[int] = [phi]
        i = phi
        buf = self._buf
        pos = self._pos
        block = self._BLOCK
        while i > 1:
            if pos >= block:
                self._refill()
                buf = self._buf
                pos = 0
            v = buf[pos] * (i - 1)
            pos += 1
            x = int(v)
            if x < v:
                x += 1
            if x < 1:
                x = 1
            elif x > i - 1:
                x = i - 1
            rev.append(x)
            i = x
        self._pos = pos
        rev.reverse()
        return rev

    def apply_fused(self, phi: int, stack: list, pos: dict) -> int:
        """Draw the swap chain and apply its cyclic shift in one pass.

        The backward chain is generated top-down (``phi`` first) — exactly
        the order :func:`apply_swaps` consumes a sorted swap set bottom-up —
        so the draw and the shift fuse into a single loop with no swap-list
        allocation.  Consumes the same buffered draws as
        ``swap_positions(phi)`` (draw-for-draw parity) and leaves ``stack``/
        ``pos`` exactly as ``apply_swaps`` would.  Returns the size of the
        equivalent swap-position set (for the cost counters).
        """
        if phi < 1:
            raise ValueError("phi must be >= 1")
        if phi == 1:
            return 1
        referenced = stack[phi - 1]
        buf = self._buf
        bpos = self._pos
        block = self._BLOCK
        draws_before = self._refills * block + bpos
        # Zero-based loop over slot indices: j is the slot receiving the
        # displaced resident, y = ceil(u*j) - 1 the slot it comes from.
        # u in (0, 1] makes ceil(u*j) land in [1, j] already, so the
        # defensive clamps of swap_positions() are provably dead here.
        j = phi - 1
        while j > 0:
            if bpos >= block:
                self._refill()
                buf = self._buf
                bpos = 0
            v = buf[bpos] * j
            bpos += 1
            t = int(v)
            y = t if t < v else t - 1
            moved = stack[y]
            stack[j] = moved
            pos[moved] = j
            j = y
        stack[0] = referenced
        pos[referenced] = 0
        self._pos = bpos
        return 1 + self._refills * block + bpos - draws_before


class TopDownUpdate:
    """Algorithm 1: identify swap positions by recursive interval splitting.

    The survival probabilities telescope — P(no swap in ``[a, b]``) is
    ``((a-1)/b)^K`` — so an interval known to contain at least one swap can
    be split at its midpoint and the (only-left / only-right / both) case
    drawn from the correctly conditioned joint distribution.  Expected node
    visits are ``O(K log^2 M)`` (Proposition 3); the instance counter
    :attr:`nodes_visited` lets benchmarks verify that scaling.
    """

    name = "topdown"

    def __init__(self, k: float, rng: RngLike = None) -> None:
        if k <= 0:
            raise ValueError("K must be positive")
        self.k = float(k)
        self._uniform = _BufferedUniform(ensure_rng(rng))
        self.nodes_visited = 0

    def _no_swap(self, a: int, b: int) -> float:
        """P(no swap position in [a, b]) = ((a-1)/b)^K."""
        return ((a - 1) / b) ** self.k

    def state_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.name,
            "uniform": self._uniform.state_dict(),
            "nodes_visited": self.nodes_visited,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        if state.get("kind") != self.name:
            raise ValueError(f"state is for strategy {state.get('kind')!r}")
        self._uniform.load_state(state["uniform"])
        self.nodes_visited = int(state.get("nodes_visited", 0))

    def swap_positions(self, phi: int) -> List[int]:
        if phi < 1:
            raise ValueError("phi must be >= 1")
        if phi == 1:
            return [1]
        swaps: List[int] = []
        u = self._uniform
        if phi > 2:
            a, b = 2, phi - 1
            # Condition on at least one swap existing in [2, phi-1].
            if u() >= self._no_swap(a, b):
                stack: List[tuple[int, int]] = [(a, b)]
                while stack:
                    self.nodes_visited += 1
                    lo, hi = stack.pop()
                    if lo == hi:
                        swaps.append(lo)
                        continue
                    mid = (lo + hi + 1) // 2  # split: [lo, mid-1], [mid, hi]
                    nsw1 = self._no_swap(lo, mid - 1)
                    nsw2 = self._no_swap(mid, hi)
                    sw1 = 1.0 - nsw1
                    sw2 = 1.0 - nsw2
                    only1 = sw1 * nsw2
                    only2 = nsw1 * sw2
                    both = sw1 * sw2
                    weight = only1 + only2 + both
                    r = u() * weight
                    if r < only1:
                        stack.append((lo, mid - 1))
                    elif r < only1 + only2:
                        stack.append((mid, hi))
                    else:
                        stack.append((mid, hi))
                        stack.append((lo, mid - 1))
        swaps.sort()
        return [1] + swaps + [phi]


def make_strategy(name: str, k: float, rng: RngLike = None) -> UpdateStrategy:
    """Factory: ``"linear"``, ``"topdown"`` or ``"backward"`` by name."""
    table = {
        "linear": LinearUpdate,
        "topdown": TopDownUpdate,
        "backward": BackwardUpdate,
    }
    if name not in table:
        raise ValueError(f"unknown update strategy {name!r}; choose from {sorted(table)}")
    return table[name](k, rng)


def apply_swaps(stack: list, pos: dict, swaps: List[int]) -> None:
    """Apply one cyclic shift over sorted swap positions (Fig 4.2(b)).

    ``stack`` is 0-indexed (slot 0 = position 1); ``pos`` maps key -> index.
    The referenced object at ``swaps[-1]`` moves to the top and every other
    swap position's resident moves down to the next swap position.
    """
    if len(swaps) == 1:  # phi == 1, referenced already on top
        return
    phi = swaps[-1]
    referenced = stack[phi - 1]
    # Shift residents downward along the swap chain, bottom-up.
    for j in range(len(swaps) - 1, 0, -1):
        src = swaps[j - 1]
        dst = swaps[j]
        moved = stack[src - 1]
        stack[dst - 1] = moved
        pos[moved] = dst - 1
    stack[0] = referenced
    pos[referenced] = 0
