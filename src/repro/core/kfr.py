"""KFR (experimental): a KRR-style stack model for sampled LFU.

The paper's conclusion leaves "other random-sampling policies which use
other metrics, such as access frequency" as future work.  This module is
our take: the same probabilistic-stack machinery, with the stack tracking
*frequency* rank instead of recency rank.

Construction.  Keep the stack approximately ordered by access count
(highest first, ties broken newest-first).  On an access:

1. the object's pre-update stack position is its (approximate) frequency
   rank — recorded as the stack distance, exactly as KRR records recency
   rank (the sampled-LFU analog of Assumption 1 is "position i holds the
   rank-i object of any size-i prefix");
2. the object's count increments, so its rank improves: it re-inserts at
   the *top of its new frequency class* — position ``p_new = #{objects
   with count > c+1} + 1``, computed in ``O(log C_max)`` with a Fenwick
   tree over frequency values;
3. instead of shifting every object in ``[p_new, p_old)`` down by one
   (``O(M)``), a backward swap chain with KRR's eviction-CDF draws
   (Algorithm 2, truncated at ``p_new``) displaces only an expected
   ``O(K log)`` of them — the same approximation KRR makes for recency.

Status: **experimental**.  Unlike KRR, no correctness argument ties the
stay probabilities to the sampled-LFU eviction distribution when ranks are
frequency-based; accuracy is established empirically in
``tests/test_kfr.py`` and ``benchmarks/bench_ext_kfr.py`` (MAE ~1e-2 on
skewed workloads, a few~1e-2 on adversarial ones — rougher than KRR's
1e-3, but far better than using an exact-LFU or LRU curve).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

import numpy as np

from .._util import RngLike, check_sampling_size, ensure_rng
from ..stack.fenwick import FenwickTree
from ..stack.histogram import DistanceHistogram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..mrc.curve import MissRatioCurve
    from ..workloads.trace import Trace

__all__ = [
    "KFRModel",
    "KFRStack",
]



class _FrequencyRanks:
    """Fenwick tree over frequency values: O(log F) rank queries.

    Slot ``f`` counts objects whose current access count is exactly ``f``.
    ``rank_above(f)`` returns how many objects have a strictly greater
    count — the 0-based insertion point for the top of class ``f``.
    """

    __slots__ = ("_ft", "_cap")

    def __init__(self, initial_cap: int = 1 << 12) -> None:
        self._cap = initial_cap
        self._ft = FenwickTree(self._cap)

    def _grow(self, needed: int) -> None:
        new_cap = self._cap
        while new_cap <= needed:
            new_cap *= 2
        old = self._ft
        self._ft = FenwickTree(new_cap)
        for f in range(self._cap):
            v = old.range_sum(f, f)
            if v:
                self._ft.add(f, v)
        self._cap = new_cap

    def add(self, freq: int, delta: int) -> None:
        if freq >= self._cap:
            self._grow(freq)
        self._ft.add(freq, delta)

    def rank_above(self, freq: int) -> int:
        if freq >= self._cap:
            return 0
        return self._ft.range_sum(freq + 1, self._cap - 1)


class KFRStack:
    """Experimental frequency-rank probabilistic stack for sampled LFU."""

    def __init__(self, k: float, rng: RngLike = None) -> None:
        if k <= 0:
            raise ValueError("K must be positive")
        self.k = float(k)
        self._inv_k = 1.0 / float(k)
        self._rng = ensure_rng(rng)
        self._buf = (1.0 - self._rng.random(4096)) ** self._inv_k
        self._buf = self._buf.tolist()
        self._pos_in_buf = 0
        self._stack: List[int] = []
        self._pos: dict[int, int] = {}
        self._freq: dict[int, int] = {}
        self._ranks = _FrequencyRanks()
        self.updates = 0
        self.total_swaps = 0

    def __len__(self) -> int:
        return len(self._stack)

    def __contains__(self, key: int) -> bool:
        return key in self._pos

    def position_of(self, key: int) -> int:
        idx = self._pos.get(key)
        return -1 if idx is None else idx + 1

    def keys_in_stack_order(self) -> List[int]:
        return list(self._stack)

    def frequency_of(self, key: int) -> int:
        return self._freq.get(key, 0)

    # ------------------------------------------------------------------
    def _draw(self) -> float:
        i = self._pos_in_buf
        if i >= 4096:
            self._buf = ((1.0 - self._rng.random(4096)) ** self._inv_k).tolist()
            self._pos_in_buf = i = 0
        self._pos_in_buf = i + 1
        return self._buf[i]

    def access(self, key: int) -> int:
        """Reference ``key``: return its stack distance, then update."""
        self.updates += 1
        idx = self._pos.get(key)
        if idx is None:
            distance = -1
            old_freq = 0
            new_freq = 1
            # Attach at the end, then lift to the top of class 1.
            self._stack.append(key)
            self._pos[key] = len(self._stack) - 1
            p_old = len(self._stack)
        else:
            distance = idx + 1
            p_old = distance
            old_freq = self._freq[key]
            new_freq = old_freq + 1
            self._ranks.add(old_freq, -1)
        self._freq[key] = new_freq
        self._ranks.add(new_freq, 1)
        p_new = self._ranks.rank_above(new_freq) + 1
        if p_new > p_old:
            p_new = p_old  # rank can't worsen on an access
        self._lift(p_new, p_old)
        return distance

    def _lift(self, p_new: int, p_old: int) -> None:
        """Move the object at ``p_old`` up to ``p_new`` via a probabilistic
        swap chain (the backward draw truncated at ``p_new``)."""
        if p_old == p_new:
            return
        # Swap chain from p_old down to p_new, KRR-style.
        chain: List[int] = [p_old]
        i = p_old
        while i > p_new:
            v = self._draw() * (i - 1)
            x = int(v)
            if x < v:
                x += 1
            if x < p_new:
                x = p_new
            elif x > i - 1:
                x = i - 1
            chain.append(x)
            i = x
        chain.reverse()  # ascending: p_new ... p_old
        self.total_swaps += len(chain)
        stack = self._stack
        pos = self._pos
        referenced = stack[p_old - 1]
        for j in range(len(chain) - 1, 0, -1):
            src = chain[j - 1]
            dst = chain[j]
            moved = stack[src - 1]
            stack[dst - 1] = moved
            pos[moved] = dst - 1
        stack[p_new - 1] = referenced
        pos[referenced] = p_new - 1


class KFRModel:
    """One-pass MRC model for a sampled-LFU cache (experimental).

    Mirrors :class:`~repro.core.model.KRRModel`'s shape for the LFU policy;
    no K' correction is applied (the 1.4 exponent was fitted for recency
    ranks — the ablation bench sweeps it for KFR separately).
    """

    def __init__(self, k: int = 5, seed: RngLike = None) -> None:
        self.k = check_sampling_size(k)
        if self.k == 1:
            # With K=1 sampled-LFU is plain random replacement — identical
            # to K-LRU at K=1 — so the exact RR stack (KRR, K=1) applies.
            from .krr import KRRStack

            self._stack = KRRStack(1.0, strategy="backward", rng=ensure_rng(seed))
        else:
            self._stack = KFRStack(self.k, rng=ensure_rng(seed))
        self._hist = DistanceHistogram()

    def access(self, key: int, size: int = 1) -> None:
        result = self._stack.access(int(key))
        dist = result[0] if isinstance(result, tuple) else result
        self._hist.record(dist if dist > 0 else 0)

    def process(self, trace: "Trace") -> "KFRModel":
        for key in trace.keys:
            self.access(int(key))
        return self

    def mrc(self, max_size: int | None = None) -> "MissRatioCurve":
        from ..mrc.builder import from_distance_histogram

        return from_distance_histogram(
            self._hist, max_size=max_size, label=f"KFR(K={self.k})"
        )
