"""Eviction-probability mathematics for random-sampling caches (Chapter 3).

Closed forms for the probability that the rank-``d`` object is the one
evicted when ``K`` residents are sampled from a cache of size ``C``:

* **Proposition 1** (with replacement, Redis-style):
  ``Q(d) = (d^K - (d-1)^K) / C^K``
* **Proposition 2** (without replacement):
  ``Q(d) = C(d-1, K-1) / C(C, K)`` for ``d >= K``, else 0.

Plus the KRR building blocks derived from them: per-position survival
probability ``((i-1)/i)^K`` (Eq. 4.1), the eviction CDF ``(i/C)^K`` and its
inverse (the backward update's draw, Algorithm 2), and the expected
swap-position count of Corollary 1.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np
import numpy.typing as npt

from .._util import check_positive, check_sampling_size

#: Scalar-or-array input accepted by the vectorized closed forms.
RankLike = Union[int, float, "npt.ArrayLike"]
#: Scalar-or-array output: 0-d inputs come back as NumPy scalars.
FloatOrArray = Union[float, "np.floating", "npt.NDArray[np.float64]"]

__all__ = [
    "eviction_cdf",
    "eviction_prob_with_replacement",
    "eviction_prob_without_replacement",
    "expected_swap_positions",
    "expected_swap_positions_bound",
    "inverse_eviction_cdf",
    "krr_eviction_prob",
    "no_swap_probability_interval",
    "stay_probability",
    "swap_probability",
]



def eviction_prob_with_replacement(
    d: RankLike, cache_size: int, k: int
) -> FloatOrArray:
    """Proposition 1: eviction probability of rank ``d`` (1-based, 1 = safest).

    Accepts a scalar or array ``d``; vectorized.  Uses float exponentiation
    via ``exp(K * log d)`` differences computed stably for large ``C``.
    """
    check_positive("cache_size", cache_size)
    k = check_sampling_size(k)
    d_arr = np.asarray(d, dtype=np.float64)
    if np.any(d_arr < 1) or np.any(d_arr > cache_size):
        raise ValueError("ranks must lie in [1, cache_size]")
    c = float(cache_size)
    return (d_arr / c) ** k - ((d_arr - 1) / c) ** k


def eviction_prob_without_replacement(
    d: RankLike, cache_size: int, k: int
) -> FloatOrArray:
    """Proposition 2: eviction probability of rank ``d`` without placing back.

    Zero for ``d < K`` (the K-1 lower-ranked must all be sampled alongside).
    Computed in log space to stay finite for large ``C``.
    """
    check_positive("cache_size", cache_size)
    k = check_sampling_size(k)
    if k > cache_size:
        raise ValueError("K cannot exceed cache size when sampling without replacement")
    d_arr = np.atleast_1d(np.asarray(d, dtype=np.int64))
    if np.any(d_arr < 1) or np.any(d_arr > cache_size):
        raise ValueError("ranks must lie in [1, cache_size]")
    out = np.zeros(d_arr.shape, dtype=np.float64)
    log_denom = _log_comb(cache_size, k)
    mask = d_arr >= k
    dm = d_arr[mask]
    if dm.size:
        log_num = np.array([_log_comb(int(x) - 1, k - 1) for x in dm])
        out[mask] = np.exp(log_num - log_denom)
    return out if np.ndim(d) else float(out[0])


def _log_comb(n: int, r: int) -> float:
    if r < 0 or r > n:
        return float("-inf")
    return math.lgamma(n + 1) - math.lgamma(r + 1) - math.lgamma(n - r + 1)


def stay_probability(i: RankLike, k: float) -> FloatOrArray:
    """KRR survival probability of the position-``i`` resident: ``((i-1)/i)^K``.

    Under Assumption 1 the object at stack position ``i`` has rank ``i`` in a
    cache of size ``i``; Proposition 1 then gives eviction probability
    ``(i^K - (i-1)^K)/i^K``, whose complement this returns.  ``k`` may be
    fractional (the K' correction).
    """
    if k <= 0:
        raise ValueError("K must be positive")
    i_arr = np.asarray(i, dtype=np.float64)
    if np.any(i_arr < 1):
        raise ValueError("stack positions are 1-based")
    return ((i_arr - 1) / i_arr) ** k


def swap_probability(i: RankLike, k: float) -> FloatOrArray:
    """Probability that position ``i`` is a swap position: ``1 - ((i-1)/i)^K``."""
    return 1.0 - stay_probability(i, k)


def no_swap_probability_interval(start: int, end: int, k: float) -> float:
    """Probability that *no* position in ``[start, end]`` swaps.

    The per-position survival probabilities telescope:
    ``prod_{i=start}^{end} ((i-1)/i)^K = ((start-1)/end)^K`` — the identity
    the top-down update's interval splitting relies on (§4.3.1).
    """
    if start < 1 or end < start:
        raise ValueError(f"invalid interval [{start}, {end}]")
    if k <= 0:
        raise ValueError("K must be positive")
    return ((start - 1) / end) ** k


def eviction_cdf(i: RankLike, cache_size: int, k: float) -> FloatOrArray:
    """CDF of the evicted rank under KRR: ``P(X <= i) = (i/C)^K`` (§4.3.2)."""
    check_positive("cache_size", cache_size)
    i_arr = np.asarray(i, dtype=np.float64)
    return (i_arr / cache_size) ** k


def inverse_eviction_cdf(
    u: RankLike, cache_size: int, k: float
) -> Union[np.int64, npt.NDArray[np.int64]]:
    """Inverse CDF draw: rank ``ceil(u^(1/K) * C)`` for uniform ``u`` in (0,1].

    This is the backward update's core step with ``C = i - 1``.  Vectorized;
    clamps into ``[1, C]`` for safety at the floating-point edges.
    """
    check_positive("cache_size", cache_size)
    if k <= 0:
        raise ValueError("K must be positive")
    u_arr = np.asarray(u, dtype=np.float64)
    ranks = np.ceil(u_arr ** (1.0 / k) * cache_size)
    return np.clip(ranks, 1, cache_size).astype(np.int64)


def expected_swap_positions(phi: int, k: float) -> float:
    """Exact expectation of Corollary 1's swap count over positions 1..phi-1.

    ``E = sum_{i=1}^{phi-1} (1 - ((i-1)/i)^K)`` — computed directly; the
    corollary bounds it by ``O(K log M)``.  Position ``phi`` itself is always
    a swap, so a full update displaces ``E + 1`` slots on average.
    """
    if phi < 1:
        raise ValueError("phi must be >= 1")
    if phi == 1:
        return 0.0
    i = np.arange(1, phi, dtype=np.float64)
    return float(np.sum(1.0 - ((i - 1) / i) ** k))


def expected_swap_positions_bound(phi: int, k: float) -> float:
    """Corollary 1's analytic upper bound ``~ 1 + K * ln(phi)``.

    The thesis's integral bound: ``E(beta) <= 1 + K ln(phi - 1)`` for
    ``phi >= 2`` (the first position always swaps; the remaining terms
    integrate to ``K ln``).  Useful for asserting the scaling shape.
    """
    if phi <= 2:
        return 1.0
    return 1.0 + k * math.log(phi - 1)


def krr_eviction_prob(
    i: RankLike, cache_size: int, k: float
) -> FloatOrArray:
    """Equation 4.2: eviction probability of the position-``i`` object.

    The telescoping product over positions ``i..C`` collapses to exactly the
    K-LRU (with replacement) form ``(i^K - (i-1)^K)/C^K`` — the identity
    establishing KRR ≈ K-LRU under Assumption 1 (§4.2).
    """
    check_positive("cache_size", cache_size)
    if k <= 0:
        raise ValueError("K must be positive")
    i_arr = np.asarray(i, dtype=np.float64)
    c = float(cache_size)
    return (i_arr / c) ** k - ((i_arr - 1) / c) ** k
