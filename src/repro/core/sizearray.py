"""Logarithmic prefix-size tracking for variable object sizes (§4.4.1).

The KRR stack orders objects by position, but a byte-capacity cache needs
*byte-level* stack distances: the cumulative size of objects from the stack
top through the referenced object (Figure 4.3).  Maintaining exact prefix
sums would cost ``O(M)`` per update, so the paper keeps only ``O(log M)``
anchors: entry ``j`` of the ``sizeArray`` stores the total size of the
objects at stack positions ``1 .. b^j``.

* A stack update moves residents only at its swap positions; for every
  anchor boundary ``B < phi`` exactly one object crosses out of the prefix
  (the resident at the largest swap position ``<= B``) and exactly one
  crosses in (the referenced object) — so each anchor is patched in O(1)
  (Figure 4.4).
* Byte-level stack distance is interpolated between the two anchors
  bracketing ``phi`` (Algorithm 3).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence

import numpy as np

__all__ = [
    "SizeArray",
]



class SizeArray:
    """Base-``b`` prefix byte sums over a KRR stack.

    The owner (a :class:`~repro.core.krr.KRRStack`) calls :meth:`append` when
    a cold object is attached to the stack end, :meth:`apply_update` with
    each update's swap positions *before* the swap is applied, and
    :meth:`byte_distance` to estimate distances.
    """

    __slots__ = ("base", "_boundaries", "_sums", "_length", "_total")

    def __init__(self, base: int = 2) -> None:
        if base < 2:
            raise ValueError("sizeArray base must be >= 2")
        self.base = int(base)
        self._boundaries: List[int] = []  # positions b^0, b^1, ... (1-based)
        self._sums: List[int] = []  # bytes in positions 1..boundary
        self._length = 0
        self._total = 0

    def __len__(self) -> int:
        return self._length

    @property
    def total_bytes(self) -> int:
        """Total size of all stacked objects."""
        return self._total

    @property
    def anchors(self) -> list[tuple[int, int]]:
        """(boundary position, prefix bytes) pairs — for tests/diagnostics."""
        return list(zip(self._boundaries, self._sums))

    def append(self, size: int) -> None:
        """A cold object of ``size`` bytes was attached to the stack end."""
        if size < 0:
            raise ValueError("size must be >= 0")
        self._length += 1
        self._total += int(size)
        next_boundary = (
            1 if not self._boundaries else self._boundaries[-1] * self.base
        )
        if self._length == next_boundary:
            # The prefix up to this boundary is the whole stack right now.
            self._boundaries.append(next_boundary)
            self._sums.append(self._total)

    def apply_update(
        self,
        swaps: Sequence[int],
        resident_sizes: Sequence[int],
        new_size: int,
        old_size: int,
    ) -> None:
        """Patch anchors for one stack update.

        Parameters
        ----------
        swaps:
            Sorted 1-based swap positions (``swaps[-1] == phi``).
        resident_sizes:
            Size of the resident at each swap position *before* the update
            (parallel to ``swaps``).
        new_size, old_size:
            The referenced object's size after/before this access (they
            differ when a set rewrites the value).
        """
        phi = swaps[-1]
        delta_tail = int(new_size) - int(old_size)
        self._total += delta_tail
        if not self._boundaries:
            return
        boundaries = self._boundaries
        sums = self._sums
        si = 0  # index of the largest swap position <= current boundary
        for j, bound in enumerate(boundaries):
            if bound >= phi:
                # Prefix contents unchanged; only the object's size may have.
                if delta_tail:
                    sums[j] += delta_tail
                continue
            while si + 1 < len(swaps) and swaps[si + 1] <= bound:
                si += 1
            # swaps[si] is the largest swap position <= bound (position 1 is
            # always a swap, so si is well defined); its resident crosses out
            # of this prefix and the referenced object crosses in.
            sums[j] += int(new_size) - int(resident_sizes[si])

    def rebuild(self, sizes_in_stack_order: Sequence[int]) -> None:
        """Recompute every anchor exactly from the live stack's sizes.

        Used after an object is *removed* (fixed-size spatial sampling
        ejects tracked keys): removal shifts the whole tail up one slot, so
        each covering anchor would need the size of the object that crossed
        its boundary — information only the owner has.  Removals are rare
        (bounded by ``s_max`` over a run), so an exact ``O(M)`` rebuild is
        simpler and amortizes to nothing.
        """
        self._length = len(sizes_in_stack_order)
        self._boundaries = []
        self._sums = []
        self._total = int(sum(int(s) for s in sizes_in_stack_order))
        bound = 1
        prefix = 0
        i = 0
        for i, size in enumerate(sizes_in_stack_order, start=1):
            prefix += int(size)
            if i == bound:
                self._boundaries.append(bound)
                self._sums.append(prefix)
                bound *= self.base

    def state_dict(self) -> Dict[str, Any]:
        """Anchor state, verbatim — anchors are path-dependent (patched
        incrementally per update), so snapshots copy them rather than
        rebuilding, keeping restored byte distances identical."""
        return {
            "base": self.base,
            "boundaries": list(self._boundaries),
            "sums": list(self._sums),
            "length": self._length,
            "total": self._total,
        }

    def load_state(self, state: Dict[str, Any]) -> None:
        if int(state["base"]) != self.base:
            raise ValueError("sizeArray base mismatch")
        self._boundaries = [int(b) for b in state["boundaries"]]
        self._sums = [int(s) for s in state["sums"]]
        self._length = int(state["length"])
        self._total = int(state["total"])

    def byte_distance(self, phi: int) -> float:
        """Algorithm 3: interpolated bytes in stack positions ``1 .. phi``."""
        if phi < 1 or phi > self._length:
            raise ValueError(f"phi={phi} outside stack of length {self._length}")
        boundaries = self._boundaries
        sums = self._sums
        # Largest anchor with boundary <= phi (b^0 = 1 <= phi always).
        idx = int(np.searchsorted(boundaries, phi, side="right")) - 1
        sd_low = boundaries[idx]
        low_sum = sums[idx]
        if sd_low == phi:
            return float(low_sum)
        if idx + 1 < len(boundaries):
            sd_high = boundaries[idx + 1]
            high_sum = sums[idx + 1]
        else:
            # phi sits past the last anchor: anchor on the full stack.
            sd_high = self._length
            high_sum = self._total
            if sd_high == sd_low:
                return float(low_sum)
        frac = (phi - sd_low) / (sd_high - sd_low)
        return low_sum + (high_sum - low_sum) * frac

    def exact_prefix(self, sizes_in_stack_order: Sequence[int], phi: int) -> int:
        """Exact bytes in positions ``1..phi`` given true sizes (test oracle)."""
        return int(sum(sizes_in_stack_order[:phi]))
