"""Figure 5.4 — normalized average stack-update overhead vs K (base K=1).

Paper's claim: per-update cost grows with K (Corollary 1: expected swap
positions ~ K log M) but stays moderate — no more than ~4x the K=1 cost up
to K=16 in their measurements (spatial sampling keeps the stack small, so
fixed per-update costs amortize the K-dependent part).

We report both the wall-time ratio (in the practical KRR+spatial mode, as
the paper measures) and the mean swap-positions-per-update ratio (the pure
Corollary-1 quantity) for one trace per suite.
"""

import time

from repro import KRRModel
from repro.analysis import render_table
from repro.workloads import msr, twitter, ycsb

from _common import sampling_rate_for, write_result

KS = (1, 2, 4, 8, 16, 32)
N = 120_000


def test_fig5_4_update_overhead_vs_k(benchmark):
    traces = {
        "YCSB": ycsb.workload_c(12_000, N, 0.99, rng=7),
        "MSR": msr.make_trace("src1", N, scale=0.25),
        "TW": twitter.make_trace("cluster26.0", N, scale=0.3, variable_size=False),
    }

    def run():
        out = {}
        for suite, trace in traces.items():
            rate = sampling_rate_for(trace)
            wall = {}
            swaps = {}
            for k in KS:
                model = KRRModel(k=k, sampling_rate=rate, seed=9)
                t0 = time.perf_counter()
                model.process(trace)
                wall[k] = time.perf_counter() - t0
                swaps[k] = model.stats.mean_swaps_per_update
            out[suite] = (wall, swaps)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for suite, (wall, swaps) in out.items():
        for k in KS:
            rows.append(
                [
                    suite,
                    k,
                    round(wall[k], 3),
                    round(wall[k] / wall[1], 2),
                    round(swaps[k], 1),
                    round(swaps[k] / swaps[1], 2),
                ]
            )
    table = render_table(
        ["suite", "K", "time(s)", "time/K=1", "swaps/update", "swaps/K=1"],
        rows,
        title="Figure 5.4 — stack-update overhead normalized to K=1",
        width=13,
    )
    write_result("fig5_4_k_overhead", table)

    for suite, (wall, swaps) in out.items():
        # Monotone growth in the Corollary-1 cost proxy...
        assert swaps[16] > swaps[1], suite
        # ...but strongly sublinear in K (K'=K^1.4 would suggest ~49x at
        # K=16 if cost were pure swap work; fixed costs keep it far lower).
        assert wall[16] / wall[1] < 16, (suite, wall[16] / wall[1])
        assert wall[8] / wall[1] < 8, suite
