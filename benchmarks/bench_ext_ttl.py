"""Extension — TTL-aware K-LRU modeling (future work §7: expiration time).

Measures the TTL-aware one-pass model against the TTL-aware sampled-LRU
simulator across TTL regimes, documenting the error bands: near-exact when
the TTL exceeds typical reuse times, bounded overestimate when the TTL is
aggressive (a real TTL cache preferentially evicts expired residents, an
effect invisible to stack distances).
"""

import numpy as np

from repro.analysis import render_table
from repro.core.ttl_model import TTLAwareKRRModel
from repro.mrc import mean_absolute_error
from repro.policies import sampled_policy_mrc
from repro.workloads import Trace
from repro.workloads.zipf import ScrambledZipfGenerator

from _common import write_result

TTLS = (2_000, 10_000, 50_000, 10**9)
K = 5


def test_ext_ttl_model(benchmark):
    trace = Trace(
        ScrambledZipfGenerator(2_000, 0.9, rng=1).sample(60_000), name="zipf0.9"
    )

    def run():
        rows = []
        maes = {}
        for mode in ("absolute", "sliding"):
            for ttl in TTLS:
                truth = sampled_policy_mrc(
                    trace, "lru", k=K, n_points=8, ttl=ttl, ttl_mode=mode, rng=2
                )
                model = TTLAwareKRRModel(
                    k=K, ttl=ttl, ttl_mode=mode, seed=3
                ).process(trace)
                pred = model.mrc()
                maes[(mode, ttl)] = mean_absolute_error(truth, pred)
                rows.append(
                    [
                        mode,
                        ttl,
                        round(model.miss_ratio_floor(), 4),
                        round(float(truth(truth.max_size())), 4),
                        round(maes[(mode, ttl)], 4),
                    ]
                )
        return rows, maes

    rows, maes = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["mode", "TTL(requests)", "model floor", "sim mr@max", "MAE"],
        rows,
        title=f"Extension — TTL-aware KRR on {trace.name}, K={K}",
        width=14,
    )
    write_result("ext_ttl", table)

    # With matched semantics the model is accurate in every regime.
    for key, mae in maes.items():
        assert mae < 0.02, (key, mae)
    # The model's expiry floor tracks the simulator's infinite-cache miss
    # ratio (both are P(expired or cold)).
    for mode, ttl, floor, sim_tail, _ in rows:
        assert abs(floor - sim_tail) < 0.02, (mode, ttl)
