"""Table 5.2 — var-KRR MAE on variable-object-size MSR and Twitter traces.

Paper's claim: the size-aware KRR (sizeArray + byte-level distances)
predicts byte-granularity K-LRU MRCs with MAE ~1e-3 (MSR 0.0008, Twitter
0.00025; with spatial sampling 0.0014 / 0.0021) for K in {1..32}.
"""

from repro import model_trace
from repro.analysis import render_table
from repro.mrc import mean_absolute_error
from repro.simulator import byte_klru_mrc, byte_size_grid
from repro.workloads import msr, twitter

from _common import sampling_rate_for, write_result

KS = (1, 2, 4, 8, 16, 32)
N = 50_000


def test_table5_2_varsize_mae(benchmark):
    traces = {
        "MSR": msr.make_trace("src2", N, scale=0.12, variable_size=True),
        "Twitter": twitter.make_trace(
            "cluster26.0", N, scale=0.2, variable_size=True
        ),
    }

    def run():
        rows = []
        all_var = []
        all_spatial = []
        for suite, trace in traces.items():
            sizes = byte_size_grid(trace, 8)
            rate = sampling_rate_for(trace)
            for k in KS:
                truth = byte_klru_mrc(trace, k, sizes=sizes, rng=800 + k)
                var_curve = model_trace(trace, k=k, seed=900 + k).byte_mrc()
                spatial = model_trace(
                    trace, k=k, sampling_rate=rate, seed=1000 + k
                ).byte_mrc()
                mae_v = mean_absolute_error(truth, var_curve)
                mae_s = mean_absolute_error(truth, spatial)
                all_var.append(mae_v)
                all_spatial.append(mae_s)
                rows.append(
                    [suite, k, round(mae_v, 5), round(mae_s, 5)]
                )
        return rows, all_var, all_spatial

    rows, all_var, all_spatial = benchmark.pedantic(run, rounds=1, iterations=1)
    avg_v = sum(all_var) / len(all_var)
    avg_s = sum(all_spatial) / len(all_spatial)
    rows.append(["AVERAGE", "-", round(avg_v, 5), round(avg_s, 5)])
    table = render_table(
        ["suite", "K", "MAE(var-KRR)", "MAE(var-KRR+Spatial)"],
        rows,
        title="Table 5.2 — variable-size MAE",
        width=20,
    )
    write_result("table5_2_varsize_mae", table)

    assert avg_v < 0.01, avg_v
    assert avg_s < 0.05, avg_s
