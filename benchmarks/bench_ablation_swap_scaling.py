"""Ablation — Corollary 1 and Proposition 3 scaling, measured.

Verifies the two analytic cost results empirically at benchmark scale:

* Corollary 1: expected swap positions per update is O(K log M) — we
  measure mean swaps per update for the backward strategy across stack
  sizes and K, and compare against the exact expectation.
* Proposition 3: the top-down recursion visits O(K log^2 M) nodes.
"""

import math

import numpy as np

from repro.analysis import render_table
from repro.core.eviction import expected_swap_positions
from repro.core.updates import BackwardUpdate, TopDownUpdate

from _common import write_result

PHIS = (256, 1024, 4096, 16384)
KS = (1, 4, 16)
TRIALS = 400


def test_ablation_swap_scaling(benchmark):
    def run():
        rows = []
        for k in KS:
            for phi in PHIS:
                back = BackwardUpdate(k, rng=1)
                mean_swaps = np.mean(
                    [len(back.swap_positions(phi)) for _ in range(TRIALS)]
                )
                top = TopDownUpdate(k, rng=2)
                for _ in range(TRIALS):
                    top.swap_positions(phi)
                mean_nodes = top.nodes_visited / TRIALS
                expected = expected_swap_positions(phi, k) + 1
                rows.append(
                    [
                        k,
                        phi,
                        round(float(mean_swaps), 2),
                        round(expected, 2),
                        round(mean_nodes, 1),
                        round(k * math.log2(phi) ** 2, 1),
                    ]
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["K", "phi", "swaps(meas)", "swaps(E)", "nodes(meas)", "K*log2^2"],
        rows,
        title="Ablation — Corollary 1 / Proposition 3 scaling",
        width=12,
    )
    write_result("ablation_swap_scaling", table)

    for k, phi, meas, expected, nodes, bound in rows:
        # Measured swaps match the exact expectation within 10%.
        assert abs(meas - expected) / expected < 0.10, (k, phi)
        # Top-down node visits stay within the K log^2 M bound.
        assert nodes < bound + 10, (k, phi)
    # Log scaling: quadrupling phi must far less than quadruple the cost.
    by_k = {k: [r for r in rows if r[0] == k] for k in KS}
    for k, group in by_k.items():
        assert group[-1][2] / group[0][2] < 2.5, k
