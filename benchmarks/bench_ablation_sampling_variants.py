"""Ablation — with- vs without-replacement eviction sampling (Chapter 3).

Propositions 1 and 2 give the two samplings' eviction distributions and
§3 claims they "yield approximately the same eviction probability" for
small K and large C.  This bench verifies the claim end-to-end: simulated
MRCs under the two variants nearly coincide, and one KRR model predicts
both.  It also reproduces the paper's analytic comparison table.
"""

import numpy as np

from repro import model_trace
from repro.analysis import render_table
from repro.core.eviction import (
    eviction_prob_with_replacement,
    eviction_prob_without_replacement,
)
from repro.mrc import mean_absolute_error
from repro.simulator import klru_mrc, object_size_grid

from _common import msr_trace, write_result

K = 5
N = 60_000


def test_ablation_sampling_variants(benchmark):
    trace = msr_trace("src1", n_requests=N)
    sizes = object_size_grid(trace, 10)

    def run():
        with_r = klru_mrc(trace, K, sizes=sizes, with_replacement=True, rng=80)
        without_r = klru_mrc(trace, K, sizes=sizes, with_replacement=False, rng=81)
        krr = model_trace(trace, k=K, seed=82).mrc()
        # Analytic eviction-probability divergence at several cache sizes.
        analytic_rows = []
        for c in (100, 1_000, 10_000):
            d = np.arange(1, c + 1)
            pw = eviction_prob_with_replacement(d, c, K)
            pwo = eviction_prob_without_replacement(d, c, K)
            analytic_rows.append([c, K, round(float(np.abs(pw - pwo).max()), 6)])
        return with_r, without_r, krr, analytic_rows

    with_r, without_r, krr, analytic_rows = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    gap_sims = mean_absolute_error(with_r, without_r)
    mae_with = mean_absolute_error(with_r, krr)
    mae_without = mean_absolute_error(without_r, krr)
    summary = render_table(
        ["quantity", "value"],
        [
            ["MAE(with, without)", round(gap_sims, 5)],
            ["MAE(with, KRR)", round(mae_with, 5)],
            ["MAE(without, KRR)", round(mae_without, 5)],
        ],
        title=f"Ablation — sampling variants on {trace.name}, K={K}",
        width=20,
    )
    analytic = render_table(
        ["cache size C", "K", "max |P_with - P_without|"],
        analytic_rows,
        title="Analytic eviction-probability divergence",
        width=24,
    )
    write_result("ablation_sampling_variants", summary + "\n\n" + analytic)

    # The two simulated variants nearly coincide, and KRR predicts both.
    assert gap_sims < 0.01
    assert mae_with < 0.02 and mae_without < 0.02
    # Analytic divergence shrinks as C grows.
    divs = [r[2] for r in analytic_rows]
    assert divs[-1] < divs[0]
