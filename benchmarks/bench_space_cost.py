"""§5.6 — space cost of the KRR stack.

Paper's accounting: 68 bytes per tracked object (stack slot + hash entry +
auxiliaries), +4 bytes for var-KRR sizes, and the sizeArray is negligible;
with spatial sampling at rate R the overhead is ``72 * R / avg_object_size``
of the working set — 0.036% for R=0.001 and 200-byte objects.

We reproduce the accounting model (exact) and verify the sizeArray really
is logarithmic, then report the spatially sampled footprint for a real run.
"""

from repro import KRRModel
from repro.analysis import render_table
from repro.core.krr import KRRStack
from repro.workloads import twitter

from _common import write_result


def test_space_cost(benchmark):
    trace = twitter.make_trace("cluster26.0", 100_000, scale=0.4, seed=21)

    def run():
        rows = []
        # Paper's closed-form example: 100M objects, R=0.001, 200-B objects.
        tracked = 100_000_000 * 0.001
        overhead = 72 * tracked
        working_set = 100_000_000 * 200
        rows.append(
            ["paper example (closed form)", int(tracked), int(overhead),
             round(overhead / working_set * 100, 4)]
        )

        # Measured: full KRR stack on the trace.
        full = KRRModel(k=5, track_sizes=True, seed=3)
        full.process(trace)
        stack = full._stack
        rows.append(
            ["var-KRR full", len(stack), stack.memory_estimate_bytes(),
             round(stack.memory_estimate_bytes() / trace.footprint_bytes() * 100, 4)]
        )

        # Measured: spatially sampled stack.
        rate = 0.05
        sampled = KRRModel(k=5, track_sizes=True, sampling_rate=rate, seed=3)
        sampled.process(trace)
        sstack = sampled._stack
        rows.append(
            [f"var-KRR R={rate}", len(sstack), sstack.memory_estimate_bytes(),
             round(sstack.memory_estimate_bytes() / trace.footprint_bytes() * 100, 4)]
        )
        anchors = len(sstack._size_array.anchors)
        return rows, len(stack), len(sstack), anchors

    rows, full_n, sampled_n, anchors = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["configuration", "objects", "overhead(B)", "% of working set"],
        rows,
        title="§5.6 — KRR stack space cost",
        width=26,
    )
    write_result("space_cost", table)

    # Spatial sampling shrinks tracked state roughly by the rate.
    assert sampled_n < 0.15 * full_n
    # sizeArray is logarithmic in the stack size.
    import math

    assert anchors <= math.log2(max(2, sampled_n)) + 2
    # Paper's headline number: 0.036% for the closed-form example.
    assert rows[0][3] == 0.036
