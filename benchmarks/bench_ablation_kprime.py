"""Ablation — the K' = K^e correction exponent (§4.2).

The paper picks e = 1.4 empirically ("we find that K' ~= K^1.4 yields a
very accurate approximation").  This ablation sweeps the exponent on a
loop-heavy Type-A trace (the case the correction exists for) and verifies
that e = 1.4 is a sensible choice: it must beat no correction (e = 1.0)
and not be dominated by the sweep's extremes.
"""

import numpy as np

from repro import KRRModel
from repro.analysis import render_table
from repro.mrc import mean_absolute_error
from repro.simulator import klru_mrc, object_size_grid
from repro.workloads import msr

from _common import write_result

EXPONENTS = (1.0, 1.2, 1.4, 1.6, 1.8)
KS = (4, 8, 16)
N = 60_000


def test_ablation_correction_exponent(benchmark):
    trace = msr.make_trace("src2", N, scale=0.15)
    sizes = object_size_grid(trace, 10)

    def run():
        truths = {k: klru_mrc(trace, k, sizes=sizes, rng=30 + k) for k in KS}
        table_rows = []
        mae_by_exp = {}
        for e in EXPONENTS:
            maes = []
            for k in KS:
                model = KRRModel(k=k, correction=True, correction_exponent=e, seed=40)
                pred = model.process(trace).mrc()
                maes.append(mean_absolute_error(truths[k], pred))
            mae_by_exp[e] = float(np.mean(maes))
            table_rows.append([e] + [round(m, 5) for m in maes] + [round(mae_by_exp[e], 5)])
        return table_rows, mae_by_exp

    rows, mae_by_exp = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["exponent"] + [f"MAE(K={k})" for k in KS] + ["mean"],
        rows,
        title=f"Ablation — K' exponent sweep on {trace.name}",
        width=12,
    )
    write_result("ablation_kprime", table)

    # 1.4 must improve on no correction and sit near the sweep's optimum.
    assert mae_by_exp[1.4] <= mae_by_exp[1.0]
    best = min(mae_by_exp.values())
    assert mae_by_exp[1.4] <= best + 0.005
