"""Fleet benchmark: out-of-core streaming throughput, memory and resume.

Measures, on a sharded (``save_chunked``) zipf trace whose total size is
>= 10x the streaming chunk:

1. **Streamed vs in-memory SoA** — `KRRModel.process(stream=...)` and the
   one-pass `MultiKRR` grid fed chunk by chunk, against the same models
   run over the materialized trace.  Curves and counters must be
   bit-identical, and streamed SoA throughput must stay >= 0.8x
   in-memory (the interner/chunk plumbing may not eat the engine).
2. **Peak RSS** — three subprocesses (interpreter baseline, streamed run,
   materialized run) measured via ``ru_maxrss``: the streamed run's
   footprint over baseline must stay well under the materialized run's,
   proving worker memory is bounded by the chunk, not the trace.
3. **Fleet kill/resume** — a 3-trace ``repro fleet`` CLI run with a
   ``hang@1`` fault injected is SIGKILLed mid-flight once the other
   traces have checkpointed, then rerun against the same checkpoint
   directory; its output grids must be byte-identical to an
   uninterrupted run's.

Any violation makes the process exit nonzero (CI perf gate).  Writes
machine-readable results to ``BENCH_fleet.json`` at the repo root plus a
text summary under ``benchmarks/results/``.  ``--quick`` shrinks the
traces for CI smoke runs (all gates stay armed).

Run:  PYTHONPATH=src python benchmarks/bench_fleet.py [--quick]
"""

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _common import write_result  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parents[1]

K = 5
FLEET_KS = (1, 5)
FLEET_RATES = (None, 0.25)


def _child_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return env


def _make_chunk_dir(directory, n_requests, n_objects, chunk_size):
    from repro.workloads.stream import iter_chunks, save_chunked
    from repro.workloads.trace import Trace
    from repro.workloads.zipf import zipf_trace_keys

    keys = zipf_trace_keys(n_objects, n_requests, 0.99, rng=1)
    trace = Trace(keys, name=f"zipf{n_requests // 1000}k")
    save_chunked(iter_chunks(trace, chunk_size), directory, chunk_size=chunk_size)
    return trace


def bench_streamed_soa(trace, chunk_dir, seed=1):
    from repro.core.model import KRRModel
    from repro.core.vkrr import MultiKRR
    from repro.workloads.stream import ChunkedTraceReader

    n = len(trace)
    reader = ChunkedTraceReader(chunk_dir)

    mem_model = KRRModel(k=K, seed=seed)
    t0 = time.perf_counter()
    mem_model.process(trace, engine="soa")
    mem_s = time.perf_counter() - t0

    str_model = KRRModel(k=K, seed=seed)
    t0 = time.perf_counter()
    str_model.process(stream=reader, engine="soa")
    str_s = time.perf_counter() - t0

    identical = bool(
        np.array_equal(mem_model.mrc().miss_ratios, str_model.mrc().miss_ratios)
        and mem_model.stats == str_model.stats
    )

    grid_mem = MultiKRR.grid(ks=FLEET_KS, sampling_rates=FLEET_RATES, seed=seed)
    t0 = time.perf_counter()
    rows_mem = grid_mem.run(trace)
    grid_mem_s = time.perf_counter() - t0

    grid_str = MultiKRR.grid(ks=FLEET_KS, sampling_rates=FLEET_RATES, seed=seed)
    t0 = time.perf_counter()
    rows_str = grid_str.run(stream=reader)
    grid_str_s = time.perf_counter() - t0

    grid_identical = all(
        np.array_equal(a.sizes, b.sizes)
        and np.array_equal(a.miss_ratios, b.miss_ratios)
        and a.requests_sampled == b.requests_sampled
        and a.swap_positions == b.swap_positions
        for a, b in zip(rows_mem, rows_str)
    )
    return {
        "requests": n,
        "k": K,
        "in_memory_s": round(mem_s, 4),
        "streamed_s": round(str_s, 4),
        "in_memory_requests_per_s": round(n / mem_s),
        "streamed_requests_per_s": round(n / str_s),
        "streamed_throughput_ratio": round(mem_s / str_s, 3),
        "curves_identical": identical,
        "grid_n_configs": len(grid_mem),
        "grid_in_memory_s": round(grid_mem_s, 4),
        "grid_streamed_s": round(grid_str_s, 4),
        "grid_streamed_throughput_ratio": round(grid_mem_s / grid_str_s, 3),
        "grid_identical": grid_identical,
    }


# ``ru_maxrss`` is useless here: some kernels carry the parent's RSS
# high-water mark across fork+exec, so every child of this (fat) bench
# process would just echo the parent's peak.  Instead each child samples
# its *current* RSS from /proc/self/statm on a 2 ms daemon thread and
# reports the largest sample — immune to inheritance, and the phases we
# gate on (held trace columns vs one chunk) are sustained, not
# microsecond transients.
_RSS_TEMPLATE = """
import os, sys, threading, time
PAGE_KIB = os.sysconf("SC_PAGESIZE") // 1024
peak = [0]
stop = threading.Event()
def _sample():
    with open("/proc/self/statm") as fh:
        peak[0] = max(peak[0], int(fh.read().split()[1]))
def _track():
    while not stop.is_set():
        _sample()
        time.sleep(0.002)
t = threading.Thread(target=_track, daemon=True)
t.start()
{body}
stop.set()
t.join()
_sample()
print(peak[0] * PAGE_KIB)
"""

_RSS_BASELINE = _RSS_TEMPLATE.format(body="""
import numpy, repro
from repro.core.model import KRRModel
""")

_RSS_STREAMED = _RSS_TEMPLATE.format(body="""
from repro.core.model import KRRModel
from repro.workloads.stream import ChunkedTraceReader
KRRModel(k={k}, seed=1).process(
    stream=ChunkedTraceReader(sys.argv[1]), engine="soa")
""")

_RSS_MATERIALIZED = _RSS_TEMPLATE.format(body="""
from repro.core.model import KRRModel
from repro.workloads.stream import ChunkedTraceReader
trace = ChunkedTraceReader(sys.argv[1]).read_all()
KRRModel(k={k}, seed=1).process(trace, engine="soa")
""")


def _measure_rss(code, *argv):
    """Peak sampled RSS (KiB) of one python child running ``code``."""
    out = subprocess.run(
        [sys.executable, "-c", code, *map(str, argv)],
        env=_child_env(), cwd=REPO_ROOT,
        capture_output=True, text=True, check=True,
    )
    return int(out.stdout.strip().splitlines()[-1])


def bench_rss(chunk_dir, n_requests, chunk_size):
    baseline = _measure_rss(_RSS_BASELINE)
    streamed = _measure_rss(_RSS_STREAMED.format(k=K), chunk_dir)
    materialized = _measure_rss(_RSS_MATERIALIZED.format(k=K), chunk_dir)
    streamed_delta = max(1, streamed - baseline)
    materialized_delta = max(1, materialized - baseline)
    return {
        "n_requests": n_requests,
        "chunk_size": chunk_size,
        "trace_to_chunk_ratio": round(n_requests / chunk_size, 1),
        "baseline_kib": baseline,
        "streamed_kib": streamed,
        "materialized_kib": materialized,
        "streamed_delta_kib": streamed_delta,
        "materialized_delta_kib": materialized_delta,
        "streamed_over_materialized": round(
            streamed_delta / materialized_delta, 3
        ),
    }


def _full_rows(path, n_configs):
    """True once a trace checkpoint holds its header plus every grid row."""
    try:
        with open(path) as fh:
            return sum(1 for _ in fh) >= 1 + n_configs
    except OSError:
        return False


def bench_kill_resume(workdir, n_requests=60_000, n_objects=8_000):
    """SIGKILL a checkpointing fleet mid-flight; resume must be identical."""
    from repro.workloads.io import save_npz
    from repro.workloads.trace import Trace
    from repro.workloads.zipf import zipf_trace_keys

    workdir = Path(workdir)
    paths = []
    for i in range(3):
        keys = zipf_trace_keys(n_objects, n_requests, 0.99, rng=10 + i)
        p = workdir / f"fleet-t{i}.npz"
        save_npz(Trace(keys, name=f"t{i}"), p)
        paths.append(str(p))

    n_configs = len(FLEET_KS) * len(FLEET_RATES)
    base_cmd = [
        sys.executable, "-m", "repro", "fleet", *paths,
        "--ks", ",".join(map(str, FLEET_KS)),
        "--rates", ",".join("none" if r is None else str(r) for r in FLEET_RATES),
        "--seed", "7", "--workers", "2", "--chunk-size", "20000",
    ]
    clean_out = workdir / "clean.csv"
    subprocess.run(
        [*base_cmd, "-o", str(clean_out)],
        env=_child_env(), cwd=REPO_ROOT,
        capture_output=True, text=True, check=True,
    )

    # Interrupted run: trace 1's worker hangs on an injected fault; once
    # traces 0 and 2 have fully checkpointed, the whole process group is
    # SIGKILLed — the hard-timeout death a real fleet must survive.
    ck = workdir / "ckpt"
    env = _child_env()
    env["REPRO_FAULTS"] = f"hang@1:600;state={workdir / 'faults'}"
    proc = subprocess.Popen(
        [*base_cmd, "--checkpoint-dir", str(ck), "-o", str(workdir / "x.csv")],
        env=env, cwd=REPO_ROOT, start_new_session=True,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 120
    killed_after_checkpoint = False
    try:
        while time.monotonic() < deadline:
            if _full_rows(ck / "trace-0000.jsonl", n_configs) and _full_rows(
                ck / "trace-0002.jsonl", n_configs
            ):
                killed_after_checkpoint = True
                break
            if proc.poll() is not None:
                break
            time.sleep(0.1)
    finally:
        try:
            os.killpg(proc.pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
        proc.wait()

    resumed_out = workdir / "resumed.csv"
    resume = subprocess.run(
        [*base_cmd, "--checkpoint-dir", str(ck), "-o", str(resumed_out)],
        env=_child_env(), cwd=REPO_ROOT,
        capture_output=True, text=True, check=True,
    )
    resumed_traces = 0
    for line in resume.stderr.splitlines():
        if "resumed-traces=" in line:
            resumed_traces = int(line.split("resumed-traces=")[1].split()[0])
    identical = clean_out.read_bytes() == resumed_out.read_bytes()
    return {
        "n_traces": 3,
        "n_configs": n_configs,
        "n_requests_per_trace": n_requests,
        "killed_after_checkpoint": killed_after_checkpoint,
        "resumed_traces": resumed_traces,
        "resume_identical_to_clean": identical,
    }


def _gate(payload):
    """The CI contract for out-of-core streaming; returns failure strings."""
    failures = []
    soa = payload["streamed_soa"]
    if not soa["curves_identical"]:
        failures.append("streamed KRRModel curve/stats differ from in-memory")
    if not soa["grid_identical"]:
        failures.append("streamed MultiKRR grid differs from in-memory")
    if soa["streamed_throughput_ratio"] < 0.8:
        failures.append(
            f"streamed SoA throughput {soa['streamed_throughput_ratio']}x "
            f"< 0.8x in-memory"
        )
    rss = payload["rss"]
    if rss["trace_to_chunk_ratio"] < 10:
        failures.append(
            f"RSS check trace only {rss['trace_to_chunk_ratio']}x chunk size "
            f"(need >= 10x for a meaningful bound)"
        )
    if rss["streamed_over_materialized"] > 0.6:
        failures.append(
            f"streamed peak RSS delta is {rss['streamed_over_materialized']}x "
            f"the materialized delta (> 0.6x: not chunk-bounded)"
        )
    kill = payload["kill_resume"]
    if not kill["resume_identical_to_clean"]:
        failures.append("resumed fleet grids differ from uninterrupted run")
    if not kill["killed_after_checkpoint"]:
        failures.append(
            "kill/resume check never observed a mid-flight checkpoint "
            "(fleet finished or died before traces 0 and 2 checkpointed)"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: 1.2M-request RSS trace instead of 5M",
    )
    args = parser.parse_args(argv)

    n_requests = 1_200_000 if args.quick else 5_000_000
    n_objects = 60_000 if args.quick else 200_000
    chunk_size = 100_000
    kill_requests = 40_000 if args.quick else 120_000

    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        chunk_dir = Path(tmp) / "trace.chunks"
        trace = _make_chunk_dir(chunk_dir, n_requests, n_objects, chunk_size)
        soa = bench_streamed_soa(trace, chunk_dir)
        del trace
        rss = bench_rss(chunk_dir, n_requests, chunk_size)
        kill = bench_kill_resume(tmp, n_requests=kill_requests)

    payload = {
        "bench": "fleet",
        "quick": args.quick,
        "cpus": os.cpu_count(),
        "trace": {
            "kind": "zipf",
            "n_requests": n_requests,
            "n_objects": n_objects,
            "alpha": 0.99,
            "chunk_size": chunk_size,
        },
        "streamed_soa": soa,
        "rss": rss,
        "kill_resume": kill,
    }
    failures = _gate(payload)
    payload["gate_failures"] = failures
    out = REPO_ROOT / "BENCH_fleet.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"trace: {n_requests} requests, {n_objects} objects (zipf 0.99), "
        f"{chunk_size}-row chunks, {os.cpu_count()} cpu(s)",
        "",
        "streamed SoA vs in-memory (K=5):",
        f"  in-memory   {soa['in_memory_s']:8.2f}s  "
        f"{soa['in_memory_requests_per_s']:>10,} req/s",
        f"  streamed    {soa['streamed_s']:8.2f}s  "
        f"{soa['streamed_requests_per_s']:>10,} req/s  "
        f"({soa['streamed_throughput_ratio']:.2f}x)",
        f"  identical: {soa['curves_identical']}",
        "",
        f"streamed MultiKRR {soa['grid_n_configs']}-config grid:",
        f"  in-memory   {soa['grid_in_memory_s']:8.2f}s",
        f"  streamed    {soa['grid_streamed_s']:8.2f}s  "
        f"({soa['grid_streamed_throughput_ratio']:.2f}x)",
        f"  identical: {soa['grid_identical']}",
        "",
        f"peak RSS (trace = {rss['trace_to_chunk_ratio']}x chunk):",
        f"  baseline     {rss['baseline_kib']:>10,} KiB",
        f"  streamed     {rss['streamed_kib']:>10,} KiB  "
        f"(+{rss['streamed_delta_kib']:,})",
        f"  materialized {rss['materialized_kib']:>10,} KiB  "
        f"(+{rss['materialized_delta_kib']:,})",
        f"  streamed/materialized delta: {rss['streamed_over_materialized']}",
        "",
        f"fleet kill/resume ({kill['n_traces']} traces x "
        f"{kill['n_configs']} configs):",
        f"  killed after mid-flight checkpoint: "
        f"{kill['killed_after_checkpoint']}",
        f"  resumed traces: {kill['resumed_traces']}",
        f"  resume identical to clean run: "
        f"{kill['resume_identical_to_clean']}",
        "",
        f"wrote {out}",
    ]
    if failures:
        lines += ["", "PERF GATE FAILURES:"] + [f"  - {f}" for f in failures]
    write_result("bench_fleet", "\n".join(lines))
    return 1 if failures else 0


def test_fleet_quick(benchmark):
    """Pytest-benchmark entry point: quick mode only."""
    benchmark.pedantic(lambda: main(["--quick"]), rounds=1, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main())
