"""Extension — sampled-priority policy family (the paper's future work).

The conclusion names frequency- and expiration-based sampled policies as
future work; this bench exercises the implemented family end to end:

* sampled LFU retains a hot set through scan traffic better than sampled
  LRU (the classic LFU advantage);
* every sampled policy is lower-bounded by OPT;
* miniature simulation reproduces the exact sweep for a non-stack policy
  (the §6.2 generic technique), making the family's MRCs cheap;
* TTL expiration raises the miss-ratio floor as expected.
"""

import numpy as np

from repro.analysis import render_table
from repro.mrc import mean_absolute_error
from repro.policies import miniature_policy_mrc, sampled_policy_mrc
from repro.stack import opt_mrc
from repro.simulator import object_size_grid
from repro.workloads import Trace, patterns
from repro.workloads.zipf import ScrambledZipfGenerator

from _common import write_result

POLICIES = ("lru", "lfu", "hyperbolic", "fifo")


def _hot_scan_trace():
    hot = ScrambledZipfGenerator(800, 1.3, rng=1).sample(60_000)
    scan = patterns.sequential_scan(10_000, 12_000)
    return Trace(
        patterns.interleave_streams([hot, scan], [0.83, 0.17], rng=2),
        name="hot-set+scan",
    )


def test_ext_sampled_policy_family(benchmark):
    trace = _hot_scan_trace()
    sizes = object_size_grid(trace, 8)

    def run():
        curves = {
            p: sampled_policy_mrc(trace, p, k=5, sizes=sizes, rng=3)
            for p in POLICIES
        }
        opt = opt_mrc(trace)
        mini_lfu = miniature_policy_mrc(
            trace, "lfu", k=5, rate=0.4, sizes=sizes, rng=4
        )
        ttl_curve = sampled_policy_mrc(
            trace, "lru", k=5, sizes=sizes, ttl=5_000, rng=5
        )
        return curves, opt, mini_lfu, ttl_curve

    curves, opt, mini_lfu, ttl_curve = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for s in curves["lru"].sizes:
        rows.append(
            [int(s)]
            + [round(float(curves[p](s)), 4) for p in POLICIES]
            + [round(float(ttl_curve(s)), 4), round(float(opt(s)), 4)]
        )
    table = render_table(
        ["size"] + list(POLICIES) + ["lru+ttl", "OPT"],
        rows,
        title=f"Extension — sampled policies on {trace.name} (K=5)",
        width=11,
    )
    write_result("ext_policies", table)

    mid = curves["lru"].sizes[len(sizes) // 2]
    # LFU keeps the hot set through the scan: better than sampled LRU.
    assert float(curves["lfu"](mid)) < float(curves["lru"](mid))
    # OPT lower-bounds every policy.
    grid = np.linspace(sizes[0], sizes[-1], 12)
    for p in POLICIES:
        assert (opt(grid) <= curves[p](grid) + 0.01).all(), p
    # Miniature simulation tracks the exact sweep.
    assert mean_absolute_error(curves["lfu"], mini_lfu) < 0.05
    # A TTL strictly hurts (objects expire before natural reuse).
    assert float(ttl_curve(sizes[-1])) >= float(curves["lru"](sizes[-1]))
