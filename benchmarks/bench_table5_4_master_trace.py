"""Table 5.4 — merged MSR "master" trace: KRR+spatial vs SHARDS runtime.

Paper's table (spatial rate 0.001): top-down+spatial 39.1s,
backward+spatial 22.4s, SHARDS 19.7s — i.e. backward KRR is in the same
league as SHARDS (which only models exact LRU), top-down ~2x slower.

Scale substitution: the interleaved 13-server master trace at 13 x 30k
requests, spatial rate chosen by the scaled-down rate rule.  KRR times are
averaged across K in {1, 2, 4, 8, 16, 32} exactly as in the paper.
"""

import time

from repro import KRRModel
from repro.analysis import render_table
from repro.baselines import Shards
from repro.workloads import msr

from _common import sampling_rate_for, write_result

KS = (1, 2, 4, 8, 16, 32)


def test_table5_4_master_trace(benchmark):
    trace = msr.make_master_trace(n_requests_per_server=30_000, scale=0.12)
    rate = sampling_rate_for(trace)

    def run():
        times = {"topdown+spatial": [], "backward+spatial": []}
        for strategy in ("topdown", "backward"):
            for k in KS:
                model = KRRModel(k=k, strategy=strategy, sampling_rate=rate, seed=6)
                t0 = time.perf_counter()
                model.process(trace)
                times[f"{strategy}+spatial"].append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        Shards(rate=rate, seed=0).process(trace).mrc()
        shards_t = time.perf_counter() - t0
        return times, shards_t

    times, shards_t = benchmark.pedantic(run, rounds=1, iterations=1)
    avg = {m: sum(ts) / len(ts) for m, ts in times.items()}
    rows = [
        ["topdown+spatial", round(avg["topdown+spatial"], 3)],
        ["backward+spatial", round(avg["backward+spatial"], 3)],
        ["SHARDS", round(shards_t, 3)],
    ]
    table = render_table(
        ["method", "avg time(s)"],
        rows,
        title=f"Table 5.4 — master trace ({len(trace)} requests, rate={rate:.3g})",
        width=18,
    )
    write_result("table5_4_master_trace", table)

    # Backward+spatial within a small factor of SHARDS; topdown slower than
    # backward (the paper reports ~2x).
    assert avg["backward+spatial"] < 6 * shards_t
    assert avg["topdown+spatial"] > avg["backward+spatial"]
