"""Table 5.1 — average MAE of KRR and KRR+spatial across sampling sizes.

Paper's claim: for K in {1, 2, 4, 8, 16, 32} the MRCs predicted by KRR are
nearly identical to simulated K-LRU (average MAE ~1e-3 per suite; ~2.6e-3
with spatial sampling; worst case ~0.01).

Scale substitution: one representative trace per suite (MSR `src2`, YCSB C
alpha=0.99, Twitter `cluster26.0`), 60k requests, ground truth simulated at
10 sizes.  Spatial rates follow the paper's rule rescaled to our working-set
sizes (see _common.sampling_rate_for).
"""

from repro import model_trace
from repro.analysis import render_table
from repro.mrc import mean_absolute_error
from repro.simulator import klru_mrc, object_size_grid
from repro.workloads import msr, twitter, ycsb

from _common import sampling_rate_for, write_result

KS = (1, 2, 4, 8, 16, 32)
N = 60_000


def _traces():
    return [
        msr.make_trace("src2", N, scale=0.15),
        ycsb.workload_c(8_000, N, 0.99, rng=7),
        twitter.make_trace("cluster26.0", N, scale=0.25, variable_size=False),
    ]


def test_table5_1_average_mae(benchmark):
    traces = _traces()

    def run():
        rows = []
        maes_plain: list[float] = []
        maes_spatial: list[float] = []
        for trace in traces:
            sizes = object_size_grid(trace, 10)
            rate = sampling_rate_for(trace)
            for k in KS:
                truth = klru_mrc(trace, k, sizes=sizes, rng=200 + k)
                plain = model_trace(trace, k=k, seed=300 + k).mrc()
                spatial = model_trace(
                    trace, k=k, sampling_rate=rate, seed=400 + k
                ).mrc()
                mae_p = mean_absolute_error(truth, plain)
                mae_s = mean_absolute_error(truth, spatial)
                maes_plain.append(mae_p)
                maes_spatial.append(mae_s)
                rows.append([trace.name, k, round(rate, 3),
                             round(mae_p, 5), round(mae_s, 5)])
        return rows, maes_plain, maes_spatial

    rows, maes_plain, maes_spatial = benchmark.pedantic(run, rounds=1, iterations=1)
    avg_p = sum(maes_plain) / len(maes_plain)
    avg_s = sum(maes_spatial) / len(maes_spatial)
    rows.append(["AVERAGE", "-", "-", round(avg_p, 5), round(avg_s, 5)])
    table = render_table(
        ["trace", "K", "rate", "MAE(KRR)", "MAE(KRR+Spatial)"],
        rows,
        title="Table 5.1 — MAE under different sampling sizes",
        width=16,
    )
    write_result("table5_1_mae", table)

    # Reproduction checks: KRR tracks ground truth tightly; spatial stays
    # usable.  Absolute numbers are looser than the paper's because our
    # sampled-object counts are ~3x smaller (error ~ 1/sqrt(ns)).
    assert avg_p < 0.01, avg_p
    assert max(maes_plain) < 0.03, max(maes_plain)
    assert avg_s < 0.04, avg_s
