"""Figure 5.3 — uni-KRR vs var-KRR accuracy (and runtime) on var-size traces.

Paper's claim: MRCs built under the uniform-size assumption (uni-KRR) can
deviate badly from the true byte-granularity MRC, while the size-aware
var-KRR tracks it with negligible error at modest extra runtime
(e.g. 0.372s vs 0.669s per trace in the paper's panel A).
"""

import time

from repro import model_trace
from repro.analysis import render_table
from repro.mrc import MissRatioCurve, mean_absolute_error
from repro.simulator import byte_klru_mrc, byte_size_grid
from repro.workloads import msr, twitter

from _common import write_result

N = 50_000
PANELS = [
    ("msr_rsrch", lambda: msr.make_trace("rsrch", N, scale=0.3, variable_size=True), 8),
    ("msr_src1", lambda: msr.make_trace("src1", N, scale=0.12, variable_size=True), 8),
    ("msr_web", lambda: msr.make_trace("web", N, scale=0.12, variable_size=True), 8),
    ("msr_hm", lambda: msr.make_trace("hm", N, scale=0.3, variable_size=True), 8),
    ("tw_cluster34.1", lambda: twitter.make_trace("cluster34.1", N, scale=0.2), 16),
    ("tw_cluster26.0", lambda: twitter.make_trace("cluster26.0", N, scale=0.2), 16),
    ("tw_cluster45.0", lambda: twitter.make_trace("cluster45.0", N, scale=0.2), 16),
    ("tw_cluster52.7", lambda: twitter.make_trace("cluster52.7", N, scale=0.2), 16),
]


def _uni_bytes_curve(trace, k, seed):
    """uni-KRR: model at object granularity, stretch sizes by the mean."""
    mean_size = float(trace.sizes.mean())
    uni = model_trace(
        trace.with_uniform_size(max(1, int(mean_size))), k=k, seed=seed
    ).mrc()
    return MissRatioCurve(
        uni.sizes * mean_size, uni.miss_ratios, unit="bytes", label="uni-KRR"
    )


def test_fig5_3_uni_vs_var(benchmark):
    def run():
        rows = []
        for name, build, k in PANELS:
            trace = build()
            sizes = byte_size_grid(trace, 8)
            truth = byte_klru_mrc(trace, k, sizes=sizes, rng=1100)
            t0 = time.perf_counter()
            var_curve = model_trace(trace, k=k, seed=1200).byte_mrc()
            t_var = time.perf_counter() - t0
            t0 = time.perf_counter()
            uni_curve = _uni_bytes_curve(trace, k, seed=1200)
            t_uni = time.perf_counter() - t0
            rows.append(
                [
                    name,
                    k,
                    round(mean_absolute_error(truth, uni_curve), 4),
                    round(mean_absolute_error(truth, var_curve), 4),
                    round(t_uni, 3),
                    round(t_var, 3),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["trace", "K", "MAE(uniKRR)", "MAE(varKRR)", "t_uni(s)", "t_var(s)"],
        rows,
        title="Figure 5.3 — uniform-size assumption vs size-aware KRR",
        width=13,
    )
    write_result("fig5_3_varsize_curves", table)

    mae_uni = [r[2] for r in rows]
    mae_var = [r[3] for r in rows]
    # var-KRR is accurate everywhere; uni-KRR is worse on average and
    # substantially worse on at least one trace (the paper's panel A).
    assert max(mae_var) < 0.02, rows
    assert sum(mae_uni) > sum(mae_var)
    assert max(m_u - m_v for m_u, m_v in zip(mae_uni, mae_var)) > 0.01
