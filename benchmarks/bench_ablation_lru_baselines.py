"""Ablation — why KRR exists: exact-LRU MRC techniques on a K-LRU cache.

The paper's motivation (§2.3): SHARDS / AET / Counter Stacks / StatStack
model *exact LRU* and "are no longer suitable for a cache with the K-LRU
policy" at small K, while for K >= 32 K-LRU converges to LRU and the paper
explicitly recommends those tools instead.  This bench measures every
baseline against simulated K-LRU at K=1, 4 and 32 on a Type-A trace.
"""

from repro import model_trace
from repro.analysis import render_table
from repro.baselines import aet_mrc, counterstacks_mrc, shards_mrc, statstack_mrc
from repro.mrc import mean_absolute_error
from repro.simulator import klru_mrc, object_size_grid

from _common import msr_trace, write_result

KS = (1, 4, 32)


def test_ablation_lru_baselines_on_klru(benchmark):
    trace = msr_trace("src1", n_requests=60_000)
    sizes = object_size_grid(trace, 10)

    def run():
        baselines = {
            "SHARDS(R=1)": shards_mrc(trace, rate=1.0, adjustment=False),
            "SHARDS(R=.5)": shards_mrc(trace, rate=0.5, seed=1),
            "AET": aet_mrc(trace, sizes),
            "StatStack": statstack_mrc(trace),
            "CounterStacks": counterstacks_mrc(trace, downsample=1_000),
        }
        rows = []
        errors = {}
        for k in KS:
            truth = klru_mrc(trace, k, sizes=sizes, rng=50 + k)
            krr = model_trace(trace, k=k, seed=60 + k).mrc()
            errors[("KRR", k)] = mean_absolute_error(truth, krr)
            row = [k, round(errors[("KRR", k)], 4)]
            for name, curve in baselines.items():
                errors[(name, k)] = mean_absolute_error(truth, curve)
                row.append(round(errors[(name, k)], 4))
            rows.append(row)
        return rows, errors

    rows, errors = benchmark.pedantic(run, rounds=1, iterations=1)
    headers = ["K", "KRR", "SHARDS(R=1)", "SHARDS(R=.5)", "AET", "StatStack",
               "CounterStacks"]
    table = render_table(
        headers, rows,
        title=f"Ablation — LRU baselines predicting K-LRU on {trace.name}",
        width=13,
    )
    write_result("ablation_lru_baselines", table)

    # Small K: KRR dominates every LRU-only technique.
    for name in ("SHARDS(R=1)", "AET", "StatStack"):
        assert errors[(name, 1)] > 3 * errors[("KRR", 1)], name
        assert errors[(name, 4)] > 2 * errors[("KRR", 4)], name
    # Large K: LRU techniques become reasonable (the paper's §5.3 advice).
    assert errors[("SHARDS(R=1)", 32)] < 0.03
