"""Extension — KFR: one-pass MRC modeling for sampled LFU (future work §7).

Measures the experimental frequency-rank stack model against simulated
sampled-LFU ground truth across K and workloads, alongside the naive
alternatives (exact-LFU curve, exact-LRU curve).  Documents where KFR is
reliable (skewed reuse, K >= 4: MAE ~1e-2) and where it is rough
(frequency-flat loop traces, where *no* frequency ordering exists).
"""

import numpy as np

from repro.analysis import render_table
from repro.core.kfr import KFRModel
from repro.mrc import mean_absolute_error
from repro.mrc.builder import from_distance_histogram
from repro.policies import sampled_policy_mrc
from repro.stack import lfu_mrc
from repro.stack.lru_stack import lru_histograms
from repro.workloads import Trace, patterns
from repro.workloads.zipf import ScrambledZipfGenerator

from _common import write_result

KS = (1, 2, 4, 8, 16)


def _traces():
    zipf = Trace(
        ScrambledZipfGenerator(1_200, 1.1, rng=1).sample(40_000), name="zipf_a1.1"
    )
    hot = ScrambledZipfGenerator(600, 1.3, rng=2).sample(32_000)
    scan = patterns.sequential_scan(5_000, 8_000)
    hot_scan = Trace(
        patterns.interleave_streams([hot, scan], [0.8, 0.2], rng=3), name="hot+scan"
    )
    loop = Trace(patterns.loop(np.arange(500), 30_000), name="loop(adversarial)")
    return [zipf, hot_scan, loop]


def test_ext_kfr_sampled_lfu_model(benchmark):
    traces = _traces()

    def run():
        rows = []
        errors = {}
        for trace in traces:
            exact_lfu = lfu_mrc(trace)
            hist, _ = lru_histograms(trace)
            exact_lru = from_distance_histogram(hist)
            for k in KS:
                truth = sampled_policy_mrc(trace, "lfu", k=k, n_points=8, rng=40 + k)
                kfr = KFRModel(k=k, seed=50 + k).process(trace).mrc()
                e_kfr = mean_absolute_error(truth, kfr)
                e_lfu = mean_absolute_error(truth, exact_lfu)
                e_lru = mean_absolute_error(truth, exact_lru)
                errors[(trace.name, k)] = (e_kfr, e_lfu, e_lru)
                rows.append(
                    [trace.name, k, round(e_kfr, 4), round(e_lfu, 4), round(e_lru, 4)]
                )
        return rows, errors

    rows, errors = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["trace", "K", "MAE(KFR)", "MAE(exact LFU)", "MAE(exact LRU)"],
        rows,
        title="Extension — KFR vs sampled-LFU ground truth",
        width=16,
    )
    write_result("ext_kfr", table)

    for trace in ("zipf_a1.1", "hot+scan"):
        for k in KS:
            e_kfr, e_lfu, e_lru = errors[(trace, k)]
            assert e_kfr < 0.05, (trace, k, e_kfr)
            # At small K the exact-LFU curve is the wrong model; KFR wins.
            if k <= 4:
                assert e_kfr < e_lfu, (trace, k)
    # Adversarial loop trace: documented rough spot, bounded but not tight.
    for k in KS:
        assert errors[("loop(adversarial)", k)][0] < 0.15, k
