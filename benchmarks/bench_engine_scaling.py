"""Engine scaling benchmark: batched hot path + parallel sweep throughput.

Measures, on a 500k-request zipf trace (50k objects, alpha=0.99):

1. **Batched vs per-access modeling** — `KRRModel.process` through the
   fused `access_many` hot path against a faithful replica of the original
   per-access loop (`stack.access(int(keys[i]))` + per-request histogram
   record, i.e. the pre-engine code path).
2. **ModelSweep fan-out** — a 12-config (K x sampling-rate) grid run
   serially and with 4 workers over the shared-memory trace store, with a
   bit-identity check between the two grids.

Writes machine-readable results to ``BENCH_engine.json`` at the repo root
so future PRs can track the perf trajectory, plus a text summary under
``benchmarks/results/``.  ``--quick`` shrinks the trace for CI smoke runs.

Run:  PYTHONPATH=src python benchmarks/bench_engine_scaling.py [--quick]
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _common import write_result  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parents[1]

K = 5
SWEEP_WORKERS = 4
SWEEP_KS = (1, 2, 5, 10)
SWEEP_RATES = (0.1, 0.05, 0.01)  # 4 x 3 = 12 configs


def _legacy_process(model, trace):
    """The pre-engine per-access loop, preserved verbatim as the baseline.

    One ``stack.access`` call per request with NumPy scalar unboxing
    (``int(keys[i])``), a result tuple per access, and one histogram
    ``record`` call per request.
    """
    keys = trace.keys
    sizes = trace.sizes
    model.stats.requests_seen += int(keys.shape[0])
    model.stats.requests_sampled += int(keys.shape[0])
    stack = model._stack
    obj_hist = model._obj_hist
    cold = 0
    for i in range(keys.shape[0]):
        dist, _byte_dist = stack.access(int(keys[i]), int(sizes[i]))
        if dist < 0:
            cold += 1
            obj_hist.record_cold()
        else:
            obj_hist.record(dist)
    model.stats.cold_misses += cold


def bench_batched(trace, seed=1):
    from repro import KRRModel

    n = len(trace)
    legacy_model = KRRModel(k=K, seed=seed)
    t0 = time.perf_counter()
    _legacy_process(legacy_model, trace)
    legacy_s = time.perf_counter() - t0

    batched_model = KRRModel(k=K, seed=seed)
    t0 = time.perf_counter()
    batched_model.process(trace)
    batched_s = time.perf_counter() - t0

    identical = bool(
        np.array_equal(
            legacy_model.mrc().miss_ratios, batched_model.mrc().miss_ratios
        )
    )
    return {
        "requests": n,
        "k": K,
        "legacy_s": round(legacy_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(legacy_s / batched_s, 3),
        "legacy_requests_per_s": round(n / legacy_s),
        "batched_requests_per_s": round(n / batched_s),
        "curves_identical": identical,
    }


def bench_sweep(trace, seed=3):
    from repro.engine import ModelSweep

    sweep = ModelSweep.grid(ks=SWEEP_KS, sampling_rates=SWEEP_RATES, seed=seed)
    t0 = time.perf_counter()
    serial = sweep.run(trace, max_workers=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = sweep.run(trace, max_workers=SWEEP_WORKERS)
    parallel_s = time.perf_counter() - t0

    identical = all(
        np.array_equal(a.sizes, b.sizes)
        and np.array_equal(a.miss_ratios, b.miss_ratios)
        for a, b in zip(serial, parallel)
    )
    return {
        "n_configs": len(sweep),
        "workers": SWEEP_WORKERS,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3),
        "bit_identical_grids": bool(identical),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: 40k requests instead of 500k",
    )
    args = parser.parse_args(argv)

    from repro.workloads.trace import Trace
    from repro.workloads.zipf import zipf_trace_keys

    n_requests = 40_000 if args.quick else 500_000
    n_objects = 8_000 if args.quick else 50_000
    keys = zipf_trace_keys(n_objects, n_requests, 0.99, rng=1)
    trace = Trace(keys, name=f"zipf{n_requests // 1000}k")

    batched = bench_batched(trace)
    swept = bench_sweep(trace)

    payload = {
        "bench": "engine_scaling",
        "quick": args.quick,
        "cpus": os.cpu_count(),
        "trace": {
            "kind": "zipf",
            "n_requests": n_requests,
            "n_objects": n_objects,
            "alpha": 0.99,
        },
        "batched_process": batched,
        "model_sweep": swept,
    }
    out = REPO_ROOT / "BENCH_engine.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"trace: {n_requests} requests, {n_objects} objects (zipf 0.99), "
        f"{os.cpu_count()} cpu(s)",
        "",
        "batched KRRModel.process vs per-access loop (K=5):",
        f"  per-access  {batched['legacy_s']:8.2f}s  "
        f"{batched['legacy_requests_per_s']:>10,} req/s",
        f"  batched     {batched['batched_s']:8.2f}s  "
        f"{batched['batched_requests_per_s']:>10,} req/s",
        f"  speedup     {batched['speedup']:.2f}x  "
        f"(curves identical: {batched['curves_identical']})",
        "",
        f"ModelSweep {swept['n_configs']}-config grid "
        f"(K in {list(SWEEP_KS)}, R in {list(SWEEP_RATES)}):",
        f"  serial      {swept['serial_s']:8.2f}s",
        f"  {swept['workers']} workers   {swept['parallel_s']:8.2f}s",
        f"  speedup     {swept['speedup']:.2f}x  "
        f"(grids bit-identical: {swept['bit_identical_grids']})",
        "",
        f"wrote {out}",
    ]
    write_result("bench_engine_scaling", "\n".join(lines))
    return 0


def test_engine_scaling_quick(benchmark):
    """Pytest-benchmark entry point: quick mode only."""
    benchmark.pedantic(lambda: main(["--quick"]), rounds=1, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main())
