"""Engine scaling benchmark: streaming engines + grid evaluation throughput.

Measures, on a 500k-request zipf trace (50k objects, alpha=0.99):

1. **Streaming engines** — `KRRModel.process` through (a) a faithful
   replica of the original per-access loop (`stack.access(int(keys[i]))` +
   per-request histogram record, i.e. the pre-engine code path), (b) the
   fused scalar `access_many` batch path, and (c) the array-native SoA
   engine (`engine="soa"`, native chain-walk kernel when a C compiler is
   available).  All three must produce bit-identical curves.
2. **MultiKRR one-pass grid** — the 12-config (K x sampling-rate) grid
   evaluated in one streaming pass, bit-identity-checked against the
   scalar-engine `ModelSweep` oracle.
3. **ModelSweep fan-out** — the same grid run serially and with 4 workers
   over the shared-memory trace store, with a bit-identity check.

This run doubles as the CI perf gate (see ``_gate``): the SoA engine must
never be slower than the legacy loop, must clear 5x when the native
kernel is active, every engine/grid curve must be bit-identical, and the
one-pass grid must stay under 3x the single-config SoA time.  Any
violation makes the process exit nonzero.

Writes machine-readable results to ``BENCH_engine.json`` at the repo root
so future PRs can track the perf trajectory, plus a text summary under
``benchmarks/results/``.  ``--quick`` shrinks the trace for CI smoke runs.

Run:  PYTHONPATH=src python benchmarks/bench_engine_scaling.py [--quick]
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _common import write_result  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parents[1]

K = 5
SWEEP_WORKERS = 4
SWEEP_KS = (1, 2, 5, 10)
SWEEP_RATES = (0.1, 0.05, 0.01)  # 4 x 3 = 12 configs


def _legacy_process(model, trace):
    """The pre-engine per-access loop, preserved verbatim as the baseline.

    One ``stack.access`` call per request with NumPy scalar unboxing
    (``int(keys[i])``), a result tuple per access, and one histogram
    ``record`` call per request.
    """
    keys = trace.keys
    sizes = trace.sizes
    model.stats.requests_seen += int(keys.shape[0])
    model.stats.requests_sampled += int(keys.shape[0])
    stack = model._stack
    obj_hist = model._obj_hist
    cold = 0
    for i in range(keys.shape[0]):
        dist, _byte_dist = stack.access(int(keys[i]), int(sizes[i]))
        if dist < 0:
            cold += 1
            obj_hist.record_cold()
        else:
            obj_hist.record(dist)
    model.stats.cold_misses += cold


def bench_engines(trace, seed=1):
    from repro import KRRModel
    from repro.stack import native_kernel_active

    n = len(trace)
    legacy_model = KRRModel(k=K, seed=seed)
    t0 = time.perf_counter()
    _legacy_process(legacy_model, trace)
    legacy_s = time.perf_counter() - t0

    scalar_model = KRRModel(k=K, seed=seed)
    t0 = time.perf_counter()
    scalar_model.process(trace, engine="scalar")
    scalar_s = time.perf_counter() - t0

    soa_model = KRRModel(k=K, seed=seed)
    t0 = time.perf_counter()
    soa_model.process(trace, engine="soa")
    soa_s = time.perf_counter() - t0

    legacy_curve = legacy_model.mrc().miss_ratios
    identical = bool(
        np.array_equal(legacy_curve, scalar_model.mrc().miss_ratios)
        and np.array_equal(legacy_curve, soa_model.mrc().miss_ratios)
    )
    return {
        "requests": n,
        "k": K,
        "native_kernel": bool(native_kernel_active()),
        "legacy_s": round(legacy_s, 4),
        "scalar_s": round(scalar_s, 4),
        "soa_s": round(soa_s, 4),
        "legacy_requests_per_s": round(n / legacy_s),
        "scalar_requests_per_s": round(n / scalar_s),
        "soa_requests_per_s": round(n / soa_s),
        "scalar_speedup_vs_legacy": round(legacy_s / scalar_s, 3),
        "soa_speedup_vs_legacy": round(legacy_s / soa_s, 3),
        "soa_speedup_vs_scalar": round(scalar_s / soa_s, 3),
        "curves_identical": identical,
    }


def bench_multi_krr(trace, seed=3):
    from repro.core.vkrr import MultiKRR
    from repro.engine import ModelSweep

    grid = MultiKRR.grid(ks=SWEEP_KS, sampling_rates=SWEEP_RATES, seed=seed)
    t0 = time.perf_counter()
    rows = grid.run(trace)
    multi_s = time.perf_counter() - t0

    # The scalar-engine serial sweep is the oracle: N fully independent
    # KRRModel runs with the same spawned per-config seeds.
    sweep = ModelSweep.grid(ks=SWEEP_KS, sampling_rates=SWEEP_RATES, seed=seed)
    t0 = time.perf_counter()
    oracle = sweep.run(trace, max_workers=1, engine="scalar")
    oracle_s = time.perf_counter() - t0

    identical = all(
        np.array_equal(a.sizes, b.sizes)
        and np.array_equal(a.miss_ratios, b.miss_ratios)
        and a.swap_positions == b.swap_positions
        for a, b in zip(oracle, rows)
    )
    return {
        "n_configs": len(grid),
        "multi_s": round(multi_s, 4),
        "scalar_oracle_s": round(oracle_s, 4),
        "speedup_vs_scalar_oracle": round(oracle_s / multi_s, 3),
        "identical_to_scalar_oracle": bool(identical),
    }


def bench_sweep(trace, seed=3):
    from repro.engine import ModelSweep

    sweep = ModelSweep.grid(ks=SWEEP_KS, sampling_rates=SWEEP_RATES, seed=seed)
    t0 = time.perf_counter()
    serial = sweep.run(trace, max_workers=1)
    serial_s = time.perf_counter() - t0

    # Oversubscribing a small box (e.g. a 1-CPU CI runner) just measures
    # scheduler thrash, so cap the fan-out at the actual core count and
    # record what was effectively used alongside the request.
    workers = min(SWEEP_WORKERS, os.cpu_count() or 1)
    t0 = time.perf_counter()
    parallel = sweep.run(trace, max_workers=workers)
    parallel_s = time.perf_counter() - t0

    identical = all(
        np.array_equal(a.sizes, b.sizes)
        and np.array_equal(a.miss_ratios, b.miss_ratios)
        for a, b in zip(serial, parallel)
    )
    return {
        "n_configs": len(sweep),
        "workers_requested": SWEEP_WORKERS,
        "workers": workers,
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3),
        "bit_identical_grids": bool(identical),
    }


def _gate(payload):
    """The CI perf contract; returns a list of failure strings."""
    failures = []
    eng = payload["engines"]
    if not eng["curves_identical"]:
        failures.append("engine curves differ (scalar/soa vs legacy loop)")
    if eng["soa_requests_per_s"] < eng["legacy_requests_per_s"]:
        failures.append(
            f"SoA engine slower than legacy loop "
            f"({eng['soa_requests_per_s']} < {eng['legacy_requests_per_s']} req/s)"
        )
    if eng["native_kernel"] and eng["soa_speedup_vs_legacy"] < 5.0:
        failures.append(
            f"native SoA speedup {eng['soa_speedup_vs_legacy']}x < 5x vs legacy"
        )
    multi = payload["multi_krr"]
    if not multi["identical_to_scalar_oracle"]:
        failures.append("MultiKRR grid differs from scalar ModelSweep oracle")
    if multi["multi_s"] > 3.0 * max(eng["soa_s"], 1e-3):
        failures.append(
            f"MultiKRR {multi['n_configs']}-config grid took {multi['multi_s']}s "
            f"> 3x single-config SoA time ({eng['soa_s']}s)"
        )
    swept = payload["model_sweep"]
    if not swept["bit_identical_grids"]:
        failures.append("serial and parallel sweep grids differ")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: 40k requests instead of 500k",
    )
    args = parser.parse_args(argv)

    from repro.workloads.trace import Trace
    from repro.workloads.zipf import zipf_trace_keys

    n_requests = 40_000 if args.quick else 500_000
    n_objects = 8_000 if args.quick else 50_000
    keys = zipf_trace_keys(n_objects, n_requests, 0.99, rng=1)
    trace = Trace(keys, name=f"zipf{n_requests // 1000}k")

    engines = bench_engines(trace)
    multi = bench_multi_krr(trace)
    swept = bench_sweep(trace)

    payload = {
        "bench": "engine_scaling",
        "quick": args.quick,
        "cpus": os.cpu_count(),
        "trace": {
            "kind": "zipf",
            "n_requests": n_requests,
            "n_objects": n_objects,
            "alpha": 0.99,
        },
        "engines": engines,
        "multi_krr": multi,
        "model_sweep": swept,
    }
    failures = _gate(payload)
    payload["gate_failures"] = failures
    out = REPO_ROOT / "BENCH_engine.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"trace: {n_requests} requests, {n_objects} objects (zipf 0.99), "
        f"{os.cpu_count()} cpu(s)",
        "",
        f"streaming engines (K=5, native kernel: {engines['native_kernel']}):",
        f"  per-access  {engines['legacy_s']:8.2f}s  "
        f"{engines['legacy_requests_per_s']:>10,} req/s",
        f"  scalar      {engines['scalar_s']:8.2f}s  "
        f"{engines['scalar_requests_per_s']:>10,} req/s  "
        f"({engines['scalar_speedup_vs_legacy']:.2f}x)",
        f"  soa         {engines['soa_s']:8.2f}s  "
        f"{engines['soa_requests_per_s']:>10,} req/s  "
        f"({engines['soa_speedup_vs_legacy']:.2f}x)",
        f"  curves identical: {engines['curves_identical']}",
        "",
        f"MultiKRR one-pass {multi['n_configs']}-config grid "
        f"(K in {list(SWEEP_KS)}, R in {list(SWEEP_RATES)}):",
        f"  one pass    {multi['multi_s']:8.2f}s",
        f"  scalar orc  {multi['scalar_oracle_s']:8.2f}s  "
        f"({multi['speedup_vs_scalar_oracle']:.2f}x)",
        f"  identical to scalar oracle: {multi['identical_to_scalar_oracle']}",
        "",
        f"ModelSweep {swept['n_configs']}-config grid:",
        f"  serial      {swept['serial_s']:8.2f}s",
        f"  {swept['workers']} workers   {swept['parallel_s']:8.2f}s",
        f"  speedup     {swept['speedup']:.2f}x  "
        f"(grids bit-identical: {swept['bit_identical_grids']})",
        "",
        f"wrote {out}",
    ]
    if failures:
        lines += ["", "PERF GATE FAILURES:"] + [f"  - {f}" for f in failures]
    write_result("bench_engine_scaling", "\n".join(lines))
    return 1 if failures else 0


def test_engine_scaling_quick(benchmark):
    """Pytest-benchmark entry point: quick mode only."""
    benchmark.pedantic(lambda: main(["--quick"]), rounds=1, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main())
