"""Hot-path benchmark: vectorized kernels + TracePlan vs the legacy loops.

Measures, on a 500k-request zipf trace (50k objects, alpha=0.99):

1. **Exact-LRU distance extraction** — ``lru_histograms`` through the
   offline Olken batch kernel against the per-access Fenwick-tree loop
   (``vectorized=False``), with a bit-identity check on both histograms.
2. **Spatially sampled KRRModel** — ``process(trace, plan)`` at rate 0.01
   (vectorized prefilter from the shared TracePlan hash column) against
   the legacy streaming loop (one ``access()``/``keep()`` per request).
3. **ModelSweep IPC batching** — the 12-config (K x rate) grid serially,
   with 4 workers one-task-per-config (the configuration that used to
   regress on low-core machines), and with 4 workers + ``chunk_size=
   "auto"`` task batching; all three grids must be bit-identical.

Writes machine-readable results to ``BENCH_hotpath.json`` at the repo
root and a text summary under ``benchmarks/results/``.  Exits non-zero
if any vectorized path is slower than its legacy counterpart or any
equivalence check fails — the CI perf-smoke gate.  ``--quick`` shrinks
the trace for CI.

Run:  PYTHONPATH=src python benchmarks/bench_hotpath.py [--quick]
"""

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))
from _common import write_result  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parents[1]

K = 5
SAMPLING_RATE = 0.01
SWEEP_WORKERS = 4
SWEEP_KS = (1, 2, 5, 10)
SWEEP_RATES = (0.1, 0.05, 0.01)  # 4 x 3 = 12 configs


def bench_exact_lru(trace):
    from repro.stack.lru_stack import lru_histograms

    t0 = time.perf_counter()
    o_legacy, b_legacy = lru_histograms(trace, vectorized=False)
    legacy_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    o_vec, b_vec = lru_histograms(trace, vectorized=True)
    vectorized_s = time.perf_counter() - t0

    identical = bool(
        np.array_equal(o_legacy.counts(), o_vec.counts())
        and o_legacy.cold_misses == o_vec.cold_misses
        and np.array_equal(
            b_legacy.miss_ratio_curve()[1], b_vec.miss_ratio_curve()[1]
        )
    )
    return {
        "requests": len(trace),
        "legacy_s": round(legacy_s, 4),
        "vectorized_s": round(vectorized_s, 4),
        "speedup": round(legacy_s / vectorized_s, 3),
        "curves_identical": identical,
    }


def bench_sampled_process(trace, seed=1):
    from repro import KRRModel
    from repro.engine import TracePlan

    keys = trace.keys
    sizes = trace.sizes
    legacy_model = KRRModel(k=K, sampling_rate=SAMPLING_RATE, seed=seed)
    t0 = time.perf_counter()
    for i in range(keys.shape[0]):
        legacy_model.access(int(keys[i]), int(sizes[i]))
    legacy_s = time.perf_counter() - t0

    plan = TracePlan.for_trace(trace)
    plan.materialize()  # priced separately from the per-model hot path
    vec_model = KRRModel(k=K, sampling_rate=SAMPLING_RATE, seed=seed)
    t0 = time.perf_counter()
    vec_model.process(trace, plan=plan)
    vectorized_s = time.perf_counter() - t0

    identical = bool(
        np.array_equal(
            legacy_model.mrc().miss_ratios, vec_model.mrc().miss_ratios
        )
    )
    return {
        "requests": len(trace),
        "k": K,
        "rate": SAMPLING_RATE,
        "sampled": vec_model.stats.requests_sampled,
        "legacy_s": round(legacy_s, 4),
        "vectorized_s": round(vectorized_s, 4),
        "speedup": round(legacy_s / vectorized_s, 3),
        "curves_identical": identical,
    }


def bench_sweep(trace, seed=3):
    from repro.engine import ModelSweep

    sweep = ModelSweep.grid(ks=SWEEP_KS, sampling_rates=SWEEP_RATES, seed=seed)
    t0 = time.perf_counter()
    serial = sweep.run(trace, max_workers=1)
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    unchunked = sweep.run(trace, max_workers=SWEEP_WORKERS)
    unchunked_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    chunked = sweep.run(trace, max_workers=SWEEP_WORKERS, chunk_size="auto")
    chunked_s = time.perf_counter() - t0

    identical = all(
        np.array_equal(a.sizes, b.sizes)
        and np.array_equal(a.miss_ratios, b.miss_ratios)
        and np.array_equal(a.sizes, c.sizes)
        and np.array_equal(a.miss_ratios, c.miss_ratios)
        for a, b, c in zip(serial, unchunked, chunked)
    )
    return {
        "n_configs": len(sweep),
        "workers": SWEEP_WORKERS,
        "serial_s": round(serial_s, 4),
        "parallel_unchunked_s": round(unchunked_s, 4),
        "parallel_chunked_s": round(chunked_s, 4),
        "unchunked_speedup_vs_serial": round(serial_s / unchunked_s, 3),
        "chunked_speedup_vs_serial": round(serial_s / chunked_s, 3),
        "chunked_speedup_vs_unchunked": round(unchunked_s / chunked_s, 3),
        "bit_identical_grids": bool(identical),
    }


def _gate(payload):
    """Perf-smoke pass/fail: vectorized never slower, always identical."""
    failures = []
    for name in ("exact_lru", "sampled_process"):
        section = payload[name]
        if section["speedup"] < 1.0:
            failures.append(
                f"{name}: vectorized path slower than legacy "
                f"({section['speedup']:.2f}x)"
            )
        if not section["curves_identical"]:
            failures.append(f"{name}: vectorized curves differ from legacy")
    swept = payload["model_sweep"]
    if not swept["bit_identical_grids"]:
        failures.append("model_sweep: grids not bit-identical")
    if swept["chunked_speedup_vs_unchunked"] < 0.95:
        failures.append(
            "model_sweep: task batching slower than one-task-per-config "
            f"({swept['chunked_speedup_vs_unchunked']:.2f}x)"
        )
    if swept["chunked_speedup_vs_serial"] < 0.9:
        failures.append(
            "model_sweep: chunked parallel path regresses vs serial "
            f"({swept['chunked_speedup_vs_serial']:.2f}x)"
        )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: 40k requests instead of 500k",
    )
    args = parser.parse_args(argv)

    from repro.workloads.trace import Trace
    from repro.workloads.zipf import zipf_trace_keys

    n_requests = 40_000 if args.quick else 500_000
    n_objects = 8_000 if args.quick else 50_000
    keys = zipf_trace_keys(n_objects, n_requests, 0.99, rng=1)
    trace = Trace(keys, name=f"zipf{n_requests // 1000}k")

    exact = bench_exact_lru(trace)
    sampled = bench_sampled_process(trace)
    swept = bench_sweep(trace)

    payload = {
        "bench": "hotpath",
        "quick": args.quick,
        "cpus": os.cpu_count(),
        "trace": {
            "kind": "zipf",
            "n_requests": n_requests,
            "n_objects": n_objects,
            "alpha": 0.99,
        },
        "exact_lru": exact,
        "sampled_process": sampled,
        "model_sweep": swept,
    }
    failures = _gate(payload)
    payload["gate_failures"] = failures

    out = REPO_ROOT / "BENCH_hotpath.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"trace: {n_requests} requests, {n_objects} objects (zipf 0.99), "
        f"{os.cpu_count()} cpu(s)",
        "",
        "exact-LRU distance extraction (both histograms):",
        f"  per-access Fenwick  {exact['legacy_s']:8.2f}s",
        f"  batch kernel        {exact['vectorized_s']:8.2f}s",
        f"  speedup             {exact['speedup']:.2f}x  "
        f"(curves identical: {exact['curves_identical']})",
        "",
        f"KRRModel.process at R={SAMPLING_RATE} (K={K}, "
        f"{sampled['sampled']} sampled):",
        f"  streaming access()  {sampled['legacy_s']:8.2f}s",
        f"  plan + batched      {sampled['vectorized_s']:8.2f}s",
        f"  speedup             {sampled['speedup']:.2f}x  "
        f"(curves identical: {sampled['curves_identical']})",
        "",
        f"ModelSweep {swept['n_configs']}-config grid "
        f"(K in {list(SWEEP_KS)}, R in {list(SWEEP_RATES)}):",
        f"  serial                      {swept['serial_s']:8.2f}s",
        f"  {swept['workers']} workers, 1 cfg/task       "
        f"{swept['parallel_unchunked_s']:8.2f}s  "
        f"({swept['unchunked_speedup_vs_serial']:.2f}x vs serial)",
        f"  {swept['workers']} workers, chunked (auto)   "
        f"{swept['parallel_chunked_s']:8.2f}s  "
        f"({swept['chunked_speedup_vs_serial']:.2f}x vs serial)",
        f"  grids bit-identical: {swept['bit_identical_grids']}",
        "",
        f"wrote {out}",
    ]
    if failures:
        lines += ["", "GATE FAILURES:"] + [f"  - {f}" for f in failures]
    write_result("bench_hotpath", "\n".join(lines))
    return 1 if failures else 0


def test_hotpath_quick(benchmark):
    """Pytest-benchmark entry point: quick mode only."""
    benchmark.pedantic(lambda: main(["--quick"]), rounds=1, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main())
