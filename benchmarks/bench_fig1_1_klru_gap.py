"""Figure 1.1 — MRCs of MSR `web` under K-LRU with K in {1, 2, 4, 8, 16, 32}.

Paper's claim: on this trace the K-LRU MRCs fan out — different sampling
sizes K give substantially different miss ratios, with the curves moving
from the random-replacement (K=1) curve toward exact LRU as K grows.

Scale substitution: synthetic `web` preset (see DESIGN.md §2) with ~12.5k
objects and 120k requests instead of the original 1.8M-object trace.
"""

import numpy as np

from repro.analysis import render_table
from repro.simulator import klru_mrc, object_size_grid
from repro.stack.lru_stack import lru_histograms
from repro.mrc.builder import from_distance_histogram

from _common import GRID_POINTS, msr_trace, write_result

KS = (1, 2, 4, 8, 16, 32)


def test_fig1_1_klru_mrc_fan(benchmark):
    trace = msr_trace("web")
    sizes = object_size_grid(trace, GRID_POINTS)

    def run():
        return {
            k: klru_mrc(trace, k, sizes=sizes, rng=100 + k) for k in KS
        }

    curves = benchmark.pedantic(run, rounds=1, iterations=1)
    hist, _ = lru_histograms(trace)
    lru = from_distance_histogram(hist, label="LRU")

    rows = []
    for s in sizes:
        rows.append(
            [int(s)]
            + [round(float(curves[k](s)), 4) for k in KS]
            + [round(float(lru(s)), 4)]
        )
    table = render_table(
        ["cache_size"] + [f"K={k}" for k in KS] + ["LRU"],
        rows,
        title=f"Figure 1.1 — K-LRU MRCs, trace={trace.name}",
    )
    write_result("fig1_1_klru_gap", table)

    # Reproduction check: a visible fan at mid cache sizes, ordered toward LRU.
    mid = sizes[len(sizes) // 2]
    spread = abs(float(curves[1](mid)) - float(curves[32](mid)))
    assert spread > 0.05, f"expected a K-sensitivity gap, got spread={spread}"
    assert abs(float(curves[32](mid)) - float(lru(mid))) < abs(
        float(curves[1](mid)) - float(lru(mid))
    )
