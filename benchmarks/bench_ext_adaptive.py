"""Extension — DLRU: adaptive sampling size driven by online KRR models.

The paper's introduction motivates KRR with DLRU (Wang et al., MEMSYS'20):
"by dynamically configuring the sampling size of random sampling-based
LRU, ... DLRU can always outperform fixed sampling size cache."  This
bench reproduces that claim with our controller on a phase-shifting
workload: the adaptive cache must beat the worst fixed K clearly and track
the per-phase best within a small margin.
"""

import numpy as np

from repro.adaptive import AdaptiveKLRUCache
from repro.analysis import render_table
from repro.simulator import KLRUCache
from repro.workloads import Trace, patterns
from repro.workloads.zipf import ScrambledZipfGenerator

from _common import write_result

CAPACITY = 400
CANDIDATES = (1, 4, 16)


def _phase_trace():
    zipf = ScrambledZipfGenerator(2_000, 1.1, rng=1).sample(100_000)
    loop = patterns.loop(np.arange(600, dtype=np.int64), 100_000)
    return Trace(patterns.mix_phases([zipf, loop]), name="zipf->loop")


def test_ext_adaptive_dlru(benchmark):
    trace = _phase_trace()

    def run():
        results = {}
        for k in CANDIDATES:
            cache = KLRUCache(CAPACITY, k, rng=10 + k)
            for key in trace.keys:
                cache.access(int(key))
            results[f"fixed K={k}"] = cache.stats.miss_ratio
        adaptive = AdaptiveKLRUCache(
            CAPACITY,
            candidates=CANDIDATES,
            retune_interval=10_000,
            window=40_000,
            sampling_rate=0.3,
            initial_k=16,
            rng=20,
        )
        for key in trace.keys:
            adaptive.access(int(key))
        results["adaptive (DLRU)"] = adaptive.stats.miss_ratio
        ks_chosen = [e.chosen_k for e in adaptive.events]
        return results, ks_chosen

    results, ks_chosen = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [[name, round(mr, 4)] for name, mr in results.items()]
    rows.append(["K choices over time", " ".join(map(str, ks_chosen))])
    table = render_table(
        ["configuration", "miss ratio"],
        rows,
        title=f"Extension — adaptive K on {len(trace)}-request phase-shift trace",
        width=22,
    )
    write_result("ext_adaptive", table)

    adaptive_mr = results["adaptive (DLRU)"]
    fixed = [results[f"fixed K={k}"] for k in CANDIDATES]
    # Clearly better than the worst fixed K, within 3 points of the best.
    assert adaptive_mr < max(fixed) - 0.05
    assert adaptive_mr < min(fixed) + 0.03
    # The controller actually changed K when the phase changed.
    assert len(set(ks_chosen)) >= 2
