"""Figure 5.5 — validating KRR against (simulated) Redis.

Paper's setup: real Redis instances at 50 memory sizes on msr src2/web/proj
with 200-byte objects; KRR+spatial tracks the Redis MRCs closely, and the
ideal K-LRU simulator deviates *slightly* from Redis because Redis's
``dictGetSomeKeys`` sampling is not uniformly random (footnote: the
``dictGetRandomKey`` mode matches the simulator almost exactly).

Substitution: :class:`repro.simulator.RedisLikeCache` reimplements the
Redis eviction machinery (24-bit clock, eviction pool, biased sampling);
see DESIGN.md §2.  We reproduce all three claims.
"""

import numpy as np

from repro import model_trace
from repro.analysis import render_table
from repro.mrc import mean_absolute_error
from repro.sampling import choose_rate
from repro.simulator import klru_mrc, object_size_grid, redis_mrc

from _common import write_result, msr_trace

N_SIZES = 25  # paper uses 50; halved to keep the sweep fast
K = 5  # Redis default maxmemory-samples


def test_fig5_5_redis_validation(benchmark):
    traces = [msr_trace(s, n_requests=80_000) for s in ("src2", "web", "proj")]

    def run():
        out = {}
        for trace in traces:
            sizes = object_size_grid(trace, N_SIZES)
            redis = redis_mrc(trace, sizes=sizes, maxmemory_samples=K, rng=13)
            redis_unbiased = redis_mrc(
                trace, sizes=sizes, maxmemory_samples=K, unbiased_sampling=True,
                rng=14,
            )
            ideal = klru_mrc(trace, K, sizes=sizes, rng=15)
            # proj/web are scan-heavy; a higher sampled-object floor keeps
            # spatial error in the paper's regime (error ~ 1/sqrt(ns)).
            rate = choose_rate(trace.unique_objects(), min_objects=6_000)
            krr = model_trace(trace, k=K, sampling_rate=rate, seed=16).mrc()
            out[trace.name] = (sizes, redis, redis_unbiased, ideal, krr)
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, (sizes, redis, redis_unb, ideal, krr) in out.items():
        rows.append(
            [
                name,
                round(mean_absolute_error(redis, krr), 4),
                round(mean_absolute_error(redis, ideal), 4),
                round(mean_absolute_error(redis_unb, ideal), 4),
            ]
        )
    table = render_table(
        ["trace", "MAE(Redis,KRR+S)", "MAE(Redis,sim)", "MAE(RedisUnb,sim)"],
        rows,
        title="Figure 5.5 — Redis validation (Redis-like simulator)",
        width=18,
    )
    write_result("fig5_5_redis", table)

    for name, (sizes, redis, redis_unb, ideal, krr) in out.items():
        # KRR tracks the Redis MRC closely.
        assert mean_absolute_error(redis, krr) < 0.06, name
        # The unbiased-sampling Redis matches the ideal simulator at least
        # as well as the biased default does on average (footnote 3).
    avg_biased = float(np.mean([r[2] for r in rows]))
    avg_unbiased = float(np.mean([r[3] for r in rows]))
    assert avg_unbiased <= avg_biased + 0.005, (avg_unbiased, avg_biased)
