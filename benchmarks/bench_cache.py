"""Production-cache benchmark: hot-path overhead + self-model accuracy.

Measures, on a 500k-request zipf trace (50k objects, alpha=0.99):

1. **Hot-path cost** — requests/s through ``SamplingLRUCache`` with
   instrumentation off and on (spatial rate 0.01), next to the raw
   ``ByteKLRUCache`` simulator loop for context.  Gates: the embedded
   model must cost <= 15% over the uninstrumented path, and the
   uninstrumented path must never be slower than the instrumented one
   (within measurement noise).
2. **Self-model accuracy, single-threaded** — the cache's self-reported
   MRC against an offline ``KRRModel`` fed the same trace at the same
   rate.  Gate: <= 0.02 absolute at every probed size.
3. **Self-model accuracy, 4-thread ingest** — the same trace striped
   round-robin across 4 writer threads.  The zipf trace is i.i.d., so
   any interleaving is statistically the same stream and the gate is
   identical: <= 0.02 absolute at every probed size.

Writes machine-readable results to ``BENCH_cache.json`` at the repo
root and a text summary under ``benchmarks/results/``.  Exits non-zero
on any gate failure — the CI perf-smoke gate.  ``--quick`` shrinks the
trace for CI.

Run:  PYTHONPATH=src python benchmarks/bench_cache.py [--quick]
"""

import argparse
import json
import os
import sys
import threading
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from _common import write_result  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parents[1]

K = 5
MODEL_RATE = 0.01
OBJECT_SIZE = 10
N_THREADS = 4
MAX_ABS_ERR = 0.02
MAX_OVERHEAD = 0.15


def _capacity(n_objects):
    # ~40% of the working set resident: plenty of eviction pressure
    # without devolving into pure thrash.
    return int(0.4 * n_objects) * OBJECT_SIZE


def _feed(cache, keys):
    access = cache.access
    t0 = time.perf_counter()
    for key in keys:
        access(key, OBJECT_SIZE)
    return time.perf_counter() - t0


def bench_hot_path(keys, n_objects, rounds=5):
    from repro.cache import SamplingLRUCache
    from repro.simulator.klru import ByteKLRUCache

    capacity = _capacity(n_objects)
    # Steady-state protocol: one untimed pass warms each variant (cache
    # residency, the model's sampling-decision memo), then the variants
    # are timed in interleaved rounds and the best time per variant is
    # kept — min-of-N cancels scheduler noise that a single back-to-back
    # pass folds straight into the overhead ratio.  The timing order
    # rotates each round: with a fixed order, load that ramps during a
    # round always lands on the same variant and biases the ratio even
    # under min-of-N.
    sim = ByteKLRUCache(capacity, k=K, rng=0)
    plain = SamplingLRUCache(capacity, k=K, seed=0, instrument=False)
    instrumented = SamplingLRUCache(capacity, k=K, seed=0, model_rate=MODEL_RATE)
    variants = [sim, plain, instrumented]
    best = {id(v): float("inf") for v in variants}
    for cache in variants:
        _feed(cache, keys)
    for r in range(rounds):
        for cache in variants[r % 3:] + variants[: r % 3]:
            best[id(cache)] = min(best[id(cache)], _feed(cache, keys))
    sim_s = best[id(sim)]
    plain_s = best[id(plain)]
    instrumented_s = best[id(instrumented)]

    n = len(keys)
    overhead = (instrumented_s - plain_s) / plain_s
    return {
        "requests": n,
        "capacity_bytes": capacity,
        "simulator_s": round(sim_s, 4),
        "uninstrumented_s": round(plain_s, 4),
        "instrumented_s": round(instrumented_s, 4),
        "simulator_rps": round(n / sim_s),
        "uninstrumented_rps": round(n / plain_s),
        "instrumented_rps": round(n / instrumented_s),
        "model_rate": MODEL_RATE,
        "instrumentation_overhead": round(overhead, 4),
        "model_sampled": instrumented.info()["model"]["requests_seen"],
    }, instrumented


def _offline_curve(keys, rate):
    from repro.core.model import KRRModel

    model = KRRModel(k=K, sampling_rate=rate, seed=0)
    for key in keys:
        model.access(key, OBJECT_SIZE)
    return model.mrc()


def _accuracy(cache, offline, sizes):
    self_curve = cache.mrc()
    rows = []
    for size in sizes:
        predicted = float(self_curve(size))
        reference = float(offline(size))
        rows.append(
            {
                "size": size,
                "self_model": round(predicted, 4),
                "offline_krr": round(reference, 4),
                "abs_err": round(abs(predicted - reference), 4),
            }
        )
    return rows


def bench_threaded(keys, n_objects, rate):
    from repro.cache import SamplingLRUCache

    cache = SamplingLRUCache(
        _capacity(n_objects), k=K, seed=0, model_rate=rate
    )
    stripes = [keys[i::N_THREADS] for i in range(N_THREADS)]
    threads = [
        threading.Thread(target=_feed, args=(cache, stripe), daemon=True)
        for stripe in stripes
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    assert cache.references == len(keys), "lost references under contention"
    return cache, elapsed


def _gate(payload):
    failures = []
    hot = payload["hot_path"]
    if hot["instrumentation_overhead"] > MAX_OVERHEAD:
        failures.append(
            f"hot_path: instrumentation overhead "
            f"{hot['instrumentation_overhead']:.1%} exceeds {MAX_OVERHEAD:.0%}"
        )
    # never-slower: turning the model OFF must not cost throughput
    # (5% tolerance absorbs timer noise on short quick runs)
    if hot["uninstrumented_s"] > hot["instrumented_s"] * 1.05:
        failures.append(
            "hot_path: uninstrumented path slower than instrumented "
            f"({hot['uninstrumented_s']:.2f}s vs {hot['instrumented_s']:.2f}s)"
        )
    for section in ("accuracy_single_thread", "accuracy_threaded"):
        for row in payload[section]:
            if row["abs_err"] > MAX_ABS_ERR:
                failures.append(
                    f"{section}: |self - offline| = {row['abs_err']:.4f} "
                    f"at size {row['size']} (limit {MAX_ABS_ERR})"
                )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: 150k requests instead of 500k",
    )
    args = parser.parse_args(argv)

    from repro.workloads.zipf import zipf_trace_keys

    n_requests = 150_000 if args.quick else 500_000
    n_objects = 8_000 if args.quick else 50_000
    # quick mode needs a higher spatial rate to keep the model out of
    # small-sample noise; full scale uses the production-typical 1%.
    rate = 0.05 if args.quick else MODEL_RATE
    probe_sizes = (
        [300, 800, 2_000, 4_000]
        if args.quick
        else [2_000, 5_000, 10_000, 25_000]
    )
    keys = [int(k) for k in zipf_trace_keys(n_objects, n_requests, 0.99, rng=1)]

    hot, _ = bench_hot_path(keys, n_objects)

    from repro.cache import SamplingLRUCache

    offline = _offline_curve(keys, rate)
    single = SamplingLRUCache(_capacity(n_objects), k=K, seed=0, model_rate=rate)
    _feed(single, keys)
    acc_single = _accuracy(single, offline, probe_sizes)

    threaded_cache, threaded_s = bench_threaded(keys, n_objects, rate)
    acc_threaded = _accuracy(threaded_cache, offline, probe_sizes)

    payload = {
        "bench": "cache",
        "quick": args.quick,
        "cpus": os.cpu_count(),
        "trace": {
            "kind": "zipf",
            "n_requests": n_requests,
            "n_objects": n_objects,
            "alpha": 0.99,
            "model_rate": rate,
        },
        "hot_path": hot,
        "accuracy_single_thread": acc_single,
        "threaded": {
            "writers": N_THREADS,
            "elapsed_s": round(threaded_s, 4),
            "rps": round(n_requests / threaded_s),
        },
        "accuracy_threaded": acc_threaded,
    }
    failures = _gate(payload)
    payload["gate_failures"] = failures

    out = REPO_ROOT / "BENCH_cache.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    def _acc_lines(rows):
        return [
            f"  size {row['size']:>6}: self {row['self_model']:.4f}  "
            f"offline {row['offline_krr']:.4f}  |err| {row['abs_err']:.4f}"
            for row in rows
        ]

    lines = [
        f"trace: {n_requests} requests, {n_objects} objects (zipf 0.99), "
        f"rate {rate}, {os.cpu_count()} cpu(s)",
        "",
        "hot path (requests/s):",
        f"  ByteKLRUCache simulator   {hot['simulator_rps']:>9,}",
        f"  cache, uninstrumented     {hot['uninstrumented_rps']:>9,}",
        f"  cache, instrumented       {hot['instrumented_rps']:>9,}  "
        f"(model overhead {hot['instrumentation_overhead']:.1%}, "
        f"limit {MAX_OVERHEAD:.0%})",
        "",
        "self-model vs offline KRR, single-threaded:",
        *_acc_lines(acc_single),
        "",
        f"self-model vs offline KRR, {N_THREADS}-thread ingest "
        f"({payload['threaded']['rps']:,} req/s aggregate):",
        *_acc_lines(acc_threaded),
        "",
        f"wrote {out}",
    ]
    if failures:
        lines += ["", "GATE FAILURES:"] + [f"  - {f}" for f in failures]
    write_result("bench_cache", "\n".join(lines))
    return 1 if failures else 0


def test_cache_quick(benchmark):
    """Pytest-benchmark entry point: quick mode only."""
    benchmark.pedantic(lambda: main(["--quick"]), rounds=1, iterations=1)


if __name__ == "__main__":
    raise SystemExit(main())
