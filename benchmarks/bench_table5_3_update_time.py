"""Table 5.3 — running-time comparison of the stack-update methods (K=5).

Paper's table (1M MSR src1 requests, C implementation):

    Simulation (25 sizes)     26 s
    Basic (linear) stack   53606 s
    Top-down update           97 s
    Backward update          6.5 s
    Top-down + Spatial      0.39 s
    Backward + Spatial      0.07 s

What must reproduce: the *ordering* and rough factors — basic is orders of
magnitude slower than both fast updates, top-down is ~15x slower than
backward, and spatial sampling buys ~2 further orders of magnitude.

Scale substitution: 150k requests (Python is ~50-100x slower per operation
than the paper's C); the basic stack is timed on a 10k-request prefix
because its O(NM) cost is impractical in Python at full length (the paper
itself needed 15 hours in C).  Per-request costs are reported alongside.
"""

import time

from repro import KRRModel
from repro.analysis import render_table
from repro.simulator import KLRUCache, object_size_grid, sweep_mrc
from repro.workloads import msr

from _common import write_result

K = 5  # Redis's default maxmemory-samples
N = 150_000
LINEAR_N = 10_000
SPATIAL_RATE = 0.01


def _time_model(trace, strategy, rate=None, n=None):
    model = KRRModel(k=K, strategy=strategy, sampling_rate=rate, seed=5)
    sub = trace if n is None else trace.head(n)
    t0 = time.perf_counter()
    model.process(sub)
    return time.perf_counter() - t0, len(sub)


def test_table5_3_running_time(benchmark):
    trace = msr.make_trace("src1", N, scale=1.0)

    def run():
        results = {}
        # Simulation / interpolation baseline: 25 cache sizes.
        sizes = object_size_grid(trace, 25)
        t0 = time.perf_counter()
        sweep_mrc(trace, lambda s: KLRUCache(s, K, rng=1), sizes)
        results["simulation(25 sizes)"] = (time.perf_counter() - t0, N * 25)

        # Basic (linear) stack: O(NM) is impractical at full length in
        # Python, so warm the stack over the full trace with the cheap
        # backward strategy (all strategies produce statistically identical
        # stacks, §4.3), then time the linear sweep on a tail slice at the
        # full working-set size — the regime the paper's 53,606 s reflects.
        from repro.core.krr import KRRStack

        stack = KRRStack(K, strategy="backward", rng=4)
        warm = trace.head(N - LINEAR_N)
        for key in warm.keys:
            stack.access(int(key))
        stack.set_strategy("linear", rng=4)
        tail = trace.keys[N - LINEAR_N :]
        t0 = time.perf_counter()
        for key in tail:
            stack.access(int(key))
        results["basic stack"] = (time.perf_counter() - t0, LINEAR_N)
        t, n = _time_model(trace, "topdown")
        results["topdown"] = (t, n)
        t, n = _time_model(trace, "backward")
        results["backward"] = (t, n)
        t, n = _time_model(trace, "topdown", rate=SPATIAL_RATE)
        results["topdown+spatial"] = (t, n)
        t, n = _time_model(trace, "backward", rate=SPATIAL_RATE)
        results["backward+spatial"] = (t, n)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for method, (t, n) in results.items():
        note = f"prefix n={n}" if n != N and "simulation" not in method else ""
        rows.append([method, round(t, 3), round(t / n * 1e6, 2), note])
    table = render_table(
        ["method", "time(s)", "us/request", "note"],
        rows,
        title=f"Table 5.3 — processing {N} MSR src1 requests, K={K}",
        width=18,
    )
    write_result("table5_3_update_time", table)

    per_req = {m: t / n for m, (t, n) in results.items()}
    # Ordering: basic >> topdown > backward; spatial ~2 orders cheaper.
    assert per_req["basic stack"] > 5 * per_req["topdown"]
    assert per_req["topdown"] > 2 * per_req["backward"]
    assert per_req["backward"] > 20 * per_req["backward+spatial"]
    assert per_req["topdown"] > 20 * per_req["topdown+spatial"]
