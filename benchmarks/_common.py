"""Shared helpers for the experiment benchmarks.

Every bench regenerates one table or figure from the paper at
laptop-friendly scale (documented per file), printing the same rows/series
the paper reports and writing them under ``benchmarks/results/``.
EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

import functools
from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"

#: Scale factors shared by all benches: object counts are scaled down from
#: the paper's multi-million-object traces so ground-truth simulation sweeps
#: finish in seconds while preserving each trace's reuse structure.
N_REQUESTS = 120_000
MSR_SCALE = 0.25
TW_SCALE = 0.35
GRID_POINTS = 12


def write_result(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n===== {name} =====\n{text}\n")


@functools.lru_cache(maxsize=None)
def msr_trace(server: str, variable_size: bool = False, n_requests: int = N_REQUESTS):
    from repro.workloads import msr

    return msr.make_trace(
        server, n_requests, seed=11, variable_size=variable_size, scale=MSR_SCALE
    )


@functools.lru_cache(maxsize=None)
def twitter_trace(cluster: str, variable_size: bool = True, n_requests: int = N_REQUESTS):
    from repro.workloads import twitter

    return twitter.make_trace(
        cluster, n_requests, seed=17, variable_size=variable_size, scale=TW_SCALE
    )


@functools.lru_cache(maxsize=None)
def ycsb_trace(kind: str, alpha: float, n_requests: int = N_REQUESTS):
    from repro.workloads import ycsb

    if kind == "C":
        return ycsb.workload_c(15_000, n_requests, alpha, rng=7)
    n_scans = max(1, n_requests // 600)
    return ycsb.workload_e(12_000, n_scans, alpha, max_scan_length=1_200, rng=7)


def sampling_rate_for(trace) -> float:
    """The paper's rate rule rescaled to our trace sizes: target ~2.5k
    sampled objects (the paper targets 8k on traces 50x larger)."""
    from repro.sampling import choose_rate

    return choose_rate(trace.unique_objects(), min_objects=2_500)
