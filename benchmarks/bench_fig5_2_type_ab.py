"""Figure 5.2 — trace families: Type A (K-sensitive) vs Type B (K-insensitive).

Paper's claim: some traces (ycsb E, msr src1/src2/web/proj, tw 34.1) show a
significant LRU-vs-K=1 gap, so K-LRU MRCs fan out (Type A); others
(msr usr, ycsb C a=0.99, tw 45.0) yield nearly identical MRCs for every K
(Type B).  All Type-A traces exhibit a significant LRU <-> K=1 gap.
"""

from repro.analysis import classify_trace, render_table

from _common import msr_trace, twitter_trace, write_result, ycsb_trace

N = 50_000

TYPE_A = [
    ("ycsb_E_a1.5", lambda: ycsb_trace("E", 1.5, n_requests=N)),
    ("msr_src1", lambda: msr_trace("src1", n_requests=N)),
    ("msr_src2", lambda: msr_trace("src2", n_requests=N)),
    ("msr_web", lambda: msr_trace("web", n_requests=N)),
    ("msr_proj", lambda: msr_trace("proj", n_requests=N)),
    ("tw_cluster34.1", lambda: twitter_trace("cluster34.1", variable_size=False, n_requests=N)),
]
TYPE_B = [
    ("msr_usr", lambda: msr_trace("usr", n_requests=N)),
    ("ycsb_C_a0.99", lambda: ycsb_trace("C", 0.99, n_requests=N)),
    ("tw_cluster45.0", lambda: twitter_trace("cluster45.0", variable_size=False, n_requests=N)),
]


def test_fig5_2_type_a_vs_type_b(benchmark):
    def run():
        rows = []
        verdicts = {}
        for expected, group in (("A", TYPE_A), ("B", TYPE_B)):
            for name, build in group:
                c = classify_trace(build(), seed=3)
                rows.append([name, round(c.gap, 4), c.family, expected])
                verdicts[name] = (c.family, expected)
        return rows, verdicts

    rows, verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["trace", "K1<->LRU gap", "classified", "paper family"],
        rows,
        title="Figure 5.2 — Type A / Type B classification",
        width=14,
    )
    write_result("fig5_2_type_ab", table)

    mismatches = {n: v for n, v in verdicts.items() if v[0] != v[1]}
    assert not mismatches, mismatches
