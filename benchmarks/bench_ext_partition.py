"""Extension — cache partitioning over KRR curves (the LAMA use case).

The paper's introduction cites LAMA/pRedis-style memory management as a
prime MRC application.  This bench closes the loop: KRR-predicted curves
for four heterogeneous tenants feed the partition optimizers, and the
optimized split must beat the equal split both in predicted cost and in
*simulated* weighted misses (prediction errors could in principle mislead
the optimizer; this verifies they don't).
"""

from repro import model_trace
from repro.analysis import render_table
from repro.partition import (
    Tenant,
    equal_partition,
    greedy_partition,
    optimal_partition_dp,
)
from repro.simulator import KLRUCache, run_trace
from repro.workloads import Trace, msr
from repro.workloads.zipf import ScrambledZipfGenerator

from _common import write_result

K = 5
BUDGET = 5_000


def _workloads():
    return [
        (Trace(ScrambledZipfGenerator(2_500, 1.3, rng=1).sample(50_000),
               name="hot-skewed"), 3.0),
        (Trace(ScrambledZipfGenerator(7_000, 0.6, rng=2).sample(50_000),
               name="wide-mild"), 1.0),
        (msr.make_trace("src2", 50_000, scale=0.12, seed=3), 1.5),
        (Trace(ScrambledZipfGenerator(800, 1.8, rng=4).sample(50_000),
               name="tiny-hot"), 0.5),
    ]


def test_ext_partitioning(benchmark):
    workloads = _workloads()

    def run():
        tenants = [
            Tenant(trace.name, model_trace(trace, k=K, seed=7).mrc(), rate)
            for trace, rate in workloads
        ]
        plans = {
            "equal": equal_partition(tenants, BUDGET),
            "greedy": greedy_partition(tenants, BUDGET, unit=50),
            "dp": optimal_partition_dp(tenants, BUDGET, unit=100),
        }

        def simulate(plan):
            total = 0.0
            for (trace, rate), tenant in zip(workloads, tenants):
                cache = KLRUCache(max(1, plan.allocations[tenant.name]), K, rng=11)
                run_trace(cache, trace)
                total += rate * cache.stats.miss_ratio
            return total

        simulated = {name: simulate(plan) for name, plan in plans.items()}
        return tenants, plans, simulated

    tenants, plans, simulated = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for name, plan in plans.items():
        rows.append(
            [name]
            + [plan.allocations[t.name] for t in tenants]
            + [round(plan.total_miss_cost, 4), round(simulated[name], 4)]
        )
    table = render_table(
        ["plan"] + [t.name for t in tenants] + ["predicted", "simulated"],
        rows,
        title=f"Extension — partitioning {BUDGET} objects across 4 tenants",
        width=12,
    )
    write_result("ext_partition", table)

    # Optimized plans beat the equal split in prediction AND simulation.
    assert plans["greedy"].total_miss_cost < plans["equal"].total_miss_cost
    assert plans["dp"].total_miss_cost <= plans["greedy"].total_miss_cost + 1e-6
    assert simulated["greedy"] < simulated["equal"]
    assert simulated["dp"] < simulated["equal"]
