"""Figure 5.1 — actual vs. predicted K-LRU MRCs (YCSB-E a=1.5, MSR src1).

Paper's claim: for K in {1, 4, 16} the KRR and KRR+spatial curves are
nearly indistinguishable from the simulated K-LRU curves, while the exact
LRU curve (plotted for contrast) visibly differs at small K.
"""

from repro import model_trace
from repro.analysis import render_table
from repro.mrc import mean_absolute_error
from repro.mrc.builder import from_distance_histogram
from repro.simulator import klru_mrc, object_size_grid
from repro.stack.lru_stack import lru_histograms

from _common import msr_trace, sampling_rate_for, write_result, ycsb_trace

KS = (1, 4, 16)


def test_fig5_1_actual_vs_predicted(benchmark):
    traces = [ycsb_trace("E", 1.5, n_requests=60_000), msr_trace("src1", n_requests=60_000)]

    def run():
        out = {}
        for trace in traces:
            sizes = object_size_grid(trace, 10)
            rate = sampling_rate_for(trace)
            hist, _ = lru_histograms(trace)
            lru = from_distance_histogram(hist, label="LRU")
            per_k = {}
            for k in KS:
                per_k[k] = {
                    "actual": klru_mrc(trace, k, sizes=sizes, rng=500 + k),
                    "krr": model_trace(trace, k=k, seed=600 + k).mrc(),
                    "krr_spatial": model_trace(
                        trace, k=k, sampling_rate=rate, seed=700 + k
                    ).mrc(),
                }
            out[trace.name] = (sizes, per_k, lru)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    blocks = []
    for name, (sizes, per_k, lru) in results.items():
        rows = []
        for s in sizes:
            row = [int(s)]
            for k in KS:
                row += [
                    round(float(per_k[k]["actual"](s)), 4),
                    round(float(per_k[k]["krr"](s)), 4),
                    round(float(per_k[k]["krr_spatial"](s)), 4),
                ]
            row.append(round(float(lru(s)), 4))
            rows.append(row)
        headers = ["size"]
        for k in KS:
            headers += [f"sim(K={k})", f"KRR(K={k})", f"KRR+S(K={k})"]
        headers.append("LRU")
        blocks.append(
            render_table(headers, rows, title=f"Figure 5.1 — {name}", width=11)
        )
    write_result("fig5_1_actual_vs_pred", "\n\n".join(blocks))

    # Reproduction checks: predicted ~= actual for every K; the small-K
    # curves differ from LRU on at least one trace (the motivation).
    gap_from_lru = 0.0
    for name, (sizes, per_k, lru) in results.items():
        for k in KS:
            actual = per_k[k]["actual"]
            assert mean_absolute_error(actual, per_k[k]["krr"]) < 0.02, (name, k)
            # Spatial error scales as 1/sqrt(sampled objects); at our
            # scaled-down working sets (~2.5k sampled) that budget is ~0.08
            # (the paper's 8k-object floor gives ~1e-3..1e-2).
            assert mean_absolute_error(actual, per_k[k]["krr_spatial"]) < 0.08, (
                name,
                k,
            )
        gap_from_lru = max(
            gap_from_lru, mean_absolute_error(per_k[1]["actual"], lru)
        )
    assert gap_from_lru > 0.03
