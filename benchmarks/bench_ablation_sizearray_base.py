"""Ablation — sizeArray base `b` (§4.4.1): accuracy vs anchor count.

The sizeArray keeps prefix-byte anchors at positions b^j.  Larger bases
mean fewer anchors (less maintenance work) but coarser interpolation for
byte-level stack distances.  This ablation sweeps b on a heavy-tailed
variable-size trace and reports var-KRR MAE and anchor counts.
"""

import math

from repro import KRRModel
from repro.analysis import render_table
from repro.mrc import mean_absolute_error
from repro.simulator import byte_klru_mrc, byte_size_grid
from repro.workloads import twitter

from _common import write_result

BASES = (2, 4, 8, 16)
K = 8
N = 50_000


def test_ablation_sizearray_base(benchmark):
    trace = twitter.make_trace("cluster26.0", N, scale=0.2, seed=23)
    sizes = byte_size_grid(trace, 8)

    def run():
        truth = byte_klru_mrc(trace, K, sizes=sizes, rng=70)
        rows = []
        maes = {}
        for b in BASES:
            model = KRRModel(k=K, track_sizes=True, size_array_base=b, seed=71)
            curve = model.process(trace).byte_mrc()
            maes[b] = mean_absolute_error(truth, curve)
            anchors = len(model._stack._size_array.anchors)
            rows.append([b, anchors, round(maes[b], 5)])
        return rows, maes

    rows, maes = benchmark.pedantic(run, rounds=1, iterations=1)
    table = render_table(
        ["base b", "anchors", "MAE(var-KRR)"],
        rows,
        title=f"Ablation — sizeArray base sweep on {trace.name}, K={K}",
        width=14,
    )
    write_result("ablation_sizearray_base", table)

    # Anchor count is logarithmic in the working set for every base.
    m = trace.unique_objects()
    for b, anchors, _ in rows:
        assert anchors <= math.log(m, b) + 2, (b, anchors)
    # Even the coarsest base stays accurate (interpolation error is second
    # order); base 2 must be at least as good as base 16.
    assert all(v < 0.02 for v in maes.values()), maes
    assert maes[2] <= maes[16] + 0.005
