"""Benchmark-suite configuration: collect bench_*.py files."""

collect_ignore_glob = ["results/*"]
