"""Setuptools shim for environments without the `wheel` package.

`pip install -e .` on this offline box falls back to the legacy
`setup.py develop` path (--no-use-pep517); all real metadata lives in
pyproject.toml.
"""
from setuptools import setup

setup()
