"""Threaded stress smoke for the production cache (CI-runnable).

Scenario: four writer threads hammer one ``SamplingLRUCache`` — mixed
gets, puts, deletes and resizes — while a reader thread polls the
embedded MRC model.  Afterwards the script re-derives every invariant
the cache promises from first principles and fails loudly on any tear:

* byte accounting: ``used_bytes`` equals a fresh recount and never
  exceeds the budget;
* reference conservation: every lookup was counted exactly once;
* the self-model answered throughout and its final curve is sane.

This is the ``docs/CACHE.md`` locking contract as an executable check —
CI runs it under ``timeout`` so a deadlock fails the build instead of
hanging it.

Run:  python examples/cache_stress.py [ops_per_thread]
"""

import sys
import threading
import time

import numpy as np

from repro.cache import SamplingLRUCache

N_THREADS = 4
DEFAULT_OPS = 25_000
CAPACITY = 50_000


def writer(cache: SamplingLRUCache, idx: int, n_ops: int, errors: list) -> None:
    rng = np.random.default_rng(100 + idx)
    try:
        for i in range(n_ops):
            key = int(rng.integers(0, 2_000))
            if i % 10 < 7:
                if cache.get(key) is None:
                    cache.put(key, idx, size=int(rng.integers(1, 200)))
            elif i % 10 < 9:
                cache.put(key, idx, size=int(rng.integers(1, 200)))
            else:
                cache.discard(key)
            if cache.used_bytes > cache.capacity_bytes:
                raise AssertionError("byte budget exceeded mid-storm")
    except BaseException as exc:  # noqa: BLE001 - report into main thread
        errors.append(exc)


def reader(cache: SamplingLRUCache, stop: threading.Event, errors: list) -> None:
    answered = 0
    try:
        while not stop.is_set():
            try:
                mr = cache.miss_ratio_at(1_000)
                assert 0.0 <= mr <= 1.0, mr
                answered += 1
            except ValueError:
                pass  # model still cold
            cache.info()
        if answered == 0:
            raise AssertionError("model never warmed up during the storm")
    except BaseException as exc:  # noqa: BLE001
        errors.append(exc)


def main() -> None:
    n_ops = int(sys.argv[1]) if len(sys.argv) > 1 else DEFAULT_OPS
    cache = SamplingLRUCache(CAPACITY, k=5, seed=0, model_rate=0.1, name="stress")
    errors: list = []
    stop = threading.Event()

    threads = [
        threading.Thread(target=writer, args=(cache, i, n_ops, errors), daemon=True)
        for i in range(N_THREADS)
    ]
    poller = threading.Thread(target=reader, args=(cache, stop, errors), daemon=True)

    t0 = time.perf_counter()
    poller.start()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
        if t.is_alive():
            raise SystemExit("FAIL: writer thread wedged (deadlock?)")
    stop.set()
    poller.join(timeout=30)
    if poller.is_alive():
        raise SystemExit("FAIL: reader thread wedged (deadlock?)")
    elapsed = time.perf_counter() - t0

    if errors:
        raise SystemExit(f"FAIL: thread raised: {errors[0]!r}")

    # Post-storm invariants, recomputed from scratch.
    assert cache.used_bytes == sum(cache._sizes.values()), "torn byte accounting"
    assert cache.used_bytes <= cache.capacity_bytes, "over budget"
    assert len(cache) == len(cache._residents) == len(cache._sizes)
    total_ops = N_THREADS * n_ops
    assert cache.references == cache.stats.hits + cache.stats.misses
    assert cache.references > 0

    info = cache.info()
    mr = cache.miss_ratio_at(1_000)
    print(f"{total_ops:,} ops across {N_THREADS} threads in {elapsed:.2f}s "
          f"({total_ops / elapsed:,.0f} ops/s)")
    print(f"residents {len(cache):,}, used {cache.used_bytes:,}/{CAPACITY:,} B, "
          f"hit ratio {cache.stats.hits / cache.references:.3f}")
    print(f"model sampled {info['model']['requests_seen']:,} refs; "
          f"self-predicted miss ratio @ 1000 B: {mr:.3f}")
    print("OK: no deadlock, no torn accounting, model stayed readable")


if __name__ == "__main__":
    main()
