"""Redis memory sizing with KRR (the §5.7 validation as a planning tool).

Scenario: you must provision ``maxmemory`` for a Redis instance running
``allkeys-lru`` (which is really sampling-based LRU with K=5) to keep the
miss ratio under an SLO.  Exact-LRU models mis-estimate Redis's behavior;
KRR models the actual policy.  This example:

1. predicts the full MRC with KRR + spatial sampling (cheap, online-able);
2. picks the smallest capacity meeting the SLO;
3. validates the pick by "deploying" a faithful Redis-like cache simulator
   (24-bit LRU clock, eviction pool, biased dict sampling) at that size.

Run:  python examples/redis_capacity_planning.py
"""

from repro import model_trace
from repro.sampling import choose_rate
from repro.simulator import RedisLikeCache, run_trace
from repro.workloads import msr

SLO_MISS_RATIO = 0.35
REDIS_MAXMEMORY_SAMPLES = 5


def main() -> None:
    trace = msr.make_trace("web", 100_000, scale=0.2, seed=8)
    print(f"workload: {trace.name}, {len(trace)} requests, "
          f"{trace.unique_objects()} objects")

    rate = choose_rate(trace.unique_objects(), min_objects=5_000)
    curve = model_trace(
        trace, k=REDIS_MAXMEMORY_SAMPLES, sampling_rate=rate, seed=9
    ).mrc()

    # Provision with a safety margin: on steep MRC regions a small modeling
    # or sampling error translates into a visible miss-ratio difference, so
    # plan for SLO - 5 points rather than the SLO edge.
    margin = 0.05
    capacity = None
    for size in curve.sizes:
        if float(curve(size)) <= SLO_MISS_RATIO - margin:
            capacity = int(size)
            break
    if capacity is None:
        capacity = int(curve.sizes[-1])
    print(f"\nKRR (rate={rate:.2g}) recommends >= {capacity} objects for a "
          f"{SLO_MISS_RATIO:.0%} miss-ratio SLO with a {margin:.0%} margin "
          f"(predicted {float(curve(capacity)):.3f}).")

    # Validate against the Redis-fidelity simulator.
    redis = RedisLikeCache(capacity, maxmemory_samples=REDIS_MAXMEMORY_SAMPLES, rng=10)
    stats = run_trace(redis, trace)
    verdict = "meets" if stats.miss_ratio <= SLO_MISS_RATIO + 0.02 else "misses"
    print(f"Redis-like simulation at {capacity} objects: miss ratio "
          f"{stats.miss_ratio:.3f} -> {verdict} the SLO.")

    # Show the danger of undersizing: 30% less memory.
    small = int(capacity * 0.7)
    redis_small = RedisLikeCache(small, maxmemory_samples=REDIS_MAXMEMORY_SAMPLES, rng=11)
    stats_small = run_trace(redis_small, trace)
    print(f"Undersized by 30% ({small} objects): miss ratio "
          f"{stats_small.miss_ratio:.3f} "
          f"(KRR predicted {float(curve(small)):.3f}).")


if __name__ == "__main__":
    main()
