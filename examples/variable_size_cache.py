"""Byte-accurate capacity planning for variable-object-size caches.

Scenario: a Twitter-style in-memory KV cache stores values from tens of
bytes to tens of kilobytes.  Planning capacity in "number of objects"
(the uniform-size assumption) mis-sizes the cache badly; var-KRR (§4.4.1)
models the miss ratio curve directly in *bytes*.

The example builds a heavy-tailed KV workload, predicts the byte-level
MRC with var-KRR, contrasts it with the uniform-size estimate, and
validates both against a byte-capacity K-LRU simulation.

Run:  python examples/variable_size_cache.py
"""

from repro import model_trace
from repro.mrc import MissRatioCurve, mean_absolute_error
from repro.simulator import byte_klru_mrc
from repro.workloads import twitter


def main() -> None:
    trace = twitter.make_trace("cluster26.0", 120_000, scale=0.3, seed=5)
    print(f"workload: {trace.name}: {len(trace)} requests, "
          f"{trace.unique_objects()} objects, "
          f"footprint {trace.footprint_bytes() / 1e6:.1f} MB, "
          f"mean object {trace.mean_object_size():.0f} B")

    # Size-aware one-pass model (byte-granularity distances via sizeArray).
    var_curve = model_trace(trace, k=5, seed=6).byte_mrc()

    # The naive alternative: model objects, multiply by the mean size.
    mean_size = float(trace.sizes.mean())
    uni = model_trace(trace.with_uniform_size(int(mean_size)), k=5, seed=6).mrc()
    uni_curve = MissRatioCurve(uni.sizes * mean_size, uni.miss_ratios,
                               unit="bytes", label="uniform-size assumption")

    # Ground truth: byte-capacity K-LRU simulation at 8 sizes.
    truth = byte_klru_mrc(trace, 5, n_points=8, rng=7)

    print(f"\n{'cache MB':>9} | {'simulated':>9} | {'var-KRR':>9} | {'uniform':>9}")
    for size in truth.sizes:
        print(f"{size / 1e6:9.2f} | {float(truth(size)):9.3f} | "
              f"{float(var_curve(size)):9.3f} | {float(uni_curve(size)):9.3f}")

    print(f"\nMAE var-KRR  : {mean_absolute_error(truth, var_curve):.4f}")
    print(f"MAE uniform  : {mean_absolute_error(truth, uni_curve):.4f}")

    # Capacity recommendation: smallest byte budget with miss ratio <= 20%.
    target = 0.20
    for size in var_curve.sizes:
        if float(var_curve(size)) <= target:
            print(f"\nTo reach a {target:.0%} miss ratio, provision "
                  f"~{size / 1e6:.1f} MB (predicted without a single "
                  f"full-cache simulation).")
            break


if __name__ == "__main__":
    main()
