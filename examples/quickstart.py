"""Quickstart: predict a K-LRU cache's miss ratio curve in one pass.

Scenario: you run a Redis-style cache (random-sampling LRU with K=5) and
want its miss ratio at any capacity *without* running one simulation per
candidate size.  KRR builds the whole curve from a single pass over the
trace.

Run:  python examples/quickstart.py
"""

from repro import model_trace
from repro.analysis import render_series
from repro.mrc import mean_absolute_error
from repro.simulator import klru_mrc
from repro.workloads import ycsb


def main() -> None:
    # 1. A workload: YCSB-C, 10k objects, Zipfian with alpha = 0.99.
    trace = ycsb.workload_c(n_objects=10_000, n_requests=100_000, alpha=0.99, rng=1)
    print(f"workload: {trace.name}, {len(trace)} requests, "
          f"{trace.unique_objects()} distinct objects")

    # 2. One-pass KRR model for a cache that samples K=5 candidates per
    #    eviction (Redis's default maxmemory-samples).
    result = model_trace(trace, k=5, seed=42)
    curve = result.mrc()
    print(render_series("predicted K-LRU(K=5) MRC", curve.sizes, curve.miss_ratios,
                        x_label="cache size (objects)"))

    # 3. Point queries: what if we provision 2 000 objects? 5 000?
    for capacity in (2_000, 5_000):
        print(f"predicted miss ratio @ {capacity} objects: "
              f"{float(curve(capacity)):.3f}")

    # 4. Sanity check against brute-force simulation (expensive: one full
    #    pass per cache size — exactly what KRR avoids).
    truth = klru_mrc(trace, 5, n_points=8, rng=7)
    print(f"MAE vs simulated ground truth: "
          f"{mean_absolute_error(truth, curve):.4f}")


if __name__ == "__main__":
    main()
