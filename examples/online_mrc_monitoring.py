"""Online MRC monitoring with spatial sampling.

Scenario: a cache server wants a live miss-ratio curve for its current
workload — updated continuously, with negligible CPU and memory overhead —
to drive admission/partitioning decisions.  This is the paper's "online
application" (§2.4 + §4.3): KRR with SHARDS-style spatial sampling makes
each request's bookkeeping O(logM) on a tiny sampled stack.

The example replays a workload whose regime *shifts* halfway through
(hotspot moves, working set doubles) and snapshots the MRC every 100k
requests, showing the curve tracking the shift.

Run:  python examples/online_mrc_monitoring.py
"""

import numpy as np

from repro import KRRModel
from repro.workloads import Trace, patterns


def build_shifting_workload() -> Trace:
    """Phase 1: tight hotspot over 20k keys; phase 2: wider, cooler reuse."""
    phase1 = patterns.hotspot(20_000, 300_000, hot_fraction=0.05, hot_prob=0.9, rng=1)
    phase2 = patterns.hotspot(60_000, 300_000, hot_fraction=0.3, hot_prob=0.7,
                              key_offset=10_000, rng=2)
    return Trace(patterns.mix_phases([phase1, phase2]), name="shifting")


def main() -> None:
    trace = build_shifting_workload()
    # K=5 cache, 2% spatial sample: the model touches ~2% of requests and
    # tracks ~2% of objects; distances are rescaled internally by 1/R.
    model = KRRModel(k=5, sampling_rate=0.02, seed=3)

    snapshot_every = 100_000
    probe_sizes = (2_000, 10_000, 40_000)
    print(f"{'requests':>10} | " + " | ".join(f"mr@{s//1000}k" for s in probe_sizes)
          + " | sampled")
    for start in range(0, len(trace), snapshot_every):
        chunk = trace[start : start + snapshot_every]
        for i in range(len(chunk)):
            model.access(int(chunk.keys[i]))
        curve = model.mrc()
        cells = " | ".join(f"{float(curve(s)):6.3f}" for s in probe_sizes)
        print(f"{start + len(chunk):>10} | {cells} |  {model.stats.requests_sampled}")

    print("\nNote how the miss ratio at 10k/40k objects rises after request "
          "300k as the working set widens — the online curve follows the "
          "workload shift while sampling only "
          f"{model.stats.effective_rate:.1%} of requests.")


if __name__ == "__main__":
    main()
