"""Comparing sampled eviction policies (the paper's future work, working).

Scenario: Redis exposes ``allkeys-lru`` and ``allkeys-lfu``; Hyperbolic
caching and LHD generalize the idea — all are "sample K, evict the worst
by some priority".  Which priority wins depends on the workload.  This
example sweeps four sampled policies over two contrasting workloads and
prints their MRCs side by side, plus the OPT (Belady) lower bound.

Run:  python examples/policy_comparison.py
"""

import numpy as np

from repro.policies import compare_policies
from repro.stack import opt_mrc
from repro.workloads import Trace, patterns
from repro.workloads.zipf import ScrambledZipfGenerator

POLICIES = ("lru", "lfu", "hyperbolic", "fifo")


def frequency_skewed_trace() -> Trace:
    """A stable hot set + one-off scan traffic: LFU's home turf."""
    hot = ScrambledZipfGenerator(500, 1.3, rng=1).sample(40_000)
    scan = patterns.sequential_scan(10_000, 8_000)
    mixed = patterns.interleave_streams([hot, scan], [0.84, 0.16], rng=2)
    return Trace(mixed, name="hot-set+scan")


def shifting_trace() -> Trace:
    """Popularity drifts over time: frequency history misleads LFU."""
    phases = [
        ScrambledZipfGenerator(800, 1.2, rng=10 + i).sample(12_000) + i * 500
        for i in range(4)
    ]
    return Trace(patterns.mix_phases(phases), name="drifting-popularity")


def main() -> None:
    for trace in (frequency_skewed_trace(), shifting_trace()):
        print(f"\n=== {trace.name}: {len(trace)} requests, "
              f"{trace.unique_objects()} objects ===")
        curves = compare_policies(trace, POLICIES, k=5, n_points=8, rng=3)
        opt = opt_mrc(trace)
        sizes = curves["lru"].sizes
        header = f"{'size':>8} | " + " | ".join(f"{p:>10}" for p in POLICIES) + \
                 f" | {'OPT':>10}"
        print(header)
        for s in sizes:
            row = f"{int(s):8d} | " + " | ".join(
                f"{float(curves[p](s)):10.3f}" for p in POLICIES
            ) + f" | {float(opt(s)):10.3f}"
            print(row)
        mid = sizes[len(sizes) // 2]
        best = min(POLICIES, key=lambda p: float(curves[p](mid)))
        print(f"best sampled policy at {int(mid)} objects: {best}")


if __name__ == "__main__":
    main()
