"""End-to-end smoke run of the ``repro serve`` daemon.

Boots a real daemon subprocess on an ephemeral port, registers a tenant,
pushes a stream of request batches (small ones ride the queue; one large
batch crosses the process boundary via shared memory), reads the live
miss-ratio curve back over HTTP, and shuts the daemon down with SIGTERM —
asserting the whole service contract on the way:

* every acked batch is reflected in ``requests_seen`` (ack ⇒ durable),
* ``/mrc`` answers with a non-stale curve once the worker catches up,
* SIGTERM produces a graceful snapshot-then-exit with status ``-15``,
* no shared-memory segments are leaked into ``/dev/shm``.

This doubles as the CI service smoke job (see ``.github/workflows/ci.yml``);
run logs land in ``REPRO_SERVE_LOG`` (default ``serve-smoke.log``).

Run:  python examples/service_smoke.py
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path


def _shm_segments() -> set:
    shm = Path("/dev/shm")
    return {p.name for p in shm.glob("psm_*")} if shm.is_dir() else set()


def _request(base: str, method: str, path: str, body=None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(
        base + path, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


def _start_daemon(data_dir: Path, log_path: Path) -> tuple:
    """Launch ``repro serve`` and wait for its port file; returns (proc, base)."""
    port_file = data_dir.parent / "serve.port"
    log = open(log_path, "ab")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--data-dir", str(data_dir),
            "--port-file", str(port_file),
            "--snapshot-every", "4",
            "--shm-threshold", "256",
        ],
        env=dict(os.environ),
        stdout=log,
        stderr=subprocess.STDOUT,
    )
    deadline = time.monotonic() + 30
    while not port_file.exists():
        if proc.poll() is not None:
            raise RuntimeError(f"daemon died during startup (rc={proc.returncode})")
        if time.monotonic() > deadline:
            proc.kill()
            raise RuntimeError("daemon never wrote its port file")
        time.sleep(0.05)
    log.close()
    return proc, f"http://127.0.0.1:{int(port_file.read_text())}"


def main() -> int:
    log_path = Path(os.environ.get("REPRO_SERVE_LOG", "serve-smoke.log"))
    shm_before = _shm_segments()

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        data_dir = Path(tmp) / "data"
        proc, base = _start_daemon(data_dir, log_path)
        try:
            code, _, resp = _request(base, "POST", "/tenants", {
                "tenant_id": "smoke", "k": 5, "window": 20_000,
                "seed": 7, "shards_rate": 0.2,
            })
            assert code == 201, (code, resp)
            cfg = resp["tenant"]
            print(f"tenant registered: {cfg['tenant_id']} "
                  f"(k={cfg['k']}, window={cfg['window']})")

            # Nine small queue batches + one 1000-key shm batch, all from a
            # fixed congruential stream so any run sees the same curve.
            acked = 0
            for b in range(10):
                n = 1_000 if b == 5 else 120
                keys = [(b * 7919 + i * 104_729) % 3_000 for i in range(n)]
                code, headers, resp = _request(
                    base, "POST", "/tenants/smoke/ingest", {"keys": keys})
                while code == 429:  # bounded queue: honor Retry-After
                    time.sleep(float(headers.get("Retry-After", "1")))
                    code, headers, resp = _request(
                        base, "POST", "/tenants/smoke/ingest", {"keys": keys})
                assert code == 200 and resp["durable"] is True, (code, resp)
                acked += n
            print(f"ingested {acked} requests over 10 batches (1 via shm)")

            # The worker must converge to exactly the acked stream.
            deadline = time.monotonic() + 60
            while True:
                code, _, q = _request(base, "GET", "/tenants/smoke/mrc")
                assert code == 200, (code, q)
                if not q["stale"] and q["counters"]["requests_seen"] == acked:
                    break
                assert time.monotonic() < deadline, q["counters"]
                time.sleep(0.2)
            curve = q["mrc"]
            print(f"live MRC: {len(curve['sizes'])} points, "
                  f"mr@max = {curve['miss_ratios'][-1]:.4f}, "
                  f"shards baseline: {len(q['shards_mrc']['sizes'])} points")

            code, _, health = _request(base, "GET", "/health")
            assert code == 200 and health["tenants"]["smoke"]["restarts"] == 0
            print(f"health: {health['tenants']['smoke']['state']}, "
                  f"acked seq {health['tenants']['smoke']['last_acked_seq']}")

            proc.send_signal(signal.SIGTERM)
            rc = proc.wait(timeout=30)
            assert rc == -signal.SIGTERM, f"expected -SIGTERM exit, got {rc}"
            print("SIGTERM: graceful snapshot + shutdown, exit status -15")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)

    leaked = _shm_segments() - shm_before
    assert not leaked, f"leaked shared-memory segments: {leaked}"
    print("no leaked /dev/shm segments — service smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
