"""Dynamic sampling-size tuning (the DLRU use case from the paper's intro).

Scenario: Wang et al. (MEMSYS'20) showed that the eviction sampling size K
itself is a tuning knob — on some workloads a *small* K (more random-like
eviction) beats a large one, and vice versa.  Picking K online needs the
miss ratio of *every* candidate K at the current cache size.  Simulating
each candidate is one full trace pass per (K, size) pair; KRR gives each
candidate's entire curve in one pass.

The example evaluates K in {1..32} on two workloads with opposite
preferences and recommends the best K at a fixed cache budget.

Run:  python examples/dynamic_k_tuning.py
"""

from repro import model_trace
from repro.simulator import KLRUCache, run_trace
from repro.workloads import msr

CANDIDATE_KS = (1, 2, 4, 8, 16, 32)


def recommend_k(trace, cache_size: int, seed: int = 11):
    """Predict the miss ratio of every candidate K at ``cache_size``."""
    predictions = {}
    for k in CANDIDATE_KS:
        curve = model_trace(trace, k=k, seed=seed).mrc()
        predictions[k] = float(curve(cache_size))
    best = min(predictions, key=predictions.get)
    return best, predictions


def main() -> None:
    workloads = {
        # Loop/scan heavy: LRU's pathology — small K (more random) wins.
        "scan-heavy (msr src2)": (msr.make_trace("src2", 80_000, scale=0.2), None),
        # Smooth skewed reuse: recency is informative — large K wins.
        "smooth (msr usr)": (msr.make_trace("usr", 80_000, scale=0.15), None),
    }
    for name, (trace, _) in workloads.items():
        cache_size = trace.unique_objects() // 3
        best, preds = recommend_k(trace, cache_size)
        print(f"\n{name}: cache = {cache_size} objects")
        for k, mr in preds.items():
            marker = "  <- recommended" if k == best else ""
            print(f"  K={k:<3d} predicted miss ratio {mr:.3f}{marker}")

        # Validate the recommendation with one targeted simulation of the
        # best and worst candidates.
        worst = max(preds, key=preds.get)
        sim = {}
        for k in (best, worst):
            cache = KLRUCache(cache_size, k, rng=13)
            sim[k] = run_trace(cache, trace).miss_ratio
        print(f"  simulated: K={best} -> {sim[best]:.3f} (recommended), "
              f"K={worst} -> {sim[worst]:.3f}")
        assert sim[best] <= sim[worst] + 0.01


if __name__ == "__main__":
    main()
