"""Closed-loop DLRU: a cache that re-tunes its sampling size K online.

Scenario: the paper's motivating system (Wang et al., MEMSYS'20) shows no
single K is best for all workloads — loops favor small K (random-like
eviction breaks LRU's loop pathology), skewed reuse favors large K
(recency is informative).  With KRR, a live cache can afford to model
*every* candidate K continuously and switch.

This example runs a workload that changes phase midway (Zipf reuse ->
large loop) through three caches: fixed K=1, fixed K=16, and the adaptive
controller.  The adaptive cache should track the best fixed policy in each
phase.

Run:  python examples/adaptive_dlru.py
"""

import numpy as np

from repro.adaptive import AdaptiveKLRUCache
from repro.simulator import KLRUCache
from repro.workloads import Trace, patterns
from repro.workloads.zipf import ScrambledZipfGenerator


def phase_shifting_trace() -> Trace:
    zipf = ScrambledZipfGenerator(2_000, 1.1, rng=1).sample(120_000)
    loop = patterns.loop(np.arange(600, dtype=np.int64), 120_000)
    return Trace(patterns.mix_phases([zipf, loop]), name="zipf-then-loop")


def main() -> None:
    trace = phase_shifting_trace()
    capacity = 400

    caches = {
        "fixed K=1": KLRUCache(capacity, 1, rng=2),
        "fixed K=16": KLRUCache(capacity, 16, rng=3),
        "adaptive": AdaptiveKLRUCache(
            capacity,
            candidates=(1, 4, 16),
            retune_interval=10_000,
            window=40_000,           # forget old phases
            sampling_rate=0.3,
            initial_k=16,
            rng=4,
        ),
    }

    for name, cache in caches.items():
        for key in trace.keys:
            cache.access(int(key))
        print(f"{name:12s} overall miss ratio: {cache.stats.miss_ratio:.3f}")

    adaptive = caches["adaptive"]
    print("\nretuning history (request -> chosen K):")
    for e in adaptive.events:
        preds = ", ".join(f"K={k}:{v:.3f}" for k, v in sorted(e.predicted.items()))
        print(f"  @{e.at_request:>7} -> K={e.chosen_k:<3} ({preds})")
    print(f"\nfinal K: {adaptive.k} "
          "(expected: 16-ish during the Zipf phase, 1 during the loop phase)")


if __name__ == "__main__":
    main()
