"""Multi-tenant cache partitioning from KRR-predicted MRCs (LAMA-style).

Scenario: one Redis cluster serves four applications with very different
locality.  Splitting memory evenly wastes it — the right split equalizes
*marginal* benefit, which requires each tenant's miss ratio curve.  KRR
predicts all four curves in one pass each (the cache is sampling-LRU, so
exact-LRU curves would mis-rank the tenants), and the optimizer does the
rest.  The winning split is validated by simulating all tenants at their
allocations.

Run:  python examples/multi_tenant_partitioning.py
"""

from repro import model_trace
from repro.partition import (
    Tenant,
    equal_partition,
    greedy_partition,
    optimal_partition_dp,
)
from repro.simulator import KLRUCache, run_trace
from repro.workloads import Trace, msr
from repro.workloads.zipf import ScrambledZipfGenerator

K = 5
BUDGET = 6_000  # total cache objects to split


def build_tenants() -> list[tuple[Trace, float]]:
    """(trace, request-rate weight) per application."""
    return [
        (Trace(ScrambledZipfGenerator(3_000, 1.3, rng=1).sample(60_000),
               name="session-store"), 3.0),   # hot, heavily skewed, busy
        (Trace(ScrambledZipfGenerator(8_000, 0.6, rng=2).sample(60_000),
               name="catalog"), 1.0),          # wide, mildly skewed
        (msr.make_trace("src2", 60_000, scale=0.15, seed=3), 1.5),  # loopy
        (Trace(ScrambledZipfGenerator(1_000, 1.8, rng=4).sample(60_000),
               name="feature-flags"), 0.5),    # tiny working set
    ]


def main() -> None:
    workloads = build_tenants()
    tenants = []
    for trace, rate in workloads:
        curve = model_trace(trace, k=K, seed=7).mrc()
        tenants.append(Tenant(trace.name, curve, request_rate=rate))
        print(f"modeled {trace.name:14s} ({trace.unique_objects()} objects, "
              f"weight {rate})")

    plans = {
        "equal split": equal_partition(tenants, BUDGET),
        "greedy": greedy_partition(tenants, BUDGET, unit=50),
        "optimal DP": optimal_partition_dp(tenants, BUDGET, unit=100),
    }
    print(f"\n{'plan':>12} | " +
          " | ".join(f"{t.name:>14}" for t in tenants) + " | weighted miss")
    for name, plan in plans.items():
        cells = " | ".join(f"{plan.allocations[t.name]:>14}" for t in tenants)
        print(f"{name:>12} | {cells} | {plan.total_miss_cost:.4f}")

    # Validate the greedy plan against the naive split by simulation.
    def simulate(plan):
        total = 0.0
        for (trace, rate), tenant in zip(workloads, tenants):
            cap = max(1, plan.allocations[tenant.name])
            cache = KLRUCache(cap, K, rng=11)
            run_trace(cache, trace)
            total += rate * cache.stats.miss_ratio
        return total

    sim_eq = simulate(plans["equal split"])
    sim_gr = simulate(plans["greedy"])
    print(f"\nsimulated weighted miss — equal: {sim_eq:.4f}, "
          f"optimized: {sim_gr:.4f} "
          f"({(1 - sim_gr / sim_eq):.1%} fewer weighted misses)")


if __name__ == "__main__":
    main()
