"""Tests for the from-scratch HyperLogLog counter."""

import numpy as np
import pytest

from repro.baselines.hll import HyperLogLog


class TestBasics:
    def test_empty_cardinality_near_zero(self):
        assert HyperLogLog(11).cardinality() < 2

    def test_precision_bounds(self):
        with pytest.raises(ValueError):
            HyperLogLog(3)
        with pytest.raises(ValueError):
            HyperLogLog(19)

    def test_duplicates_not_double_counted(self):
        h = HyperLogLog(12)
        for _ in range(100):
            h.add(42)
        assert h.cardinality() < 3


class TestAccuracy:
    @pytest.mark.parametrize("n", [100, 5_000, 100_000])
    def test_relative_error_within_bound(self, n):
        h = HyperLogLog(12, seed=1)
        h.add_many(np.arange(n))
        est = h.cardinality()
        # 5x the theoretical standard error as a hard bound.
        assert abs(est - n) / n < 5 * h.relative_error

    def test_small_range_linear_counting(self):
        h = HyperLogLog(12, seed=2)
        h.add_many(np.arange(50))
        assert abs(h.cardinality() - 50) < 5


class TestVectorized:
    def test_add_many_equals_scalar_adds(self):
        items = np.random.default_rng(0).integers(0, 10**9, size=3000)
        a = HyperLogLog(10, seed=3)
        b = HyperLogLog(10, seed=3)
        a.add_many(items)
        for x in items:
            b.add(int(x))
        np.testing.assert_array_equal(a.registers, b.registers)


class TestUnion:
    def test_union_cardinality(self):
        a = HyperLogLog(12, seed=4)
        b = HyperLogLog(12, seed=4)
        a.add_many(np.arange(0, 10_000))
        b.add_many(np.arange(5_000, 15_000))
        u = a.union(b)
        assert abs(u.cardinality() - 15_000) / 15_000 < 5 * u.relative_error

    def test_union_requires_same_config(self):
        with pytest.raises(ValueError):
            HyperLogLog(10).union(HyperLogLog(11))
        with pytest.raises(ValueError):
            HyperLogLog(10, seed=1).union(HyperLogLog(10, seed=2))

    def test_union_is_register_max(self):
        a = HyperLogLog(8, seed=5)
        b = HyperLogLog(8, seed=5)
        a.add_many(np.arange(100))
        b.add_many(np.arange(100, 200))
        u = a.union(b)
        np.testing.assert_array_equal(
            u.registers, np.maximum(a.registers, b.registers)
        )

    def test_copy_independent(self):
        a = HyperLogLog(8)
        a.add(1)
        c = a.copy()
        c.add(2)
        assert (a.registers != c.registers).any() or a.cardinality() <= c.cardinality()
