"""Engine tests: shared-memory store, ModelSweep, batched hot path.

The load-bearing guarantees:

* ``SharedTraceStore`` round-trips trace columns bit-exactly and cleans up.
* ``ModelSweep`` and ``parallel_klru_mrc`` produce bit-identical grids for
  ``max_workers=1`` vs ``max_workers=4`` under a fixed seed (worker count
  must never influence results).
* ``KRRStack.access_many`` matches a loop of ``access()`` calls
  draw-for-draw (same RNG consumption, same distances, same final stack).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.krr import KRRStack
from repro.core.model import KRRModel
from repro.engine import ModelSweep, SharedTraceStore, SweepConfig
from repro.engine.shm import AttachedTrace
from repro.simulator.parallel import parallel_klru_mrc
from repro.workloads.trace import Trace
from repro.workloads.zipf import zipf_trace_keys


def _zipf_trace(n_objects=600, n_requests=12_000, seed=0, variable_size=False):
    keys = zipf_trace_keys(n_objects, n_requests, 0.9, rng=seed)
    sizes = None
    if variable_size:
        sizes = np.random.default_rng(seed + 1).integers(
            64, 8192, size=keys.shape[0]
        )
    return Trace(keys, sizes, name="engine-zipf")


class TestSharedTraceStore:
    def test_round_trip_columns(self):
        trace = _zipf_trace(variable_size=True)
        with SharedTraceStore(trace) as store:
            view = store.view()
            np.testing.assert_array_equal(view.keys, trace.keys)
            np.testing.assert_array_equal(view.sizes, trace.sizes)
            np.testing.assert_array_equal(view.ops, trace.ops)

    def test_attach_sees_same_data(self):
        trace = _zipf_trace()
        with SharedTraceStore(trace) as store:
            with AttachedTrace(store.spec) as attached:
                np.testing.assert_array_equal(attached.keys, trace.keys)
                att = attached.as_trace()
                assert att.name == trace.name
                np.testing.assert_array_equal(att.sizes, trace.sizes)

    def test_columns_as_lists_cached(self):
        trace = _zipf_trace(n_requests=500)
        with SharedTraceStore(trace) as store:
            with AttachedTrace(store.spec) as attached:
                a = attached.columns_as_lists()
                b = attached.columns_as_lists()
                assert a is b  # converted once
                assert a[0] == trace.keys.tolist()

    def test_close_unlinks_segment(self):
        trace = _zipf_trace(n_requests=100)
        store = SharedTraceStore(trace)
        spec = store.spec
        store.close()
        store.close()  # idempotent
        with pytest.raises(FileNotFoundError):
            AttachedTrace(spec)

    def test_view_after_close_raises(self):
        store = SharedTraceStore(_zipf_trace(n_requests=100))
        store.close()
        with pytest.raises(ValueError):
            store.view()


class TestAccessManyEquivalence:
    @pytest.mark.parametrize("strategy", ["backward", "topdown", "linear"])
    def test_matches_access_loop_draw_for_draw(self, strategy):
        keys = zipf_trace_keys(200, 4_000, 0.8, rng=3).tolist()
        a = KRRStack(4.0, strategy=strategy, rng=7)
        b = KRRStack(4.0, strategy=strategy, rng=7)
        serial = [a.access(k)[0] for k in keys]
        batched, byte_distances = b.access_many(keys)
        assert byte_distances is None
        assert serial == batched
        assert a.keys_in_stack_order() == b.keys_in_stack_order()
        assert a.total_swaps == b.total_swaps
        assert a.updates == b.updates

    def test_matches_with_size_tracking(self):
        rng = np.random.default_rng(5)
        keys = zipf_trace_keys(150, 2_000, 0.8, rng=4).tolist()
        sizes = rng.integers(1, 4096, size=len(keys)).tolist()
        a = KRRStack(3.0, rng=11, track_sizes=True)
        b = KRRStack(3.0, rng=11, track_sizes=True)
        serial = [a.access(k, s) for k, s in zip(keys, sizes)]
        dist, byte_dist = b.access_many(keys, sizes)
        assert [d for d, _ in serial] == dist
        assert [bd for _, bd in serial] == byte_dist
        assert a.keys_in_stack_order() == b.keys_in_stack_order()

    def test_default_sizes_are_one(self):
        stack = KRRStack(2.0, rng=1)
        stack.access_many([1, 2, 3, 1])
        assert stack.total_bytes == 3

    def test_process_matches_streaming_access(self):
        trace = _zipf_trace(seed=6)
        m_batch = KRRModel(k=5, seed=9)
        m_stream = KRRModel(k=5, seed=9)
        m_batch.process(trace)
        for k in trace.keys.tolist():
            m_stream.access(k)
        np.testing.assert_array_equal(
            m_batch.mrc().miss_ratios, m_stream.mrc().miss_ratios
        )
        assert m_batch.stats.cold_misses == m_stream.stats.cold_misses
        assert m_batch.stats.swap_positions == m_stream.stats.swap_positions

    def test_process_matches_streaming_with_bytes(self):
        trace = _zipf_trace(seed=8, variable_size=True)
        m_batch = KRRModel(k=4, seed=2, track_sizes=True)
        m_stream = KRRModel(k=4, seed=2, track_sizes=True)
        m_batch.process(trace)
        for k, s in zip(trace.keys.tolist(), trace.sizes.tolist()):
            m_stream.access(k, s)
        np.testing.assert_array_equal(
            m_batch.byte_mrc().miss_ratios, m_stream.byte_mrc().miss_ratios
        )

    def test_process_matches_streaming_with_sampling(self):
        trace = _zipf_trace(seed=10)
        m_batch = KRRModel(k=5, sampling_rate=0.3, seed=13)
        m_stream = KRRModel(k=5, sampling_rate=0.3, seed=13)
        m_batch.process(trace)
        for k in trace.keys.tolist():
            m_stream.access(k)
        assert m_batch.stats.requests_sampled == m_stream.stats.requests_sampled
        np.testing.assert_array_equal(
            m_batch.mrc().miss_ratios, m_stream.mrc().miss_ratios
        )


class TestModelSweep:
    def test_grid_cross_product(self):
        sweep = ModelSweep.grid(
            ks=[1, 5, 10], strategies=["backward", "linear"],
            sampling_rates=[None, 0.1],
        )
        assert len(sweep) == 12
        assert sweep.configs[0] == SweepConfig(k=1, strategy="backward")

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            ModelSweep([])

    def test_seeds_fixed_by_position(self):
        sweep = ModelSweep.grid(ks=[1, 2, 3], seed=42)
        assert sweep.config_seeds() == sweep.config_seeds()
        assert len(set(sweep.config_seeds())) == 3

    def test_bit_identical_across_worker_counts(self):
        trace = _zipf_trace(seed=20)
        sweep = ModelSweep.grid(
            ks=[1, 4], strategies=["backward"], sampling_rates=[None, 0.5],
            seed=5,
        )
        serial = sweep.run(trace, max_workers=1)
        parallel = sweep.run(trace, max_workers=4)
        assert len(serial) == len(parallel) == 4
        for a, b in zip(serial, parallel):
            assert a.config == b.config
            assert a.seed == b.seed
            np.testing.assert_array_equal(a.sizes, b.sizes)
            np.testing.assert_array_equal(a.miss_ratios, b.miss_ratios)
            assert a.requests_sampled == b.requests_sampled

    def test_serial_matches_direct_model(self):
        trace = _zipf_trace(seed=21)
        sweep = ModelSweep([SweepConfig(k=4)], seed=9)
        result = sweep.run(trace, max_workers=1)[0]
        direct = KRRModel(k=4, seed=result.seed).process(trace).mrc()
        np.testing.assert_array_equal(result.miss_ratios, direct.miss_ratios)

    def test_byte_granularity_config(self):
        trace = _zipf_trace(seed=22, variable_size=True)
        sweep = ModelSweep([SweepConfig(k=3, track_sizes=True)], seed=1)
        result = sweep.run(trace, max_workers=1)[0]
        assert result.unit == "bytes"
        assert result.mrc().unit == "bytes"

    def test_max_size_caps_grid(self):
        trace = _zipf_trace(seed=23)
        sweep = ModelSweep([SweepConfig(k=2)], seed=3)
        result = sweep.run(trace, max_workers=1, max_size=50)[0]
        assert result.sizes[-1] <= 50


class TestParallelSimulationSweep:
    def test_bit_identical_across_worker_counts(self):
        trace = _zipf_trace(n_objects=300, n_requests=5_000, seed=30)
        one = parallel_klru_mrc(trace, 3, n_points=4, rng=19, max_workers=1)
        four = parallel_klru_mrc(trace, 3, n_points=4, rng=19, max_workers=4)
        np.testing.assert_array_equal(one.sizes, four.sizes)
        np.testing.assert_array_equal(one.miss_ratios, four.miss_ratios)


class TestSweepCLI:
    def test_sweep_subcommand_writes_grid(self, tmp_path):
        from repro.cli import main
        from repro.workloads import io

        trace = _zipf_trace(n_objects=200, n_requests=3_000, seed=40)
        trace_path = tmp_path / "t.csv"
        io.save_csv(trace, trace_path)
        out = tmp_path / "grid.csv"
        rc = main([
            "sweep", str(trace_path), "--ks", "1,5", "--rates", "none,0.5",
            "--workers", "1", "--seed", "3", "-o", str(out),
        ])
        assert rc == 0
        lines = out.read_text().strip().splitlines()
        assert lines[0] == "k,strategy,rate,size,miss_ratio"
        assert len(lines) > 4
        ks = {line.split(",")[0] for line in lines[1:]}
        assert ks == {"1", "5"}
