"""Tests for KFR — the experimental sampled-LFU stack model."""

import numpy as np
import pytest

from repro.core.kfr import KFRModel, KFRStack
from repro.mrc import mean_absolute_error
from repro.policies import sampled_policy_mrc
from repro.workloads import Trace, patterns
from repro.workloads.zipf import ScrambledZipfGenerator


def _zipf_trace(n_objects=800, n_requests=20_000, alpha=1.1, seed=1):
    gen = ScrambledZipfGenerator(n_objects, alpha, rng=seed)
    return Trace(gen.sample(n_requests), name="zipf")


class TestKFRStack:
    def test_cold_and_hit_distances(self):
        s = KFRStack(4, rng=0)
        assert s.access(1) == -1
        assert s.access(1) == 1  # count 2: unique top class

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KFRStack(0)

    def test_stack_stays_a_permutation(self):
        rng = np.random.default_rng(1)
        s = KFRStack(4, rng=2)
        seen = set()
        for k in rng.integers(0, 50, size=800):
            s.access(int(k))
            seen.add(int(k))
        order = s.keys_in_stack_order()
        assert sorted(order) == sorted(seen)

    def test_position_index_consistent(self):
        rng = np.random.default_rng(2)
        s = KFRStack(3, rng=3)
        for k in rng.integers(0, 30, size=500):
            s.access(int(k))
        for i, key in enumerate(s.keys_in_stack_order(), start=1):
            assert s.position_of(key) == i

    def test_frequency_tracking(self):
        s = KFRStack(2, rng=0)
        for _ in range(7):
            s.access(9)
        assert s.frequency_of(9) == 7
        assert s.frequency_of(10) == 0

    def test_high_frequency_object_rises(self):
        """A much-hotter object should sit near the top of the stack."""
        rng = np.random.default_rng(3)
        s = KFRStack(8, rng=4)
        for k in rng.integers(1, 200, size=3000):
            s.access(int(k))
            s.access(0)  # every other access hits object 0
        assert s.position_of(0) <= 3

    def test_rank_never_worsens_on_access(self):
        rng = np.random.default_rng(4)
        s = KFRStack(4, rng=5)
        for k in rng.integers(0, 40, size=400):
            k = int(k)
            before = s.position_of(k)
            s.access(k)
            after = s.position_of(k)
            if before > 0:
                assert after <= before


class TestKFRModelAccuracy:
    def test_k1_is_exact_random_replacement(self):
        """K=1 sampled-LFU == random replacement; KFR delegates to KRR."""
        trace = _zipf_trace(seed=5)
        truth = sampled_policy_mrc(trace, "lfu", k=1, n_points=8, rng=6)
        pred = KFRModel(k=1, seed=7).process(trace).mrc()
        assert mean_absolute_error(truth, pred) < 0.02

    @pytest.mark.parametrize("k", [5, 16])
    def test_zipf_accuracy(self, k):
        trace = _zipf_trace(seed=8)
        truth = sampled_policy_mrc(trace, "lfu", k=k, n_points=8, rng=9)
        pred = KFRModel(k=k, seed=10).process(trace).mrc()
        assert mean_absolute_error(truth, pred) < 0.03, k

    def test_hot_scan_accuracy(self):
        hot = ScrambledZipfGenerator(500, 1.3, rng=11).sample(20_000)
        scan = patterns.sequential_scan(5_000, 4_000)
        trace = Trace(
            patterns.interleave_streams([hot, scan], [0.8, 0.2], rng=12),
            name="hot+scan",
        )
        truth = sampled_policy_mrc(trace, "lfu", k=5, n_points=8, rng=13)
        pred = KFRModel(k=5, seed=14).process(trace).mrc()
        assert mean_absolute_error(truth, pred) < 0.03

    def test_beats_lru_model_for_lfu_cache(self):
        """The point of KFR: an exact-LRU curve is the wrong model for a
        sampled-LFU cache; KFR must be closer."""
        from repro.mrc.builder import from_distance_histogram
        from repro.stack.lru_stack import lru_histograms

        hot = ScrambledZipfGenerator(500, 1.3, rng=15).sample(20_000)
        scan = patterns.sequential_scan(5_000, 4_000)
        trace = Trace(
            patterns.interleave_streams([hot, scan], [0.8, 0.2], rng=16),
            name="hot+scan",
        )
        truth = sampled_policy_mrc(trace, "lfu", k=8, n_points=8, rng=17)
        kfr = KFRModel(k=8, seed=18).process(trace).mrc()
        hist, _ = lru_histograms(trace)
        lru = from_distance_histogram(hist)
        assert mean_absolute_error(truth, kfr) < mean_absolute_error(truth, lru)
