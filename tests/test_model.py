"""End-to-end tests for KRRModel — the paper's headline accuracy claims at
test-friendly scale."""

import numpy as np
import pytest

from repro import KRRModel, model_trace
from repro.core.correction import corrected_k
from repro.mrc import mean_absolute_error
from repro.simulator import byte_klru_mrc, klru_mrc
from repro.workloads import Trace, msr, twitter
from repro.workloads.zipf import ScrambledZipfGenerator


def _zipf_trace(n_objects=800, n_requests=15_000, alpha=1.0, seed=0):
    gen = ScrambledZipfGenerator(n_objects, alpha, rng=seed)
    return Trace(gen.sample(n_requests), name=f"zipf{n_objects}")


class TestConstruction:
    def test_defaults(self):
        m = KRRModel()
        assert m.k == 5
        assert m.effective_k == pytest.approx(corrected_k(5))
        assert m.sampling_rate is None

    def test_correction_off(self):
        m = KRRModel(k=8, correction=False)
        assert m.effective_k == 8.0

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KRRModel(k=0)

    def test_byte_mrc_requires_tracking(self):
        m = KRRModel(track_sizes=False)
        m.access(1)
        with pytest.raises(RuntimeError):
            m.byte_mrc()


class TestStreamingVsBatch:
    def test_access_equals_process(self):
        trace = _zipf_trace(200, 3000)
        a = KRRModel(k=4, seed=1)
        for key in trace.keys:
            a.access(int(key))
        b = KRRModel(k=4, seed=1)
        b.process(trace)
        np.testing.assert_allclose(a.mrc().miss_ratios, b.mrc().miss_ratios)

    def test_stats_populated(self):
        trace = _zipf_trace(200, 3000)
        m = KRRModel(k=3, seed=2)
        m.process(trace)
        assert m.stats.requests_seen == 3000
        assert m.stats.requests_sampled == 3000
        assert m.stats.cold_misses == trace.unique_objects()
        assert m.stats.stack_updates == 3000
        assert m.stats.mean_swaps_per_update >= 1

    def test_access_many_equals_access_bit_for_bit(self):
        # The incremental batch path must be draw-for-draw identical to
        # per-request streaming, including the RNG cursor and counters.
        trace = _zipf_trace(150, 2500)
        keys = [int(k) for k in trace.keys]
        a = KRRModel(k=4, sampling_rate=0.5, seed=7)
        for key in keys:
            a.access(key)
        b = KRRModel(k=4, sampling_rate=0.5, seed=7)
        for start in range(0, len(keys), 700):  # uneven chunks on purpose
            b.access_many(keys[start:start + 700])
        assert a.state_dict() == b.state_dict()
        assert (a.stats.requests_seen, a.stats.requests_sampled,
                a.stats.cold_misses) == (
            b.stats.requests_seen, b.stats.requests_sampled,
            b.stats.cold_misses)

    def test_access_many_uint64_keys(self):
        # Raw 64-bit hash ids (>= 2^63) must take the wrap-around path
        # and agree with scalar access.
        keys = [(0x9E3779B97F4A7C15 * (i % 40)) & (2**64 - 1)
                for i in range(800)]
        a = KRRModel(k=3, sampling_rate=0.5, seed=9)
        for key in keys:
            a.access(key)
        b = KRRModel(k=3, sampling_rate=0.5, seed=9)
        b.access_many(keys)
        assert a.state_dict() == b.state_dict()

    def test_access_many_soa_engine_matches_scalar(self):
        # engine="auto" may route through the SoA stack; the curves and
        # counters must match the scalar engine draw for draw.
        trace = _zipf_trace(150, 2500)
        keys = [int(k) for k in trace.keys]
        a = KRRModel(k=4, sampling_rate=0.5, seed=13)
        for key in keys:
            a.access(key)
        b = KRRModel(k=4, sampling_rate=0.5, seed=13)
        b.access_many(np.asarray(keys, dtype=np.int64), engine="auto")
        np.testing.assert_array_equal(a.mrc().miss_ratios, b.mrc().miss_ratios)
        assert (a.stats.requests_seen, a.stats.requests_sampled,
                a.stats.cold_misses) == (
            b.stats.requests_seen, b.stats.requests_sampled,
            b.stats.cold_misses)

    def test_windowed_access_many_equals_access(self):
        from repro.core.windowed import WindowedKRRModel

        trace = _zipf_trace(150, 4000)
        keys = [int(k) for k in trace.keys]
        # window small enough that the batch spans several rotations
        a = WindowedKRRModel(k=3, window=900, seed=11)
        for key in keys:
            a.access(key)
        b = WindowedKRRModel(k=3, window=900, seed=11)
        for start in range(0, len(keys), 1100):
            b.access_many(keys[start:start + 1100])
        assert a.rotations == b.rotations
        assert a.counters() == b.counters()
        assert a.state_dict() == b.state_dict()

    def test_sampling_reduces_sampled_count(self):
        trace = _zipf_trace(2000, 10_000)
        m = KRRModel(k=2, sampling_rate=0.2, seed=3)
        m.process(trace)
        assert m.stats.requests_sampled < 0.45 * m.stats.requests_seen
        assert m.stats.effective_rate < 0.45

    def test_auto_rate_small_working_set_is_full(self):
        trace = _zipf_trace(500, 4000)
        m = KRRModel(k=2, sampling_rate="auto", seed=4)
        m.process(trace)
        # 500 objects << 8000 minimum: auto resolves to rate 1.0.
        assert m.sampling_rate == 1.0


class TestAccuracy:
    @pytest.mark.parametrize("k", [1, 4, 16])
    def test_zipf_accuracy(self, k):
        trace = _zipf_trace()
        truth = klru_mrc(trace, k, n_points=10, rng=5)
        pred = model_trace(trace, k=k, seed=6).mrc()
        assert mean_absolute_error(truth, pred) < 0.02

    def test_type_a_trace_accuracy(self):
        trace = msr.make_trace("src2", 20_000, scale=0.1)
        truth = klru_mrc(trace, 4, n_points=10, rng=7)
        pred = model_trace(trace, k=4, seed=8).mrc()
        assert mean_absolute_error(truth, pred) < 0.03

    def test_correction_helps_on_loop_pattern(self):
        """§4.2: on loop-like traces the K' correction reduces error."""
        trace = msr.make_trace("src2", 20_000, scale=0.1)
        truth = klru_mrc(trace, 8, n_points=10, rng=9)
        with_corr = model_trace(trace, k=8, seed=10).mrc()
        without = KRRModel(k=8, correction=False, seed=10)
        without_curve = without.process(trace).mrc()
        err_with = mean_absolute_error(truth, with_corr)
        err_without = mean_absolute_error(truth, without_curve)
        assert err_with <= err_without + 0.005

    def test_k1_matches_random_replacement(self):
        """KRR(K=1) is statistically identical to random replacement."""
        trace = _zipf_trace(seed=11)
        truth = klru_mrc(trace, 1, n_points=10, rng=12)
        pred = model_trace(trace, k=1, seed=13).mrc()
        assert mean_absolute_error(truth, pred) < 0.015

    def test_klru_mrcs_ordered_by_k(self):
        """On a Type-A trace the predicted MRCs for growing K move toward
        the LRU curve monotonically at mid cache sizes (the Fig 1.1 fan)."""
        trace = msr.make_trace("src2", 20_000, scale=0.1)
        mid = trace.unique_objects() // 2
        values = [
            float(model_trace(trace, k=k, seed=14).mrc()(mid)) for k in (1, 4, 16)
        ]
        # The scan/loop structure makes higher K *worse* at mid sizes (LRU
        # pathology) — ordering must be monotone one way or the other.
        assert values == sorted(values) or values == sorted(values, reverse=True)


class TestVariableSizes:
    def test_var_krr_accuracy(self):
        trace = twitter.make_trace("cluster26.0", 20_000, scale=0.15, seed=15)
        truth = byte_klru_mrc(trace, 4, n_points=8, rng=16)
        pred = model_trace(trace, k=4, seed=17).byte_mrc()
        assert mean_absolute_error(truth, pred) < 0.03

    def test_model_trace_auto_detects_sizes(self):
        trace = twitter.make_trace("cluster26.0", 3000, scale=0.1, seed=18)
        result = model_trace(trace, k=2, seed=19)
        result.byte_mrc()  # must not raise

    def test_uniform_trace_skips_tracking(self):
        trace = _zipf_trace(100, 1000)
        result = model_trace(trace, k=2, seed=20)
        with pytest.raises(RuntimeError):
            result.byte_mrc()


class TestSpatialSampling:
    def test_sampled_mrc_close_to_unsampled(self):
        trace = _zipf_trace(3000, 40_000, alpha=0.9, seed=21)
        full = model_trace(trace, k=4, seed=22).mrc()
        sampled = model_trace(trace, k=4, sampling_rate=0.3, seed=23).mrc()
        grid = np.linspace(100, 3000, 20)
        err = np.mean(np.abs(full(grid) - sampled(grid)))
        assert err < 0.05

    def test_histogram_scale_set(self):
        m = KRRModel(k=2, sampling_rate=0.1, seed=24)
        assert m._obj_hist.scale == pytest.approx(1 / m.sampling_rate)
