"""Tests for MissRatioCurve, builders and error metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mrc import (
    MissRatioCurve,
    curve_gap,
    evaluation_grid,
    from_points,
    max_absolute_error,
    mean_absolute_error,
)
from repro.mrc.builder import from_distance_histogram
from repro.stack.histogram import DistanceHistogram


def _curve(sizes, ratios, unit="objects", label=""):
    return MissRatioCurve(np.asarray(sizes, float), np.asarray(ratios, float), unit, label)


class TestValidation:
    def test_requires_parallel_arrays(self):
        with pytest.raises(ValueError):
            _curve([1, 2], [0.5])

    def test_requires_increasing_sizes(self):
        with pytest.raises(ValueError):
            _curve([2, 1], [0.5, 0.4])
        with pytest.raises(ValueError):
            _curve([1, 1], [0.5, 0.4])

    def test_requires_ratio_range(self):
        with pytest.raises(ValueError):
            _curve([1], [1.5])
        with pytest.raises(ValueError):
            _curve([1], [-0.1])

    def test_requires_nonempty(self):
        with pytest.raises(ValueError):
            _curve([], [])

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            _curve([-1, 2], [0.9, 0.5])


class TestEvaluation:
    def test_interpolation(self):
        c = _curve([10, 20], [0.8, 0.4])
        assert c(15) == pytest.approx(0.6)

    def test_extrapolation_clamps(self):
        c = _curve([10, 20], [0.8, 0.4])
        assert c(1) == 0.8
        assert c(100) == 0.4

    def test_vectorized_call(self):
        c = _curve([10, 20, 30], [0.9, 0.5, 0.1])
        np.testing.assert_allclose(c([10, 25, 30]), [0.9, 0.3, 0.1])

    def test_resample(self):
        c = _curve([10, 30], [0.8, 0.4])
        r = c.resample([10, 20, 30])
        np.testing.assert_allclose(r.miss_ratios, [0.8, 0.6, 0.4])

    def test_enforce_monotone(self):
        c = _curve([1, 2, 3], [0.5, 0.6, 0.3])
        m = c.enforce_monotone()
        np.testing.assert_allclose(m.miss_ratios, [0.5, 0.5, 0.3])
        assert m.is_monotone()
        assert not c.is_monotone()

    def test_rows_and_label(self):
        c = _curve([1], [0.5]).with_label("x")
        assert c.label == "x"
        assert c.to_rows() == [(1.0, 0.5)]


class TestMetrics:
    def test_mae_on_actual_grid(self):
        actual = _curve([10, 20], [0.8, 0.4])
        predicted = _curve([10, 20], [0.7, 0.5])
        assert mean_absolute_error(actual, predicted) == pytest.approx(0.1)

    def test_mae_custom_grid(self):
        a = _curve([0, 100], [1.0, 0.0])
        b = _curve([0, 100], [1.0, 0.2])
        got = mean_absolute_error(a, b, sizes=[100])
        assert got == pytest.approx(0.2)

    def test_mae_unit_mismatch(self):
        a = _curve([1], [0.5], unit="objects")
        b = _curve([1], [0.5], unit="bytes")
        with pytest.raises(ValueError):
            mean_absolute_error(a, b)

    def test_max_error(self):
        a = _curve([1, 2], [0.9, 0.1])
        b = _curve([1, 2], [0.5, 0.1])
        assert max_absolute_error(a, b) == pytest.approx(0.4)

    def test_identical_curves_zero_gap(self):
        a = _curve([1, 50, 100], [0.9, 0.5, 0.1])
        assert curve_gap(a, a) == 0.0

    @given(
        st.lists(st.floats(0, 1), min_size=2, max_size=20),
        st.lists(st.floats(0, 1), min_size=2, max_size=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_mae_symmetric_nonnegative(self, r1, r2):
        n = min(len(r1), len(r2))
        sizes = np.arange(1, n + 1, dtype=float)
        a = _curve(sizes, sorted(r1[:n], reverse=True))
        b = _curve(sizes, sorted(r2[:n], reverse=True))
        assert mean_absolute_error(a, b) == pytest.approx(
            mean_absolute_error(b, a, sizes=a.sizes)
        )
        assert mean_absolute_error(a, b) >= 0


class TestBuilders:
    def test_from_points(self):
        c = from_points([1, 2], [0.9, 0.5], unit="bytes", label="z")
        assert c.unit == "bytes" and c.label == "z"

    def test_from_histogram_drops_size_zero(self):
        h = DistanceHistogram()
        h.record(1)
        c = from_distance_histogram(h)
        assert c.sizes[0] == 1

    def test_histogram_curve_values(self):
        h = DistanceHistogram()
        for d in (1, 2, 2):
            h.record(d)
        h.record_cold()
        c = from_distance_histogram(h)
        assert c(1) == pytest.approx(0.75)
        assert c(2) == pytest.approx(0.25)


class TestEvaluationGrid:
    def test_paper_grid_40_points(self):
        g = evaluation_grid(1_000_000, 40)
        assert g.shape == (40,)
        assert g[-1] == 1_000_000
        assert g[0] == pytest.approx(25_000)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            evaluation_grid(0)
        with pytest.raises(ValueError):
            evaluation_grid(10, 0)
