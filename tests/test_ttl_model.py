"""Tests for the TTL-aware KRR model and parallel sweep runner."""

import numpy as np
import pytest

from repro.core.krr import KRRStack
from repro.core.ttl_model import TTLAwareKRRModel
from repro.mrc import mean_absolute_error
from repro.policies import sampled_policy_mrc
from repro.simulator import klru_mrc
from repro.simulator.parallel import parallel_klru_mrc
from repro.workloads import Trace
from repro.workloads.zipf import ScrambledZipfGenerator


def _zipf_trace(n_objects=1_500, n_requests=40_000, seed=1):
    gen = ScrambledZipfGenerator(n_objects, 0.9, rng=seed)
    return Trace(gen.sample(n_requests), name="zipf")


class TestRemoveMany:
    def test_bulk_removal(self):
        s = KRRStack(1e9, rng=0, track_sizes=True)
        for k in range(10):
            s.access(k, k + 1)
        s.remove_many([2, 5, 7, 99])
        order = s.keys_in_stack_order()
        assert set(order) == {0, 1, 3, 4, 6, 8, 9}
        for i, key in enumerate(order, start=1):
            assert s.position_of(key) == i
        sizes = s.sizes_in_stack_order()
        for boundary, stored in s._size_array.anchors:
            assert stored == sum(sizes[:boundary])

    def test_empty_batch_noop(self):
        s = KRRStack(2, rng=0)
        s.access(1)
        s.remove_many([42])
        assert len(s) == 1


class TestTTLModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            TTLAwareKRRModel(k=0)
        with pytest.raises(ValueError):
            TTLAwareKRRModel(ttl=0)

    def test_mild_ttl_matches_plain_krr(self):
        """TTL far above every reuse time: identical to the plain model."""
        from repro import model_trace

        trace = _zipf_trace(seed=2)
        ttl_curve = TTLAwareKRRModel(k=5, ttl=10**9, seed=3).process(trace).mrc()
        plain = model_trace(trace, k=5, seed=3).mrc()
        grid = np.linspace(100, 1_500, 15)
        assert float(np.max(np.abs(ttl_curve(grid) - plain(grid)))) < 1e-9

    @pytest.mark.parametrize("mode", ["absolute", "sliding"])
    @pytest.mark.parametrize("ttl", [2_000, 10_000, 50_000])
    def test_accuracy_vs_ttl_simulator(self, ttl, mode):
        """With matched TTL semantics the model tracks the simulator to
        ~1e-2 MAE across regimes and both modes."""
        trace = _zipf_trace(seed=4)
        truth = sampled_policy_mrc(
            trace, "lru", k=5, n_points=8, ttl=ttl, ttl_mode=mode, rng=5
        )
        pred = (
            TTLAwareKRRModel(k=5, ttl=ttl, ttl_mode=mode, seed=6)
            .process(trace)
            .mrc()
        )
        assert mean_absolute_error(truth, pred) < 0.02

    def test_absolute_expires_more_than_sliding(self):
        """Reads renew sliding leases, so sliding expires less often."""
        trace = _zipf_trace(seed=12)
        absolute = TTLAwareKRRModel(k=5, ttl=5_000, ttl_mode="absolute", seed=13)
        sliding = TTLAwareKRRModel(k=5, ttl=5_000, ttl_mode="sliding", seed=13)
        absolute.process(trace)
        sliding.process(trace)
        assert absolute.expired_accesses > sliding.expired_accesses

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            TTLAwareKRRModel(ttl_mode="bogus")

    def test_miss_ratio_floor(self):
        trace = _zipf_trace(seed=7)
        model = TTLAwareKRRModel(k=5, ttl=2_000, seed=8).process(trace)
        floor = model.miss_ratio_floor()
        curve = model.mrc()
        assert floor > 0.05  # aggressive TTL: substantial expiry misses
        assert float(curve(curve.max_size())) >= floor - 1e-9

    def test_expired_accesses_counted(self):
        trace = Trace(np.array([1, 2, 1], dtype=np.int64))
        model = TTLAwareKRRModel(k=2, ttl=1, seed=9)
        model.process(trace)
        assert model.expired_accesses == 1  # reuse time 2 > ttl 1

    def test_purge_bounds_memory(self):
        """Idle objects leave the stack after the expire cycle."""
        # Phase 1 touches 1000 objects once; phase 2 loops over 10 others.
        keys = np.concatenate(
            [np.arange(1_000), np.tile(np.arange(2_000, 2_010), 800)]
        ).astype(np.int64)
        model = TTLAwareKRRModel(k=3, ttl=1_000, seed=10)
        model.process(Trace(keys))
        assert len(model._stack) < 200

    def test_spatial_sampling_supported(self):
        trace = _zipf_trace(seed=11)
        model = TTLAwareKRRModel(k=4, ttl=20_000, sampling_rate=0.5, seed=12)
        curve = model.process(trace).mrc()
        assert model.requests_sampled < model.requests_seen
        assert 0 <= float(curve(500)) <= 1


class TestParallelSweep:
    def test_matches_serial_sweep(self):
        trace = _zipf_trace(n_objects=600, n_requests=12_000, seed=13)
        serial = klru_mrc(trace, 4, n_points=6, rng=14)
        par = parallel_klru_mrc(trace, 4, n_points=6, rng=15, max_workers=2)
        assert mean_absolute_error(serial, par) < 0.02

    def test_inline_path_when_single_worker(self):
        trace = _zipf_trace(n_objects=300, n_requests=5_000, seed=16)
        curve = parallel_klru_mrc(trace, 3, n_points=4, rng=17, max_workers=1)
        assert len(curve) == 4

    def test_deterministic_for_seed_across_worker_counts(self):
        trace = _zipf_trace(n_objects=300, n_requests=5_000, seed=18)
        a = parallel_klru_mrc(trace, 3, n_points=4, rng=19, max_workers=1)
        b = parallel_klru_mrc(trace, 3, n_points=4, rng=19, max_workers=2)
        np.testing.assert_array_equal(a.miss_ratios, b.miss_ratios)

    def test_byte_capacity_mode(self):
        from repro.workloads import twitter

        trace = twitter.make_trace("cluster26.0", 8_000, scale=0.1, seed=20)
        curve = parallel_klru_mrc(
            trace, 4, n_points=4, rng=21, byte_capacity=True, max_workers=2
        )
        assert curve.unit == "bytes"
