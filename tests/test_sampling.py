"""Tests for key hashing and spatial sampling (§2.4)."""

import numpy as np
import pytest

from repro.sampling import (
    FixedSizeSpatialSampler,
    SpatialSampler,
    choose_rate,
    hash_to_unit,
    splitmix64,
)


class TestHashing:
    def test_deterministic(self):
        assert splitmix64(42) == splitmix64(42)
        assert splitmix64(42, seed=1) != splitmix64(42, seed=2)

    def test_scalar_vs_vector_agree(self):
        keys = np.array([0, 1, 2, 10**12], dtype=np.int64)
        vec = splitmix64(keys)
        for k, h in zip(keys, vec):
            assert splitmix64(int(k)) == int(h)

    def test_scalar_path_is_pure_python_int(self):
        """The scalar fast path must not allocate a NumPy array — and must
        agree bit-for-bit with the array path across the full int64 range,
        including negative keys (uint64 wraparound) and nonzero seeds."""
        out = splitmix64(42)
        assert type(out) is int
        assert type(splitmix64(np.int64(42))) is int
        rng = np.random.default_rng(123)
        keys = rng.integers(
            np.iinfo(np.int64).min, np.iinfo(np.int64).max, size=500
        )
        edge = np.array(
            [0, -1, 1, np.iinfo(np.int64).min, np.iinfo(np.int64).max],
            dtype=np.int64,
        )
        for seed in (0, 1, 7, 2**31):
            for batch in (keys, edge):
                vec = splitmix64(batch, seed)
                for k, h in zip(batch.tolist(), vec.tolist()):
                    assert splitmix64(k, seed) == h

    def test_hash_to_unit_scalar_matches_vector(self):
        vec = hash_to_unit(np.arange(32))
        for k, u in zip(range(32), vec):
            assert hash_to_unit(k) == u

    def test_uniformity(self):
        """Hashed sequential keys spread uniformly over [0, 1)."""
        u = hash_to_unit(np.arange(50_000))
        hist, _ = np.histogram(u, bins=10, range=(0, 1))
        assert hist.min() > 4_500 and hist.max() < 5_500

    def test_unit_range(self):
        u = hash_to_unit(np.arange(1000))
        assert u.min() >= 0 and u.max() < 1


class TestSpatialSampler:
    def test_rate_property(self):
        s = SpatialSampler(0.01)
        assert s.rate == pytest.approx(0.01, rel=0.01)
        assert s.scale == pytest.approx(1 / s.rate)

    def test_invalid_rates(self):
        with pytest.raises(ValueError):
            SpatialSampler(0.0)
        with pytest.raises(ValueError):
            SpatialSampler(1.5)

    def test_rate_one_keeps_everything(self):
        s = SpatialSampler(1.0)
        assert s.mask(np.arange(100)).all()

    def test_keep_is_per_key_not_per_request(self):
        """All requests to one key share a single decision — the property
        stack-distance analysis requires."""
        s = SpatialSampler(0.3)
        for key in range(50):
            decisions = {s.keep(key) for _ in range(5)}
            assert len(decisions) == 1

    def test_empirical_rate(self):
        s = SpatialSampler(0.1)
        kept = s.mask(np.arange(100_000)).mean()
        assert kept == pytest.approx(0.1, abs=0.01)

    def test_mask_matches_keep(self):
        s = SpatialSampler(0.25, seed=3)
        keys = np.arange(500)
        mask = s.mask(keys)
        for k in keys:
            assert mask[k] == s.keep(int(k))

    def test_filter_indices(self):
        s = SpatialSampler(0.5, seed=1)
        keys = np.arange(100)
        idx = s.filter_indices(keys)
        np.testing.assert_array_equal(idx, np.flatnonzero(s.mask(keys)))

    def test_different_seeds_differ(self):
        keys = np.arange(1000)
        m1 = SpatialSampler(0.2, seed=0).mask(keys)
        m2 = SpatialSampler(0.2, seed=9).mask(keys)
        assert (m1 != m2).any()


class TestChooseRate:
    def test_large_working_set_uses_default(self):
        assert choose_rate(100_000_000) == 0.001

    def test_small_working_set_raised(self):
        rate = choose_rate(100_000)
        assert rate == pytest.approx(8_000 / 100_000)

    def test_tiny_working_set_capped_at_one(self):
        assert choose_rate(100) == 1.0

    def test_min_objects_guarantee(self):
        for m in (10_000, 1_000_000, 20_000_000):
            rate = choose_rate(m)
            assert m * rate >= 8_000 - 1e-6 or rate == 0.001


class TestFixedSizeSampler:
    def test_tracks_at_most_smax(self):
        evicted = []
        s = FixedSizeSpatialSampler(s_max=50, on_evict=evicted.append)
        for key in range(5000):
            s.offer(key)
        assert len(s) <= 50
        assert evicted  # shrinks must have happened

    def test_threshold_only_decreases(self):
        s = FixedSizeSpatialSampler(s_max=20)
        last = s.threshold
        for key in range(2000):
            s.offer(key)
            assert s.threshold <= last
            last = s.threshold

    def test_rejected_keys_stay_rejected(self):
        s = FixedSizeSpatialSampler(s_max=10)
        for key in range(1000):
            s.offer(key)
        # After convergence, any key rejected now must be rejected again.
        for key in range(200):
            first = s.offer(key)
            second = s.offer(key)
            assert first == second

    def test_accepted_keys_hash_below_threshold(self):
        s = FixedSizeSpatialSampler(s_max=30, seed=2)
        for key in range(3000):
            s.offer(key)
        for key, h in s._tracked.items():
            assert h < s.threshold

    def test_rejects_bad_smax(self):
        with pytest.raises(ValueError):
            FixedSizeSpatialSampler(0)
