"""Tests for Fenwick trees, including hypothesis cross-checks vs numpy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stack.fenwick import FenwickTree, GrowableFenwick


class TestFenwickTree:
    def test_empty_tree_total(self):
        assert FenwickTree(0).total() == 0

    def test_point_add_prefix_sum(self):
        ft = FenwickTree(10)
        ft.add(3, 5)
        ft.add(7, 2)
        assert ft.prefix_sum(2) == 0
        assert ft.prefix_sum(3) == 5
        assert ft.prefix_sum(9) == 7

    def test_range_sum(self):
        ft = FenwickTree(8)
        for i in range(8):
            ft.add(i, i + 1)
        assert ft.range_sum(2, 4) == 3 + 4 + 5
        assert ft.range_sum(5, 4) == 0

    def test_negative_delta(self):
        ft = FenwickTree(4)
        ft.add(1, 10)
        ft.add(1, -4)
        assert ft.prefix_sum(3) == 6

    def test_index_bounds(self):
        ft = FenwickTree(4)
        with pytest.raises(IndexError):
            ft.add(4, 1)
        with pytest.raises(IndexError):
            ft.prefix_sum(4)

    def test_find_kth(self):
        ft = FenwickTree(6)
        ft.add(1, 1)
        ft.add(4, 2)
        assert ft.find_kth(1) == 1
        assert ft.find_kth(2) == 4
        assert ft.find_kth(3) == 4
        with pytest.raises(ValueError):
            ft.find_kth(4)
        with pytest.raises(ValueError):
            ft.find_kth(0)

    @given(
        st.lists(
            st.tuples(st.integers(0, 63), st.integers(-100, 100)),
            min_size=1,
            max_size=200,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_numpy_cumsum(self, updates):
        """Prefix sums after arbitrary point updates equal numpy's cumsum."""
        ft = FenwickTree(64)
        ref = np.zeros(64, dtype=np.int64)
        for i, d in updates:
            ft.add(i, d)
            ref[i] += d
        cum = np.cumsum(ref)
        for i in (0, 5, 31, 62, 63):
            assert ft.prefix_sum(i) == cum[i]

    @given(st.lists(st.integers(1, 50), min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_find_kth_matches_linear_scan(self, values):
        ft = FenwickTree(len(values))
        for i, v in enumerate(values):
            ft.add(i, v)
        cum = np.cumsum(values)
        total = int(cum[-1])
        for k in {1, total // 2 or 1, total}:
            expected = int(np.searchsorted(cum, k, side="left"))
            assert ft.find_kth(k) == expected


class TestGrowableFenwick:
    def test_append_and_suffix_sum(self):
        gf = GrowableFenwick(initial_capacity=2)
        for v in (1, 0, 3, 5):
            gf.append(v)
        assert len(gf) == 4
        assert gf.suffix_sum(0) == 9
        assert gf.suffix_sum(2) == 8
        assert gf.suffix_sum(3) == 5

    def test_growth_preserves_values(self):
        gf = GrowableFenwick(initial_capacity=1)
        for v in range(20):
            gf.append(v)
        assert gf.total() == sum(range(20))

    def test_add_after_growth(self):
        gf = GrowableFenwick(initial_capacity=1)
        idx = [gf.append(1) for _ in range(10)]
        gf.add(idx[0], -1)
        assert gf.total() == 9

    def test_add_out_of_range(self):
        gf = GrowableFenwick()
        gf.append(1)
        with pytest.raises(IndexError):
            gf.add(1, 1)

    def test_empty_suffix(self):
        assert GrowableFenwick().suffix_sum(0) == 0
